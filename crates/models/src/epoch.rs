//! The epoch sequence of Mishchenko–Iutzeler–Malick (SIOPT 2020).
//!
//! The paper under reproduction contrasts its macro-iteration sequence
//! (Definition 2) with the *epoch* sequence `{k_m}` used by \[30\]:
//!
//! ```text
//! k_0 = 0,
//! k_{m+1} = min k such that each machine made at least two updates
//!           on the interval {k_m, …, k}.
//! ```
//!
//! Epochs are defined purely through *update counts per machine* — they
//! never look at which labels were actually read. Under FIFO (monotone
//! labels) two updates per machine imply the second one read post-`k_m`
//! information, which is what the epoch analysis of \[30\] exploits. Under
//! out-of-order delivery that implication fails; the El-Baz paper's claim
//! that "macro-iteration sequences account for possible out of order
//! messages while epochs do not" is made quantitative by combining
//! [`epoch_sequence`] with
//! [`crate::macroiter::boundary_freshness_violations`] (experiment E2).

use crate::partition::Partition;
use crate::trace::Trace;

/// A computed epoch sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Epochs {
    /// `k_0 = 0 < k_1 < k_2 < …`: completed epoch boundaries.
    pub boundaries: Vec<u64>,
}

impl Epochs {
    /// Number of completed epochs.
    pub fn count(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Lengths `k_{m+1} − k_m` of completed epochs.
    pub fn lengths(&self) -> Vec<u64> {
        self.boundaries.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The epoch index `m(j) = max{m : k_m ≤ j}` of iteration `j`.
    pub fn index_of(&self, j: u64) -> usize {
        self.boundaries.partition_point(|&b| b <= j) - 1
    }
}

/// Computes the epoch sequence of a trace under a component → machine
/// partition: `k_{m+1}` is the earliest iteration by which every machine
/// has performed at least `min_updates` updates since `k_m` (the paper
/// quotes \[30\] with `min_updates = 2`).
///
/// A step whose active set touches components of several machines counts
/// as one update for each machine touched.
///
/// # Panics
/// Panics when the partition dimension disagrees with the trace or
/// `min_updates == 0`.
pub fn epoch_sequence(trace: &Trace, partition: &Partition, min_updates: u64) -> Epochs {
    assert_eq!(partition.n(), trace.n(), "epoch_sequence: dimension");
    assert!(min_updates > 0, "epoch_sequence: min_updates must be > 0");
    let p = partition.num_machines();
    let mut counts = vec![0u64; p];
    let mut satisfied = 0usize;
    let mut touched = vec![false; p];
    let mut boundaries = vec![0u64];
    for (j, step) in trace.iter() {
        touched.fill(false);
        for &i in &step.active {
            touched[partition.machine_of(i as usize)] = true;
        }
        for (m, &t) in touched.iter().enumerate() {
            if t {
                counts[m] += 1;
                if counts[m] == min_updates {
                    satisfied += 1;
                }
            }
        }
        if satisfied == p {
            boundaries.push(j);
            counts.fill(0);
            satisfied = 0;
        }
    }
    Epochs { boundaries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macroiter::{boundary_freshness_violations, macro_iterations_strict};
    use crate::schedule::{record, ChaoticBounded, CyclicCoordinate, SyncJacobi};
    use crate::trace::LabelStore;

    #[test]
    fn sync_epochs_every_two_steps() {
        let t = record(&mut SyncJacobi::new(3), 10, LabelStore::Full);
        let p = Partition::identity(3);
        let e = epoch_sequence(&t, &p, 2);
        assert_eq!(e.boundaries, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(e.lengths(), vec![2; 5]);
    }

    #[test]
    fn cyclic_epochs_every_two_sweeps() {
        let t = record(&mut CyclicCoordinate::new(3), 18, LabelStore::Full);
        let p = Partition::identity(3);
        let e = epoch_sequence(&t, &p, 2);
        assert_eq!(e.boundaries, vec![0, 6, 12, 18]);
    }

    #[test]
    fn min_updates_one_recovers_coverage_times() {
        let t = record(&mut CyclicCoordinate::new(3), 9, LabelStore::Full);
        let p = Partition::identity(3);
        let e = epoch_sequence(&t, &p, 1);
        assert_eq!(e.boundaries, vec![0, 3, 6, 9]);
    }

    #[test]
    fn block_partition_counts_machine_touches() {
        // 4 components on 2 machines; sync steps touch both machines.
        let t = record(&mut SyncJacobi::new(4), 4, LabelStore::Full);
        let p = Partition::blocks(4, 2).unwrap();
        let e = epoch_sequence(&t, &p, 2);
        assert_eq!(e.boundaries, vec![0, 2, 4]);
    }

    #[test]
    fn index_of_locates_epochs() {
        let e = Epochs {
            boundaries: vec![0, 4, 9],
        };
        assert_eq!(e.index_of(0), 0);
        assert_eq!(e.index_of(3), 0);
        assert_eq!(e.index_of(4), 1);
        assert_eq!(e.index_of(9), 2);
    }

    #[test]
    fn epochs_ignore_labels_macro_iterations_do_not() {
        // Out-of-order bounded delays: epochs tick at the same cadence as
        // they would with fresh labels, but their boundaries do NOT carry
        // the freshness guarantee — while strict macro-iterations do.
        let mut g = ChaoticBounded::new(6, 6, 6, 40, false, 123);
        let t = record(&mut g, 4000, LabelStore::Full);
        let p = Partition::identity(6);
        let e = epoch_sequence(&t, &p, 2);
        // Every step updates every machine → epoch every 2 steps, blind to
        // the 40-step delays.
        assert_eq!(e.lengths(), vec![2; e.count()]);
        let epoch_violations = boundary_freshness_violations(&t, &e.boundaries);
        assert!(
            epoch_violations > 100,
            "expected many epoch freshness violations, got {epoch_violations}"
        );
        let strict = macro_iterations_strict(&t);
        assert_eq!(boundary_freshness_violations(&t, &strict.boundaries), 0);
        // And macro-iterations are correspondingly longer than epochs.
        assert!(strict.count() < e.count());
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn partition_dimension_checked() {
        let t = record(&mut SyncJacobi::new(3), 2, LabelStore::Full);
        let p = Partition::identity(2);
        epoch_sequence(&t, &p, 2);
    }
}
