//! Steering sequences `𝒮` and delay labels `ℒ` (Definition 1).
//!
//! A [`ScheduleGen`] streams, for each iteration `j = 1, 2, …`, the pair
//! `(S_j, (l_1(j), …, l_n(j)))`: which components are updated and which
//! past iterate each read uses. The replay engines in `asynciter-core`
//! consume schedules to *execute* asynchronous iterations exactly as
//! written in Eq. (1) of the paper; the checkers in
//! [`crate::conditions`] validate them against conditions (a)–(d).
//!
//! The generator library covers every delay regime the paper discusses:
//!
//! | Generator | Regime |
//! |---|---|
//! | [`SyncJacobi`] | synchronous baseline (`S_j = {1..n}`, labels `j−1`) |
//! | [`CyclicCoordinate`] | Gauss–Seidel sweep (fresh labels) |
//! | [`BlockRoundRobin`] | block-iterative round robin |
//! | [`ChaoticBounded`] | Chazan–Miranker/Miellou bounded delays, optionally FIFO-monotone or out-of-order |
//! | [`UnboundedSqrtDelay`] | delays growing like `√j` (condition (b) holds, (d) fails) |
//! | [`HeavyTailDelay`] | Pareto-tailed delays (unbounded, occasionally enormous) |
//! | [`StarvedComponent`] | adversarial violation of condition (c) |
//! | [`FrozenLabelAdversary`] | adversarial violation of condition (b) |
//!
//! On top of the zoo sit *admissibility-preserving combinators* used by
//! the conformance fuzzer to machine-generate schedule diversity while
//! keeping a checkable certificate
//! ([`crate::conditions::AdmissibilityWitness`]):
//!
//! | Combinator | Effect |
//! |---|---|
//! | [`EnvelopeClamp`] | forces conditions (a)/(b) via a [`crate::conditions::DelayEnvelope`] |
//! | [`CoverageGuard`] | forces condition (c) with an explicit gap bound |
//! | [`LabelJitter`] | random extra delay / out-of-order mutation within the envelope |
//! | [`ActiveThin`] | random partial-update mutation of the steering sets |

use crate::trace::{LabelStore, Trace};
use rand::rngs::StdRng;
use rand::RngExt;

/// Reusable output buffer for one schedule step.
#[derive(Debug, Clone, Default)]
pub struct StepBuf {
    /// `S_j`: strictly increasing, nonempty.
    pub active: Vec<usize>,
    /// `(l_1(j), …, l_n(j))`, length `n`, each `≤ j − 1`.
    pub labels: Vec<u64>,
}

impl StepBuf {
    /// A buffer sized for `n` components.
    pub fn new(n: usize) -> Self {
        Self {
            active: Vec::with_capacity(n),
            labels: vec![0; n],
        }
    }
}

/// A streaming generator of steering sets and delay labels.
pub trait ScheduleGen {
    /// Number of components `n`.
    fn n(&self) -> usize;

    /// Produces `S_j` and the label tuple for iteration `j ≥ 1` into `buf`.
    ///
    /// Implementations must leave `buf.active` nonempty, strictly
    /// increasing and within `0..n`, and `buf.labels` of length `n` with
    /// every entry `≤ j − 1` (condition (a)). Adversarial generators that
    /// deliberately violate conditions (b)/(c) still respect these
    /// structural rules.
    fn step(&mut self, j: u64, buf: &mut StepBuf);

    /// A short human-readable description for experiment logs.
    fn describe(&self) -> String {
        format!("schedule(n={})", self.n())
    }
}

impl<G: ScheduleGen + ?Sized> ScheduleGen for Box<G> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        (**self).step(j, buf);
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl<G: ScheduleGen + ?Sized> ScheduleGen for &mut G {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        (**self).step(j, buf);
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Runs a generator for `num_steps` iterations, recording a [`Trace`].
pub fn record(gen: &mut dyn ScheduleGen, num_steps: u64, store: LabelStore) -> Trace {
    let mut trace = Trace::new(gen.n(), store);
    let mut buf = StepBuf::new(gen.n());
    for j in 1..=num_steps {
        gen.step(j, &mut buf);
        trace.push_step(&buf.active, &buf.labels);
    }
    trace
}

// ---------------------------------------------------------------------------
// Synchronous / deterministic baselines
// ---------------------------------------------------------------------------

/// Synchronous Jacobi steering: every component updates at every iteration
/// with fresh labels `j − 1`. Delays are identically 1, the degenerate case
/// of both the asynchronous model and condition (d) with `b = 1`.
#[derive(Debug, Clone)]
pub struct SyncJacobi {
    n: usize,
}

impl SyncJacobi {
    /// Synchronous schedule over `n` components.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "SyncJacobi: n must be positive");
        Self { n }
    }
}

impl ScheduleGen for SyncJacobi {
    fn n(&self) -> usize {
        self.n
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        buf.active.clear();
        buf.active.extend(0..self.n);
        buf.labels.resize(self.n, 0);
        buf.labels.fill(j - 1);
    }

    fn describe(&self) -> String {
        format!("sync-jacobi(n={})", self.n)
    }
}

/// Cyclic single-coordinate steering with fresh labels: `S_j = {(j−1) mod
/// n}`, labels `j − 1`. This is the Gauss–Seidel sweep expressed in the
/// asynchronous formalism.
#[derive(Debug, Clone)]
pub struct CyclicCoordinate {
    n: usize,
}

impl CyclicCoordinate {
    /// Cyclic schedule over `n` components.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "CyclicCoordinate: n must be positive");
        Self { n }
    }
}

impl ScheduleGen for CyclicCoordinate {
    fn n(&self) -> usize {
        self.n
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        buf.active.clear();
        buf.active.push(((j - 1) % self.n as u64) as usize);
        buf.labels.resize(self.n, 0);
        buf.labels.fill(j - 1);
    }

    fn describe(&self) -> String {
        format!("cyclic-gauss-seidel(n={})", self.n)
    }
}

/// Block round-robin steering: machine `(j−1) mod p` updates its whole
/// block at iteration `j`, reading labels delayed by a fixed lag `d ≥ 1`
/// (clamped at 0), which models a pipeline of block updates.
#[derive(Debug, Clone)]
pub struct BlockRoundRobin {
    partition: crate::partition::Partition,
    lag: u64,
}

impl BlockRoundRobin {
    /// Round robin over the machines of `partition` with read lag `lag ≥ 1`.
    ///
    /// # Panics
    /// Panics when `lag == 0`.
    pub fn new(partition: crate::partition::Partition, lag: u64) -> Self {
        assert!(lag >= 1, "BlockRoundRobin: lag must be >= 1");
        Self { partition, lag }
    }
}

impl ScheduleGen for BlockRoundRobin {
    fn n(&self) -> usize {
        self.partition.n()
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        let p = self.partition.num_machines() as u64;
        let m = ((j - 1) % p) as usize;
        buf.active.clear();
        buf.active.extend(
            self.partition
                .map()
                .iter()
                .enumerate()
                .filter(|(_, &mm)| mm as usize == m)
                .map(|(i, _)| i),
        );
        buf.labels.resize(self.n(), 0);
        buf.labels.fill(j.saturating_sub(self.lag));
    }

    fn describe(&self) -> String {
        format!(
            "block-round-robin(n={}, p={}, lag={})",
            self.n(),
            self.partition.num_machines(),
            self.lag
        )
    }
}

// ---------------------------------------------------------------------------
// Chaotic relaxation: bounded random delays
// ---------------------------------------------------------------------------

/// Chaotic relaxation schedule (Chazan–Miranker \[12\], Miellou \[14\]):
/// a random nonempty subset of components updates at each iteration and
/// reads labels with random delays bounded by `b` (condition (d)).
///
/// With `monotone = true`, per-component labels never decrease across
/// iterations — the FIFO-channel regime assumed by epoch-based analyses.
/// With `monotone = false`, labels are drawn independently each step, so
/// successive reads of the same component can go *backwards in time*:
/// exactly the "possible out of order messages" of the paper.
#[derive(Debug)]
pub struct ChaoticBounded {
    n: usize,
    k_min: usize,
    k_max: usize,
    b: u64,
    monotone: bool,
    last_label: Vec<u64>,
    rng: StdRng,
}

impl ChaoticBounded {
    /// Random-subset schedule over `n` components: each step updates
    /// between `k_min` and `k_max` components with delays in `[1, b]`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k_min ≤ k_max ≤ n` and `b ≥ 1`.
    pub fn new(n: usize, k_min: usize, k_max: usize, b: u64, monotone: bool, seed: u64) -> Self {
        assert!(n > 0, "ChaoticBounded: n must be positive");
        assert!(
            1 <= k_min && k_min <= k_max && k_max <= n,
            "ChaoticBounded: need 1 <= k_min <= k_max <= n"
        );
        assert!(b >= 1, "ChaoticBounded: b must be >= 1");
        Self {
            n,
            k_min,
            k_max,
            b,
            monotone,
            last_label: vec![0; n],
            rng: asynciter_numerics::rng::rng(seed),
        }
    }
}

impl ScheduleGen for ChaoticBounded {
    fn n(&self) -> usize {
        self.n
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        let k = self.rng.random_range(self.k_min..=self.k_max);
        let mut active = asynciter_numerics::rng::sample_indices(&mut self.rng, self.n, k);
        active.sort_unstable();
        buf.active.clear();
        buf.active.extend(active);
        buf.labels.resize(self.n, 0);
        for h in 0..self.n {
            let d = self.rng.random_range(1..=self.b.min(j));
            let mut l = j - d;
            if self.monotone {
                l = l.max(self.last_label[h]);
                self.last_label[h] = l;
            }
            buf.labels[h] = l;
        }
    }

    fn describe(&self) -> String {
        format!(
            "chaotic-bounded(n={}, k∈[{},{}], b={}, {})",
            self.n,
            self.k_min,
            self.k_max,
            self.b,
            if self.monotone {
                "fifo"
            } else {
                "out-of-order"
            }
        )
    }
}

// ---------------------------------------------------------------------------
// Unbounded delays
// ---------------------------------------------------------------------------

/// Unbounded delays growing like `√j` (Baudet's regime, §II of the paper):
/// delays are drawn from `[1, 1 + ⌊c·√j⌋]`, so `sup_j d(j) = ∞` —
/// condition (d) fails for every fixed `b` — yet `l_h(j) ≥ j − 1 − c√j →
/// ∞`, so condition (b) holds.
#[derive(Debug)]
pub struct UnboundedSqrtDelay {
    n: usize,
    k_min: usize,
    k_max: usize,
    c: f64,
    rng: StdRng,
}

impl UnboundedSqrtDelay {
    /// Random-subset schedule with `√j`-growing delays, scale `c > 0`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k_min ≤ k_max ≤ n` and `c > 0`.
    pub fn new(n: usize, k_min: usize, k_max: usize, c: f64, seed: u64) -> Self {
        assert!(n > 0, "UnboundedSqrtDelay: n must be positive");
        assert!(
            1 <= k_min && k_min <= k_max && k_max <= n,
            "UnboundedSqrtDelay: need 1 <= k_min <= k_max <= n"
        );
        assert!(c > 0.0, "UnboundedSqrtDelay: c must be positive");
        Self {
            n,
            k_min,
            k_max,
            c,
            rng: asynciter_numerics::rng::rng(seed),
        }
    }
}

impl ScheduleGen for UnboundedSqrtDelay {
    fn n(&self) -> usize {
        self.n
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        let k = self.rng.random_range(self.k_min..=self.k_max);
        let mut active = asynciter_numerics::rng::sample_indices(&mut self.rng, self.n, k);
        active.sort_unstable();
        buf.active.clear();
        buf.active.extend(active);
        buf.labels.resize(self.n, 0);
        let dmax = (1.0 + self.c * (j as f64).sqrt()).floor() as u64;
        for h in 0..self.n {
            let d = self.rng.random_range(1..=dmax.min(j).max(1));
            buf.labels[h] = j - d;
        }
    }

    fn describe(&self) -> String {
        format!(
            "unbounded-sqrt(n={}, k∈[{},{}], c={})",
            self.n, self.k_min, self.k_max, self.c
        )
    }
}

/// Heavy-tailed delays: Pareto(shape `alpha`, scale 1) rounded up and
/// clamped to `[1, j]`. For `alpha ≤ 2` the delay distribution has
/// infinite variance: most reads are fresh, but occasionally an update
/// consumes extremely stale data — the stress regime for totally
/// asynchronous convergence.
#[derive(Debug)]
pub struct HeavyTailDelay {
    n: usize,
    k_min: usize,
    k_max: usize,
    alpha: f64,
    rng: StdRng,
}

impl HeavyTailDelay {
    /// Random-subset schedule with Pareto(`alpha`) delays.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k_min ≤ k_max ≤ n` and `alpha > 0`.
    pub fn new(n: usize, k_min: usize, k_max: usize, alpha: f64, seed: u64) -> Self {
        assert!(n > 0, "HeavyTailDelay: n must be positive");
        assert!(
            1 <= k_min && k_min <= k_max && k_max <= n,
            "HeavyTailDelay: need 1 <= k_min <= k_max <= n"
        );
        assert!(alpha > 0.0, "HeavyTailDelay: alpha must be positive");
        Self {
            n,
            k_min,
            k_max,
            alpha,
            rng: asynciter_numerics::rng::rng(seed),
        }
    }
}

impl ScheduleGen for HeavyTailDelay {
    fn n(&self) -> usize {
        self.n
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        let k = self.rng.random_range(self.k_min..=self.k_max);
        let mut active = asynciter_numerics::rng::sample_indices(&mut self.rng, self.n, k);
        active.sort_unstable();
        buf.active.clear();
        buf.active.extend(active);
        buf.labels.resize(self.n, 0);
        for h in 0..self.n {
            let d = asynciter_numerics::rng::pareto(&mut self.rng, 1.0, self.alpha).ceil() as u64;
            buf.labels[h] = j - d.clamp(1, j);
        }
    }

    fn describe(&self) -> String {
        format!(
            "heavy-tail(n={}, k∈[{},{}], alpha={})",
            self.n, self.k_min, self.k_max, self.alpha
        )
    }
}

// ---------------------------------------------------------------------------
// Adversaries: controlled violations of conditions (b) and (c)
// ---------------------------------------------------------------------------

/// Wraps a schedule and removes component `victim` from every `S_j` with
/// `j > after` — a controlled violation of condition (c) ("no component is
/// abandoned forever"). When the wrapped active set would become empty, a
/// fallback component is substituted so `S_j` stays nonempty.
#[derive(Debug)]
pub struct StarvedComponent<G> {
    inner: G,
    victim: usize,
    after: u64,
}

impl<G: ScheduleGen> StarvedComponent<G> {
    /// Starves `victim` after iteration `after`.
    ///
    /// # Panics
    /// Panics when `victim` is out of range or `inner.n() < 2` (a single
    /// component cannot be starved while keeping `S_j` nonempty).
    pub fn new(inner: G, victim: usize, after: u64) -> Self {
        assert!(victim < inner.n(), "StarvedComponent: victim out of range");
        assert!(inner.n() >= 2, "StarvedComponent: need n >= 2");
        Self {
            inner,
            victim,
            after,
        }
    }
}

impl<G: ScheduleGen> ScheduleGen for StarvedComponent<G> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        self.inner.step(j, buf);
        if j > self.after {
            buf.active.retain(|&i| i != self.victim);
            if buf.active.is_empty() {
                // Deterministic fallback: the next component cyclically.
                buf.active.push((self.victim + 1) % self.n());
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "starved(victim={}, after={}) ∘ {}",
            self.victim,
            self.after,
            self.inner.describe()
        )
    }
}

/// Wraps a schedule and freezes the label of component `victim` at
/// `freeze_at` — after enough iterations this violates condition (b)
/// (`lim l_i(j) = ∞` fails) while conditions (a) and (c) still hold.
/// Models a peer that keeps re-delivering one ancient message.
#[derive(Debug)]
pub struct FrozenLabelAdversary<G> {
    inner: G,
    victim: usize,
    freeze_at: u64,
}

impl<G: ScheduleGen> FrozenLabelAdversary<G> {
    /// Caps `l_victim(j)` at `freeze_at` for all `j`.
    ///
    /// # Panics
    /// Panics when `victim` is out of range.
    pub fn new(inner: G, victim: usize, freeze_at: u64) -> Self {
        assert!(victim < inner.n(), "FrozenLabelAdversary: victim range");
        Self {
            inner,
            victim,
            freeze_at,
        }
    }
}

impl<G: ScheduleGen> ScheduleGen for FrozenLabelAdversary<G> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        self.inner.step(j, buf);
        buf.labels[self.victim] = buf.labels[self.victim].min(self.freeze_at);
    }

    fn describe(&self) -> String {
        format!(
            "frozen-label(victim={}, at={}) ∘ {}",
            self.victim,
            self.freeze_at,
            self.inner.describe()
        )
    }
}

// ---------------------------------------------------------------------------
// Admissibility-preserving combinators (conformance-fuzzer building blocks)
// ---------------------------------------------------------------------------

/// Clamps every label into the window `[j − D(j), j − 1]` of a
/// [`DelayEnvelope`](crate::conditions::DelayEnvelope) — after this
/// wrapper, conditions (a) and (b) hold
/// *by construction* (and (d), for a bounded envelope), whatever the
/// inner generator emits. The outermost guard of every fuzzer-composed
/// schedule, and the reason a generated schedule's
/// [`AdmissibilityWitness`](crate::conditions::AdmissibilityWitness)
/// provably accepts it.
#[derive(Debug, Clone)]
pub struct EnvelopeClamp<G> {
    inner: G,
    envelope: crate::conditions::DelayEnvelope,
}

impl<G: ScheduleGen> EnvelopeClamp<G> {
    /// Clamps `inner`'s labels into `envelope`.
    pub fn new(inner: G, envelope: crate::conditions::DelayEnvelope) -> Self {
        Self { inner, envelope }
    }
}

impl<G: ScheduleGen> ScheduleGen for EnvelopeClamp<G> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        self.inner.step(j, buf);
        let lo = self.envelope.min_label(j);
        for l in buf.labels.iter_mut() {
            *l = (*l).clamp(lo, j - 1);
        }
    }

    fn describe(&self) -> String {
        format!(
            "clamp({}) ∘ {}",
            self.envelope.describe(),
            self.inner.describe()
        )
    }
}

/// Forces condition (c) constructively: tracks each component's last
/// activation and inserts any component whose gap would reach `max_gap`
/// into `S_j`, so activation gaps stay `< max_gap` no matter how the
/// inner generator (or a thinning mutation) steers. Forced components
/// read the same labels the step already carries, which keeps the
/// envelope certificate intact.
#[derive(Debug, Clone)]
pub struct CoverageGuard<G> {
    inner: G,
    max_gap: u64,
    last: Vec<u64>,
}

impl<G: ScheduleGen> CoverageGuard<G> {
    /// Guards `inner` so every component updates at least once per
    /// `max_gap` iterations.
    ///
    /// # Panics
    /// Panics when `max_gap == 0`.
    pub fn new(inner: G, max_gap: u64) -> Self {
        assert!(max_gap > 0, "CoverageGuard: max_gap must be positive");
        let n = inner.n();
        Self {
            inner,
            max_gap,
            last: vec![0; n],
        }
    }
}

impl<G: ScheduleGen> ScheduleGen for CoverageGuard<G> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        self.inner.step(j, buf);
        let mut dirty = false;
        for (i, &last) in self.last.iter().enumerate() {
            if j - last >= self.max_gap && !buf.active.contains(&i) {
                buf.active.push(i);
                dirty = true;
            }
        }
        if dirty {
            buf.active.sort_unstable();
        }
        for &i in &buf.active {
            self.last[i] = j;
        }
    }

    fn describe(&self) -> String {
        format!("cover(gap<{}) ∘ {}", self.max_gap, self.inner.describe())
    }
}

/// Random label mutation: each component's label is, with probability
/// `prob`, redrawn uniformly from the envelope window `[j − D(j), j − 1]`.
/// Injects extra delay variance and out-of-order reads while staying
/// admissible — the "random delay/label mutations" of the conformance
/// fuzzer.
#[derive(Debug)]
pub struct LabelJitter<G> {
    inner: G,
    envelope: crate::conditions::DelayEnvelope,
    prob: f64,
    rng: StdRng,
}

impl<G: ScheduleGen> LabelJitter<G> {
    /// Jitters `inner`'s labels within `envelope` with per-component
    /// probability `prob`.
    ///
    /// # Panics
    /// Panics unless `0.0 ≤ prob ≤ 1.0`.
    pub fn new(inner: G, envelope: crate::conditions::DelayEnvelope, prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "LabelJitter: prob must be in [0, 1]"
        );
        Self {
            inner,
            envelope,
            prob,
            rng: asynciter_numerics::rng::rng(seed),
        }
    }
}

impl<G: ScheduleGen> ScheduleGen for LabelJitter<G> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        self.inner.step(j, buf);
        let lo = self.envelope.min_label(j);
        for l in buf.labels.iter_mut() {
            if self.rng.random_range(0.0..1.0) < self.prob {
                *l = self.rng.random_range(lo..=j - 1);
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "jitter({}, p={}) ∘ {}",
            self.envelope.describe(),
            self.prob,
            self.inner.describe()
        )
    }
}

/// Random partial-update mutation: drops each active component
/// independently with probability `1 − keep_prob`, modelling machines
/// that update only part of their block per iteration (flexible partial
/// updates in schedule form). When everything would be dropped, one
/// random survivor of the original set is kept so `S_j` stays nonempty.
/// Compose under a [`CoverageGuard`] to retain condition (c).
#[derive(Debug)]
pub struct ActiveThin<G> {
    inner: G,
    keep_prob: f64,
    rng: StdRng,
}

impl<G: ScheduleGen> ActiveThin<G> {
    /// Thins `inner`'s active sets, keeping each member with probability
    /// `keep_prob`.
    ///
    /// # Panics
    /// Panics unless `0.0 < keep_prob ≤ 1.0`.
    pub fn new(inner: G, keep_prob: f64, seed: u64) -> Self {
        assert!(
            keep_prob > 0.0 && keep_prob <= 1.0,
            "ActiveThin: keep_prob must be in (0, 1]"
        );
        Self {
            inner,
            keep_prob,
            rng: asynciter_numerics::rng::rng(seed),
        }
    }
}

impl<G: ScheduleGen> ScheduleGen for ActiveThin<G> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        self.inner.step(j, buf);
        if buf.active.len() <= 1 {
            return;
        }
        let fallback = buf.active[self.rng.random_range(0..buf.active.len())];
        let rng = &mut self.rng;
        let keep = self.keep_prob;
        buf.active.retain(|_| rng.random_range(0.0..1.0) < keep);
        if buf.active.is_empty() {
            buf.active.push(fallback);
        }
    }

    fn describe(&self) -> String {
        format!("thin(keep={}) ∘ {}", self.keep_prob, self.inner.describe())
    }
}

// ---------------------------------------------------------------------------
// Replay of recorded traces
// ---------------------------------------------------------------------------

/// Replays a recorded trace (with full labels) as a schedule — the bridge
/// from real multi-threaded runs back into the deterministic replay engine.
#[derive(Debug, Clone)]
pub struct RecordedSchedule {
    trace: Trace,
}

impl RecordedSchedule {
    /// Wraps a trace recorded with [`LabelStore::Full`].
    ///
    /// # Errors
    /// [`crate::ModelError::LabelsNotStored`] for min-only traces,
    /// [`crate::ModelError::EmptyTrace`] for empty ones.
    pub fn new(trace: Trace) -> crate::Result<Self> {
        if trace.store() != LabelStore::Full {
            return Err(crate::ModelError::LabelsNotStored);
        }
        if trace.is_empty() {
            return Err(crate::ModelError::EmptyTrace);
        }
        Ok(Self { trace })
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the underlying trace is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

impl ScheduleGen for RecordedSchedule {
    fn n(&self) -> usize {
        self.trace.n()
    }

    /// # Panics
    /// Panics when `j` exceeds the recorded length.
    fn step(&mut self, j: u64, buf: &mut StepBuf) {
        let s = self.trace.step(j);
        buf.active.clear();
        buf.active.extend(s.active.iter().map(|&i| i as usize));
        let labels = self.trace.labels(j).expect("checked Full in constructor");
        buf.labels.clear();
        buf.labels.extend_from_slice(labels);
    }

    fn describe(&self) -> String {
        format!("recorded(n={}, steps={})", self.trace.n(), self.trace.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;

    fn run(gen: &mut dyn ScheduleGen, steps: u64) -> Trace {
        record(gen, steps, LabelStore::Full)
    }

    #[test]
    fn sync_jacobi_updates_everything_fresh() {
        let t = run(&mut SyncJacobi::new(3), 5);
        for (j, s) in t.iter() {
            assert_eq!(s.active, vec![0, 1, 2]);
            assert_eq!(s.min_label, j - 1);
        }
    }

    #[test]
    fn cyclic_visits_components_in_order() {
        let t = run(&mut CyclicCoordinate::new(3), 6);
        let order: Vec<u32> = t.iter().map(|(_, s)| s.active[0]).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn block_round_robin_covers_blocks() {
        let p = Partition::blocks(4, 2).unwrap();
        let t = run(&mut BlockRoundRobin::new(p, 1), 4);
        assert_eq!(t.step(1).active, vec![0, 1]);
        assert_eq!(t.step(2).active, vec![2, 3]);
        assert_eq!(t.step(3).active, vec![0, 1]);
    }

    #[test]
    fn block_round_robin_lag_clamps_at_zero() {
        let p = Partition::blocks(2, 2).unwrap();
        let t = run(&mut BlockRoundRobin::new(p, 5), 3);
        assert_eq!(t.step(1).min_label, 0);
        assert_eq!(t.step(3).min_label, 0);
    }

    #[test]
    fn chaotic_bounded_respects_delay_bound() {
        let mut g = ChaoticBounded::new(8, 1, 4, 3, false, 11);
        let t = run(&mut g, 200);
        for (j, s) in t.iter() {
            assert!(s.min_label >= j.saturating_sub(3));
            assert!(s.min_label < j);
            assert!(!s.active.is_empty() && s.active.len() <= 4);
        }
    }

    #[test]
    fn chaotic_monotone_labels_never_decrease() {
        let mut g = ChaoticBounded::new(4, 1, 2, 16, true, 7);
        let t = run(&mut g, 300);
        for h in 0..4 {
            let mut prev = 0u64;
            for j in 1..=t.len() as u64 {
                let l = t.labels(j).unwrap()[h];
                assert!(l >= prev, "component {h} label decreased at j={j}");
                prev = l;
            }
        }
    }

    #[test]
    fn chaotic_nonmonotone_reorders_labels() {
        let mut g = ChaoticBounded::new(4, 1, 2, 16, false, 7);
        let t = run(&mut g, 300);
        let mut decreased = false;
        'outer: for h in 0..4 {
            let mut prev = 0u64;
            for j in 1..=t.len() as u64 {
                let l = t.labels(j).unwrap()[h];
                if l < prev {
                    decreased = true;
                    break 'outer;
                }
                prev = l;
            }
        }
        assert!(decreased, "expected at least one out-of-order label");
    }

    #[test]
    fn unbounded_sqrt_delays_grow() {
        let mut g = UnboundedSqrtDelay::new(4, 4, 4, 1.0, 3);
        let t = run(&mut g, 5000);
        // Delays beyond any small constant appear...
        let max_delay = t.iter().map(|(j, s)| j - s.min_label).max().unwrap();
        assert!(max_delay > 16, "max delay {max_delay}");
        // ...but labels still grow: the suffix minimum at the end is large.
        let suffix = t.min_label_suffix();
        assert!(suffix[4000] > 3500, "suffix {}", suffix[4000]);
    }

    #[test]
    fn heavy_tail_produces_extreme_delays() {
        let mut g = HeavyTailDelay::new(4, 4, 4, 1.1, 5);
        let t = run(&mut g, 20_000);
        let max_delay = t.iter().map(|(j, s)| j - s.min_label).max().unwrap();
        assert!(max_delay > 100, "max delay {max_delay}");
    }

    #[test]
    fn starved_component_disappears() {
        let inner = SyncJacobi::new(3);
        let mut g = StarvedComponent::new(inner, 1, 10);
        let t = run(&mut g, 30);
        for (j, s) in t.iter() {
            if j > 10 {
                assert!(!s.active.contains(&1), "victim active at j={j}");
            }
        }
        // Before the cutoff it was active.
        assert!(t.step(5).active.contains(&1));
    }

    #[test]
    fn starved_fallback_keeps_steps_nonempty() {
        let inner = CyclicCoordinate::new(2);
        let mut g = StarvedComponent::new(inner, 0, 0);
        let t = run(&mut g, 10);
        for (_, s) in t.iter() {
            assert!(!s.active.is_empty());
            assert!(!s.active.contains(&0));
        }
    }

    #[test]
    fn frozen_label_caps_victim() {
        let inner = SyncJacobi::new(2);
        let mut g = FrozenLabelAdversary::new(inner, 0, 3);
        let t = run(&mut g, 50);
        for j in 1..=50u64 {
            let l = t.labels(j).unwrap();
            assert!(l[0] <= 3);
            assert_eq!(l[1], j - 1);
        }
    }

    #[test]
    fn recorded_schedule_replays_exactly() {
        let mut g = ChaoticBounded::new(5, 1, 3, 4, false, 99);
        let t = run(&mut g, 50);
        let mut replay = RecordedSchedule::new(t.clone()).unwrap();
        let t2 = record(&mut replay, 50, LabelStore::Full);
        for j in 1..=50u64 {
            assert_eq!(t.step(j).active, t2.step(j).active);
            assert_eq!(t.labels(j).unwrap(), t2.labels(j).unwrap());
        }
    }

    #[test]
    fn recorded_schedule_rejects_min_only() {
        let mut g = SyncJacobi::new(2);
        let t = record(&mut g, 5, LabelStore::MinOnly);
        assert!(RecordedSchedule::new(t).is_err());
    }

    #[test]
    fn condition_a_structurally_respected_by_all_generators() {
        let p = Partition::blocks(6, 3).unwrap();
        let gens: Vec<Box<dyn ScheduleGen>> = vec![
            Box::new(SyncJacobi::new(6)),
            Box::new(CyclicCoordinate::new(6)),
            Box::new(BlockRoundRobin::new(p, 2)),
            Box::new(ChaoticBounded::new(6, 1, 6, 5, false, 1)),
            Box::new(ChaoticBounded::new(6, 1, 6, 5, true, 2)),
            Box::new(UnboundedSqrtDelay::new(6, 1, 6, 2.0, 3)),
            Box::new(HeavyTailDelay::new(6, 1, 6, 1.5, 4)),
        ];
        for mut g in gens {
            let t = record(g.as_mut(), 100, LabelStore::Full);
            for (j, _) in t.iter() {
                let labels = t.labels(j).unwrap();
                assert!(
                    labels.iter().all(|&l| l < j),
                    "{} violated condition (a) at j={j}",
                    g.describe()
                );
            }
        }
    }

    #[test]
    fn envelope_clamp_certifies_a_and_b() {
        use crate::conditions::{AdmissibilityWitness, DelayEnvelope};
        // Even an adversarially frozen label is pulled back into the
        // envelope window.
        let inner = FrozenLabelAdversary::new(ChaoticBounded::new(5, 1, 3, 64, false, 3), 2, 0);
        let mut g = EnvelopeClamp::new(inner, DelayEnvelope::Bounded(6));
        let t = run(&mut g, 300);
        let w = AdmissibilityWitness::new(DelayEnvelope::Bounded(6), 300);
        assert!(w.check(&t).is_ok());
    }

    #[test]
    fn coverage_guard_bounds_gaps() {
        use crate::conditions::activation_gaps;
        // Cyclic over 8 thinned hard: without the guard, gaps can grow
        // arbitrarily; with it they stay below the bound.
        let inner = ActiveThin::new(ChaoticBounded::new(8, 1, 2, 4, false, 9), 0.5, 13);
        let mut g = CoverageGuard::new(inner, 10);
        let t = run(&mut g, 500);
        assert!(activation_gaps(&t).iter().all(|&gap| gap < 10));
        // Forced insertions preserve the structural invariants (checked
        // by Trace::push_step) and condition (a).
        assert!(crate::conditions::check_condition_a(&t).is_ok());
    }

    #[test]
    fn label_jitter_stays_in_envelope_and_mutates() {
        use crate::conditions::DelayEnvelope;
        let env = DelayEnvelope::Bounded(12);
        let mut plain = SyncJacobi::new(4);
        let t_plain = run(&mut plain, 200);
        let mut g = LabelJitter::new(SyncJacobi::new(4), env, 0.5, 17);
        let t = run(&mut g, 200);
        let mut mutated = false;
        for j in 1..=200u64 {
            let lo = env.min_label(j);
            for (h, &l) in t.labels(j).unwrap().iter().enumerate() {
                assert!(l >= lo && l < j, "label {l} outside envelope at j={j}");
                if l != t_plain.labels(j).unwrap()[h] {
                    mutated = true;
                }
            }
        }
        assert!(mutated, "jitter with p=0.5 never mutated a label");
    }

    #[test]
    fn active_thin_keeps_steps_nonempty() {
        let mut g = ActiveThin::new(SyncJacobi::new(6), 0.2, 23);
        let t = run(&mut g, 300);
        let mut thinned = false;
        for (_, s) in t.iter() {
            assert!(!s.active.is_empty());
            if s.active.len() < 6 {
                thinned = true;
            }
        }
        assert!(thinned, "keep=0.2 never dropped a component");
    }

    #[test]
    fn composed_stack_is_admissible_by_construction() {
        use crate::conditions::{AdmissibilityWitness, DelayEnvelope};
        let env = DelayEnvelope::SqrtGrowth { c: 1.5 };
        let base = HeavyTailDelay::new(10, 1, 5, 1.2, 31);
        let stack = CoverageGuard::new(
            EnvelopeClamp::new(
                LabelJitter::new(ActiveThin::new(base, 0.6, 32), env, 0.3, 33),
                env,
            ),
            25,
        );
        let mut g = stack;
        let t = run(&mut g, 1000);
        let w = AdmissibilityWitness::new(env, 25);
        assert!(w.check(&t).is_ok(), "{:?}", w.check(&t));
        assert!(g.describe().contains("cover"));
        assert!(g.describe().contains("clamp"));
    }

    #[test]
    fn describe_mentions_parameters() {
        assert!(SyncJacobi::new(4).describe().contains("n=4"));
        assert!(ChaoticBounded::new(4, 1, 2, 9, true, 0)
            .describe()
            .contains("b=9"));
    }
}
