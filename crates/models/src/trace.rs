//! Recorded executions of asynchronous iterations.
//!
//! A [`Trace`] is the concrete realisation of the pair `(𝒮, ℒ)` from
//! Definition 1 over a finite run: for every iteration `j = 1, 2, …` it
//! stores the updated set `S_j` and the read labels `(l_1(j), …, l_n(j))`.
//! All of the paper's analytic objects — conditions (a)–(d), the
//! macro-iteration sequence, the epoch sequence, delay statistics — are
//! computed from traces, whether they come from a synthetic schedule
//! generator, the discrete-event simulator, or a real multi-threaded run.
//!
//! Full per-step label vectors cost `O(n)` memory per step; long runs on
//! large problems can opt into [`LabelStore::MinOnly`], which keeps only
//! `l(j) = min_h l_h(j)` (sufficient for macro-iterations) and the delay
//! of the *performing* update.

use crate::error::ModelError;
use crate::partition::Partition;

/// How much label information a trace retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelStore {
    /// Keep the full label vector `(l_1(j), …, l_n(j))` for every step.
    Full,
    /// Keep only `l(j) = min_h l_h(j)` per step.
    MinOnly,
}

/// One recorded iteration: the set `S_j` and label summary for step `j`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Components updated at this iteration (`S_j`), strictly increasing.
    pub active: Vec<u32>,
    /// `l(j) = min_h l_h(j)`: the oldest label read by this update.
    pub min_label: u64,
}

/// A recorded execution of an asynchronous iteration.
#[derive(Debug, Clone)]
pub struct Trace {
    n: usize,
    steps: Vec<TraceStep>,
    /// Full labels per step when `LabelStore::Full`; empty otherwise.
    labels: Vec<Vec<u64>>,
    store: LabelStore,
}

impl Trace {
    /// Creates an empty trace over `n` components.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, store: LabelStore) -> Self {
        assert!(n > 0, "Trace::new: n must be positive");
        Self {
            n,
            steps: Vec::new(),
            labels: Vec::new(),
            store,
        }
    }

    /// Number of components `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of recorded iterations `J`; steps are `j = 1..=J`.
    #[inline]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no step has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Label storage mode.
    #[inline]
    pub fn store(&self) -> LabelStore {
        self.store
    }

    /// Records iteration `j = self.len() + 1`.
    ///
    /// `active` must be a nonempty strictly-increasing list of component
    /// indices; `labels` must have length `n` with every entry `≤ j − 1`
    /// *for the trace to satisfy condition (a)* — this method records
    /// whatever it is given (checkers live in [`crate::conditions`]), but
    /// enforces structural validity.
    ///
    /// # Panics
    /// Panics when `active` is empty/unsorted/out-of-range or when
    /// `labels.len() != n`.
    pub fn push_step(&mut self, active: &[usize], labels: &[u64]) {
        assert!(!active.is_empty(), "push_step: S_j must be nonempty");
        assert_eq!(labels.len(), self.n, "push_step: labels must have length n");
        let mut prev: Option<usize> = None;
        for &i in active {
            assert!(i < self.n, "push_step: component out of range");
            if let Some(p) = prev {
                assert!(i > p, "push_step: active set must be strictly increasing");
            }
            prev = Some(i);
        }
        let min_label = labels.iter().copied().min().expect("n > 0");
        self.steps.push(TraceStep {
            active: active.iter().map(|&i| i as u32).collect(),
            min_label,
        });
        if self.store == LabelStore::Full {
            self.labels.push(labels.to_vec());
        }
    }

    /// The recorded step for iteration `j` (1-based).
    ///
    /// # Panics
    /// Panics when `j` is 0 or beyond the recorded range.
    #[inline]
    pub fn step(&self, j: u64) -> &TraceStep {
        assert!(
            j >= 1 && (j as usize) <= self.steps.len(),
            "step: j out of range"
        );
        &self.steps[j as usize - 1]
    }

    /// Full label vector of iteration `j` (1-based).
    ///
    /// # Errors
    /// [`ModelError::LabelsNotStored`] when recorded with
    /// [`LabelStore::MinOnly`].
    ///
    /// # Panics
    /// Panics when `j` is out of range.
    pub fn labels(&self, j: u64) -> crate::Result<&[u64]> {
        if self.store != LabelStore::Full {
            return Err(ModelError::LabelsNotStored);
        }
        assert!(
            j >= 1 && (j as usize) <= self.labels.len(),
            "labels: j out of range"
        );
        Ok(&self.labels[j as usize - 1])
    }

    /// Iterates over `(j, step)` pairs in increasing `j`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &TraceStep)> {
        self.steps
            .iter()
            .enumerate()
            .map(|(k, s)| (k as u64 + 1, s))
    }

    /// Iteration indices at which component `i` was updated.
    pub fn activations_of(&self, i: usize) -> Vec<u64> {
        assert!(i < self.n, "activations_of: component out of range");
        self.iter()
            .filter(|(_, s)| s.active.binary_search(&(i as u32)).is_ok())
            .map(|(j, _)| j)
            .collect()
    }

    /// Count of updates performed by each machine under `partition`
    /// (a step updating components on several machines counts once per
    /// machine touched).
    ///
    /// # Panics
    /// Panics when the partition dimension disagrees with the trace.
    pub fn machine_update_counts(&self, partition: &Partition) -> Vec<u64> {
        assert_eq!(partition.n(), self.n, "machine_update_counts: dimension");
        let mut counts = vec![0u64; partition.num_machines()];
        let mut touched = vec![false; partition.num_machines()];
        for s in &self.steps {
            touched.fill(false);
            for &i in &s.active {
                touched[partition.machine_of(i as usize)] = true;
            }
            for (m, &t) in touched.iter().enumerate() {
                if t {
                    counts[m] += 1;
                }
            }
        }
        counts
    }

    /// Suffix minima of `l(j)`: `flush[j-1] = min_{r ≥ j} l(r)`, the
    /// "oldest information still in flight at or after step j". Used by the
    /// strict macro-iteration sequence and the condition (b) checker.
    pub fn min_label_suffix(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.steps.len()];
        let mut acc = u64::MAX;
        for (k, s) in self.steps.iter().enumerate().rev() {
            acc = acc.min(s.min_label);
            out[k] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> Trace {
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[0], &[0, 0]); // j = 1
        t.push_step(&[1], &[1, 0]); // j = 2
        t.push_step(&[0, 1], &[1, 2]); // j = 3
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = toy_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.step(1).active, vec![0]);
        assert_eq!(t.step(3).active, vec![0, 1]);
        assert_eq!(t.step(2).min_label, 0);
        assert_eq!(t.labels(3).unwrap(), &[1, 2]);
    }

    #[test]
    fn min_only_rejects_label_queries() {
        let mut t = Trace::new(2, LabelStore::MinOnly);
        t.push_step(&[0], &[0, 0]);
        assert_eq!(t.labels(1), Err(ModelError::LabelsNotStored));
        assert_eq!(t.step(1).min_label, 0);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_active_panics() {
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[], &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_active_panics() {
        let mut t = Trace::new(3, LabelStore::Full);
        t.push_step(&[1, 0], &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "length n")]
    fn wrong_label_count_panics() {
        let mut t = Trace::new(3, LabelStore::Full);
        t.push_step(&[0], &[0, 0]);
    }

    #[test]
    fn activations_of_component() {
        let t = toy_trace();
        assert_eq!(t.activations_of(0), vec![1, 3]);
        assert_eq!(t.activations_of(1), vec![2, 3]);
    }

    #[test]
    fn machine_counts_identity() {
        let t = toy_trace();
        let p = Partition::identity(2);
        assert_eq!(t.machine_update_counts(&p), vec![2, 2]);
    }

    #[test]
    fn machine_counts_single_machine() {
        let t = toy_trace();
        let p = Partition::blocks(2, 1).unwrap();
        // Every step touches machine 0 exactly once.
        assert_eq!(t.machine_update_counts(&p), vec![3]);
    }

    #[test]
    fn min_label_suffix_is_suffix_min() {
        let t = toy_trace();
        // min labels per step: 0, 0, 1 → suffix minima: 0, 0, 1.
        assert_eq!(t.min_label_suffix(), vec![0, 0, 1]);
    }

    #[test]
    fn iter_yields_one_based_indices() {
        let t = toy_trace();
        let js: Vec<u64> = t.iter().map(|(j, _)| j).collect();
        assert_eq!(js, vec![1, 2, 3]);
    }
}
