//! Baudet's two-processor unbounded-delay example (§II of the paper).
//!
//! Processor `P1` updates component `x₁` in one unit of time; processor
//! `P2`'s `k`-th update of `x₂` takes `k` units (completing at the
//! triangular times `T_k = k(k+1)/2`). Values are exchanged at the end of
//! each updating phase, and every update reads the freshest values
//! available when it *starts*. Ordering all completions by time yields the
//! global iteration sequence of Definition 1, and a simple calculation
//! (Baudet 1978, quoted by the paper) shows that the delay in `x₂`'s
//! information grows like `√j` — unbounded, so condition (d) fails for
//! every constant `b` — while `l₂(j) ≈ j − √j → ∞`, so condition (b)
//! holds and the asynchronous iteration still converges.
//!
//! [`baudet_trace`] constructs the exact trace; experiment E1 fits the
//! delay growth and verifies the exponent `≈ 1/2`.

use crate::trace::{LabelStore, Trace};

/// Builds the Baudet two-processor trace with `num_steps` global
/// iterations. Component 0 is `x₁` (fast processor), component 1 is `x₂`
/// (slowing processor).
///
/// Ties in completion times (P2's triangular times are integers, P1
/// completes at every integer) are broken in favour of `P1`, matching the
/// convention that a simultaneous read cannot see a value communicated at
/// the same instant.
///
/// # Panics
/// Panics when `num_steps == 0`.
pub fn baudet_trace(num_steps: u64) -> Trace {
    assert!(num_steps > 0, "baudet_trace: need at least one step");
    let mut trace = Trace::new(2, LabelStore::Full);

    // Completion bookkeeping: global iteration index of the most recent
    // completion of each processor *at or before* a given time, maintained
    // incrementally as we emit events in time order.
    //
    // P1's m-th update: start m-1, completion m.
    // P2's k-th update: start T_{k-1}, completion T_k = k(k+1)/2.
    let mut next_p1_completion = 1u64; // time of P1's next completion
    let mut p2_k = 1u64; // index of P2's in-flight update
    let mut next_p2_completion = 1u64; // T_1 = 1

    // Global labels of the latest communicated update of each component,
    // indexed by *time*: we keep, for each component, a list of
    // (completion_time, global_label) pairs appended in time order, and
    // look up the freshest entry with completion_time <= start_time.
    let mut p1_history: Vec<(u64, u64)> = Vec::new(); // (time, label) for x1
    let mut p2_history: Vec<(u64, u64)> = Vec::new(); // (time, label) for x2

    let freshest = |history: &[(u64, u64)], start: u64| -> u64 {
        // Entries are appended in increasing time; binary search for the
        // last entry with time <= start. partition_point gives the count
        // of entries with time <= start.
        let cnt = history.partition_point(|&(t, _)| t <= start);
        if cnt == 0 {
            0
        } else {
            history[cnt - 1].1
        }
    };

    for j in 1..=num_steps {
        // Next completion: P1 at `next_p1_completion`, P2 at
        // `next_p2_completion`; tie → P1 first.
        if next_p1_completion <= next_p2_completion {
            // P1's update: started at time next_p1_completion - 1.
            let start = next_p1_completion - 1;
            let l0 = freshest(&p1_history, start); // its own previous value
            let l1 = freshest(&p2_history, start);
            trace.push_step(&[0], &[l0, l1]);
            p1_history.push((next_p1_completion, j));
            next_p1_completion += 1;
        } else {
            // P2's k-th update: started at T_{k-1}.
            let start = next_p2_completion - p2_k;
            let l0 = freshest(&p1_history, start);
            let l1 = freshest(&p2_history, start);
            trace.push_step(&[1], &[l0, l1]);
            p2_history.push((next_p2_completion, j));
            p2_k += 1;
            next_p2_completion += p2_k; // T_k -> T_{k+1} adds k+1
        }
    }
    trace
}

/// The delay series `d₂(j) = j − l₂(j)` observed at `P1`'s updates — the
/// staleness of the slow component's information in the fast processor's
/// reads, the quantity Baudet shows grows like `√j`.
pub fn p1_read_delays(trace: &Trace) -> Vec<(u64, u64)> {
    trace
        .iter()
        .filter(|(_, s)| s.active.as_slice() == [0])
        .map(|(j, _)| {
            let l = trace.labels(j).expect("baudet trace stores full labels")[1];
            (j, j - l)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::{check_condition_a, check_condition_b, check_condition_d};
    use asynciter_numerics::stats::fit_power_law;

    #[test]
    fn first_events_match_hand_simulation() {
        // Time 1: P1 completes #1 (tie with T_1 = 1 → P1 first), then P2
        // completes its first update.
        let t = baudet_trace(6);
        // j=1: P1, started at 0, reads initial values.
        assert_eq!(t.step(1).active, vec![0]);
        assert_eq!(t.labels(1).unwrap(), &[0, 0]);
        // j=2: P2 #1 (T_1 = 1), started at 0: initial values.
        assert_eq!(t.step(2).active, vec![1]);
        assert_eq!(t.labels(2).unwrap(), &[0, 0]);
        // j=3: P1 #2, started at 1: sees P1#1 (j=1); P2's T_1=1 completion
        // communicated at time 1 → visible at start 1 (<= start). Label 2.
        assert_eq!(t.step(3).active, vec![0]);
        assert_eq!(t.labels(3).unwrap(), &[1, 2]);
        // j=4: P1 #3, started at 2: P2's next completion is T_2 = 3, not
        // yet available → still label 2.
        assert_eq!(t.step(4).active, vec![0]);
        assert_eq!(t.labels(4).unwrap(), &[3, 2]);
        // j=5: P2 #2 completes at T_2 = 3, started at T_1 = 1: sees P1#1
        // (time 1 → j=1) and its own #1 (j=2).
        assert_eq!(t.step(5).active, vec![1]);
        assert_eq!(t.labels(5).unwrap(), &[1, 2]);
        // j=6: P1 #4 completes at 4, started at 3: sees P1#3 (j=4) and
        // P2#2 (time 3 → j=5).
        assert_eq!(t.step(6).active, vec![0]);
        assert_eq!(t.labels(6).unwrap(), &[4, 5]);
    }

    #[test]
    fn conditions_a_b_hold_d_fails() {
        let t = baudet_trace(20_000);
        assert!(check_condition_a(&t).is_ok());
        // Labels grow without bound (condition (b)); generous slack
        // because P2's label plateaus between its sparse completions.
        assert!(check_condition_b(&t, 8, 1024).is_ok());
        // Delays are unbounded: no constant b works (check a few; with
        // 20k global steps the max delay is ≈ √(2·20000) ≈ 200).
        for b in [8, 64, 128] {
            assert!(check_condition_d(&t, b).is_err(), "b = {b} should fail");
        }
    }

    #[test]
    fn delay_grows_like_sqrt_j() {
        let t = baudet_trace(200_000);
        let delays = p1_read_delays(&t);
        // Windowed maxima to extract the growth envelope from the
        // sawtooth, then a log-log fit: exponent must be ~ 1/2.
        let window = 4096usize;
        let (xs, ys): (Vec<f64>, Vec<f64>) = delays
            .chunks(window)
            .filter(|c| c.len() == window)
            .map(|c| {
                let j_mid = c[c.len() / 2].0 as f64;
                let dmax = c.iter().map(|&(_, d)| d).max().unwrap() as f64;
                (j_mid, dmax)
            })
            .unzip();
        let (_, p, r2) = fit_power_law(&xs, &ys).expect("fit");
        assert!(
            (p - 0.5).abs() < 0.08,
            "delay growth exponent {p} not ~ 0.5 (r² = {r2})"
        );
        assert!(r2 > 0.95, "poor fit r² = {r2}");
    }

    #[test]
    fn p2_updates_are_sparse_in_global_index() {
        let t = baudet_trace(10_000);
        let p2_steps: Vec<u64> = t
            .iter()
            .filter(|(_, s)| s.active.as_slice() == [1])
            .map(|(j, _)| j)
            .collect();
        // Of J global iterations, only O(√J) belong to P2.
        let k = p2_steps.len() as f64;
        let j = 10_000f64;
        assert!(k < 3.0 * (2.0 * j).sqrt(), "too many P2 updates: {k}");
        assert!(k > 0.5 * (2.0 * j).sqrt(), "too few P2 updates: {k}");
    }

    #[test]
    fn per_reader_fifo_but_globally_non_monotone() {
        // End-of-phase exchange with single-writer components is FIFO per
        // reader: each processor's reads of each component never go
        // backwards...
        let t = baudet_trace(5000);
        let p = crate::partition::Partition::identity(2);
        assert!(crate::conditions::labels_monotone_per_reader(&t, &p).unwrap());
        // ...but the *global* label sequence is non-monotone, because the
        // slow processor's completions interleave stale reads between the
        // fast processor's fresh ones. This is exactly why analyses that
        // require globally monotone delayed labels are restrictive.
        assert!(!crate::conditions::labels_monotone(&t).unwrap());
    }
}
