//! Delay statistics and staleness diagnostics over traces.
//!
//! These helpers feed the experiment harness: delay distributions
//! (mean/percentiles/max), per-component staleness histograms and
//! growth-rate fits (`d(j) ≈ c·j^p`) used to classify a trace's delay
//! regime as bounded, `√j`-unbounded or heavy-tailed.

use crate::trace::Trace;
use asynciter_numerics::stats;

/// Summary statistics of the observed delays `d_h(j) = j − l_h(j)` over
/// all steps and components.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayStats {
    /// Number of (step, component) samples.
    pub samples: u64,
    /// Mean delay.
    pub mean: f64,
    /// Median delay.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum delay.
    pub max: u64,
}

/// Computes [`DelayStats`] from a full-label trace.
///
/// # Errors
/// [`crate::ModelError::LabelsNotStored`] / [`crate::ModelError::EmptyTrace`].
pub fn delay_stats(trace: &Trace) -> crate::Result<DelayStats> {
    if trace.is_empty() {
        return Err(crate::ModelError::EmptyTrace);
    }
    let mut delays: Vec<f64> = Vec::with_capacity(trace.len() * trace.n());
    let mut max = 0u64;
    for (j, _) in trace.iter() {
        for &l in trace.labels(j)? {
            let d = j - l;
            max = max.max(d);
            delays.push(d as f64);
        }
    }
    Ok(DelayStats {
        samples: delays.len() as u64,
        mean: stats::mean(&delays),
        p50: stats::percentile(&delays, 50.0).expect("nonempty"),
        p95: stats::percentile(&delays, 95.0).expect("nonempty"),
        p99: stats::percentile(&delays, 99.0).expect("nonempty"),
        max,
    })
}

/// The per-step delay series of one component: `(j, j − l_h(j))`.
///
/// # Errors
/// [`crate::ModelError::LabelsNotStored`] when labels are unavailable.
///
/// # Panics
/// Panics when `h` is out of range.
pub fn delay_series(trace: &Trace, h: usize) -> crate::Result<Vec<(u64, u64)>> {
    assert!(h < trace.n(), "delay_series: component out of range");
    let mut out = Vec::with_capacity(trace.len());
    for (j, _) in trace.iter() {
        out.push((j, j - trace.labels(j)?[h]));
    }
    Ok(out)
}

/// Histogram of delays with bucket width `bucket`; bucket `k` counts
/// delays in `[k·bucket, (k+1)·bucket)`.
///
/// # Errors
/// Propagates label-storage errors.
///
/// # Panics
/// Panics when `bucket == 0`.
pub fn staleness_histogram(trace: &Trace, bucket: u64) -> crate::Result<Vec<u64>> {
    assert!(bucket > 0, "staleness_histogram: bucket must be positive");
    let mut hist: Vec<u64> = Vec::new();
    for (j, _) in trace.iter() {
        for &l in trace.labels(j)? {
            let b = ((j - l) / bucket) as usize;
            if b >= hist.len() {
                hist.resize(b + 1, 0);
            }
            hist[b] += 1;
        }
    }
    Ok(hist)
}

/// Collapses a `(j, d)` series into windowed maxima `(j_mid, d_max)` —
/// the growth *envelope* of a sawtooth delay series. Windows shorter than
/// `window` at the tail are dropped.
///
/// # Panics
/// Panics when `window == 0`.
pub fn windowed_max(series: &[(u64, u64)], window: usize) -> Vec<(f64, f64)> {
    assert!(window > 0, "windowed_max: window must be positive");
    series
        .chunks(window)
        .filter(|c| c.len() == window)
        .map(|c| {
            let j_mid = c[c.len() / 2].0 as f64;
            let dmax = c.iter().map(|&(_, d)| d).max().expect("nonempty") as f64;
            (j_mid, dmax)
        })
        .collect()
}

/// Fits the delay growth envelope `d(j) ≈ c · j^p` of a component's delay
/// series via windowed maxima; returns `(c, p, r²)` or `None` when the fit
/// is impossible (constant/degenerate envelope).
pub fn delay_growth_exponent(series: &[(u64, u64)], window: usize) -> Option<(f64, f64, f64)> {
    let env = windowed_max(series, window);
    let (xs, ys): (Vec<f64>, Vec<f64>) = env.into_iter().unzip();
    stats::fit_power_law(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{record, ChaoticBounded, SyncJacobi, UnboundedSqrtDelay};
    use crate::trace::LabelStore;

    #[test]
    fn sync_delays_are_all_one() {
        let t = record(&mut SyncJacobi::new(3), 50, LabelStore::Full);
        let s = delay_stats(&t).unwrap();
        assert_eq!(s.samples, 150);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.max, 1);
        assert_eq!(s.p99, 1.0);
    }

    #[test]
    fn bounded_delays_within_bound() {
        let mut g = ChaoticBounded::new(4, 1, 2, 7, false, 17);
        let t = record(&mut g, 1000, LabelStore::Full);
        let s = delay_stats(&t).unwrap();
        assert!(s.max <= 7);
        assert!(s.mean >= 1.0 && s.mean <= 7.0);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn delay_series_matches_labels() {
        let t = record(&mut SyncJacobi::new(2), 10, LabelStore::Full);
        let s = delay_series(&t, 0).unwrap();
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&(_, d)| d == 1));
    }

    #[test]
    fn histogram_buckets_sum_to_samples() {
        let mut g = ChaoticBounded::new(3, 1, 3, 9, false, 23);
        let t = record(&mut g, 500, LabelStore::Full);
        let h = staleness_histogram(&t, 2).unwrap();
        let total: u64 = h.iter().sum();
        assert_eq!(total, delay_stats(&t).unwrap().samples);
        // All delays in [1, 9] → buckets beyond index 4 empty.
        assert!(h.len() <= 5);
    }

    #[test]
    fn windowed_max_extracts_envelope() {
        let series: Vec<(u64, u64)> = (1..=100).map(|j| (j, j % 10)).collect();
        let env = windowed_max(&series, 10);
        assert_eq!(env.len(), 10);
        assert!(env.iter().all(|&(_, d)| d == 9.0));
    }

    #[test]
    fn growth_exponent_flat_for_bounded() {
        let mut g = ChaoticBounded::new(3, 1, 3, 10, false, 3);
        let t = record(&mut g, 20_000, LabelStore::Full);
        let s = delay_series(&t, 0).unwrap();
        let (_, p, _) = delay_growth_exponent(&s, 1000).unwrap();
        assert!(p.abs() < 0.1, "bounded delays fit exponent {p}");
    }

    #[test]
    fn growth_exponent_half_for_sqrt_regime() {
        let mut g = UnboundedSqrtDelay::new(3, 3, 3, 1.0, 4);
        let t = record(&mut g, 40_000, LabelStore::Full);
        let s = delay_series(&t, 1).unwrap();
        let (_, p, r2) = delay_growth_exponent(&s, 2000).unwrap();
        assert!((p - 0.5).abs() < 0.1, "exponent {p}, r² {r2}");
    }

    #[test]
    fn empty_trace_errors() {
        let t = Trace::new(2, LabelStore::Full);
        assert!(delay_stats(&t).is_err());
    }
}
