//! Trace serialisation: archive executions for offline analysis.
//!
//! Real multi-threaded runs are not reproducible; what *is* reproducible
//! is their recorded trace. This module round-trips [`Trace`]s through a
//! simple line-oriented text format so experiments can archive a racy
//! run once and re-analyse (macro-iterations, epochs, condition checks)
//! or deterministically replay it forever after.
//!
//! Format (one record per line, space-separated):
//!
//! ```text
//! asynciter-trace v1 n=<n> labels=<full|min>
//! <j> a <i1> <i2> … | l <l1> … <ln>     # full-label traces
//! <j> a <i1> <i2> … | m <min_label>     # min-only traces
//! ```

use crate::error::ModelError;
use crate::trace::{LabelStore, Trace};
use std::io::{BufRead, Write};

/// Serialises a trace to a writer.
///
/// # Errors
/// I/O errors (wrapped as [`ModelError::InvalidParameter`] carrying the
/// message — traces have no dedicated I/O error variant by design; this
/// is a tooling path, not a hot path).
pub fn write_trace(trace: &Trace, out: &mut dyn Write) -> crate::Result<()> {
    let io_err = |e: std::io::Error| ModelError::InvalidParameter {
        name: "writer",
        message: e.to_string(),
    };
    let mode = match trace.store() {
        LabelStore::Full => "full",
        LabelStore::MinOnly => "min",
    };
    writeln!(out, "asynciter-trace v1 n={} labels={mode}", trace.n()).map_err(io_err)?;
    for (j, step) in trace.iter() {
        write!(out, "{j} a").map_err(io_err)?;
        for &i in &step.active {
            write!(out, " {i}").map_err(io_err)?;
        }
        match trace.store() {
            LabelStore::Full => {
                write!(out, " | l").map_err(io_err)?;
                for &l in trace.labels(j)? {
                    write!(out, " {l}").map_err(io_err)?;
                }
            }
            LabelStore::MinOnly => {
                write!(out, " | m {}", step.min_label).map_err(io_err)?;
            }
        }
        writeln!(out).map_err(io_err)?;
    }
    Ok(())
}

/// Serialises a trace to a string.
///
/// # Errors
/// Propagates [`write_trace`] failures (none for in-memory writers in
/// practice).
pub fn trace_to_string(trace: &Trace) -> crate::Result<String> {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf)?;
    Ok(String::from_utf8(buf).expect("trace text is ASCII"))
}

fn parse_err(line: usize, message: impl Into<String>) -> ModelError {
    ModelError::InvalidParameter {
        name: "trace-input",
        message: format!("line {line}: {}", message.into()),
    }
}

/// Deserialises a trace from a reader.
///
/// # Errors
/// [`ModelError::InvalidParameter`] on malformed input; structural trace
/// invariants (sorted active sets, label arity) are re-validated by the
/// underlying [`Trace::push_step`], surfacing corruption loudly.
pub fn read_trace(input: &mut dyn BufRead) -> crate::Result<Trace> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    let header = header.map_err(|e| parse_err(1, e.to_string()))?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 4 || parts[0] != "asynciter-trace" || parts[1] != "v1" {
        return Err(parse_err(1, format!("bad header `{header}`")));
    }
    let n: usize = parts[2]
        .strip_prefix("n=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| parse_err(1, "bad n field"))?;
    let store = match parts[3] {
        "labels=full" => LabelStore::Full,
        "labels=min" => LabelStore::MinOnly,
        other => return Err(parse_err(1, format!("bad labels field `{other}`"))),
    };
    if n == 0 {
        return Err(parse_err(1, "n must be positive"));
    }

    let mut trace = Trace::new(n, store);
    let mut labels = vec![0u64; n];
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.map_err(|e| parse_err(lineno, e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let (head, tail) = line
            .split_once(" | ")
            .ok_or_else(|| parse_err(lineno, "missing ` | ` separator"))?;
        let mut head_it = head.split_whitespace();
        let j: u64 = head_it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad step index"))?;
        if j != trace.len() as u64 + 1 {
            return Err(parse_err(
                lineno,
                format!("non-consecutive step {j} (expected {})", trace.len() + 1),
            ));
        }
        if head_it.next() != Some("a") {
            return Err(parse_err(lineno, "missing `a` marker"));
        }
        let active: Vec<usize> = head_it
            .map(|v| v.parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|e| parse_err(lineno, format!("bad active index: {e}")))?;

        let mut tail_it = tail.split_whitespace();
        match tail_it.next() {
            Some("l") => {
                let parsed: Vec<u64> = tail_it
                    .map(|v| v.parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| parse_err(lineno, format!("bad label: {e}")))?;
                if parsed.len() != n {
                    return Err(parse_err(
                        lineno,
                        format!("expected {n} labels, got {}", parsed.len()),
                    ));
                }
                labels.copy_from_slice(&parsed);
            }
            Some("m") => {
                let m: u64 = tail_it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad min label"))?;
                labels.fill(m);
            }
            _ => return Err(parse_err(lineno, "missing label marker")),
        }
        trace.push_step(&active, &labels);
    }
    Ok(trace)
}

/// Deserialises a trace from a string.
///
/// # Errors
/// See [`read_trace`].
pub fn trace_from_str(s: &str) -> crate::Result<Trace> {
    read_trace(&mut s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macroiter::macro_iterations;
    use crate::schedule::{record, ChaoticBounded, SyncJacobi};

    #[test]
    fn roundtrip_full_labels() {
        let mut gen = ChaoticBounded::new(5, 1, 3, 7, false, 42);
        let t = record(&mut gen, 100, LabelStore::Full);
        let text = trace_to_string(&t).unwrap();
        let back = trace_from_str(&text).unwrap();
        assert_eq!(back.n(), 5);
        assert_eq!(back.len(), 100);
        for j in 1..=100u64 {
            assert_eq!(t.step(j).active, back.step(j).active);
            assert_eq!(t.labels(j).unwrap(), back.labels(j).unwrap());
        }
        // Analysis results survive the roundtrip.
        assert_eq!(
            macro_iterations(&t).boundaries,
            macro_iterations(&back).boundaries
        );
    }

    #[test]
    fn roundtrip_min_only() {
        let mut gen = SyncJacobi::new(3);
        let t = record(&mut gen, 20, LabelStore::MinOnly);
        let text = trace_to_string(&t).unwrap();
        let back = trace_from_str(&text).unwrap();
        assert_eq!(back.store(), LabelStore::MinOnly);
        for j in 1..=20u64 {
            assert_eq!(t.step(j).min_label, back.step(j).min_label);
        }
    }

    #[test]
    fn header_is_self_describing() {
        let mut gen = SyncJacobi::new(4);
        let t = record(&mut gen, 2, LabelStore::Full);
        let text = trace_to_string(&t).unwrap();
        assert!(text.starts_with("asynciter-trace v1 n=4 labels=full\n"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(trace_from_str("").is_err());
        assert!(trace_from_str("bogus header\n").is_err());
        assert!(trace_from_str("asynciter-trace v1 n=0 labels=full\n").is_err());
        assert!(trace_from_str("asynciter-trace v2 n=2 labels=full\n").is_err());
        // Missing separator.
        assert!(trace_from_str("asynciter-trace v1 n=2 labels=full\n1 a 0 l 0 0\n").is_err());
        // Wrong label count.
        assert!(trace_from_str("asynciter-trace v1 n=2 labels=full\n1 a 0 | l 0\n").is_err());
        // Non-consecutive step numbering.
        assert!(trace_from_str("asynciter-trace v1 n=2 labels=full\n2 a 0 | l 0 0\n").is_err());
    }

    #[test]
    fn blank_lines_ignored() {
        let t = trace_from_str("asynciter-trace v1 n=2 labels=full\n\n1 a 0 | l 0 0\n\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn condition_a_violations_roundtrip_too() {
        // The format preserves whatever was recorded, including traces
        // that violate condition (a) — checkers must still catch them
        // after a roundtrip.
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[0], &[0, 0]);
        t.push_step(&[1], &[5, 0]); // label 5 > j-1 = 1
        let back = trace_from_str(&trace_to_string(&t).unwrap()).unwrap();
        assert!(crate::conditions::check_condition_a(&back).is_err());
    }
}
