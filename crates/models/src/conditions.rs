//! Checkers for the paper's admissibility conditions.
//!
//! Definition 1 subjects the pair `(𝒮, ℒ)` to:
//!
//! - **(a)** `l_i(j) ≤ j − 1` — reads come from strictly earlier iterations;
//! - **(b)** `lim_{j→∞} l_i(j) = +∞` — no update keeps consuming arbitrarily
//!   old information forever (unbounded delays allowed, *abandoned* values
//!   not);
//! - **(c)** every component `i` appears infinitely often in `S_j`.
//!
//! Chaotic relaxation additionally assumes
//!
//! - **(d)** bounded delays: `l_i(j) = j − d_i(j)` with `0 ≤ d_i(j) < b(j)`,
//!   `b(j) ≤ min{b, j}`, `j − b(j)` monotone increasing.
//!
//! Conditions (b) and (c) are asymptotic, so on a *finite* trace they can
//! only be checked in proxy form. The proxies here are chosen so that the
//! adversarial generators that violate (b)/(c) by construction
//! ([`crate::schedule::FrozenLabelAdversary`],
//! [`crate::schedule::StarvedComponent`]) are always caught, while every
//! admissible generator in the library passes; this is itself validated by
//! the crate's property tests.

use crate::error::ModelError;
use crate::trace::Trace;

/// An explicit per-iteration bound on admissible delays — the
/// *certificate* form of conditions (b)/(d).
///
/// An envelope assigns to every iteration `j ≥ 1` a maximum delay
/// `D(j) ≥ 1`; a label is *within* the envelope when
/// `j − D(j) ≤ l ≤ j − 1` (delays clamp at `j`, so early iterations are
/// never over-constrained). Because both variants satisfy
/// `j − D(j) → ∞`, a trace whose every label stays within the envelope
/// satisfies condition (b) *by construction* — no windowed proxy needed.
/// The [`Bounded`](DelayEnvelope::Bounded) variant additionally certifies
/// condition (d) with the same constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayEnvelope {
    /// Constant bound: `D(j) = min(b, j)` (Chazan–Miranker regime).
    Bounded(u64),
    /// Baudet-style unbounded growth: `D(j) = min(1 + ⌊c·√j⌋, j)` —
    /// `sup_j D(j) = ∞` yet labels still escape to infinity.
    SqrtGrowth {
        /// Growth scale `c > 0`.
        c: f64,
    },
}

impl DelayEnvelope {
    /// Maximum admissible delay at iteration `j ≥ 1` (always in `[1, j]`).
    ///
    /// # Panics
    /// Panics when `j == 0`, on a non-positive bound, or a non-positive
    /// growth scale.
    pub fn max_delay(&self, j: u64) -> u64 {
        assert!(j >= 1, "DelayEnvelope::max_delay: j must be >= 1");
        match *self {
            DelayEnvelope::Bounded(b) => {
                assert!(b >= 1, "DelayEnvelope::Bounded: b must be >= 1");
                b.min(j)
            }
            DelayEnvelope::SqrtGrowth { c } => {
                assert!(
                    c > 0.0 && c.is_finite(),
                    "DelayEnvelope::SqrtGrowth: c must be positive and finite"
                );
                ((1.0 + (c * (j as f64).sqrt()).floor()) as u64).min(j)
            }
        }
    }

    /// Smallest admissible label at iteration `j`: `j − max_delay(j)`.
    pub fn min_label(&self, j: u64) -> u64 {
        j - self.max_delay(j)
    }

    /// Short description for logs (`"bounded(b=8)"`, `"sqrt(c=1.5)"`).
    pub fn describe(&self) -> String {
        match *self {
            DelayEnvelope::Bounded(b) => format!("bounded(b={b})"),
            DelayEnvelope::SqrtGrowth { c } => format!("sqrt(c={c})"),
        }
    }
}

/// A checkable *certificate* that a finite trace realises an admissible
/// pair `(𝒮, ℒ)` — the executable form of Definition 1 used by the
/// conformance fuzzer.
///
/// Unlike the windowed proxies ([`check_condition_b`]), a witness makes
/// the asymptotic conditions decidable by strengthening them to explicit
/// bounds that the guarded generators in [`crate::schedule`]
/// ([`crate::schedule::EnvelopeClamp`], [`crate::schedule::CoverageGuard`])
/// enforce *by construction*:
///
/// - **(a)** every label satisfies `l_h(j) ≤ j − 1` (exact);
/// - **(b)** every label stays within [`DelayEnvelope`], whose lower
///   bound `j − D(j)` diverges — so `lim l_h(j) = ∞` holds for any
///   infinite extension respecting the envelope;
/// - **(c)** every component's activation gap is at most `max_gap` — so
///   every component updates infinitely often in any infinite extension
///   respecting the gap bound;
/// - **(d)** for a [`DelayEnvelope::Bounded`] envelope, delays are
///   bounded by the same constant (checked for free).
///
/// A schedule that merely *fails the certificate* may still be admissible
/// in the asymptotic sense (the witness is sound, not complete); every
/// generator composed through the guard combinators is accepted exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissibilityWitness {
    /// The delay envelope certifying conditions (b)/(d).
    pub envelope: DelayEnvelope,
    /// Maximum activation gap certifying condition (c).
    pub max_gap: u64,
}

impl AdmissibilityWitness {
    /// A witness with the given envelope and gap bound.
    ///
    /// # Panics
    /// Panics when `max_gap == 0`.
    pub fn new(envelope: DelayEnvelope, max_gap: u64) -> Self {
        assert!(max_gap > 0, "AdmissibilityWitness: max_gap must be > 0");
        Self { envelope, max_gap }
    }

    /// Checks the full certificate against a recorded trace.
    ///
    /// Requires full label storage.
    ///
    /// # Errors
    /// The first [`ModelError::ConditionViolated`] encountered, tagged
    /// with the violated condition (`"a"`, `"b"` or `"c"`), or
    /// [`ModelError::LabelsNotStored`] / [`ModelError::EmptyTrace`] for
    /// structurally unusable traces.
    pub fn check(&self, trace: &Trace) -> crate::Result<()> {
        if trace.is_empty() {
            return Err(ModelError::EmptyTrace);
        }
        check_condition_a(trace)?;
        // (b) as an envelope certificate: stronger than the windowed
        // proxy and decidable per step.
        for (j, _) in trace.iter() {
            let lo = self.envelope.min_label(j);
            let labels = trace.labels(j)?;
            for (h, &l) in labels.iter().enumerate() {
                if l < lo {
                    return Err(ModelError::ConditionViolated {
                        condition: "b",
                        at_step: j,
                        component: h,
                        message: format!(
                            "label {l} below envelope {} floor {lo}",
                            self.envelope.describe()
                        ),
                    });
                }
            }
        }
        check_condition_c(trace, self.max_gap)?;
        if let DelayEnvelope::Bounded(b) = self.envelope {
            // Implied by the envelope check; kept as a cross-validation
            // of the two checkers against each other.
            check_condition_d(trace, b)?;
        }
        Ok(())
    }

    /// Short description for logs.
    pub fn describe(&self) -> String {
        format!(
            "witness({}, max_gap={})",
            self.envelope.describe(),
            self.max_gap
        )
    }
}

/// Checks condition (a): every stored label satisfies `l_h(j) ≤ j − 1`.
///
/// Requires full label storage.
///
/// # Errors
/// [`ModelError::ConditionViolated`] at the first offending `(j, h)`;
/// [`ModelError::LabelsNotStored`] for min-only traces.
pub fn check_condition_a(trace: &Trace) -> crate::Result<()> {
    for (j, _) in trace.iter() {
        let labels = trace.labels(j)?;
        for (h, &l) in labels.iter().enumerate() {
            if l > j - 1 {
                return Err(ModelError::ConditionViolated {
                    condition: "a",
                    at_step: j,
                    component: h,
                    message: format!("label {l} > j-1 = {}", j - 1),
                });
            }
        }
    }
    Ok(())
}

/// Finite-trace proxy for condition (b): split the trace into
/// `num_windows` equal windows and compute, for each component `h`, the
/// minimum and maximum of `l_h(j)` over each window. Condition (b)
/// requires labels to grow without bound; the proxy demands that
///
/// 1. window minima are nondecreasing up to `slack` (tolerating benign
///    jitter from out-of-order delivery within a window),
/// 2. the last window's minimum strictly exceeds the first window's, and
/// 3. the window *maxima* strictly grow from first to last window — this
///    is what catches a label frozen at a small value, which can slip
///    past the minima tests because early windows legitimately contain
///    small labels.
///
/// Requires full label storage and at least `2 * num_windows` steps.
///
/// # Errors
/// Reports the first component whose label envelope fails to grow, or the
/// structural errors of the underlying queries.
///
/// # Panics
/// Panics when `num_windows < 2`.
pub fn check_condition_b(trace: &Trace, num_windows: usize, slack: u64) -> crate::Result<()> {
    assert!(num_windows >= 2, "check_condition_b: need >= 2 windows");
    let len = trace.len() as u64;
    if len < 2 * num_windows as u64 {
        return Err(ModelError::InvalidParameter {
            name: "trace",
            message: format!(
                "need at least {} steps for {} windows, got {len}",
                2 * num_windows,
                num_windows
            ),
        });
    }
    let window = len / num_windows as u64;
    for h in 0..trace.n() {
        let mut mins = Vec::with_capacity(num_windows);
        let mut maxs = Vec::with_capacity(num_windows);
        for w in 0..num_windows as u64 {
            let lo = w * window + 1;
            let hi = if w as usize == num_windows - 1 {
                len
            } else {
                (w + 1) * window
            };
            let mut mn = u64::MAX;
            let mut mx = 0u64;
            for j in lo..=hi {
                let l = trace.labels(j)?[h];
                mn = mn.min(l);
                mx = mx.max(l);
            }
            mins.push(mn);
            maxs.push(mx);
        }
        // Nondecreasing up to slack.
        for w in 1..mins.len() {
            if mins[w] + slack < mins[w - 1] {
                return Err(ModelError::ConditionViolated {
                    condition: "b",
                    at_step: (w as u64) * window,
                    component: h,
                    message: format!(
                        "window minima regressed: {} -> {} (slack {slack})",
                        mins[w - 1],
                        mins[w]
                    ),
                });
            }
        }
        // Strict growth end-to-end.
        if mins[num_windows - 1] <= mins[0] {
            return Err(ModelError::ConditionViolated {
                condition: "b",
                at_step: 0,
                component: h,
                message: format!(
                    "label envelope did not grow: first-window min {} vs last-window min {}",
                    mins[0],
                    mins[num_windows - 1]
                ),
            });
        }
        // Stagnation: the freshest label read in the last window must
        // exceed the freshest of the first window, otherwise the label is
        // effectively frozen (condition (b) fails).
        if maxs[num_windows - 1] <= maxs[0] {
            return Err(ModelError::ConditionViolated {
                condition: "b",
                at_step: 0,
                component: h,
                message: format!(
                    "labels stagnate: first-window max {} vs last-window max {}",
                    maxs[0],
                    maxs[num_windows - 1]
                ),
            });
        }
    }
    Ok(())
}

/// Finite-trace proxy for condition (c): every component must be updated
/// at least once in every window of `max_gap` consecutive iterations
/// (including the leading and trailing partial windows).
///
/// # Errors
/// Reports the first component whose activation gap exceeds `max_gap`.
///
/// # Panics
/// Panics when `max_gap == 0`.
pub fn check_condition_c(trace: &Trace, max_gap: u64) -> crate::Result<()> {
    assert!(max_gap > 0, "check_condition_c: max_gap must be positive");
    let gaps = activation_gaps(trace);
    for (h, &g) in gaps.iter().enumerate() {
        if g > max_gap {
            return Err(ModelError::ConditionViolated {
                condition: "c",
                at_step: 0,
                component: h,
                message: format!("max activation gap {g} > allowed {max_gap}"),
            });
        }
    }
    Ok(())
}

/// Maximum activation gap per component: the longest run of consecutive
/// iterations during which the component is not updated, counting the gap
/// from the start of the trace to the first activation and from the last
/// activation to the end. A component never updated gets `trace.len() + 1`.
pub fn activation_gaps(trace: &Trace) -> Vec<u64> {
    let len = trace.len() as u64;
    let mut last = vec![0u64; trace.n()];
    let mut max_gap = vec![0u64; trace.n()];
    for (j, s) in trace.iter() {
        for &i in &s.active {
            let i = i as usize;
            max_gap[i] = max_gap[i].max(j - last[i] - 1);
            last[i] = j;
        }
    }
    for h in 0..trace.n() {
        if last[h] == 0 {
            max_gap[h] = len + 1;
        } else {
            max_gap[h] = max_gap[h].max(len - last[h]);
        }
    }
    max_gap
}

/// Checks condition (d) with constant bound `b`: every delay satisfies
/// `1 ≤ d_h(j) = j − l_h(j) ≤ min(b, j)`. (The paper states
/// `0 ≤ d_i(j) < b(j)`; together with condition (a) the delay is at least
/// 1, and we take the inclusive bound `b` for the practical checker.)
///
/// Requires full label storage.
///
/// # Errors
/// Reports the first `(j, h)` whose delay exceeds the bound.
///
/// # Panics
/// Panics when `b == 0`.
pub fn check_condition_d(trace: &Trace, b: u64) -> crate::Result<()> {
    assert!(b > 0, "check_condition_d: b must be positive");
    for (j, _) in trace.iter() {
        let labels = trace.labels(j)?;
        for (h, &l) in labels.iter().enumerate() {
            let d = j - l;
            if d > b.min(j) {
                return Err(ModelError::ConditionViolated {
                    condition: "d",
                    at_step: j,
                    component: h,
                    message: format!("delay {d} > bound {}", b.min(j)),
                });
            }
        }
    }
    Ok(())
}

/// The smallest constant `b` for which [`check_condition_d`] passes, i.e.
/// the maximum observed delay `max_{j,h} (j − l_h(j))`.
///
/// # Errors
/// [`ModelError::LabelsNotStored`] / [`ModelError::EmptyTrace`].
pub fn max_delay(trace: &Trace) -> crate::Result<u64> {
    if trace.is_empty() {
        return Err(ModelError::EmptyTrace);
    }
    let mut m = 0u64;
    for (j, _) in trace.iter() {
        for &l in trace.labels(j)? {
            m = m.max(j - l);
        }
    }
    Ok(m)
}

/// True when every component's label sequence `j ↦ l_h(j)` is
/// nondecreasing — the FIFO / in-order-delivery regime assumed by
/// epoch-based analyses (Mishchenko–Iutzeler–Malick). Out-of-order
/// messages manifest exactly as a decrease somewhere.
///
/// # Errors
/// [`ModelError::LabelsNotStored`] for min-only traces.
pub fn labels_monotone(trace: &Trace) -> crate::Result<bool> {
    let mut prev = vec![0u64; trace.n()];
    for (j, _) in trace.iter() {
        let labels = trace.labels(j)?;
        for (h, &l) in labels.iter().enumerate() {
            if l < prev[h] {
                return Ok(false);
            }
            prev[h] = l;
        }
    }
    Ok(true)
}

/// True when every *reader's* view of every component is nondecreasing:
/// for each machine `m` (under `partition`), the sub-sequence of steps
/// performed by `m` must read nondecreasing labels of every component.
///
/// This is the FIFO-channel property actually assumed by epoch analyses:
/// a single reader never consumes older data than it already consumed.
/// It is strictly weaker than [`labels_monotone`], which additionally
/// compares labels across *different* readers — interleaved readers with
/// different staleness make the global sequence non-monotone even when
/// every channel is FIFO (Baudet's two-processor example exhibits this).
///
/// Steps that touch several machines are attributed to every machine
/// touched.
///
/// # Errors
/// [`ModelError::LabelsNotStored`] for min-only traces.
///
/// # Panics
/// Panics when the partition dimension disagrees with the trace.
pub fn labels_monotone_per_reader(
    trace: &Trace,
    partition: &crate::partition::Partition,
) -> crate::Result<bool> {
    assert_eq!(partition.n(), trace.n(), "labels_monotone_per_reader: dim");
    let p = partition.num_machines();
    let n = trace.n();
    // prev[m * n + h]: last label of component h read by machine m.
    let mut prev = vec![0u64; p * n];
    let mut touched = vec![false; p];
    for (j, step) in trace.iter() {
        let labels = trace.labels(j)?;
        touched.fill(false);
        for &i in &step.active {
            touched[partition.machine_of(i as usize)] = true;
        }
        for (m, &t) in touched.iter().enumerate() {
            if !t {
                continue;
            }
            for (h, &l) in labels.iter().enumerate() {
                let slot = &mut prev[m * n + h];
                if l < *slot {
                    return Ok(false);
                }
                *slot = l;
            }
        }
    }
    Ok(true)
}

/// Counts, per component, how many steps read an *older* label than some
/// earlier step did — a direct measure of out-of-order consumption.
///
/// # Errors
/// [`ModelError::LabelsNotStored`] for min-only traces.
pub fn out_of_order_counts(trace: &Trace) -> crate::Result<Vec<u64>> {
    let mut hi = vec![0u64; trace.n()];
    let mut counts = vec![0u64; trace.n()];
    for (j, _) in trace.iter() {
        let labels = trace.labels(j)?;
        for (h, &l) in labels.iter().enumerate() {
            if l < hi[h] {
                counts[h] += 1;
            }
            hi[h] = hi[h].max(l);
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{
        record, ChaoticBounded, FrozenLabelAdversary, StarvedComponent, SyncJacobi,
        UnboundedSqrtDelay,
    };
    use crate::trace::LabelStore;

    fn sync_trace(n: usize, steps: u64) -> Trace {
        record(&mut SyncJacobi::new(n), steps, LabelStore::Full)
    }

    #[test]
    fn condition_a_passes_for_sync() {
        assert!(check_condition_a(&sync_trace(3, 50)).is_ok());
    }

    #[test]
    fn condition_a_detects_future_read() {
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[0], &[0, 0]);
        t.push_step(&[1], &[2, 1]); // l_0(2) = 2 > 1.
        match check_condition_a(&t) {
            Err(ModelError::ConditionViolated {
                condition: "a",
                at_step: 2,
                component: 0,
                ..
            }) => {}
            other => panic!("expected (a) violation, got {other:?}"),
        }
    }

    #[test]
    fn condition_b_passes_for_bounded_and_sqrt_delays() {
        let mut g = ChaoticBounded::new(5, 1, 3, 8, false, 21);
        let t = record(&mut g, 2000, LabelStore::Full);
        assert!(check_condition_b(&t, 8, 16).is_ok());

        let mut g = UnboundedSqrtDelay::new(5, 1, 3, 1.5, 22);
        let t = record(&mut g, 2000, LabelStore::Full);
        assert!(check_condition_b(&t, 8, 256).is_ok());
    }

    #[test]
    fn condition_b_catches_frozen_label() {
        let inner = SyncJacobi::new(3);
        let mut g = FrozenLabelAdversary::new(inner, 1, 5);
        let t = record(&mut g, 400, LabelStore::Full);
        match check_condition_b(&t, 4, 0) {
            Err(ModelError::ConditionViolated {
                condition: "b",
                component: 1,
                ..
            }) => {}
            other => panic!("expected (b) violation on component 1, got {other:?}"),
        }
    }

    #[test]
    fn condition_b_requires_enough_steps() {
        let t = sync_trace(2, 5);
        assert!(check_condition_b(&t, 4, 0).is_err());
    }

    #[test]
    fn condition_c_passes_for_sync_and_catches_starvation() {
        let t = sync_trace(3, 100);
        assert!(check_condition_c(&t, 1).is_ok());

        let inner = SyncJacobi::new(3);
        let mut g = StarvedComponent::new(inner, 2, 20);
        let t = record(&mut g, 200, LabelStore::Full);
        match check_condition_c(&t, 50) {
            Err(ModelError::ConditionViolated {
                condition: "c",
                component: 2,
                ..
            }) => {}
            other => panic!("expected (c) violation on component 2, got {other:?}"),
        }
    }

    #[test]
    fn activation_gaps_counts_boundaries() {
        let mut t = Trace::new(2, LabelStore::Full);
        // Component 1 never updated; component 0 updated at j = 2 only.
        t.push_step(&[0], &[0, 0]);
        t.push_step(&[0], &[1, 0]);
        t.push_step(&[0], &[1, 0]);
        let gaps = activation_gaps(&t);
        assert_eq!(gaps[0], 0);
        assert_eq!(gaps[1], 4); // never updated: len + 1.

        let mut t = Trace::new(1, LabelStore::Full);
        t.push_step(&[0], &[0]); // j=1
                                 // gap of 3 then update at j=5.
        t.push_step(&[0], &[0]);
        let _ = t;
    }

    #[test]
    fn activation_gap_interior_and_tail() {
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[0, 1], &[0, 0]); // j=1: both
        t.push_step(&[0], &[0, 0]); // j=2
        t.push_step(&[0], &[0, 0]); // j=3
        t.push_step(&[0, 1], &[0, 0]); // j=4: comp 1 gap = 2
        t.push_step(&[0], &[0, 0]); // j=5: comp 1 tail gap = 1
        let gaps = activation_gaps(&t);
        assert_eq!(gaps[0], 0);
        assert_eq!(gaps[1], 2);
    }

    #[test]
    fn condition_d_bound_checks() {
        let mut g = ChaoticBounded::new(4, 1, 2, 6, false, 2);
        let t = record(&mut g, 500, LabelStore::Full);
        assert!(check_condition_d(&t, 6).is_ok());
        // Both directions pinned against the trace's actual worst delay:
        // the checker accepts a bound iff it dominates `max_delay` (the
        // old `is_err() || md <= 5` form passed vacuously whenever the
        // checker rejected, asserting nothing about *why*).
        let md = max_delay(&t).unwrap();
        assert!((1..=6).contains(&md));
        if md <= 5 {
            assert!(
                check_condition_d(&t, 5).is_ok(),
                "bound 5 dominates the worst delay {md} and must be accepted"
            );
        } else {
            assert!(
                check_condition_d(&t, 5).is_err(),
                "worst delay {md} exceeds bound 5 and must be rejected"
            );
        }
        assert!(check_condition_d(&t, md).is_ok());
        if md > 1 {
            assert!(check_condition_d(&t, md - 1).is_err());
        }
    }

    #[test]
    fn condition_d_fails_for_unbounded() {
        let mut g = UnboundedSqrtDelay::new(3, 3, 3, 2.0, 9);
        let t = record(&mut g, 5000, LabelStore::Full);
        assert!(check_condition_d(&t, 8).is_err());
        // But condition (b) still holds — the paper's key distinction.
        assert!(check_condition_b(&t, 8, 512).is_ok());
    }

    #[test]
    fn monotone_detection() {
        let mut g = ChaoticBounded::new(4, 1, 2, 8, true, 31);
        let t = record(&mut g, 300, LabelStore::Full);
        assert!(labels_monotone(&t).unwrap());
        assert_eq!(out_of_order_counts(&t).unwrap(), vec![0; 4]);

        let mut g = ChaoticBounded::new(4, 1, 2, 8, false, 31);
        let t = record(&mut g, 300, LabelStore::Full);
        assert!(!labels_monotone(&t).unwrap());
        assert!(out_of_order_counts(&t).unwrap().iter().sum::<u64>() > 0);
    }

    #[test]
    fn max_delay_empty_trace_errors() {
        let t = Trace::new(2, LabelStore::Full);
        assert_eq!(max_delay(&t), Err(ModelError::EmptyTrace));
    }

    #[test]
    fn envelope_bounds_are_clamped_and_divergent() {
        let b = DelayEnvelope::Bounded(5);
        assert_eq!(b.max_delay(1), 1);
        assert_eq!(b.max_delay(3), 3);
        assert_eq!(b.max_delay(100), 5);
        assert_eq!(b.min_label(100), 95);
        let s = DelayEnvelope::SqrtGrowth { c: 2.0 };
        assert_eq!(s.max_delay(1), 1);
        // 1 + ⌊2·√100⌋ = 21.
        assert_eq!(s.max_delay(100), 21);
        assert_eq!(s.min_label(100), 79);
        // The label floor diverges: certificate form of condition (b).
        assert!(s.min_label(1_000_000) > s.min_label(100));
    }

    #[test]
    fn witness_accepts_guarded_regimes() {
        let mut g = ChaoticBounded::new(6, 1, 3, 8, false, 5);
        let t = record(&mut g, 400, LabelStore::Full);
        let w = AdmissibilityWitness::new(DelayEnvelope::Bounded(8), 400);
        assert!(w.check(&t).is_ok(), "{:?}", w.check(&t));
    }

    #[test]
    fn witness_rejects_frozen_label_via_b() {
        let mut g = FrozenLabelAdversary::new(SyncJacobi::new(3), 1, 2);
        let t = record(&mut g, 100, LabelStore::Full);
        let w = AdmissibilityWitness::new(DelayEnvelope::Bounded(8), 10);
        match w.check(&t) {
            Err(ModelError::ConditionViolated {
                condition: "b",
                component: 1,
                ..
            }) => {}
            other => panic!("expected (b) rejection, got {other:?}"),
        }
    }

    #[test]
    fn witness_rejects_starvation_via_c() {
        let mut g = StarvedComponent::new(SyncJacobi::new(3), 2, 10);
        let t = record(&mut g, 100, LabelStore::Full);
        let w = AdmissibilityWitness::new(DelayEnvelope::Bounded(128), 20);
        match w.check(&t) {
            Err(ModelError::ConditionViolated {
                condition: "c",
                component: 2,
                ..
            }) => {}
            other => panic!("expected (c) rejection, got {other:?}"),
        }
    }

    #[test]
    fn witness_rejects_future_read_and_empty() {
        let mut t = Trace::new(2, LabelStore::Full);
        let w = AdmissibilityWitness::new(DelayEnvelope::Bounded(4), 4);
        assert_eq!(w.check(&t), Err(ModelError::EmptyTrace));
        t.push_step(&[0], &[0, 0]);
        t.push_step(&[1], &[2, 1]);
        assert!(matches!(
            w.check(&t),
            Err(ModelError::ConditionViolated { condition: "a", .. })
        ));
    }

    #[test]
    fn min_only_traces_report_labels_not_stored() {
        let t = record(&mut SyncJacobi::new(2), 10, LabelStore::MinOnly);
        assert_eq!(check_condition_a(&t), Err(ModelError::LabelsNotStored));
        assert_eq!(labels_monotone(&t), Err(ModelError::LabelsNotStored));
        // Condition (c) needs no labels.
        assert!(check_condition_c(&t, 1).is_ok());
    }
}
