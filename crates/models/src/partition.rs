//! Component → machine (processor) assignments.
//!
//! Both the epoch sequence (which counts updates *per machine*) and the
//! multi-threaded runtimes need a fixed map from iterate components to the
//! processor that owns them. In Definition 1 the natural special case is
//! one component per machine; block partitions model block-iterative
//! methods.

use crate::error::ModelError;

/// A map from component index to owning machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    machine_of: Vec<u32>,
    num_machines: usize,
}

impl Partition {
    /// Builds a partition from an explicit map; machine ids must form a
    /// contiguous range `0..num_machines` (every machine owns at least one
    /// component).
    ///
    /// # Errors
    /// Errors when the map is empty or some machine in `0..max+1` owns no
    /// component.
    pub fn from_map(machine_of: Vec<u32>) -> crate::Result<Self> {
        if machine_of.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "machine_of",
                message: "empty map".into(),
            });
        }
        let num_machines = *machine_of.iter().max().expect("nonempty") as usize + 1;
        let mut seen = vec![false; num_machines];
        for &m in &machine_of {
            seen[m as usize] = true;
        }
        if let Some(m) = seen.iter().position(|s| !s) {
            return Err(ModelError::InvalidParameter {
                name: "machine_of",
                message: format!("machine {m} owns no component"),
            });
        }
        Ok(Self {
            machine_of,
            num_machines,
        })
    }

    /// One machine per component (the scalar-component special case).
    pub fn identity(n: usize) -> Self {
        Self {
            machine_of: (0..n as u32).collect(),
            num_machines: n,
        }
    }

    /// Contiguous block partition of `n` components over `p` machines;
    /// earlier machines absorb the remainder (sizes differ by ≤ 1).
    ///
    /// # Errors
    /// Errors when `p == 0` or `p > n`.
    pub fn blocks(n: usize, p: usize) -> crate::Result<Self> {
        if p == 0 || p > n {
            return Err(ModelError::InvalidParameter {
                name: "p",
                message: format!("need 1 <= p <= n, got p={p}, n={n}"),
            });
        }
        let base = n / p;
        let rem = n % p;
        let mut machine_of = Vec::with_capacity(n);
        for m in 0..p {
            let size = base + usize::from(m < rem);
            machine_of.extend(std::iter::repeat_n(m as u32, size));
        }
        Ok(Self {
            machine_of,
            num_machines: p,
        })
    }

    /// Number of components.
    #[inline]
    pub fn n(&self) -> usize {
        self.machine_of.len()
    }

    /// Number of machines.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Machine owning component `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn machine_of(&self, i: usize) -> usize {
        self.machine_of[i] as usize
    }

    /// Components owned by machine `m`, in increasing order.
    pub fn components_of(&self, m: usize) -> Vec<usize> {
        self.machine_of
            .iter()
            .enumerate()
            .filter(|(_, &mm)| mm as usize == m)
            .map(|(i, _)| i)
            .collect()
    }

    /// The full component → machine slice.
    #[inline]
    pub fn map(&self) -> &[u32] {
        &self.machine_of
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_partition() {
        let p = Partition::identity(3);
        assert_eq!(p.n(), 3);
        assert_eq!(p.num_machines(), 3);
        assert_eq!(p.machine_of(2), 2);
        assert_eq!(p.components_of(1), vec![1]);
    }

    #[test]
    fn block_partition_sizes() {
        let p = Partition::blocks(7, 3).unwrap();
        assert_eq!(p.num_machines(), 3);
        assert_eq!(p.components_of(0), vec![0, 1, 2]); // 3 = base 2 + rem
        assert_eq!(p.components_of(1), vec![3, 4]);
        assert_eq!(p.components_of(2), vec![5, 6]);
    }

    #[test]
    fn block_partition_even() {
        let p = Partition::blocks(6, 3).unwrap();
        assert_eq!(p.components_of(0).len(), 2);
        assert_eq!(p.components_of(2), vec![4, 5]);
    }

    #[test]
    fn blocks_rejects_bad_p() {
        assert!(Partition::blocks(3, 0).is_err());
        assert!(Partition::blocks(3, 4).is_err());
        assert!(Partition::blocks(3, 3).is_ok());
    }

    #[test]
    fn from_map_checks_contiguity() {
        assert!(Partition::from_map(vec![0, 2]).is_err()); // machine 1 missing
        assert!(Partition::from_map(vec![]).is_err());
        let p = Partition::from_map(vec![1, 0, 1]).unwrap();
        assert_eq!(p.num_machines(), 2);
        assert_eq!(p.components_of(1), vec![0, 2]);
    }
}
