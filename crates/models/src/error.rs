//! Error type for the formal-model crate.

use std::fmt;

/// Errors produced when constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter is outside its admissible range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        message: String,
    },
    /// A trace violates one of the paper's conditions.
    ConditionViolated {
        /// Which condition: "a", "b", "c" or "d".
        condition: &'static str,
        /// Iteration index at which the violation was observed (0 when the
        /// violation is aggregate rather than pointwise).
        at_step: u64,
        /// Component involved.
        component: usize,
        /// Human-readable details.
        message: String,
    },
    /// An operation requires full label storage but the trace only kept
    /// min-labels.
    LabelsNotStored,
    /// An operation received an empty trace.
    EmptyTrace,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            ModelError::ConditionViolated {
                condition,
                at_step,
                component,
                message,
            } => write!(
                f,
                "condition ({condition}) violated at step {at_step}, component {component}: {message}"
            ),
            ModelError::LabelsNotStored => {
                write!(f, "trace was recorded without full label storage")
            }
            ModelError::EmptyTrace => write!(f, "operation requires a nonempty trace"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_condition_violation() {
        let e = ModelError::ConditionViolated {
            condition: "a",
            at_step: 3,
            component: 1,
            message: "label 5 > j-1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("condition (a)"));
        assert!(s.contains("step 3"));
    }

    #[test]
    fn display_labels_not_stored() {
        assert!(ModelError::LabelsNotStored.to_string().contains("label"));
    }
}
