//! # asynciter-models
//!
//! The *formal model* of parallel/distributed asynchronous iterations from
//! El-Baz (IPPS 2022), implemented as executable objects:
//!
//! - [`schedule`] — the pair `(𝒮, ℒ)` of Definition 1: steering sequences
//!   (which components are updated at iteration `j`) and delay labels
//!   (which past iterates each update reads), as a streaming generator
//!   trait plus a library of generators covering every regime the paper
//!   discusses (synchronous, chaotic bounded-delay, out-of-order,
//!   unbounded `√j`, heavy-tailed, adversarial starvation).
//! - [`trace`] — recorded executions: the data on which the paper's
//!   analytic objects are computed.
//! - [`conditions`] — checkers for the paper's conditions (a), (b), (c)
//!   (Definition 1) and (d) (Chazan–Miranker/Miellou bounded delays).
//! - [`macroiter`] — the macro-iteration sequence of Definition 2, in both
//!   the literal form and the strict (Bertsekas box-semantics) form.
//! - [`epoch`] — the epoch sequence of Mishchenko–Iutzeler–Malick (SIOPT
//!   2020) that the paper compares against, plus freshness-violation
//!   diagnostics that quantify the paper's claim that epochs do not
//!   account for out-of-order messages.
//! - [`baudet`] — Baudet's classical two-processor example in which the
//!   delay on the slow component grows like `√j` yet condition (b) holds.
//! - [`analysis`] — delay statistics, staleness histograms and growth-rate
//!   fits used by the experiment harness.
//! - [`partition`] — component→machine maps shared by trace analysis and
//!   the runtimes.
//! - [`trace_io`] — archive/replay serialisation for recorded traces.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod analysis;
pub mod baudet;
pub mod conditions;
pub mod epoch;
pub mod error;
pub mod macroiter;
pub mod partition;
pub mod schedule;
pub mod trace;
pub mod trace_io;

pub use conditions::{AdmissibilityWitness, DelayEnvelope};
pub use error::ModelError;
pub use partition::Partition;
pub use schedule::{ScheduleGen, StepBuf};
pub use trace::{LabelStore, Trace, TraceStep};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
