//! The macro-iteration sequence (Definition 2).
//!
//! With `l(j) = min_h l_h(j)`, the macro-iteration sequence `{j_k}` is
//!
//! ```text
//! j_0 = 0,
//! j_{k+1} = min_j { ⋃_{ r ≤ j,  l(r) ≥ j_k } S_r  =  {1, …, n} } :
//! ```
//!
//! the earliest iteration by which *every* component has been updated at
//! least once using only information labelled at or after the previous
//! macro-label. Macro-iterations are the unit in which totally
//! asynchronous convergence proofs advance (one contraction factor per
//! macro-iteration in Theorem 1), and — unlike the epoch sequence of
//! Mishchenko–Iutzeler–Malick — they remain meaningful under out-of-order
//! messages because they are defined through the labels actually read.
//!
//! Two variants are provided:
//!
//! - [`macro_iterations`] — the literal Definition 2. Coverage is
//!   required, but a step *after* `j_{k+1}` may still read a label older
//!   than `j_k` when delivery is out of order.
//! - [`macro_iterations_strict`] — additionally requires that every step
//!   after the boundary reads labels `≥ j_k` (checked against the suffix
//!   minima of `l(j)`). This is the box semantics of Bertsekas's General
//!   Convergence Theorem under which the per-macro-iteration contraction
//!   argument of Theorem 1 is airtight; on in-order traces the two
//!   variants typically coincide or differ by a few steps.

use crate::trace::Trace;

/// A computed macro-iteration sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroIterations {
    /// `j_0 = 0 < j_1 < j_2 < …`: the macro labels that completed within
    /// the trace.
    pub boundaries: Vec<u64>,
}

impl MacroIterations {
    /// Number of *completed* macro-iterations `k` (excludes `j_0`).
    pub fn count(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Lengths `j_{k+1} − j_k` of completed macro-iterations.
    pub fn lengths(&self) -> Vec<u64> {
        self.boundaries.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The macro index `k(j) = max{k : j_k ≤ j}` of iteration `j`.
    pub fn index_of(&self, j: u64) -> usize {
        // boundaries is strictly increasing and starts at 0.
        self.boundaries.partition_point(|&b| b <= j) - 1
    }
}

fn macro_iterations_impl(trace: &Trace, strict: bool) -> MacroIterations {
    let n = trace.n();
    let len = trace.len() as u64;
    let suffix = if strict {
        trace.min_label_suffix()
    } else {
        Vec::new()
    };
    let mut boundaries = vec![0u64];
    let mut jk = 0u64;
    let mut covered = vec![false; n];
    let mut count = 0usize;
    for (j, step) in trace.iter() {
        if step.min_label >= jk {
            for &i in &step.active {
                let i = i as usize;
                if !covered[i] {
                    covered[i] = true;
                    count += 1;
                }
            }
        }
        if count == n {
            if strict {
                // Require that everything still in flight after j reads
                // labels >= jk; the suffix minimum over steps r > j is
                // suffix[j] (suffix[k] = min over 1-based steps r >= k+1).
                let future_min = if j < len {
                    suffix[j as usize]
                } else {
                    u64::MAX
                };
                if future_min < jk {
                    continue;
                }
            }
            boundaries.push(j);
            jk = j;
            covered.fill(false);
            count = 0;
        }
    }
    MacroIterations { boundaries }
}

/// The literal Definition 2 macro-iteration sequence.
pub fn macro_iterations(trace: &Trace) -> MacroIterations {
    macro_iterations_impl(trace, false)
}

/// The strict (box-semantics) macro-iteration sequence: Definition 2 plus
/// the requirement that all reads after `j_{k+1}` carry labels `≥ j_k`.
pub fn macro_iterations_strict(trace: &Trace) -> MacroIterations {
    macro_iterations_impl(trace, true)
}

/// Counts freshness violations of a boundary sequence: steps `j` whose
/// oldest read `l(j)` is older than the *previous* boundary of the
/// interval containing `j`. For the macro-iteration guarantee of the paper
/// ("each update at `j ≥ j_{k+1}` uses values with labels `≥ j_k`") this
/// must be zero; for epoch sequences on out-of-order traces it typically
/// is not — which is experiment E2's quantitative comparison.
///
/// `boundaries` must start at 0 and be strictly increasing.
///
/// # Panics
/// Panics when `boundaries` is empty or does not start at 0.
pub fn boundary_freshness_violations(trace: &Trace, boundaries: &[u64]) -> u64 {
    assert!(!boundaries.is_empty(), "boundaries must be nonempty");
    assert_eq!(boundaries[0], 0, "boundaries must start at 0");
    let mut violations = 0u64;
    // For j in (boundaries[k], boundaries[k+1]] the containing interval is
    // k; the guarantee compares against boundaries[k-1] (nothing to check
    // for k = 0).
    let mut k = 0usize;
    for (j, step) in trace.iter() {
        while k + 1 < boundaries.len() && j > boundaries[k + 1] {
            k += 1;
        }
        if k >= 1 && step.min_label < boundaries[k - 1] {
            violations += 1;
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{record, ChaoticBounded, CyclicCoordinate, SyncJacobi};
    use crate::trace::LabelStore;

    #[test]
    fn sync_jacobi_macro_iteration_every_step() {
        // All components update every step with fresh labels, so each step
        // completes a macro-iteration.
        let t = record(&mut SyncJacobi::new(4), 10, LabelStore::Full);
        let m = macro_iterations(&t);
        assert_eq!(m.boundaries, (0..=10).collect::<Vec<u64>>());
        let ms = macro_iterations_strict(&t);
        assert_eq!(ms.boundaries, m.boundaries);
    }

    #[test]
    fn cyclic_macro_iteration_every_n_steps() {
        let t = record(&mut CyclicCoordinate::new(3), 12, LabelStore::Full);
        let m = macro_iterations(&t);
        assert_eq!(m.boundaries, vec![0, 3, 6, 9, 12]);
        assert_eq!(m.lengths(), vec![3, 3, 3, 3]);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn index_of_locates_intervals() {
        let m = MacroIterations {
            boundaries: vec![0, 3, 7],
        };
        assert_eq!(m.index_of(0), 0);
        assert_eq!(m.index_of(2), 0);
        assert_eq!(m.index_of(3), 1);
        assert_eq!(m.index_of(6), 1);
        assert_eq!(m.index_of(7), 2);
        assert_eq!(m.index_of(100), 2);
    }

    #[test]
    fn stale_reads_delay_macro_completion() {
        // Two components; component 1 keeps reading label 0 for a while:
        // coverage with l(r) >= j_k only counts once labels catch up.
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[0], &[0, 0]); // j=1, l = 0 >= 0 → covers {0}
        t.push_step(&[1], &[0, 0]); // j=2, covers {1} → macro at 2
        t.push_step(&[0], &[0, 0]); // j=3: l(3) = 0 < 2 → does NOT count
        t.push_step(&[1], &[2, 2]); // j=4: covers {1}
        t.push_step(&[0], &[3, 3]); // j=5: covers {0} → macro at 5
        let m = macro_iterations(&t);
        assert_eq!(m.boundaries, vec![0, 2, 5]);
    }

    #[test]
    fn strict_postpones_until_flush() {
        // Coverage completes at j=2, but j=3 still reads label 0 (< j_1
        // candidate 2), so the strict boundary moves to j=3's completion
        // point where the suffix condition holds.
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[0], &[0, 0]); // j=1
        t.push_step(&[1], &[1, 0]); // j=2: literal boundary here
        t.push_step(&[0], &[0, 1]); // j=3: reads label 0 — stale
        t.push_step(&[1], &[3, 3]); // j=4
        t.push_step(&[0], &[3, 3]); // j=5
        let literal = macro_iterations(&t);
        assert_eq!(literal.boundaries[1], 2);
        let strict = macro_iterations_strict(&t);
        // At j=2 the future still contains a read of label 0 < 2... but
        // jk is 0 at that point, and 0 >= 0 holds, so the boundary at 2 is
        // accepted (freshness is measured against the *previous* label
        // j_0 = 0). The second strict macro-iteration must then wait past
        // the stale j=3 read: coverage for jk=2 needs steps with l >= 2:
        // j=4 covers {1}, j=5 covers {0} → boundary 5, and suffix min
        // after 5 is vacuous.
        assert_eq!(strict.boundaries, vec![0, 2, 5]);
        // Literal also finds 5 here (the stale step simply doesn't count
        // towards coverage).
        assert_eq!(literal.boundaries, vec![0, 2, 5]);
    }

    #[test]
    fn strict_boundary_guarantees_zero_violations() {
        let mut g = ChaoticBounded::new(6, 1, 3, 10, false, 77);
        let t = record(&mut g, 3000, LabelStore::Full);
        let strict = macro_iterations_strict(&t);
        assert!(strict.count() > 10, "expected many macro-iterations");
        assert_eq!(boundary_freshness_violations(&t, &strict.boundaries), 0);
    }

    #[test]
    fn literal_never_later_than_strict() {
        let mut g = ChaoticBounded::new(5, 1, 3, 12, false, 13);
        let t = record(&mut g, 2000, LabelStore::Full);
        let lit = macro_iterations(&t);
        let strict = macro_iterations_strict(&t);
        assert!(lit.count() >= strict.count());
        // Each strict boundary is >= the corresponding literal boundary.
        for (a, b) in lit.boundaries.iter().zip(&strict.boundaries) {
            assert!(b >= a);
        }
    }

    #[test]
    fn bounded_delay_macro_lengths_are_bounded() {
        // With delays <= b and all components updated within every window
        // of n steps (k_min = n), macro-iterations complete within ~b + n.
        let mut g = ChaoticBounded::new(4, 4, 4, 5, false, 5);
        let t = record(&mut g, 1000, LabelStore::Full);
        let m = macro_iterations(&t);
        assert!(m.count() > 50);
        let max_len = m.lengths().into_iter().max().unwrap();
        assert!(max_len <= 16, "max macro length {max_len}");
    }

    #[test]
    fn freshness_violations_counted_against_coarse_boundaries() {
        // Use a deliberately wrong boundary sequence (every step a
        // boundary) on a delayed trace: violations must be positive.
        let mut g = ChaoticBounded::new(4, 1, 2, 20, false, 3);
        let t = record(&mut g, 500, LabelStore::Full);
        let every_step: Vec<u64> = (0..=500).collect();
        assert!(boundary_freshness_violations(&t, &every_step) > 0);
    }

    #[test]
    #[should_panic(expected = "start at 0")]
    fn violations_require_zero_start() {
        let t = record(&mut SyncJacobi::new(2), 5, LabelStore::Full);
        boundary_freshness_violations(&t, &[1, 3]);
    }
}
