//! Accept/reject fixtures for the admissibility predicates in
//! `asynciter_models::conditions` — one fixture per delay regime the
//! paper discusses, each checked against the certificate-style
//! [`AdmissibilityWitness`] *and* the windowed proxies, so the two
//! checker families stay in agreement on every regime:
//!
//! | fixture | (a) | (b) | (c) | (d) |
//! |---|---|---|---|---|
//! | bounded chaotic        | ✓ | ✓ | ✓ | ✓ |
//! | unbounded `√j`         | ✓ | ✓ | ✓ | ✗ |
//! | heavy-tail (guarded)   | ✓ | ✓ | ✓ | envelope-dependent |
//! | heavy-tail (raw)       | ✓ | ✗ cert | ✓ | ✗ |
//! | starved component      | ✓ | ✓ | ✗ | ✓ |
//! | frozen label           | ✓ | ✗ | ✓ | ✓ |

use asynciter_models::conditions::{
    check_condition_a, check_condition_b, check_condition_c, check_condition_d,
    AdmissibilityWitness, DelayEnvelope,
};
use asynciter_models::schedule::{
    record, ChaoticBounded, CoverageGuard, EnvelopeClamp, FrozenLabelAdversary, HeavyTailDelay,
    ScheduleGen, StarvedComponent, SyncJacobi, UnboundedSqrtDelay,
};
use asynciter_models::{LabelStore, ModelError, Trace};

fn trace_of(gen: &mut dyn ScheduleGen, steps: u64) -> Trace {
    record(gen, steps, LabelStore::Full)
}

#[test]
fn accept_bounded_chaotic() {
    let mut g = ChaoticBounded::new(8, 1, 4, 6, false, 11);
    let t = trace_of(&mut g, 2_000);
    assert!(check_condition_a(&t).is_ok());
    assert!(check_condition_b(&t, 8, 16).is_ok());
    assert!(check_condition_c(&t, 2_000).is_ok());
    assert!(check_condition_d(&t, 6).is_ok());
    assert!(AdmissibilityWitness::new(DelayEnvelope::Bounded(6), 2_000)
        .check(&t)
        .is_ok());
}

#[test]
fn accept_unbounded_sqrt_but_not_bounded() {
    let mut g = UnboundedSqrtDelay::new(6, 3, 6, 1.5, 22);
    let t = trace_of(&mut g, 4_000);
    assert!(check_condition_a(&t).is_ok());
    // Condition (b) holds (labels escape to infinity) …
    assert!(check_condition_b(&t, 8, 512).is_ok());
    assert!(
        AdmissibilityWitness::new(DelayEnvelope::SqrtGrowth { c: 1.5 }, 4_000)
            .check(&t)
            .is_ok()
    );
    // … while condition (d) fails for any small constant — the paper's
    // key distinction between unbounded-delay and chaotic relaxation.
    assert!(check_condition_d(&t, 16).is_err());
    assert!(AdmissibilityWitness::new(DelayEnvelope::Bounded(16), 4_000)
        .check(&t)
        .is_err());
}

#[test]
fn heavy_tail_guarded_accepts_raw_rejects() {
    let env = DelayEnvelope::SqrtGrowth { c: 2.0 };
    // Guarded: the conformance stack's clamp makes the Pareto delays
    // certifiable.
    let mut guarded = CoverageGuard::new(
        EnvelopeClamp::new(HeavyTailDelay::new(6, 1, 3, 1.2, 33), env),
        24,
    );
    let t = trace_of(&mut guarded, 4_000);
    assert!(AdmissibilityWitness::new(env, 24).check(&t).is_ok());

    // Raw: an occasional delay reaches all the way back to label 0 at
    // large j, so the certificate form of (b) must reject.
    let mut raw = HeavyTailDelay::new(6, 6, 6, 1.2, 33);
    let t = trace_of(&mut raw, 20_000);
    assert!(check_condition_a(&t).is_ok());
    match AdmissibilityWitness::new(env, 20_000).check(&t) {
        Err(ModelError::ConditionViolated { condition: "b", .. }) => {}
        other => panic!("expected envelope rejection, got {other:?}"),
    }
    assert!(check_condition_d(&t, 64).is_err());
}

#[test]
fn reject_starved_component() {
    let mut g = StarvedComponent::new(ChaoticBounded::new(6, 2, 4, 4, true, 44), 3, 50);
    let t = trace_of(&mut g, 1_000);
    assert!(check_condition_a(&t).is_ok());
    assert!(check_condition_b(&t, 8, 16).is_ok(), "labels still grow");
    match check_condition_c(&t, 200) {
        Err(ModelError::ConditionViolated {
            condition: "c",
            component: 3,
            ..
        }) => {}
        other => panic!("expected (c) rejection of component 3, got {other:?}"),
    }
    match AdmissibilityWitness::new(DelayEnvelope::Bounded(4), 200).check(&t) {
        Err(ModelError::ConditionViolated { condition: "c", .. }) => {}
        other => panic!("expected witness (c) rejection, got {other:?}"),
    }
}

#[test]
fn reject_frozen_label() {
    let mut g = FrozenLabelAdversary::new(SyncJacobi::new(4), 2, 7);
    let t = trace_of(&mut g, 600);
    assert!(check_condition_a(&t).is_ok());
    assert!(check_condition_c(&t, 1).is_ok(), "steering is untouched");
    // Both checker families pin the same component.
    match check_condition_b(&t, 6, 0) {
        Err(ModelError::ConditionViolated {
            condition: "b",
            component: 2,
            ..
        }) => {}
        other => panic!("expected proxy (b) rejection, got {other:?}"),
    }
    match AdmissibilityWitness::new(DelayEnvelope::Bounded(32), 600).check(&t) {
        Err(ModelError::ConditionViolated {
            condition: "b",
            component: 2,
            ..
        }) => {}
        other => panic!("expected witness (b) rejection, got {other:?}"),
    }
}

#[test]
fn witness_and_proxies_agree_on_the_synchronous_baseline() {
    let mut g = SyncJacobi::new(5);
    let t = trace_of(&mut g, 200);
    assert!(check_condition_a(&t).is_ok());
    assert!(check_condition_b(&t, 4, 0).is_ok());
    assert!(check_condition_c(&t, 1).is_ok());
    assert!(check_condition_d(&t, 1).is_ok());
    assert!(AdmissibilityWitness::new(DelayEnvelope::Bounded(1), 1)
        .check(&t)
        .is_ok());
}
