//! Canonical model-checking states, choices, hashing, and the
//! one-step transition.
//!
//! An [`McState`] captures everything the future of a cluster run
//! depends on: the per-worker views, *two* label books (the engine book
//! written by the shared runtime step halves, and an independent spec
//! book maintained from choice semantics alone), and each worker's
//! mailbox as a canonically sorted message list. The global step
//! counter is part of the state, so states at different depths never
//! alias; everything else about the schedule (who acts when, when an
//! exchange is due) is derived round-robin from it.
//!
//! A [`StepChoice`] resolves the nondeterminism of one producing step:
//! which mailbox messages to deliver (and, under `AsReceived`, in which
//! order — undelivered messages are *held*, which is exactly how
//! reorders arise), and per destination whether the posted exchange is
//! dropped, duplicated, or cut to a flexible partial subset.
//!
//! States are deduplicated by [`state_hash`], a 128-bit FNV-1a over a
//! canonical little-endian byte encoding. There is no platform-,
//! allocation- or iteration-order-dependent input anywhere in the
//! encoding: vectors are encoded in index order, mailboxes in their
//! canonical sort order, and `f64` values by their IEEE bit patterns.

use crate::scope::{McProblem, Scope};
use asynciter_models::{LabelStore, Trace};
use asynciter_opt::traits::Operator;
use asynciter_runtime::{apply_message, produce_step, ApplyPolicy};

/// One in-flight message: a (component, value, label) payload plus the
/// spec book's independent labels for the same entries.
#[derive(Debug, Clone, PartialEq)]
pub struct McMessage {
    /// Global step at which the message was posted.
    pub sent_at: u64,
    /// Sending worker.
    pub src: u32,
    /// Engine payload: `(component, value, producing label)` — exactly
    /// the envelope payload of the cluster engine.
    pub comps: Vec<(u32, f64, u64)>,
    /// Spec labels, one per `comps` entry.
    pub spec: Vec<u64>,
}

impl McMessage {
    /// Canonical sort key (byte encoding of the whole message).
    fn sort_key(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.comps.len() * 28);
        enc_u64(&mut out, self.sent_at);
        enc_u64(&mut out, u64::from(self.src));
        for &(c, v, l) in &self.comps {
            enc_u64(&mut out, u64::from(c));
            enc_u64(&mut out, v.to_bits());
            enc_u64(&mut out, l);
        }
        for &s in &self.spec {
            enc_u64(&mut out, s);
        }
        out
    }
}

/// A canonical global state of the bounded cluster model.
#[derive(Debug, Clone, PartialEq)]
pub struct McState {
    /// Next global step to execute (1-based); terminal when
    /// `next_step > scope.steps`.
    pub next_step: u64,
    /// Per-worker local views.
    pub views: Vec<Vec<f64>>,
    /// Engine label book: written by the shared runtime step halves,
    /// recorded into traces, checked by properties.
    pub labels: Vec<Vec<u64>>,
    /// Spec label book: maintained independently from choice semantics;
    /// drives admissibility pruning. Divergence from `labels` IS a
    /// checked property violation.
    pub spec_labels: Vec<Vec<u64>>,
    /// Per-worker mailboxes, canonically sorted.
    pub mailboxes: Vec<Vec<McMessage>>,
    /// Per-worker read-label vector of the previous turn (engine book),
    /// kept only when `scope.track_read_history` — the out-of-order
    /// property compares consecutive turns of the same worker.
    pub prev_read: Vec<Vec<u64>>,
}

impl McState {
    /// The initial state of a scope: all views at `x0`, all labels 0,
    /// empty mailboxes.
    pub fn initial(scope: &Scope, problem: &McProblem) -> Self {
        let n = problem.n();
        Self {
            next_step: 1,
            views: vec![problem.x0.clone(); scope.workers],
            labels: vec![vec![0; n]; scope.workers],
            spec_labels: vec![vec![0; n]; scope.workers],
            mailboxes: vec![Vec::new(); scope.workers],
            prev_read: vec![Vec::new(); scope.workers],
        }
    }

    /// Total in-flight messages (for stats).
    pub fn in_flight(&self) -> usize {
        self.mailboxes.iter().map(Vec::len).sum()
    }
}

/// What the channel does with one posted exchange to one destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendChoice {
    /// The message is lost.
    Drop,
    /// The message is posted `copies` times (2 = duplicated), carrying
    /// the full block when `mask` is `None`, else the scope's partial
    /// mask with that index.
    Send {
        /// Index into `scope.partial_masks`; `None` posts the full block.
        mask: Option<usize>,
        /// 1 or 2 (duplication).
        copies: u8,
    },
}

/// The resolved nondeterminism of one producing step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepChoice {
    /// Mailbox indices (into the acting worker's canonical mailbox) to
    /// deliver, in application order. Indices not listed are *held*.
    pub deliver: Vec<usize>,
    /// One send choice per destination (destinations in ascending
    /// worker order, the acting worker skipped). Empty when no exchange
    /// is due this step.
    pub sends: Vec<SendChoice>,
}

/// Partial-order reduction mode of an exploration.
///
/// Reduction prunes choices whose successors are provably covered by a
/// retained representative (see [`enumerate_choices_por`]); verdicts
/// and reachable violation classes are unchanged, which the
/// `--por check` CLI mode and the tier-1 suite assert by running both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Por {
    /// Full, unreduced enumeration — the baseline the reduced run is
    /// checked against.
    #[default]
    Off,
    /// Reduced enumeration: redundant-delivery forcing, commuting
    /// reorder canonicalisation, and duplicate-send pruning.
    On,
}

/// Choices removed by partial-order reduction at one enumeration,
/// accumulated into [`crate::explore::ExploreStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PorCounts {
    /// Delivery sequences pruned (non-representative subsets /
    /// permutations).
    pub deliveries: u64,
    /// Send combinations pruned (redundant duplicate posts).
    pub sends: u64,
    /// Total step choices pruned (full cross-product minus kept).
    pub choices: u64,
}

/// Why a branch was cut instead of explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// A send would exceed the scope's mailbox capacity.
    Capacity,
    /// The spec label book left the scope's admissibility envelope —
    /// the branch is not an admissible schedule of this scope.
    Inadmissible,
}

/// Observations of one applied transition, consumed by the invariant
/// checks (everything here is derived, never fed back into the state).
#[derive(Debug, Clone)]
pub struct EdgeInfo {
    /// The executed global step.
    pub j: u64,
    /// The acting worker.
    pub worker: usize,
    /// Engine-book read labels at produce time (what the trace records).
    pub read_labels: Vec<u64>,
    /// The same worker's read labels at its previous turn, when the
    /// scope tracks read history.
    pub prev_read: Option<Vec<u64>>,
    /// `‖view − x*‖_∞` over the full read view, before producing.
    pub read_err: f64,
    /// `max_{i ∈ block} |new_i − x*_i|` of the produced block.
    pub produced_err: f64,
    /// System error measure `Φ` (max error over all views and all
    /// in-flight values) before the step.
    pub phi_before: f64,
    /// `Φ` after the step.
    pub phi_after: f64,
}

// ---------------------------------------------------------------------------
// Canonical encoding + 128-bit FNV-1a
// ---------------------------------------------------------------------------

fn enc_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Canonical byte encoding of a state. Length-prefixed, index-ordered,
/// IEEE bits for floats — bit-identical across platforms and runs.
pub fn canonical_bytes(s: &McState) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    enc_u64(&mut out, s.next_step);
    enc_u64(&mut out, s.views.len() as u64);
    for w in 0..s.views.len() {
        for &v in &s.views[w] {
            enc_u64(&mut out, v.to_bits());
        }
        for &l in &s.labels[w] {
            enc_u64(&mut out, l);
        }
        for &l in &s.spec_labels[w] {
            enc_u64(&mut out, l);
        }
        enc_u64(&mut out, s.mailboxes[w].len() as u64);
        for m in &s.mailboxes[w] {
            let k = m.sort_key();
            enc_u64(&mut out, k.len() as u64);
            out.extend_from_slice(&k);
        }
        enc_u64(&mut out, s.prev_read[w].len() as u64);
        for &l in &s.prev_read[w] {
            enc_u64(&mut out, l);
        }
    }
    out
}

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

/// 128-bit FNV-1a over an arbitrary canonical encoding — shared by the
/// cluster-regime and transport-seam state hashes.
pub(crate) fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// 128-bit FNV-1a over [`canonical_bytes`] — the dedup key of the
/// explorer. Pure function of the canonical encoding; a known-value
/// lock test pins it against accidental re-ordering of the encoding.
pub fn state_hash(s: &McState) -> u128 {
    fnv128(&canonical_bytes(s))
}

// ---------------------------------------------------------------------------
// Choice enumeration
// ---------------------------------------------------------------------------

/// All delivery sequences for a mailbox of `m` messages: subsets in
/// ascending index order for order-insensitive receivers
/// (`KeepFreshest` keeps the freshest label no matter the order), and
/// every permutation of every subset under `AsReceived`, where
/// application order is observable. Deterministic enumeration order.
fn delivery_choices(m: usize, policy: ApplyPolicy) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for mask in 0u32..(1u32 << m) {
        let subset: Vec<usize> = (0..m).filter(|&i| mask & (1 << i) != 0).collect();
        match policy {
            ApplyPolicy::KeepFreshest => out.push(subset),
            ApplyPolicy::AsReceived => permutations(&subset, &mut out),
        }
    }
    out
}

/// Pushes every permutation of `items` (lexicographic by construction).
fn permutations(items: &[usize], out: &mut Vec<Vec<usize>>) {
    if items.is_empty() {
        out.push(Vec::new());
        return;
    }
    fn rec(rest: &mut Vec<usize>, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(cur.clone());
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            cur.push(x);
            rec(rest, cur, out);
            cur.pop();
            rest.insert(i, x);
        }
    }
    rec(&mut items.to_vec(), &mut Vec::new(), out);
}

/// Send options for one destination under a scope.
fn send_options(scope: &Scope) -> Vec<SendChoice> {
    let mut out = vec![SendChoice::Send {
        mask: None,
        copies: 1,
    }];
    if scope.allow_dup {
        out.push(SendChoice::Send {
            mask: None,
            copies: 2,
        });
    }
    for i in 0..scope.partial_masks.len() {
        out.push(SendChoice::Send {
            mask: Some(i),
            copies: 1,
        });
    }
    if scope.allow_drop {
        out.push(SendChoice::Drop);
    }
    out
}

/// True when delivering `msg` to worker `w` changes nothing but the
/// mailbox: every payload entry is engine-stale (or bitwise-equal at an
/// equal label) *and* spec-stale. Under `KeepFreshest` labels only grow,
/// so a redundant message stays redundant for the rest of the branch —
/// holding it only multiplies timing-equivalent states.
fn message_redundant(state: &McState, w: usize, msg: &McMessage) -> bool {
    msg.comps.iter().enumerate().all(|(k, &(c, v, l))| {
        let c = c as usize;
        let engine_noop = l < state.labels[w][c]
            || (l == state.labels[w][c] && v.to_bits() == state.views[w][c].to_bits());
        engine_noop && msg.spec[k] <= state.spec_labels[w][c]
    })
}

/// True when applying `a` then `b` equals applying `b` then `a` for
/// *any* receiver state: the messages touch disjoint components, or
/// carry identical payload and spec labels (last-writer ties resolve
/// identically either way).
fn messages_commute(a: &McMessage, b: &McMessage) -> bool {
    if a.comps == b.comps && a.spec == b.spec {
        return true;
    }
    a.comps
        .iter()
        .all(|(ca, _, _)| b.comps.iter().all(|(cb, _, _)| ca != cb))
}

/// Canonical-representative filter for `AsReceived` delivery orders: a
/// permutation is the class representative iff no adjacent pair is an
/// *inversion of commuting messages* (swapping such a pair yields the
/// identical successor, and bubble-sorting by commuting swaps reaches
/// the unique locally-minimal order, so exactly one representative per
/// Mazurkiewicz class survives).
fn is_canonical_order(perm: &[usize], mbox: &[McMessage]) -> bool {
    perm.windows(2)
        .all(|p| p[0] < p[1] || !messages_commute(&mbox[p[0]], &mbox[p[1]]))
}

/// Enumerates every [`StepChoice`] available in `state` under `scope`,
/// in a deterministic canonical order (delivery choices outer, send
/// cross-product inner). Full enumeration — [`Por::Off`].
pub fn enumerate_choices(state: &McState, scope: &Scope) -> Vec<StepChoice> {
    enumerate_choices_por(state, scope, Por::Off).0
}

/// Enumerates the step choices of `state` under `scope`, applying the
/// partial-order reduction when `por` is [`Por::On`]:
///
/// - **Forced redundant delivery** (`KeepFreshest`, bug-free scopes):
///   messages that are no-ops for both label books must be delivered
///   now — holding them only branches on unobservable timing. Every
///   pruned subset's successor is reached by its superset
///   representative with the redundant messages absorbed earlier.
/// - **Commuting-reorder canonicalisation** (`AsReceived`): delivery
///   permutations that contain an adjacent inversion of commuting
///   messages are dropped; one representative per equivalence class of
///   identical successors survives (`is_canonical_order`).
/// - **Duplicate-send pruning** (`KeepFreshest`, bug-free scopes with
///   `allow_dup`): posting two identical copies is observationally
///   dominated by posting one — the second copy can only ever be
///   absorbed as a no-op or consume mailbox capacity (and capacity
///   pruning removes states, never violations).
///
/// The reductions are disabled under `inject_bug` scopes: the planted
/// engine defect makes the redundancy judgement unsound there, and
/// negative controls must see the full space.
pub fn enumerate_choices_por(
    state: &McState,
    scope: &Scope,
    por: Por,
) -> (Vec<StepChoice>, PorCounts) {
    let j = state.next_step;
    let w = scope.owner(j);
    let mbox = &state.mailboxes[w];
    let mut counts = PorCounts::default();
    let mut deliveries = delivery_choices(mbox.len(), scope.apply_policy);
    let deliveries_full = deliveries.len() as u64;
    if por == Por::On {
        match scope.apply_policy {
            ApplyPolicy::KeepFreshest if !scope.inject_bug => {
                let redundant: Vec<usize> = (0..mbox.len())
                    .filter(|&i| message_redundant(state, w, &mbox[i]))
                    .collect();
                if !redundant.is_empty() {
                    deliveries.retain(|d| redundant.iter().all(|r| d.contains(r)));
                }
            }
            ApplyPolicy::AsReceived => {
                deliveries.retain(|d| is_canonical_order(d, mbox));
            }
            ApplyPolicy::KeepFreshest => {}
        }
        counts.deliveries = deliveries_full - deliveries.len() as u64;
    }
    let (sends, sends_full): (Vec<Vec<SendChoice>>, u64) = if scope.exchange_due(j) {
        let mut per_dest = send_options(scope);
        let per_dest_full = per_dest.len() as u64;
        if por == Por::On
            && scope.apply_policy == ApplyPolicy::KeepFreshest
            && !scope.inject_bug
            && scope.allow_dup
        {
            per_dest.retain(|s| !matches!(s, SendChoice::Send { copies: 2, .. }));
        }
        let dests = (scope.workers - 1) as u32;
        let full = per_dest_full.pow(dests);
        counts.sends = full - (per_dest.len() as u64).pow(dests);
        let mut combos: Vec<Vec<SendChoice>> = vec![Vec::new()];
        for _ in 0..dests {
            combos = combos
                .iter()
                .flat_map(|c| {
                    per_dest.iter().map(move |&s| {
                        let mut c = c.clone();
                        c.push(s);
                        c
                    })
                })
                .collect();
        }
        (combos, full)
    } else {
        (vec![Vec::new()], 1)
    };
    let mut out = Vec::with_capacity(deliveries.len() * sends.len());
    for d in &deliveries {
        for s in &sends {
            out.push(StepChoice {
                deliver: d.clone(),
                sends: s.clone(),
            });
        }
    }
    counts.choices = deliveries_full * sends_full - out.len() as u64;
    (out, counts)
}

// ---------------------------------------------------------------------------
// The transition
// ---------------------------------------------------------------------------

/// Applies one message to the spec book with the same policy semantics
/// the engine book uses, but judged on spec labels — the two books
/// coincide exactly while the engine's bookkeeping is correct.
fn spec_apply(spec: &mut [u64], msg: &McMessage, policy: ApplyPolicy) {
    for (k, &(c, _, _)) in msg.comps.iter().enumerate() {
        let c = c as usize;
        let l = msg.spec[k];
        match policy {
            ApplyPolicy::AsReceived => spec[c] = l,
            ApplyPolicy::KeepFreshest => {
                if l >= spec[c] {
                    spec[c] = l;
                }
            }
        }
    }
}

/// Engine-book delivery used only under `inject_bug`: identical to
/// [`asynciter_runtime::apply_message`] except the *label* update for
/// the severed component is skipped — a modelled bookkeeping defect the
/// checker must catch (the value is still applied, so the run looks
/// healthy to anything that ignores labels).
fn buggy_apply(view: &mut [f64], labels: &mut [u64], comps: &[(u32, f64, u64)], severed: usize) {
    for &(c, v, l) in comps {
        let c = c as usize;
        view[c] = v;
        if c != severed {
            labels[c] = l;
        }
    }
}

/// System error measure `Φ`: the max-norm distance to `x*` over every
/// value anywhere in the system — all worker views and all in-flight
/// message payloads. The contraction certificate makes `Φ`
/// non-increasing along *every* admissible edge.
pub fn phi(state: &McState, problem: &McProblem) -> f64 {
    let mut m = 0.0_f64;
    for view in &state.views {
        for (c, &v) in view.iter().enumerate() {
            m = m.max((v - problem.xstar[c]).abs());
        }
    }
    for mbox in &state.mailboxes {
        for msg in mbox {
            for &(c, v, _) in &msg.comps {
                m = m.max((v - problem.xstar[c as usize]).abs());
            }
        }
    }
    m
}

/// Applies `choice` to `state`, producing the successor and the edge
/// observations, or the reason the branch is pruned.
///
/// When `trace` is given, the producing step is appended to it (the
/// counterexample rebuild path); exploration passes `None` and a
/// throwaway single-step trace is used instead.
///
/// # Errors
/// [`PruneReason`] for capacity or admissibility cuts.
///
/// # Panics
/// Panics when `choice` indexes outside the mailbox (enumerated choices
/// never do) or the operator produces a non-finite iterate (impossible
/// for the contraction scopes).
pub fn apply_choice(
    state: &McState,
    choice: &StepChoice,
    scope: &Scope,
    problem: &McProblem,
    trace: Option<&mut Trace>,
) -> Result<(McState, EdgeInfo), PruneReason> {
    let j = state.next_step;
    let w = scope.owner(j);
    let phi_before = phi(state, problem);
    let mut t = state.clone();

    // Deliveries, in the chosen order; everything else is held.
    for &idx in &choice.deliver {
        let msg = state.mailboxes[w][idx].clone();
        if scope.inject_bug {
            buggy_apply(
                &mut t.views[w],
                &mut t.labels[w],
                &msg.comps,
                scope.bug_component(),
            );
        } else {
            apply_message(
                &mut t.views[w],
                &mut t.labels[w],
                &msg.comps,
                scope.apply_policy,
            );
        }
        spec_apply(&mut t.spec_labels[w], &msg, scope.apply_policy);
    }
    let mut kept = 0usize;
    t.mailboxes[w].retain(|_| {
        let keep = !choice.deliver.contains(&kept);
        kept += 1;
        keep
    });

    // Admissibility pruning on the spec book: every label read at this
    // producing step must be inside the scope's delay envelope.
    let floor = scope.envelope.min_label(j);
    if t.spec_labels[w].iter().any(|&l| l < floor) {
        return Err(PruneReason::Inadmissible);
    }

    // Produce: the engine's own step half records the trace row and
    // stamps the block. Read-side observations are taken just before.
    let read_labels = t.labels[w].clone();
    let read_err = t.views[w]
        .iter()
        .enumerate()
        .map(|(c, &v)| (v - problem.xstar[c]).abs())
        .fold(0.0_f64, f64::max);
    let blocks = scope.blocks();
    let n = problem.n();
    let mut upd = vec![0.0; n];
    let mut scratch = vec![0.0; Operator::scratch_len(&problem.op)];
    let mut throwaway = Trace::new(n, LabelStore::Full);
    let tr = trace.unwrap_or(&mut throwaway);
    produce_step(
        &problem.op,
        &mut t.views[w],
        &mut t.labels[w],
        &blocks[w],
        j,
        tr,
        &mut upd,
        &mut scratch,
    )
    .expect("contraction scopes cannot produce non-finite iterates");
    for &i in &blocks[w] {
        t.spec_labels[w][i] = j;
    }
    let produced_err = blocks[w]
        .iter()
        .map(|&i| (t.views[w][i] - problem.xstar[i]).abs())
        .fold(0.0_f64, f64::max);
    let prev_read = if scope.track_read_history {
        let prev = std::mem::replace(&mut t.prev_read[w], read_labels.clone());
        (!prev.is_empty()).then_some(prev)
    } else {
        None
    };

    // Sends, destinations in ascending order.
    if scope.exchange_due(j) {
        let mut sends = choice.sends.iter();
        for dest in 0..scope.workers {
            if dest == w {
                continue;
            }
            let sc = sends.next().expect("one send choice per destination");
            match *sc {
                SendChoice::Drop => {}
                SendChoice::Send { mask, copies } => {
                    let comps_idx: Vec<usize> = match mask {
                        None => blocks[w].clone(),
                        Some(mi) => scope.partial_masks[mi]
                            .iter()
                            .map(|&k| blocks[w][k])
                            .collect(),
                    };
                    let comps: Vec<(u32, f64, u64)> = comps_idx
                        .iter()
                        .map(|&i| (i as u32, t.views[w][i], t.labels[w][i]))
                        .collect();
                    let spec: Vec<u64> = comps_idx.iter().map(|&i| t.spec_labels[w][i]).collect();
                    if t.mailboxes[dest].len() + copies as usize > scope.max_in_flight {
                        return Err(PruneReason::Capacity);
                    }
                    for _ in 0..copies {
                        t.mailboxes[dest].push(McMessage {
                            sent_at: j,
                            src: w as u32,
                            comps: comps.clone(),
                            spec: spec.clone(),
                        });
                    }
                }
            }
        }
    }

    // Canonicalise mailboxes so path-equivalent states hash equal.
    for mbox in &mut t.mailboxes {
        mbox.sort_by_cached_key(McMessage::sort_key);
    }
    t.next_step = j + 1;
    let phi_after = phi(&t, problem);
    let edge = EdgeInfo {
        j,
        worker: w,
        read_labels,
        prev_read,
        read_err,
        produced_err,
        phi_before,
        phi_after,
    };
    Ok((t, edge))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_enumeration_counts() {
        // KeepFreshest: subsets only.
        assert_eq!(delivery_choices(2, ApplyPolicy::KeepFreshest).len(), 4);
        // AsReceived: ordered subsets: 1 + 2 + 2 = 5 for m = 2.
        assert_eq!(delivery_choices(2, ApplyPolicy::AsReceived).len(), 5);
        // m = 3: 1 + 3 + 6 + 6 = 16.
        assert_eq!(delivery_choices(3, ApplyPolicy::AsReceived).len(), 16);
    }

    #[test]
    fn state_hash_is_stable_and_sensitive() {
        let scope = Scope::quick();
        let problem = McProblem::build();
        let s = McState::initial(&scope, &problem);
        assert_eq!(state_hash(&s), state_hash(&s.clone()));
        let mut s2 = s.clone();
        s2.labels[0][0] = 1;
        assert_ne!(state_hash(&s), state_hash(&s2));
        let mut s3 = s.clone();
        s3.spec_labels[0][0] = 1;
        assert_ne!(state_hash(&s), state_hash(&s3), "spec book is hashed");
    }

    #[test]
    fn mailbox_order_is_canonical() {
        let scope = Scope::quick();
        let problem = McProblem::build();
        let mk = |sent_at, src| McMessage {
            sent_at,
            src,
            comps: vec![(0, 1.0, sent_at)],
            spec: vec![sent_at],
        };
        let mut a = McState::initial(&scope, &problem);
        a.mailboxes[0] = vec![mk(1, 0), mk(3, 1)];
        let mut b = McState::initial(&scope, &problem);
        b.mailboxes[0] = vec![mk(3, 1), mk(1, 0)];
        for s in [&mut a, &mut b] {
            for mbox in &mut s.mailboxes {
                mbox.sort_by_cached_key(McMessage::sort_key);
            }
        }
        assert_eq!(state_hash(&a), state_hash(&b));
    }

    #[test]
    fn transition_prunes_capacity_and_inadmissible() {
        let problem = McProblem::build();
        let mut scope = Scope::quick();
        scope.max_in_flight = 0;
        let s = McState::initial(&scope, &problem);
        let send_full = StepChoice {
            deliver: vec![],
            sends: vec![SendChoice::Send {
                mask: None,
                copies: 1,
            }],
        };
        assert_eq!(
            apply_choice(&s, &send_full, &scope, &problem, None).unwrap_err(),
            PruneReason::Capacity
        );
        // A tight envelope prunes a produce over all-stale labels.
        let mut tight = Scope::inject();
        tight.inject_bug = false;
        let mut s = McState::initial(&tight, &problem);
        s.next_step = 3; // min_label(3) = 1 under Bounded(2)
        let hold_all = StepChoice {
            deliver: vec![],
            sends: vec![SendChoice::Send {
                mask: None,
                copies: 1,
            }],
        };
        assert_eq!(
            apply_choice(&s, &hold_all, &tight, &problem, None).unwrap_err(),
            PruneReason::Inadmissible
        );
    }

    #[test]
    fn phi_never_increases_along_a_fault_free_edge() {
        let scope = Scope::quick();
        let problem = McProblem::build();
        let s = McState::initial(&scope, &problem);
        let choice = &enumerate_choices(&s, &scope)[0];
        let (t, edge) = apply_choice(&s, choice, &scope, &problem, None).unwrap();
        assert!(edge.phi_after <= edge.phi_before);
        assert!(edge.produced_err <= problem.alpha * edge.read_err + 1e-12);
        assert_eq!(t.next_step, 2);
        assert_eq!(t.labels, t.spec_labels, "books agree without the bug");
    }
}
