//! # asynciter-mc
//!
//! Bounded exhaustive model checking for the cluster (message-passing)
//! regime — the *verified* counterpart of the sampling conformance
//! fuzzer.
//!
//! The paper's central claim is that asynchronous iterations converge
//! under **any** admissible schedule: unbounded delays, out-of-order
//! messages, lost and duplicated messages, flexible (partial)
//! communication. The PR 3/5 fuzzer *samples* that schedule space; this
//! crate *enumerates* it for small scopes, so within a scope the claim
//! is checked on every reachable interleaving, not a random subset.
//!
//! ## How it works
//!
//! - A [`scope::Scope`] fixes a small universe: 2–3 workers, ≤ 8
//!   producing steps, which channel nondeterminism is switched on
//!   (drops, duplicates, holds/reorders, partial-exchange subsets), a
//!   mailbox capacity, and a
//!   [`DelayEnvelope`](asynciter_models::conditions::DelayEnvelope)
//!   used as an
//!   *admissibility pruning predicate* — branches whose read staleness
//!   leaves the envelope are not schedules the theorem speaks about, so
//!   they are pruned (and counted) rather than explored.
//! - [`state::McState`] is the canonical global state: per-worker views
//!   and label books plus canonically-sorted mailbox multisets. States
//!   are deduplicated by a 128-bit FNV-1a hash over a canonical byte
//!   encoding ([`state::state_hash`]), stored in a `BTreeSet` — no
//!   `HashMap` iteration order anywhere near a verdict.
//! - The per-step transition reuses the engine's own step halves
//!   ([`asynciter_runtime::apply_message`] /
//!   [`asynciter_runtime::produce_step`]), so the model checker steps
//!   the *same* arithmetic as `ClusterEngine`. Alongside the engine's
//!   label book the explorer maintains an independent *spec* book from
//!   choice semantics alone; admissibility pruning reads the spec book,
//!   property checks read the engine book, so a bookkeeping bug in the
//!   engine path cannot hide itself by steering the search
//!   ([`mod@explore`]).
//! - Checked properties ([`invariants`]): residual monotonicity under
//!   the operator's contraction certificate, `KeepFreshest` label
//!   monotonicity, admissibility-witness preservation (spec book ≡
//!   engine book + condition (a)), and convergence-at-horizon with a
//!   bit-identical `Replay` cross-check of the recorded trace.
//! - Every violation is rebuilt into a producing-step
//!   [`Trace`](asynciter_models::trace::Trace) in the
//!   corpus format, minimised through the PR 3 shrinker, and saved as a
//!   `.trace` the tier-1 suite can replay forever
//!   ([`counterexample`]).
//!
//! The `mc` binary in `asynciter-bench` drives all of this from the
//! command line (`--scope quick --stats`), and `--inject-mc-bug` is the
//! standing negative control: a deliberately severed block-boundary
//! label update that the explorer must find, shrink and emit.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod cli;
pub mod counterexample;
pub mod explore;
pub mod invariants;
pub mod scope;
pub mod seam;
pub mod state;

pub use counterexample::{find_reorder_demo, inject_bug_demo, CounterexampleReport};
pub use explore::{
    explore, explore_check_por, ExploreOutcome, ExploreStats, FoundViolation, Strategy,
};
pub use invariants::Property;
pub use scope::{McProblem, Scope};
pub use seam::{
    seam_bug_demo, seam_explore, seam_rebuild, seam_state_hash, SeamBug, SeamOutcome, SeamScope,
    SeamState, SeamStats,
};
pub use state::{state_hash, McMessage, McState, Por, SendChoice, StepChoice};
