//! The bounded exhaustive explorer: DFS/BFS over canonical states with
//! state-hash deduplication and budget guards.
//!
//! Both strategies enumerate the identical reachable-state set — the
//! frontier discipline only changes *visit order* — so visited counts,
//! dedup hits, edge counts, prune counts and verdicts are
//! strategy-independent, and the tier-1 suite locks that equality. The
//! visited set is a `BTreeSet<u128>` of [`crate::state::state_hash`]
//! values: platform-stable, iteration-order-free.
//!
//! Each frontier node carries its choice path from the root (scopes are
//! ≤ 8 steps deep, so paths are tiny); on a violation the path is
//! replayed deterministically to rebuild the producing-step trace for
//! the counterexample pipeline.

use crate::invariants::{check_edge, check_reorder, check_terminal, Violation};
use crate::scope::{McProblem, Scope};
use crate::state::{apply_choice, enumerate_choices_por, state_hash, McState, Por, PruneReason};
use asynciter_models::{LabelStore, Trace};
use std::collections::{BTreeSet, VecDeque};

/// Frontier discipline. Coverage is identical; only visit order moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first (stack) — default; minimal frontier memory.
    Dfs,
    /// Breadth-first (queue) — shortest-path counterexamples.
    Bfs,
}

impl Strategy {
    /// Parses `"dfs"` / `"bfs"`.
    ///
    /// # Errors
    /// Anything else, as a message.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "dfs" => Ok(Strategy::Dfs),
            "bfs" => Ok(Strategy::Bfs),
            other => Err(format!("unknown strategy '{other}' (valid: dfs, bfs)")),
        }
    }
}

/// Counters of one exploration run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states visited (dedup keys inserted), root included.
    pub visited: u64,
    /// Successors that hashed to an already-visited state.
    pub dedup_hits: u64,
    /// Transitions applied (excludes pruned branches).
    pub edges: u64,
    /// Terminal (horizon) states reached.
    pub terminals: u64,
    /// Branches cut by mailbox capacity.
    pub pruned_capacity: u64,
    /// Branches cut by the admissibility envelope (spec book).
    pub pruned_inadmissible: u64,
    /// Delivery sequences pruned by partial-order reduction
    /// (non-representative subsets / permutations). Zero under
    /// [`Por::Off`].
    pub por_pruned_deliveries: u64,
    /// Send combinations pruned by partial-order reduction (redundant
    /// duplicate posts). Zero under [`Por::Off`].
    pub por_pruned_sends: u64,
    /// Total step choices pruned by partial-order reduction. Zero under
    /// [`Por::Off`].
    pub por_pruned_choices: u64,
    /// Peak frontier size (stack or queue).
    pub max_frontier: u64,
}

/// A violation plus the deterministic choice path that reaches it.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// The failed property and diagnosis.
    pub violation: Violation,
    /// Choice indices (into [`enumerate_choices_por`] at each state
    /// along the path) from the root up to and including the violating
    /// edge. Indices are relative to the enumeration under [`Self::por`].
    pub path: Vec<u32>,
    /// The reduction mode the path was found (and must be replayed)
    /// under — choice indices are not portable across modes.
    pub por: Por,
}

/// Result of exploring a scope.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Exploration counters.
    pub stats: ExploreStats,
    /// First violation found, if any (exploration stops there).
    pub violation: Option<FoundViolation>,
    /// True when the state budget cut exploration short (the sweep is
    /// then *not* exhaustive and the verdict only covers visited
    /// states).
    pub truncated: bool,
}

/// Exhaustively explores `scope`, checking every edge and terminal
/// invariant, until the space is exhausted, a violation is found, or
/// `max_states` distinct states have been visited.
///
/// `find_reorder` switches the goal: edge invariants still guard the
/// run, but the explorer *hunts* the out-of-order label-regression
/// witness and reports it as the (sought) violation.
///
/// `por` selects the enumeration: [`Por::On`] explores the reduced
/// space (same verdicts and violation classes, fewer states — see
/// [`enumerate_choices_por`]); [`explore_check_por`] runs both and
/// asserts the equivalence.
pub fn explore(
    scope: &Scope,
    problem: &McProblem,
    strategy: Strategy,
    max_states: u64,
    find_reorder: bool,
    por: Por,
) -> ExploreOutcome {
    let mut stats = ExploreStats::default();
    let mut visited: BTreeSet<u128> = BTreeSet::new();
    let root = McState::initial(scope, problem);
    visited.insert(state_hash(&root));
    stats.visited = 1;

    let mut frontier: VecDeque<(McState, Vec<u32>)> = VecDeque::new();
    frontier.push_back((root, Vec::new()));
    let mut truncated = false;

    while let Some((state, path)) = match strategy {
        Strategy::Dfs => frontier.pop_back(),
        Strategy::Bfs => frontier.pop_front(),
    } {
        if state.next_step > scope.steps {
            stats.terminals += 1;
            let (trace, terminal) = rebuild(scope, problem, &path, por);
            debug_assert_eq!(terminal.next_step, state.next_step);
            if let Some(v) = check_terminal(scope, problem, &state, &trace) {
                return ExploreOutcome {
                    stats,
                    violation: Some(FoundViolation {
                        violation: v,
                        path,
                        por,
                    }),
                    truncated,
                };
            }
            continue;
        }
        let (choices, por_counts) = enumerate_choices_por(&state, scope, por);
        stats.por_pruned_deliveries += por_counts.deliveries;
        stats.por_pruned_sends += por_counts.sends;
        stats.por_pruned_choices += por_counts.choices;
        for (i, choice) in choices.iter().enumerate() {
            match apply_choice(&state, choice, scope, problem, None) {
                Err(PruneReason::Capacity) => stats.pruned_capacity += 1,
                Err(PruneReason::Inadmissible) => stats.pruned_inadmissible += 1,
                Ok((child, edge)) => {
                    stats.edges += 1;
                    let mut found = check_edge(scope, problem, &state, &child, &edge);
                    if found.is_none() && find_reorder {
                        found = check_reorder(problem, &edge);
                    }
                    if let Some(v) = found {
                        let mut path = path.clone();
                        path.push(i as u32);
                        return ExploreOutcome {
                            stats,
                            violation: Some(FoundViolation {
                                violation: v,
                                path,
                                por,
                            }),
                            truncated,
                        };
                    }
                    if visited.insert(state_hash(&child)) {
                        if stats.visited >= max_states {
                            truncated = true;
                            continue;
                        }
                        stats.visited += 1;
                        let mut path = path.clone();
                        path.push(i as u32);
                        frontier.push_back((child, path));
                        stats.max_frontier = stats.max_frontier.max(frontier.len() as u64);
                    } else {
                        stats.dedup_hits += 1;
                    }
                }
            }
        }
    }
    ExploreOutcome {
        stats,
        violation: None,
        truncated,
    }
}

/// Deterministically replays a choice path from the root, accumulating
/// the producing-step trace — the bridge from a model-checking path to
/// a corpus-format counterexample. `por` must be the mode the path was
/// found under (choice indices are relative to the enumeration).
///
/// # Panics
/// Panics when the path indexes a pruned or out-of-range choice (paths
/// produced by [`explore`] never do).
pub fn rebuild(scope: &Scope, problem: &McProblem, path: &[u32], por: Por) -> (Trace, McState) {
    let mut state = McState::initial(scope, problem);
    let mut trace = Trace::new(problem.n(), LabelStore::Full);
    for &i in path {
        let (choices, _) = enumerate_choices_por(&state, scope, por);
        let choice = &choices[i as usize];
        let (next, _edge) = apply_choice(&state, choice, scope, problem, Some(&mut trace))
            .expect("explored paths never hit a pruned branch");
        state = next;
    }
    (trace, state)
}

/// Runs the same sweep under [`Por::Off`] and [`Por::On`] and asserts
/// the reduction is verdict-preserving: identical exhaustiveness,
/// identical violation presence, and — when a violation exists —
/// identical property class. Returns both outcomes (off, on) for
/// reporting.
///
/// # Errors
/// A diagnostic message naming the first divergence.
pub fn explore_check_por(
    scope: &Scope,
    problem: &McProblem,
    strategy: Strategy,
    max_states: u64,
    find_reorder: bool,
) -> Result<(ExploreOutcome, ExploreOutcome), String> {
    let off = explore(scope, problem, strategy, max_states, find_reorder, Por::Off);
    let on = explore(scope, problem, strategy, max_states, find_reorder, Por::On);
    if off.truncated != on.truncated {
        return Err(format!(
            "por-check divergence on scope '{}': truncated off={} on={}",
            scope.name, off.truncated, on.truncated
        ));
    }
    match (&off.violation, &on.violation) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            if a.violation.property != b.violation.property {
                return Err(format!(
                    "por-check divergence on scope '{}': violation class off={} on={}",
                    scope.name,
                    a.violation.property.id(),
                    b.violation.property.id()
                ));
            }
        }
        (a, b) => {
            return Err(format!(
                "por-check divergence on scope '{}': violation off={} on={}",
                scope.name,
                a.is_some(),
                b.is_some()
            ));
        }
    }
    if on.stats.visited > off.stats.visited {
        return Err(format!(
            "por-check divergence on scope '{}': reduction grew the space ({} > {})",
            scope.name, on.stats.visited, off.stats.visited
        ));
    }
    Ok((off, on))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_scope_space_is_tiny_and_caught() {
        let scope = Scope::inject();
        let problem = McProblem::build();
        let out = explore(&scope, &problem, Strategy::Dfs, 100_000, false, Por::Off);
        let v = out.violation.expect("the injected bug must be found");
        assert_eq!(
            v.violation.property,
            crate::invariants::Property::Admissibility
        );
        assert!(!out.truncated);
    }

    #[test]
    fn rebuild_follows_the_found_path() {
        let scope = Scope::inject();
        let problem = McProblem::build();
        let out = explore(&scope, &problem, Strategy::Dfs, 100_000, false, Por::Off);
        let found = out.violation.unwrap();
        let (trace, state) = rebuild(&scope, &problem, &found.path, found.por);
        assert_eq!(trace.len() as u64, found.path.len() as u64);
        assert_eq!(state.next_step, found.path.len() as u64 + 1);
    }

    #[test]
    fn por_check_holds_on_quick_and_reorder() {
        let problem = McProblem::build();
        // quick (KeepFreshest + dup): redundant-delivery forcing and
        // duplicate-send pruning both fire and must shrink the space.
        let (off, on) =
            explore_check_por(&Scope::quick(), &problem, Strategy::Dfs, 1_000_000, false).unwrap();
        assert!(
            on.stats.visited < off.stats.visited,
            "reduction must shrink the quick scope"
        );
        assert!(on.stats.por_pruned_choices > 0);
        assert_eq!(off.stats.por_pruned_choices, 0);
        // reorder (AsReceived, single sender per mailbox): nothing
        // commutes, so the reduction may be a no-op — but the
        // equivalence contract must still hold.
        explore_check_por(&Scope::reorder(), &problem, Strategy::Dfs, 1_000_000, false).unwrap();
    }
}
