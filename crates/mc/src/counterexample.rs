//! From model-checking violation to committed regression test.
//!
//! A violation found by the explorer is a *choice path*; this module
//! rebuilds it into a producing-step [`Trace`] in the corpus format,
//! minimises it through the PR 3 shrinker under a trace-pure predicate
//! that preserves the violation class, and saves it as a `.trace` the
//! tier-1 suite replays bit for bit. The two deterministic demos are
//! the committed fixtures' generators:
//!
//! - [`inject_bug_demo`] — explores the `inject` scope with the severed
//!   block-boundary label bug planted, and emits the shrunk
//!   counterexample (`tests/corpus/mc-bug-severed-apply.trace`);
//! - [`find_reorder_demo`] — explores the `reorder` scope hunting the
//!   out-of-order label-regression class of the committed
//!   `fault-cluster-reorder.trace`, proving the bounded scope
//!   *rediscovers* it, and emits the shrunk witness
//!   (`tests/corpus/mc-reorder.trace`).
//!
//! Nothing in this module (or the whole crate) draws randomness: same
//! scope, same search, same counterexample, byte for byte.

use crate::explore::{explore, rebuild, FoundViolation, Strategy};
use crate::invariants::Property;
use crate::scope::{McProblem, Scope};
use crate::state::Por;
use asynciter_conformance::cluster::has_label_regression;
use asynciter_conformance::corpus::save_trace;
use asynciter_conformance::shrink::shrink_trace;
use asynciter_models::conditions::DelayEnvelope;
use asynciter_models::Trace;
use std::path::Path;

/// Shrink budget for counterexample minimisation (predicate calls).
const SHRINK_BUDGET: u64 = 20_000;

/// Summary of an emitted counterexample.
#[derive(Debug, Clone)]
pub struct CounterexampleReport {
    /// The violated property.
    pub property: Property,
    /// Diagnosis carried by the violation.
    pub detail: String,
    /// Steps in the rebuilt (pre-shrink) trace.
    pub orig_steps: u64,
    /// Steps in the minimised trace.
    pub shrunk_steps: u64,
    /// Shrinker predicate evaluations spent.
    pub shrink_attempts: u64,
}

/// True when some recorded read label sits outside `envelope` — the
/// trace-level signature of a frozen/corrupted label book under a
/// delivery-forcing envelope. Trace-pure, so it drives the shrinker.
pub fn envelope_violation(trace: &Trace, envelope: DelayEnvelope) -> bool {
    (1..=trace.len() as u64).any(|j| {
        let floor = envelope.min_label(j);
        trace
            .labels(j)
            .map(|ls| ls.iter().any(|&l| l < floor))
            .unwrap_or(false)
    })
}

/// The trace-pure shrink predicate for a violation class, when one
/// exists. Properties whose failure is not a function of the trace
/// alone (e.g. a replay divergence rooted in engine state) fall back to
/// the envelope signature, and the caller keeps the unshrunk trace if
/// that signature is absent.
fn shrink_predicate(property: Property, scope: &Scope) -> Box<dyn FnMut(&Trace) -> bool + '_> {
    match property {
        Property::KeepFreshest | Property::Reorder => {
            let workers = scope.workers;
            Box::new(move |t: &Trace| has_label_regression(t, workers))
        }
        _ => {
            let envelope = scope.envelope;
            Box::new(move |t: &Trace| envelope_violation(t, envelope))
        }
    }
}

/// Rebuilds, minimises and saves the counterexample of a found
/// violation. The emitted file is the corpus `.trace` format.
///
/// # Errors
/// I/O failures from saving, as a message.
pub fn emit_counterexample(
    scope: &Scope,
    problem: &McProblem,
    found: &FoundViolation,
    out: &Path,
) -> Result<CounterexampleReport, String> {
    let (trace, _terminal) = rebuild(scope, problem, &found.path, found.por);
    let orig_steps = trace.len() as u64;
    let mut pred = shrink_predicate(found.violation.property, scope);
    let result = shrink_trace(&trace, &mut pred, SHRINK_BUDGET);
    drop(pred);
    save_trace(out, &result.trace)?;
    Ok(CounterexampleReport {
        property: found.violation.property,
        detail: found.violation.detail.clone(),
        orig_steps,
        shrunk_steps: result.trace.len() as u64,
        shrink_attempts: result.attempts,
    })
}

/// Negative control: plants the severed block-boundary label bug,
/// proves the explorer finds it, and emits the shrunk, replayable
/// counterexample to `out`. Returns `(orig_steps, shrunk_steps)`.
///
/// # Errors
/// When the explorer fails to find the bug (the checker has a blind
/// spot) or emission fails.
pub fn inject_bug_demo(out: &Path) -> Result<(u64, u64), String> {
    let scope = Scope::inject();
    let problem = McProblem::build();
    // The demos stay on `Por::Off`: the committed fixtures are locked
    // byte for byte, and the reduced enumeration would find a different
    // (equally valid) representative path.
    let outcome = explore(&scope, &problem, Strategy::Dfs, 1_000_000, false, Por::Off);
    let found = outcome
        .violation
        .ok_or("inject-mc-bug: explorer did not find the planted bug — blind spot")?;
    if found.violation.property != Property::Admissibility {
        return Err(format!(
            "inject-mc-bug: expected an admissibility (book-divergence) catch, got {}: {}",
            found.violation.property.id(),
            found.violation.detail
        ));
    }
    let report = emit_counterexample(&scope, &problem, &found, out)?;
    Ok((report.orig_steps, report.shrunk_steps))
}

/// Rediscovery probe: explores the `reorder` scope hunting the
/// out-of-order label-regression class and emits the shrunk witness to
/// `out`. Returns `(orig_steps, shrunk_steps)`.
///
/// # Errors
/// When no reorder witness exists in the scope (a regression in the
/// channel model) or emission fails.
pub fn find_reorder_demo(out: &Path) -> Result<(u64, u64), String> {
    let scope = Scope::reorder();
    let problem = McProblem::build();
    let outcome = explore(&scope, &problem, Strategy::Dfs, 1_000_000, true, Por::Off);
    let found = outcome
        .violation
        .ok_or("find-reorder: scope no longer exhibits out-of-order application")?;
    if found.violation.property != Property::Reorder {
        return Err(format!(
            "find-reorder: unexpected violation {}: {}",
            found.violation.property.id(),
            found.violation.detail
        ));
    }
    let (trace, _) = rebuild(&scope, &problem, &found.path, found.por);
    if !has_label_regression(&trace, scope.workers) {
        return Err("find-reorder: rebuilt trace lost the regression".into());
    }
    let report = emit_counterexample(&scope, &problem, &found, out)?;
    Ok((report.orig_steps, report.shrunk_steps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_violation_detects_frozen_labels() {
        use asynciter_models::{LabelStore, Trace};
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[0], &[0, 0]);
        t.push_step(&[1], &[1, 0]);
        t.push_step(&[0], &[1, 2]);
        // Bounded(2): min_label(3) = 1; all labels ≥ 1 at j=3 → ok.
        assert!(!envelope_violation(&t, DelayEnvelope::Bounded(2)));
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[0], &[0, 0]);
        t.push_step(&[1], &[1, 0]);
        t.push_step(&[0], &[1, 0]); // component 1 frozen at 0 < min_label(3)
        assert!(envelope_violation(&t, DelayEnvelope::Bounded(2)));
    }

    #[test]
    fn inject_demo_emits_a_small_replayable_counterexample() {
        let dir = std::env::temp_dir().join("asynciter-mc-inject-demo-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("bug.trace");
        let (orig, shrunk) = inject_bug_demo(&out).expect("demo finds the bug");
        assert!(orig >= 3, "bug needs the boundary message read: {orig}");
        assert!(shrunk <= orig);
        let trace = asynciter_conformance::corpus::load_trace(&out).unwrap();
        assert!(envelope_violation(&trace, Scope::inject().envelope));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
