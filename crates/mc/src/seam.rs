//! Bounded exhaustive model checking of the PR 7 transport seam itself:
//! every [`SendFate`] the `FaultEndpoint` could draw, over the same
//! `apply_message` / `produce_block` step halves the threaded engine
//! runs.
//!
//! The cluster-regime scopes ([`crate::scope::Scope`]) enumerate an
//! *abstract* channel (per-receiver mailboxes with hold/drop/dup as
//! delivery-subset choices). This module instead models the concrete
//! concurrent stack of `crates/runtime`:
//!
//! - **Sender-side faults, exactly as `FaultEndpoint` applies them.**
//!   Each exchange enumerates a [`SendFate`] — drop, prompt delivery,
//!   prompt duplicate, or parking behind `hold` later sends — and the
//!   model's bookkeeping (per-sender send counters, parked-message
//!   release when the counter passes the release mark) is the same
//!   arithmetic as `FaultEndpoint::send_with_fate`.
//! - **FIFO channels, `AsReceived` application.** `MpscTransport` is
//!   FIFO per sender/receiver pair and the threaded engine's default
//!   apply policy is `AsReceived`; with the committed ≤ 2-worker seam
//!   scopes every receiver has exactly one sender, so the drain order
//!   of a worker's inbox is fully determined by the fate history — the
//!   *only* nondeterminism is which worker steps next and what the
//!   fault layer does to each send, which is precisely what the
//!   explorer enumerates.
//! - **Linearised free-running steps.** The threaded engine's workers
//!   drain their whole inbox, take the next global step number from a
//!   shared counter, produce, then exchange. A model transition is one
//!   such worker step; because a message posted mid-step is
//!   indistinguishable from one posted just after it (it waits for the
//!   receiver's next drain either way), interleaving whole worker steps
//!   covers every behaviour of the finer-grained concurrent execution.
//!   A steering bound (`lag`) keeps worker progress within the scopes
//!   the admissibility witness speaks about.
//!
//! With one worker the seam has a single schedule, and the explorer's
//! terminal state must match the sequential `Cluster{1}` engine **bit
//! for bit** — the tier-1 `ThreadedCluster{1} ≡ Cluster{1}` test lifted
//! from one sampled run to an exhaustive bounded statement. With two
//! workers the healthy scope verifies every invariant on every fate
//! interleaving, and three planted transport bugs (one per fault kind:
//! hold, drop, dup) are the standing negative controls, each caught as
//! an engine/spec label-book divergence and shrunk to a committed
//! corpus trace.

use crate::counterexample::envelope_violation;
use crate::invariants::{Property, Violation, ABS_EPS, REL_EPS};
use crate::scope::{McProblem, MC_DIM};
use crate::state::fnv128;
use asynciter_conformance::corpus::save_trace;
use asynciter_conformance::shrink::shrink_trace;
use asynciter_models::conditions::{AdmissibilityWitness, DelayEnvelope};
use asynciter_models::{LabelStore, Partition, Trace};
use asynciter_opt::traits::Operator;
use asynciter_runtime::transport::SendFate;
use asynciter_runtime::{apply_message, produce_step, ApplyPolicy};
use std::collections::{BTreeSet, VecDeque};
use std::path::Path;

/// The planted transport defects — one per `FaultEndpoint` fault kind,
/// each a realistic seam bug that corrupts the *engine-side* message
/// while the spec book keeps modelling the chosen fate correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeamBug {
    /// A message released from hold arrives with its label metadata
    /// lost: values applied, engine label update severed. (A transport
    /// that re-serialises parked payloads and drops the label frame.)
    Hold,
    /// A dropped send leaks: the spec models the loss, but the message
    /// still reaches the engine — with zeroed labels. (A fault layer
    /// that marks a buffer dropped without unlinking it.)
    Drop,
    /// The prompt duplicate copy is torn: the engine sees it with
    /// zeroed labels. (A duplication path that clones the payload but
    /// not the label frame.) Detectable exactly when the original is
    /// parked behind the copy.
    Dup,
}

impl SeamBug {
    /// Stable identifier (CLI flag suffix, artefact file names).
    pub fn id(self) -> &'static str {
        match self {
            SeamBug::Hold => "hold",
            SeamBug::Drop => "drop",
            SeamBug::Dup => "dup",
        }
    }
}

/// One bounded universe over the transport seam.
#[derive(Debug, Clone)]
pub struct SeamScope {
    /// Scope name (reports, artefact file names).
    pub name: String,
    /// Worker count (1 or 2 — one sender per receiver keeps the FIFO
    /// drain order deterministic, see the module docs).
    pub workers: usize,
    /// Updates each worker performs (horizon = `workers * rounds`
    /// producing steps).
    pub rounds: u64,
    /// A worker posts its block every this many of its own updates.
    pub exchange_every: u64,
    /// Admissibility envelope, used as the spec-book pruning predicate
    /// exactly as in the cluster-regime scopes.
    pub envelope: DelayEnvelope,
    /// Steering bound: a worker may act only while its completed-update
    /// lead over the slowest worker is `< lag`.
    pub lag: u64,
    /// Fates enumerate `hold` in `0..=hold_max` sends of parking.
    pub hold_max: u64,
    /// Enumerate the `Drop` fate.
    pub allow_drop: bool,
    /// Enumerate prompt-duplicate fates.
    pub allow_dup: bool,
    /// Per-receiver bound on queued + parked messages; fates that would
    /// exceed it prune the branch.
    pub max_in_flight: usize,
    /// Planted transport defect, if any (negative controls).
    pub bug: Option<SeamBug>,
}

impl SeamScope {
    /// The single-schedule seam: one free-running worker, faultless
    /// transport. Exhaustive trivially — and its one terminal state is
    /// asserted bit-identical to the sequential `Cluster{1}` engine,
    /// the exhaustive form of the `ThreadedCluster{1} ≡ Cluster{1}`
    /// conformance test.
    pub fn seam1() -> Self {
        Self {
            name: "seam1".into(),
            workers: 1,
            rounds: 4,
            exchange_every: 1,
            envelope: DelayEnvelope::Bounded(4),
            lag: 1,
            hold_max: 0,
            allow_drop: false,
            allow_dup: false,
            max_in_flight: 2,
            bug: None,
        }
    }

    /// The two-worker seam sweep: every interleaving of free-running
    /// worker steps × every `FaultEndpoint` fate (drop, dup, hold up to
    /// 2 sends) on every exchange.
    pub fn seam2() -> Self {
        Self {
            name: "seam2".into(),
            workers: 2,
            rounds: 3,
            exchange_every: 1,
            envelope: DelayEnvelope::Bounded(6),
            lag: 2,
            hold_max: 2,
            allow_drop: true,
            allow_dup: true,
            max_in_flight: 3,
            bug: None,
        }
    }

    /// The negative-control universe for one planted fault-kind bug:
    /// `seam2` with a tighter envelope, so the corrupted (zeroed /
    /// frozen) engine labels sit far below the admissibility floor and
    /// the shrinker has a trace-pure signature to minimise against.
    pub fn seam_bug(bug: SeamBug) -> Self {
        Self {
            name: format!("seam-bug-{}", bug.id()),
            envelope: DelayEnvelope::Bounded(3),
            bug: Some(bug),
            ..Self::seam2()
        }
    }

    /// Looks a named seam scope up.
    ///
    /// # Errors
    /// Unknown name, as a message listing the valid ones.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name {
            "seam1" => Ok(Self::seam1()),
            "seam2" => Ok(Self::seam2()),
            other => Err(format!(
                "unknown seam scope '{other}' (valid: seam1, seam2)"
            )),
        }
    }

    /// The owned block of every worker.
    ///
    /// # Panics
    /// Never for the committed scopes (the partition is valid).
    pub fn blocks(&self) -> Vec<Vec<usize>> {
        let p = Partition::blocks(MC_DIM, self.workers).expect("seam partition");
        (0..self.workers).map(|w| p.components_of(w)).collect()
    }

    /// Total producing steps of the scope.
    pub fn steps(&self) -> u64 {
        self.workers as u64 * self.rounds
    }

    /// The admissibility-witness activation-gap bound implied by the
    /// steering constraint: a worker that just produced may lead by up
    /// to `lag`, and each other worker can then advance until it leads
    /// by `lag` itself — at most `2·lag` of its updates — before the
    /// first worker must act again.
    pub fn witness_gap(&self) -> u64 {
        if self.workers == 1 {
            1
        } else {
            (self.workers as u64 - 1) * 2 * self.lag + 1
        }
    }

    /// One-line description for reports.
    pub fn describe(&self) -> String {
        format!(
            "seam scope {}: {} workers x {} rounds (AsReceived, FIFO per sender), \
             envelope {}, lag {}, hold<= {}, drop={}, dup={}, capacity={}{}",
            self.name,
            self.workers,
            self.rounds,
            self.envelope.describe(),
            self.lag,
            self.hold_max,
            self.allow_drop,
            self.allow_dup,
            self.max_in_flight,
            match self.bug {
                Some(b) => format!(", PLANTED {} BUG", b.id()),
                None => String::new(),
            },
        )
    }
}

/// One in-flight seam message: the engine payload (possibly corrupted
/// by a planted bug), the spec labels, and the fault-layer provenance
/// flags the planted bugs key on.
#[derive(Debug, Clone, PartialEq)]
pub struct SeamMessage {
    /// Sending worker.
    pub src: u32,
    /// Engine payload `(component, value, label)` — what
    /// `apply_message` consumes.
    pub comps: Vec<(u32, f64, u64)>,
    /// Spec labels, one per `comps` entry.
    pub spec: Vec<u64>,
    /// The spec book must ignore this message (engine-side leak of a
    /// spec-modelled drop — only under [`SeamBug::Drop`]).
    pub spec_ghost: bool,
}

impl SeamMessage {
    fn sort_key(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.comps.len() * 32);
        enc(&mut out, u64::from(self.src));
        enc(&mut out, u64::from(self.spec_ghost));
        for &(c, v, l) in &self.comps {
            enc(&mut out, u64::from(c));
            enc(&mut out, v.to_bits());
            enc(&mut out, l);
        }
        for &s in &self.spec {
            enc(&mut out, s);
        }
        out
    }
}

/// A canonical global state of the seam model.
#[derive(Debug, Clone, PartialEq)]
pub struct SeamState {
    /// Next global producing step (1-based) — the value the threaded
    /// engine's shared counter would hand out next.
    pub next_step: u64,
    /// Completed updates per worker.
    pub done: Vec<u64>,
    /// Per-worker local views.
    pub views: Vec<Vec<f64>>,
    /// Engine label books (written by the shared runtime step halves).
    pub labels: Vec<Vec<u64>>,
    /// Spec label books (maintained from fate semantics alone).
    pub spec_labels: Vec<Vec<u64>>,
    /// Per-receiver FIFO inbox, in channel arrival order.
    pub inboxes: Vec<VecDeque<SeamMessage>>,
    /// Per-sender parked messages: `(release after this many sends,
    /// dest, message)` — the `FaultEndpoint.held` list.
    pub held: Vec<Vec<(u64, usize, SeamMessage)>>,
    /// Per-sender send counters — the `FaultEndpoint.sends` counter.
    pub sends: Vec<u64>,
}

impl SeamState {
    /// The initial state: all views at `x0`, all labels 0, empty
    /// channels.
    pub fn initial(scope: &SeamScope, problem: &McProblem) -> Self {
        let n = problem.n();
        Self {
            next_step: 1,
            done: vec![0; scope.workers],
            views: vec![problem.x0.clone(); scope.workers],
            labels: vec![vec![0; n]; scope.workers],
            spec_labels: vec![vec![0; n]; scope.workers],
            inboxes: vec![VecDeque::new(); scope.workers],
            held: vec![Vec::new(); scope.workers],
            sends: vec![0; scope.workers],
        }
    }

    /// True once every worker has completed its rounds.
    pub fn terminal(&self, scope: &SeamScope) -> bool {
        self.done.iter().all(|&d| d == scope.rounds)
    }
}

fn enc(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Canonical byte encoding of a seam state (index-ordered, IEEE bits,
/// channel queues in arrival order — arrival order is part of the
/// state under `AsReceived`).
pub fn seam_canonical_bytes(s: &SeamState) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    enc(&mut out, s.next_step);
    enc(&mut out, s.views.len() as u64);
    for w in 0..s.views.len() {
        enc(&mut out, s.done[w]);
        enc(&mut out, s.sends[w]);
        for &v in &s.views[w] {
            enc(&mut out, v.to_bits());
        }
        for &l in &s.labels[w] {
            enc(&mut out, l);
        }
        for &l in &s.spec_labels[w] {
            enc(&mut out, l);
        }
        enc(&mut out, s.inboxes[w].len() as u64);
        for m in &s.inboxes[w] {
            let k = m.sort_key();
            enc(&mut out, k.len() as u64);
            out.extend_from_slice(&k);
        }
        enc(&mut out, s.held[w].len() as u64);
        for (release, dest, m) in &s.held[w] {
            enc(&mut out, *release);
            enc(&mut out, *dest as u64);
            let k = m.sort_key();
            enc(&mut out, k.len() as u64);
            out.extend_from_slice(&k);
        }
    }
    out
}

/// The seam dedup key: 128-bit FNV-1a over [`seam_canonical_bytes`].
pub fn seam_state_hash(s: &SeamState) -> u128 {
    fnv128(&seam_canonical_bytes(s))
}

/// The resolved nondeterminism of one seam worker step: who acts, and
/// what the fault layer does to each posted exchange (destinations in
/// ascending worker order; empty when no exchange is due).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeamChoice {
    /// The acting worker.
    pub worker: usize,
    /// One fate per destination.
    pub fates: Vec<SendFate>,
}

/// Why a seam branch was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeamPrune {
    /// A fate would overflow a receiver's queue/parking bound.
    Capacity,
    /// The spec book left the scope's admissibility envelope.
    Inadmissible,
}

/// Enumeration order matters for DFS: the explorer's stack visits
/// choices in *reverse* order, so faulty fates come first here and the
/// all-healthy prompt delivery is explored first — planted bugs are
/// then caught on paths with prior healthy deliveries, which is where
/// their label corruption is observable as a regression.
fn fate_options(scope: &SeamScope) -> Vec<SendFate> {
    let mut out = Vec::new();
    if scope.allow_drop {
        out.push(SendFate::Drop);
    }
    for dup in [true, false] {
        if dup && !scope.allow_dup {
            continue;
        }
        for hold in (0..=scope.hold_max).rev() {
            out.push(SendFate::Deliver { dup, hold });
        }
    }
    out
}

/// Enumerates every [`SeamChoice`] available in `state`: each worker
/// that still has rounds left and respects the steering bound, crossed
/// with every fate combination when its exchange is due.
pub fn seam_enumerate(state: &SeamState, scope: &SeamScope) -> Vec<SeamChoice> {
    let min_done = state.done.iter().copied().min().unwrap_or(0);
    let mut out = Vec::new();
    for w in 0..scope.workers {
        if state.done[w] >= scope.rounds || state.done[w] - min_done >= scope.lag {
            continue;
        }
        let exchange =
            scope.workers > 1 && (state.done[w] + 1).is_multiple_of(scope.exchange_every.max(1));
        if !exchange {
            out.push(SeamChoice {
                worker: w,
                fates: Vec::new(),
            });
            continue;
        }
        let per_dest = fate_options(scope);
        let dests = scope.workers - 1;
        let mut combos: Vec<Vec<SendFate>> = vec![Vec::new()];
        for _ in 0..dests {
            combos = combos
                .iter()
                .flat_map(|c| {
                    per_dest.iter().map(move |&f| {
                        let mut c = c.clone();
                        c.push(f);
                        c
                    })
                })
                .collect();
        }
        for fates in combos {
            out.push(SeamChoice { worker: w, fates });
        }
    }
    out
}

/// Applies one message to the spec book (AsReceived semantics, from the
/// spec labels), skipping engine-side ghosts.
fn seam_apply_spec(spec: &mut [u64], msg: &SeamMessage) {
    if msg.spec_ghost {
        return;
    }
    for (k, &(c, _, _)) in msg.comps.iter().enumerate() {
        spec[c as usize] = msg.spec[k];
    }
}

/// Zeroes the engine labels of a message (the shared corruption of the
/// planted drop-leak and torn-duplicate bugs: payload survives, label
/// frame lost).
fn strip_labels(msg: &mut SeamMessage) {
    for entry in &mut msg.comps {
        entry.2 = 0;
    }
}

/// Mirrors `FaultEndpoint::send_with_fate` + `release_due` for one
/// posted exchange: the same send-counter arithmetic, parking rule and
/// release scan, with the scope's planted bug applied where that fault
/// kind acts.
fn seam_send(
    state: &mut SeamState,
    scope: &SeamScope,
    src: usize,
    dest: usize,
    msg: SeamMessage,
    fate: SendFate,
) -> Result<(), SeamPrune> {
    state.sends[src] += 1;
    match fate {
        SendFate::Drop => {
            if scope.bug == Some(SeamBug::Drop) {
                // Leak: the spec models the loss, the engine still sees
                // the payload — with the label frame zeroed.
                let mut leaked = msg;
                strip_labels(&mut leaked);
                leaked.spec_ghost = true;
                push_inbox(state, scope, dest, leaked)?;
            }
        }
        SendFate::Deliver { dup, hold } => {
            if dup {
                let mut copy = msg.clone();
                if scope.bug == Some(SeamBug::Dup) {
                    // Torn duplicate: the prompt copy loses its labels.
                    strip_labels(&mut copy);
                }
                push_inbox(state, scope, dest, copy)?;
            }
            if hold > 0 {
                if state.held[src].len() + state.inboxes[dest].len() >= scope.max_in_flight {
                    return Err(SeamPrune::Capacity);
                }
                state.held[src].push((state.sends[src] + hold, dest, msg));
            } else {
                push_inbox(state, scope, dest, msg)?;
            }
        }
    }
    // Release parked messages the counter has now passed — FIFO by
    // release mark then parking order, the canonical serialisation of
    // `release_due`'s scan (unobservable: one sender per receiver keeps
    // released traffic ordered only relative to itself).
    state.held[src].sort_by_key(|(release, dest, _)| (*release, *dest));
    while let Some(pos) = state.held[src]
        .iter()
        .position(|(release, _, _)| *release <= state.sends[src])
    {
        let (_, d, mut m) = state.held[src].remove(pos);
        if scope.bug == Some(SeamBug::Hold) {
            // Released payload re-serialised without its label frame.
            strip_labels(&mut m);
        }
        push_inbox(state, scope, d, m)?;
    }
    Ok(())
}

fn push_inbox(
    state: &mut SeamState,
    scope: &SeamScope,
    dest: usize,
    msg: SeamMessage,
) -> Result<(), SeamPrune> {
    if state.inboxes[dest].len() >= scope.max_in_flight {
        return Err(SeamPrune::Capacity);
    }
    state.inboxes[dest].push_back(msg);
    Ok(())
}

/// Observations of one applied seam transition (same shape as the
/// cluster-regime [`crate::state::EdgeInfo`], consumed by the seam edge
/// checks).
#[derive(Debug, Clone)]
pub struct SeamEdge {
    /// The executed global step.
    pub j: u64,
    /// The acting worker.
    pub worker: usize,
    /// Engine-book read labels at produce time.
    pub read_labels: Vec<u64>,
    /// `‖view − x*‖_∞` before producing.
    pub read_err: f64,
    /// Produced-block max error.
    pub produced_err: f64,
    /// System measure `Φ` before the step (views + queued + parked).
    pub phi_before: f64,
    /// `Φ` after the step.
    pub phi_after: f64,
}

/// System error measure over a seam state: every view, queued message
/// and parked message.
pub fn seam_phi(state: &SeamState, problem: &McProblem) -> f64 {
    let mut m = 0.0_f64;
    for view in &state.views {
        for (c, &v) in view.iter().enumerate() {
            m = m.max((v - problem.xstar[c]).abs());
        }
    }
    let msg_err = |msg: &SeamMessage, m: &mut f64| {
        for &(c, v, _) in &msg.comps {
            *m = m.max((v - problem.xstar[c as usize]).abs());
        }
    };
    for inbox in &state.inboxes {
        for msg in inbox {
            msg_err(msg, &mut m);
        }
    }
    for held in &state.held {
        for (_, _, msg) in held {
            msg_err(msg, &mut m);
        }
    }
    m
}

/// Applies `choice` to `state`: full FIFO drain, produce via the
/// engine's own step half, then the posted exchange under the chosen
/// fates — one linearised worker step of the threaded engine.
///
/// # Errors
/// [`SeamPrune`] for capacity or admissibility cuts.
///
/// # Panics
/// Panics when the operator produces a non-finite iterate (impossible
/// for the contraction scope problem).
pub fn seam_apply(
    state: &SeamState,
    choice: &SeamChoice,
    scope: &SeamScope,
    problem: &McProblem,
    trace: Option<&mut Trace>,
) -> Result<(SeamState, SeamEdge), SeamPrune> {
    let j = state.next_step;
    let w = choice.worker;
    let phi_before = seam_phi(state, problem);
    let mut t = state.clone();

    // Drain the whole inbox in channel order (the worker-loop drain).
    // The planted bugs corrupted the message when the fault layer
    // handled it; application itself is the engine's own step half.
    while let Some(msg) = t.inboxes[w].pop_front() {
        apply_message(
            &mut t.views[w],
            &mut t.labels[w],
            &msg.comps,
            ApplyPolicy::AsReceived,
        );
        seam_apply_spec(&mut t.spec_labels[w], &msg);
    }

    // Admissibility pruning on the spec book at the produce.
    let floor = scope.envelope.min_label(j);
    if t.spec_labels[w].iter().any(|&l| l < floor) {
        return Err(SeamPrune::Inadmissible);
    }

    let read_labels = t.labels[w].clone();
    let read_err = t.views[w]
        .iter()
        .enumerate()
        .map(|(c, &v)| (v - problem.xstar[c]).abs())
        .fold(0.0_f64, f64::max);
    let blocks = scope.blocks();
    let n = problem.n();
    let mut upd = vec![0.0; n];
    let mut scratch = vec![0.0; Operator::scratch_len(&problem.op)];
    let mut throwaway = Trace::new(n, LabelStore::Full);
    let tr = trace.unwrap_or(&mut throwaway);
    produce_step(
        &problem.op,
        &mut t.views[w],
        &mut t.labels[w],
        &blocks[w],
        j,
        tr,
        &mut upd,
        &mut scratch,
    )
    .expect("contraction scope cannot produce non-finite iterates");
    for &i in &blocks[w] {
        t.spec_labels[w][i] = j;
    }
    let produced_err = blocks[w]
        .iter()
        .map(|&i| (t.views[w][i] - problem.xstar[i]).abs())
        .fold(0.0_f64, f64::max);
    t.done[w] += 1;

    // The posted exchange, one fate per destination.
    if !choice.fates.is_empty() {
        let comps: Vec<(u32, f64, u64)> = blocks[w]
            .iter()
            .map(|&i| (i as u32, t.views[w][i], t.labels[w][i]))
            .collect();
        let spec: Vec<u64> = blocks[w].iter().map(|&i| t.spec_labels[w][i]).collect();
        let mut fates = choice.fates.iter();
        for dest in 0..scope.workers {
            if dest == w {
                continue;
            }
            let fate = *fates.next().expect("one fate per destination");
            let msg = SeamMessage {
                src: w as u32,
                comps: comps.clone(),
                spec: spec.clone(),
                spec_ghost: false,
            };
            seam_send(&mut t, scope, w, dest, msg, fate)?;
        }
    }

    t.next_step = j + 1;
    let phi_after = seam_phi(&t, problem);
    Ok((
        t,
        SeamEdge {
            j,
            worker: w,
            read_labels,
            read_err,
            produced_err,
            phi_before,
            phi_after,
        },
    ))
}

/// Edge-local invariants of the seam — the same four families the
/// cluster-regime explorer checks, minus `KeepFreshest` (the seam runs
/// the threaded engine's `AsReceived` policy, where stale application
/// is legal and *recorded*, not absorbed).
pub fn seam_check_edge(
    scope: &SeamScope,
    problem: &McProblem,
    child: &SeamState,
    edge: &SeamEdge,
) -> Option<Violation> {
    if edge.produced_err > problem.alpha * edge.read_err * (1.0 + REL_EPS) + ABS_EPS {
        return Some(Violation {
            property: Property::ResidualMonotone,
            j: edge.j,
            detail: format!(
                "seam block contraction broken at j={}: produced err {:.3e} > α·read err {:.3e}",
                edge.j,
                edge.produced_err,
                problem.alpha * edge.read_err
            ),
        });
    }
    if edge.phi_after > edge.phi_before * (1.0 + REL_EPS) + ABS_EPS {
        return Some(Violation {
            property: Property::ResidualMonotone,
            j: edge.j,
            detail: format!(
                "seam system measure Φ increased at j={}: {:.3e} → {:.3e}",
                edge.j, edge.phi_before, edge.phi_after
            ),
        });
    }
    if let Some(c) = (0..problem.n()).find(|&c| edge.read_labels[c] >= edge.j) {
        return Some(Violation {
            property: Property::Admissibility,
            j: edge.j,
            detail: format!(
                "seam condition (a) violated at j={}: component {c} read label {} ≥ j",
                edge.j, edge.read_labels[c]
            ),
        });
    }
    for ww in 0..scope.workers {
        if let Some(c) = (0..problem.n()).find(|&c| child.labels[ww][c] != child.spec_labels[ww][c])
        {
            return Some(Violation {
                property: Property::Admissibility,
                j: edge.j,
                detail: format!(
                    "seam engine label book diverged from spec at j={}: worker {ww} \
                     component {c} engine={} spec={}",
                    edge.j, child.labels[ww][c], child.spec_labels[ww][c]
                ),
            });
        }
    }
    None
}

/// Terminal invariants of one fully-explored seam path: consensus
/// contraction bound, witness acceptance of the recorded linearised
/// trace (with the steering-implied activation gap), and bit-identical
/// replay through the Definition-1 engine.
pub fn seam_check_terminal(
    scope: &SeamScope,
    problem: &McProblem,
    state: &SeamState,
    trace: &Trace,
) -> Option<Violation> {
    let n = problem.n();
    let blocks = scope.blocks();
    let mut consensus = vec![0.0; n];
    for (w, block) in blocks.iter().enumerate() {
        for &i in block {
            consensus[i] = state.views[w][i];
        }
    }
    let err = consensus
        .iter()
        .enumerate()
        .map(|(c, &v)| (v - problem.xstar[c]).abs())
        .fold(0.0_f64, f64::max);
    let bound = problem.alpha * problem.e0 * (1.0 + REL_EPS) + ABS_EPS;
    if err > bound {
        return Some(Violation {
            property: Property::Horizon,
            j: scope.steps(),
            detail: format!(
                "seam consensus error {err:.6e} exceeds the contraction bound α·E₀ = {bound:.6e}"
            ),
        });
    }
    let witness = AdmissibilityWitness::new(scope.envelope, scope.witness_gap());
    if let Err(e) = witness.check(trace) {
        return Some(Violation {
            property: Property::Horizon,
            j: scope.steps(),
            detail: format!("seam terminal trace rejected by the scope witness: {e}"),
        });
    }
    let replay = asynciter_core::session::Session::new(&problem.op)
        .x0(problem.x0.clone())
        .replay_trace(trace.clone())
        .and_then(asynciter_core::session::Session::run);
    match replay {
        Err(e) => Some(Violation {
            property: Property::Horizon,
            j: scope.steps(),
            detail: format!("seam terminal trace does not replay: {e}"),
        }),
        Ok(report) => (0..n)
            .find(|&c| report.final_x[c].to_bits() != consensus[c].to_bits())
            .map(|c| Violation {
                property: Property::Horizon,
                j: scope.steps(),
                detail: format!(
                    "seam replay diverged from the explored state at component {c}: \
                     replay={:?} vs consensus={:?}",
                    report.final_x[c], consensus[c]
                ),
            }),
    }
}

/// Counters of one seam exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeamStats {
    /// Distinct states visited (root included).
    pub visited: u64,
    /// Successors hashing to an already-visited state.
    pub dedup_hits: u64,
    /// Transitions applied.
    pub edges: u64,
    /// Terminal states reached.
    pub terminals: u64,
    /// Branches cut by queue capacity.
    pub pruned_capacity: u64,
    /// Branches cut by the admissibility envelope.
    pub pruned_inadmissible: u64,
}

/// A seam violation plus the choice path reaching it.
#[derive(Debug, Clone)]
pub struct SeamFound {
    /// The failed property and diagnosis.
    pub violation: Violation,
    /// Choice indices into [`seam_enumerate`] along the path.
    pub path: Vec<u32>,
}

/// Result of exploring a seam scope.
#[derive(Debug)]
pub struct SeamOutcome {
    /// Exploration counters.
    pub stats: SeamStats,
    /// First violation found, if any.
    pub violation: Option<SeamFound>,
    /// True when the state budget cut the sweep short.
    pub truncated: bool,
}

/// Exhaustively explores a seam scope (DFS, deterministic order),
/// checking every edge and terminal invariant.
pub fn seam_explore(scope: &SeamScope, problem: &McProblem, max_states: u64) -> SeamOutcome {
    let mut stats = SeamStats::default();
    let mut visited: BTreeSet<u128> = BTreeSet::new();
    let root = SeamState::initial(scope, problem);
    visited.insert(seam_state_hash(&root));
    stats.visited = 1;
    let mut frontier: Vec<(SeamState, Vec<u32>)> = vec![(root, Vec::new())];
    let mut truncated = false;

    while let Some((state, path)) = frontier.pop() {
        if state.terminal(scope) {
            stats.terminals += 1;
            let (trace, _) = seam_rebuild(scope, problem, &path);
            if let Some(v) = seam_check_terminal(scope, problem, &state, &trace) {
                return SeamOutcome {
                    stats,
                    violation: Some(SeamFound { violation: v, path }),
                    truncated,
                };
            }
            continue;
        }
        for (i, choice) in seam_enumerate(&state, scope).iter().enumerate() {
            match seam_apply(&state, choice, scope, problem, None) {
                Err(SeamPrune::Capacity) => stats.pruned_capacity += 1,
                Err(SeamPrune::Inadmissible) => stats.pruned_inadmissible += 1,
                Ok((child, edge)) => {
                    stats.edges += 1;
                    if let Some(v) = seam_check_edge(scope, problem, &child, &edge) {
                        let mut path = path.clone();
                        path.push(i as u32);
                        return SeamOutcome {
                            stats,
                            violation: Some(SeamFound { violation: v, path }),
                            truncated,
                        };
                    }
                    if visited.insert(seam_state_hash(&child)) {
                        if stats.visited >= max_states {
                            truncated = true;
                            continue;
                        }
                        stats.visited += 1;
                        let mut path = path.clone();
                        path.push(i as u32);
                        frontier.push((child, path));
                    } else {
                        stats.dedup_hits += 1;
                    }
                }
            }
        }
    }
    SeamOutcome {
        stats,
        violation: None,
        truncated,
    }
}

/// Deterministically replays a seam choice path from the root,
/// accumulating the linearised producing-step trace.
///
/// # Panics
/// Panics when the path indexes a pruned or out-of-range choice (paths
/// produced by [`seam_explore`] never do).
pub fn seam_rebuild(scope: &SeamScope, problem: &McProblem, path: &[u32]) -> (Trace, SeamState) {
    let mut state = SeamState::initial(scope, problem);
    let mut trace = Trace::new(problem.n(), LabelStore::Full);
    for &i in path {
        let choices = seam_enumerate(&state, scope);
        let choice = &choices[i as usize];
        let (next, _) = seam_apply(&state, choice, scope, problem, Some(&mut trace))
            .expect("explored seam paths never hit a pruned branch");
        state = next;
    }
    (trace, state)
}

/// Negative control for one planted transport bug: explores the
/// `seam-bug-*` scope, proves the explorer catches the corruption as a
/// label-book divergence, extends the witness path to the horizon so
/// the zeroed label is recorded where the envelope floor is positive,
/// shrinks against the envelope signature and saves the result to
/// `out`. Returns `(orig_steps, shrunk_steps)`.
///
/// # Errors
/// When the explorer fails to catch the planted bug (a blind spot in
/// the seam checks), the caught trace lacks the envelope signature, or
/// emission fails.
pub fn seam_bug_demo(bug: SeamBug, out: &Path) -> Result<(u64, u64), String> {
    let scope = SeamScope::seam_bug(bug);
    let problem = McProblem::build();
    let outcome = seam_explore(&scope, &problem, 2_000_000);
    let found = outcome.violation.ok_or(format!(
        "inject-seam-{}: explorer did not catch the planted transport bug — blind spot",
        bug.id()
    ))?;
    if found.violation.property != Property::Admissibility {
        return Err(format!(
            "inject-seam-{}: expected a book-divergence catch, got {}: {}",
            bug.id(),
            found.violation.property.id(),
            found.violation.detail
        ));
    }
    let (mut trace, mut state) = seam_rebuild(&scope, &problem, &found.path);

    // Extend the caught prefix to the horizon so the victim's zeroed
    // label is recorded at steps where the envelope floor is positive
    // (the trace-pure signature the shrinker minimises against). The
    // extension drops every exchange — no healthy delivery heals the
    // corrupted book — and runs envelope-unconstrained: the point is a
    // trace that *fails* admissibility.
    let relaxed = SeamScope {
        envelope: DelayEnvelope::Bounded(u64::MAX),
        ..scope.clone()
    };
    while !state.terminal(&relaxed) {
        let choices = seam_enumerate(&state, &relaxed);
        let choice = choices
            .iter()
            .find(|c| c.fates.iter().all(|&f| f == SendFate::Drop))
            .ok_or("seam extension: no all-drop choice available")?;
        match seam_apply(&state, choice, &relaxed, &problem, Some(&mut trace)) {
            Ok((next, _)) => state = next,
            Err(_) => break,
        }
    }
    if !envelope_violation(&trace, scope.envelope) {
        return Err(format!(
            "inject-seam-{}: caught trace carries no envelope-violation signature",
            bug.id()
        ));
    }
    let orig_steps = trace.len() as u64;
    let envelope = scope.envelope;
    let mut pred = |t: &Trace| envelope_violation(t, envelope);
    let result = shrink_trace(&trace, &mut pred, 20_000);
    save_trace(out, &result.trace)?;
    Ok((orig_steps, result.trace.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seam1_has_a_single_schedule() {
        let scope = SeamScope::seam1();
        let problem = McProblem::build();
        let out = seam_explore(&scope, &problem, 1_000_000);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(!out.truncated);
        // One worker, no fates: exactly one path of `rounds` steps.
        assert_eq!(out.stats.visited, scope.rounds + 1);
        assert_eq!(out.stats.terminals, 1);
        assert_eq!(out.stats.edges, scope.rounds);
    }

    #[test]
    fn fate_options_cover_the_fault_plan_space() {
        let scope = SeamScope::seam2();
        let fates = fate_options(&scope);
        // dup ∈ {false,true} × hold ∈ {0,1,2} + Drop.
        assert_eq!(fates.len(), 7);
        assert!(fates.contains(&SendFate::Drop));
        assert!(fates.contains(&SendFate::Deliver { dup: true, hold: 2 }));
    }

    #[test]
    fn planted_bugs_are_caught_as_book_divergence() {
        for bug in [SeamBug::Hold, SeamBug::Drop, SeamBug::Dup] {
            let scope = SeamScope::seam_bug(bug);
            let problem = McProblem::build();
            let out = seam_explore(&scope, &problem, 2_000_000);
            let found = out
                .violation
                .unwrap_or_else(|| panic!("{}: planted bug not caught", bug.id()));
            assert_eq!(
                found.violation.property,
                Property::Admissibility,
                "{}: {}",
                bug.id(),
                found.violation.detail
            );
        }
    }
}
