//! The pluggable properties the explorer checks on every edge and every
//! terminal state.
//!
//! Four invariants guard the paper's claims inside a scope:
//!
//! 1. **Residual monotone** — the contraction certificate: each
//!    produced block satisfies `‖new − x*‖ ≤ α·‖read − x*‖`, and the
//!    system measure `Φ` (max error over all views and in-flight
//!    values) never increases along any edge. This is the mechanism
//!    behind Theorem 1's convergence under arbitrary admissible
//!    schedules, checked edge by edge.
//! 2. **KeepFreshest** — under `ApplyPolicy::KeepFreshest` no view
//!    label ever regresses: out-of-order and duplicated deliveries are
//!    absorbed, never applied stale.
//! 3. **Admissibility** — the engine's label book matches the spec book
//!    maintained independently from choice semantics, and every
//!    recorded read label satisfies condition (a) (`l_h(j) ≤ j − 1`).
//!    A divergence means the engine records labels its own deliveries
//!    did not justify — the class of bug `--inject-mc-bug` plants.
//! 4. **Horizon** — at every terminal state: once each worker has
//!    produced, the consensus error is at most `α·‖x0 − x*‖_∞`; the
//!    path's recorded trace is accepted by the scope's
//!    [`AdmissibilityWitness`]; and replaying that trace through the
//!    Definition-1 `Replay` engine reproduces the consensus **bit for
//!    bit** — a model-checking state is only "verified" if it is also
//!    the state the sequential semantics assigns to its schedule.
//!
//! The out-of-order *probe* ([`Property::Reorder`]) is the inverse: in
//! `--find-reorder` mode the explorer hunts for a label regression
//! across a worker's consecutive turns — the violation class of the
//! committed `fault-cluster-reorder.trace` — to prove the scope can
//! rediscover it.

use crate::scope::{McProblem, Scope};
use crate::state::{EdgeInfo, McState};
use asynciter_core::session::Session;
use asynciter_models::conditions::AdmissibilityWitness;
use asynciter_models::Trace;
use asynciter_runtime::ApplyPolicy;

/// Relative slack for floating-point property comparisons (shared with
/// the transport-seam checks).
pub(crate) const REL_EPS: f64 = 1e-9;
/// Absolute slack near zero.
pub(crate) const ABS_EPS: f64 = 1e-12;

/// The checked property families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// Contraction certificate: per-step block contraction and global
    /// `Φ` monotonicity.
    ResidualMonotone,
    /// `KeepFreshest` label monotonicity.
    KeepFreshest,
    /// Spec/engine book agreement + condition (a).
    Admissibility,
    /// Terminal convergence bound + witness + bit-identical replay.
    Horizon,
    /// Out-of-order application (label regression across a worker's
    /// consecutive turns) — the *target* of `--find-reorder`.
    Reorder,
}

impl Property {
    /// Stable identifier for reports and file names.
    pub fn id(self) -> &'static str {
        match self {
            Property::ResidualMonotone => "residual-monotone",
            Property::KeepFreshest => "keep-freshest",
            Property::Admissibility => "admissibility",
            Property::Horizon => "horizon",
            Property::Reorder => "reorder",
        }
    }
}

/// A property violation observed on an edge or at a terminal state.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which property failed.
    pub property: Property,
    /// Global step at (or by) which it failed.
    pub j: u64,
    /// Human-readable diagnosis.
    pub detail: String,
}

/// Checks the edge-local invariants after applying one transition.
/// `parent`/`child` bracket the edge; `edge` carries the observations.
pub fn check_edge(
    scope: &Scope,
    problem: &McProblem,
    parent: &McState,
    child: &McState,
    edge: &EdgeInfo,
) -> Option<Violation> {
    let w = edge.worker;

    // 1. Residual monotone under the contraction certificate.
    if edge.produced_err > problem.alpha * edge.read_err * (1.0 + REL_EPS) + ABS_EPS {
        return Some(Violation {
            property: Property::ResidualMonotone,
            j: edge.j,
            detail: format!(
                "block contraction broken at j={}: produced err {:.3e} > α·read err {:.3e}",
                edge.j,
                edge.produced_err,
                problem.alpha * edge.read_err
            ),
        });
    }
    if edge.phi_after > edge.phi_before * (1.0 + REL_EPS) + ABS_EPS {
        return Some(Violation {
            property: Property::ResidualMonotone,
            j: edge.j,
            detail: format!(
                "system measure Φ increased at j={}: {:.3e} → {:.3e}",
                edge.j, edge.phi_before, edge.phi_after
            ),
        });
    }

    // 2. KeepFreshest label monotonicity (view labels never regress).
    if scope.apply_policy == ApplyPolicy::KeepFreshest {
        if let Some(c) = (0..problem.n()).find(|&c| child.labels[w][c] < parent.labels[w][c]) {
            return Some(Violation {
                property: Property::KeepFreshest,
                j: edge.j,
                detail: format!(
                    "KeepFreshest applied a stale value at j={}: component {c} label {} → {}",
                    edge.j, parent.labels[w][c], child.labels[w][c]
                ),
            });
        }
    }

    // 3. Admissibility: condition (a) on the recorded read, and
    //    spec/engine book agreement after the step.
    if let Some(c) = (0..problem.n()).find(|&c| edge.read_labels[c] >= edge.j) {
        return Some(Violation {
            property: Property::Admissibility,
            j: edge.j,
            detail: format!(
                "condition (a) violated at j={}: component {c} read label {} ≥ j",
                edge.j, edge.read_labels[c]
            ),
        });
    }
    for ww in 0..scope.workers {
        if let Some(c) = (0..problem.n()).find(|&c| child.labels[ww][c] != child.spec_labels[ww][c])
        {
            return Some(Violation {
                property: Property::Admissibility,
                j: edge.j,
                detail: format!(
                    "engine label book diverged from spec at j={}: worker {ww} component {c} \
                     engine={} spec={}",
                    edge.j, child.labels[ww][c], child.spec_labels[ww][c]
                ),
            });
        }
    }
    None
}

/// Checks the out-of-order probe on an edge: a label regression between
/// a worker's consecutive read vectors. Only meaningful when the scope
/// tracks read history. In `--find-reorder` mode this "violation" is
/// the sought witness.
pub fn check_reorder(problem: &McProblem, edge: &EdgeInfo) -> Option<Violation> {
    let prev = edge.prev_read.as_ref()?;
    let c = (0..problem.n()).find(|&c| edge.read_labels[c] < prev[c])?;
    Some(Violation {
        property: Property::Reorder,
        j: edge.j,
        detail: format!(
            "out-of-order application: worker {} read label of component {c} regressed {} → {} \
             between consecutive turns (turn ending j={})",
            edge.worker, prev[c], edge.read_labels[c], edge.j
        ),
    })
}

/// Checks the terminal (horizon) invariants of one fully-explored path:
/// consensus contraction bound, witness acceptance of the recorded
/// trace, and bit-identical replay through the Definition-1 engine.
pub fn check_terminal(
    scope: &Scope,
    problem: &McProblem,
    state: &McState,
    trace: &Trace,
) -> Option<Violation> {
    let n = problem.n();
    let blocks = scope.blocks();
    let mut consensus = vec![0.0; n];
    for (w, block) in blocks.iter().enumerate() {
        for &i in block {
            consensus[i] = state.views[w][i];
        }
    }

    // Convergence at the horizon: every worker produced at least once
    // (steps ≥ workers by scope construction), so each owned block went
    // through one contraction of a view whose error was ≤ Φ₀ = E₀.
    if scope.steps >= scope.workers as u64 {
        let err = consensus
            .iter()
            .enumerate()
            .map(|(c, &v)| (v - problem.xstar[c]).abs())
            .fold(0.0_f64, f64::max);
        let bound = problem.alpha * problem.e0 * (1.0 + REL_EPS) + ABS_EPS;
        if err > bound {
            return Some(Violation {
                property: Property::Horizon,
                j: scope.steps,
                detail: format!(
                    "consensus error {err:.6e} exceeds the contraction bound α·E₀ = {bound:.6e}"
                ),
            });
        }
    }

    // The recorded schedule must carry an admissibility witness of the
    // scope: envelope + steering gap (round-robin updates every
    // component within `workers` steps).
    let witness = AdmissibilityWitness::new(scope.envelope, scope.workers as u64);
    if let Err(e) = witness.check(trace) {
        return Some(Violation {
            property: Property::Horizon,
            j: scope.steps,
            detail: format!("terminal trace rejected by the scope witness: {e}"),
        });
    }

    // Bit-identical replay: the Definition-1 engine, fed the recorded
    // producing-step trace, must land on exactly the same consensus.
    let replay = Session::new(&problem.op)
        .x0(problem.x0.clone())
        .replay_trace(trace.clone())
        .and_then(Session::run);
    match replay {
        Err(e) => Some(Violation {
            property: Property::Horizon,
            j: scope.steps,
            detail: format!("terminal trace does not replay: {e}"),
        }),
        Ok(report) => {
            if let Some(c) = (0..n).find(|&c| report.final_x[c].to_bits() != consensus[c].to_bits())
            {
                Some(Violation {
                    property: Property::Horizon,
                    j: scope.steps,
                    detail: format!(
                        "replay diverged from the explored state at component {c}: \
                         replay={:?} vs consensus={:?}",
                        report.final_x[c], consensus[c]
                    ),
                })
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{apply_choice, enumerate_choices, McState};

    #[test]
    fn fault_free_first_edge_passes_all_edge_checks() {
        let scope = Scope::quick();
        let problem = McProblem::build();
        let s = McState::initial(&scope, &problem);
        for choice in enumerate_choices(&s, &scope) {
            // Capacity/admissibility prunes (the Err side) are fine.
            if let Ok((t, edge)) = apply_choice(&s, &choice, &scope, &problem, None) {
                assert!(check_edge(&scope, &problem, &s, &t, &edge).is_none());
                assert!(check_reorder(&problem, &edge).is_none());
            }
        }
    }

    #[test]
    fn book_divergence_is_flagged() {
        let scope = Scope::quick();
        let problem = McProblem::build();
        let s = McState::initial(&scope, &problem);
        let choice = &enumerate_choices(&s, &scope)[0];
        let (mut t, edge) = apply_choice(&s, choice, &scope, &problem, None).unwrap();
        t.labels[1][3] = 7; // corrupt the engine book
        let v = check_edge(&scope, &problem, &s, &t, &edge).expect("divergence caught");
        assert_eq!(v.property, Property::Admissibility);
    }

    #[test]
    fn reorder_probe_fires_on_a_regressed_read() {
        let problem = McProblem::build();
        let edge = crate::state::EdgeInfo {
            j: 6,
            worker: 1,
            read_labels: vec![1; problem.n()],
            prev_read: Some(vec![3; problem.n()]),
            read_err: 0.0,
            produced_err: 0.0,
            phi_before: 1.0,
            phi_after: 1.0,
        };
        let v = check_reorder(&problem, &edge).expect("regression caught");
        assert_eq!(v.property, Property::Reorder);
    }
}
