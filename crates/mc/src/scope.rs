//! Scopes: the small universes the explorer enumerates exhaustively.
//!
//! Bounded model checking trades generality for completeness — a scope
//! pins the worker count, the producing-step horizon, and which channel
//! nondeterminism is enabled, so the reachable state space is finite
//! and small enough to visit *every* state. The named scopes below are
//! the committed tiers: `quick` is the CI sweep (drops + duplicates +
//! reorders under `KeepFreshest`), `flex` adds flexible
//! partial-exchange subset choices, `reorder` is the out-of-order
//! rediscovery probe (`AsReceived` + holds, the
//! `fault-cluster-reorder.trace` violation class), and `inject` is the
//! negative-control universe for the severed-label bug.

use asynciter_models::conditions::DelayEnvelope;
use asynciter_models::Partition;
use asynciter_numerics::sparse::tridiagonal;
use asynciter_numerics::vecops;
use asynciter_opt::linear::JacobiOperator;
use asynciter_opt::traits::Operator;

/// Problem dimension of every scope — matches the conformance Jacobi
/// problem (`ConformanceProblem::build(ProblemKind::Jacobi)`), so
/// emitted counterexamples slot straight into the corpus checks that
/// match traces to problems by dimension.
pub const MC_DIM: usize = 16;

/// The fixed-point problem a scope is explored on: the conformance
/// Jacobi instance (tridiagonal(16, 4, −1), b = 1), which is a max-norm
/// contraction with factor ½ — the contraction certificate the
/// residual-monotonicity invariant checks against.
pub struct McProblem {
    /// The operator (all workers step this).
    pub op: JacobiOperator,
    /// Canonical start (all zeros).
    pub x0: Vec<f64>,
    /// The exact fixed point (for error measurements only).
    pub xstar: Vec<f64>,
    /// Max-norm contraction factor of `op`.
    pub alpha: f64,
    /// Initial error `‖x0 − x*‖_∞`.
    pub e0: f64,
}

impl McProblem {
    /// Builds the canonical scope problem.
    ///
    /// # Panics
    /// Never in practice (the static Jacobi instance is well-formed).
    pub fn build() -> Self {
        let op = JacobiOperator::new(tridiagonal(MC_DIM, 4.0, -1.0), vec![1.0; MC_DIM])
            .expect("static Jacobi instance");
        let xstar = op.solve_dense_spd().expect("SPD solve");
        let x0 = vec![0.0; MC_DIM];
        let alpha = op.contraction_factor();
        let e0 = vecops::max_abs_diff(&x0, &xstar);
        Self {
            op,
            x0,
            xstar,
            alpha,
            e0,
        }
    }

    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.op.dim()
    }
}

/// Receiver policy, re-exported from the runtime for scope literals.
pub use asynciter_runtime::ApplyPolicy;

/// One bounded universe for the explorer.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Scope name (reports, artefact file names).
    pub name: String,
    /// Worker (shard) count; blocks are `Partition::blocks(n, workers)`.
    pub workers: usize,
    /// Producing-step horizon (total global steps).
    pub steps: u64,
    /// Exchange period: a worker posts its block every this many of its
    /// own updates.
    pub exchange_every: u64,
    /// Receiver policy applied on delivery.
    pub apply_policy: ApplyPolicy,
    /// Admissibility envelope used as a *pruning* predicate on the spec
    /// label book: a branch whose read staleness leaves the envelope is
    /// not an admissible schedule of this scope and is cut (counted in
    /// `pruned_inadmissible`), never explored.
    pub envelope: DelayEnvelope,
    /// Allow the channel to drop a posted message.
    pub allow_drop: bool,
    /// Allow the channel to duplicate a posted message.
    pub allow_dup: bool,
    /// Flexible-communication publish subsets offered *in addition to*
    /// the full block, as index lists into the sender's block.
    pub partial_masks: Vec<Vec<usize>>,
    /// Mailbox capacity per worker; sends that would exceed it prune
    /// the branch (counted in `pruned_capacity`).
    pub max_in_flight: usize,
    /// Track each worker's previous read-label vector in the state (and
    /// its hash). Needed by the out-of-order (label-regression)
    /// property, which compares across a worker's consecutive turns.
    pub track_read_history: bool,
    /// Negative control: sever the engine-book label update for
    /// [`Scope::bug_component`] on delivery (the value is still
    /// applied). The spec book stays correct, so pruning is unaffected
    /// and the checker must catch the divergence.
    pub inject_bug: bool,
}

impl Scope {
    /// The CI sweep: 2 workers × 6 steps, drops + duplicates + holds
    /// (reorders) under `KeepFreshest`, envelope non-binding at the
    /// horizon.
    pub fn quick() -> Self {
        Self {
            name: "quick".into(),
            workers: 2,
            steps: 6,
            exchange_every: 1,
            apply_policy: ApplyPolicy::KeepFreshest,
            envelope: DelayEnvelope::Bounded(6),
            allow_drop: true,
            allow_dup: true,
            partial_masks: Vec::new(),
            max_in_flight: 2,
            track_read_history: false,
            inject_bug: false,
        }
    }

    /// Flexible communication: every exchange chooses full block, lower
    /// half, or upper half — the Definition-1 flexible regime as an
    /// explicit branch point.
    pub fn flex() -> Self {
        let half = MC_DIM / 2 / 2; // half of one 2-worker block
        Self {
            name: "flex".into(),
            workers: 2,
            steps: 5,
            exchange_every: 1,
            apply_policy: ApplyPolicy::KeepFreshest,
            envelope: DelayEnvelope::Bounded(5),
            allow_drop: false,
            allow_dup: false,
            partial_masks: vec![(0..half).collect(), (half..2 * half).collect()],
            max_in_flight: 2,
            track_read_history: false,
            inject_bug: false,
        }
    }

    /// Out-of-order rediscovery: `AsReceived` + held messages, so some
    /// interleaving applies an older message after a newer one — the
    /// violation class of the committed `fault-cluster-reorder.trace`.
    pub fn reorder() -> Self {
        Self {
            name: "reorder".into(),
            workers: 2,
            steps: 6,
            exchange_every: 1,
            apply_policy: ApplyPolicy::AsReceived,
            envelope: DelayEnvelope::Bounded(6),
            allow_drop: false,
            allow_dup: false,
            partial_masks: Vec::new(),
            max_in_flight: 2,
            track_read_history: true,
            inject_bug: false,
        }
    }

    /// Negative control: a tight envelope forces prompt delivery, and
    /// the injected severed-label bug must surface as a spec/engine
    /// book divergence the moment the corrupted message is read.
    pub fn inject() -> Self {
        Self {
            name: "inject".into(),
            workers: 2,
            steps: 4,
            exchange_every: 1,
            apply_policy: ApplyPolicy::AsReceived,
            envelope: DelayEnvelope::Bounded(2),
            allow_drop: false,
            allow_dup: false,
            partial_masks: Vec::new(),
            max_in_flight: 3,
            track_read_history: false,
            inject_bug: true,
        }
    }

    /// The 3-worker nightly scope: two full rounds of three workers
    /// with drops + duplicates + holds under `KeepFreshest` — the
    /// smallest universe where messages from *different* senders race
    /// in one mailbox. Exhaustive within the nightly budget; the
    /// partial-order reduction cuts it several-fold (locked in tier-1).
    pub fn triple() -> Self {
        Self {
            name: "triple".into(),
            workers: 3,
            steps: 6,
            exchange_every: 1,
            apply_policy: ApplyPolicy::KeepFreshest,
            envelope: DelayEnvelope::Bounded(6),
            allow_drop: true,
            allow_dup: true,
            partial_masks: Vec::new(),
            max_in_flight: 2,
            track_read_history: false,
            inject_bug: false,
        }
    }

    /// The horizon-8 nightly scope: `quick`'s channel nondeterminism
    /// pushed two rounds deeper, where delayed-delivery chains that a
    /// 6-step horizon truncates run to completion.
    pub fn deep() -> Self {
        Self {
            name: "deep".into(),
            steps: 8,
            envelope: DelayEnvelope::Bounded(8),
            ..Self::quick()
        }
    }

    /// The horizon-10 nightly scope: the deepest committed universe.
    /// Only feasible because of the partial-order reduction — the
    /// nightly job runs it `--por on` with a reduced-count lock.
    pub fn deeper() -> Self {
        Self {
            name: "deeper".into(),
            steps: 10,
            envelope: DelayEnvelope::Bounded(10),
            ..Self::quick()
        }
    }

    /// Looks a named scope up.
    ///
    /// # Errors
    /// Unknown name, as a message listing the valid ones.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name {
            "quick" => Ok(Self::quick()),
            "flex" => Ok(Self::flex()),
            "reorder" => Ok(Self::reorder()),
            "inject" => Ok(Self::inject()),
            "triple" => Ok(Self::triple()),
            "deep" => Ok(Self::deep()),
            "deeper" => Ok(Self::deeper()),
            other => Err(format!(
                "unknown scope '{other}' (valid: quick, flex, reorder, inject, \
                 triple, deep, deeper)"
            )),
        }
    }

    /// Derives a minimal scope from a conformance-corpus counterexample
    /// trace, so any fuzzer find auto-generates an exhaustive
    /// regression universe: the worker count is recovered by matching
    /// the trace's active sets against round-robin block partitions
    /// (shrunk corpus traces carry minimised active sets, so each step
    /// need only activate a *subset* of its round-robin block), the
    /// envelope is the tightest `Bounded` the trace's read labels
    /// satisfy, and the policy is `AsReceived` (with read-history
    /// tracking) exactly when the trace exhibits a label regression.
    ///
    /// # Errors
    /// Traces of the wrong dimension, with non-block active sets, or
    /// without full labels, as a message.
    pub fn from_trace(stem: &str, trace: &asynciter_models::Trace) -> Result<Self, String> {
        if trace.n() != MC_DIM {
            return Err(format!(
                "--from-trace: trace dimension {} != scope dimension {MC_DIM}",
                trace.n()
            ));
        }
        if trace.is_empty() {
            return Err("--from-trace: empty trace".into());
        }
        let workers = (2..=3usize)
            .find(|&w| {
                let p = Partition::blocks(MC_DIM, w).expect("scope partition");
                (1..=trace.len() as u64).all(|j| {
                    let block = p.components_of(((j - 1) % w as u64) as usize);
                    let active = &trace.step(j).active;
                    !active.is_empty() && active.iter().all(|&c| block.contains(&(c as usize)))
                })
            })
            .ok_or_else(|| {
                format!("--from-trace: '{stem}' has no round-robin 2- or 3-worker block schedule")
            })?;
        let mut staleness = 1u64;
        for j in 1..=trace.len() as u64 {
            let labels = trace
                .labels(j)
                .map_err(|e| format!("--from-trace: '{stem}' stores no labels: {e}"))?;
            for &l in labels {
                staleness = staleness.max(j.saturating_sub(l));
            }
        }
        let reordering = asynciter_conformance::cluster::has_label_regression(trace, workers);
        if reordering {
            // An out-of-order application needs room under round-robin:
            // the overtaken message and its overtaker are the same
            // sender's turns (≥ `workers` steps apart), the overtaker
            // was read one receiver turn (`workers` steps) earlier, and
            // the stale label must still clear the envelope floor at
            // the regressing read — so the class is admissible only for
            // `b ≥ 2·workers + 1`. Shrunk corpus traces understate this
            // (the shrinker minimises labels, not schedules).
            staleness = staleness.max(2 * workers as u64 + 1);
        }
        // The regression universe needs enough rounds for the source
        // trace's violation class (a delayed message overtaken by a
        // fresher one takes three of its sender's turns end to end),
        // not the source trace's full length — deriving a 3-worker
        // scope from a 20-step fuzzer find must still be exhaustively
        // explorable.
        let steps = (trace.len() as u64)
            .min(3 * workers as u64)
            .max(2 * workers as u64);
        Ok(Self {
            name: format!("from-{stem}"),
            workers,
            steps,
            exchange_every: 1,
            apply_policy: if reordering {
                ApplyPolicy::AsReceived
            } else {
                ApplyPolicy::KeepFreshest
            },
            envelope: DelayEnvelope::Bounded(staleness),
            allow_drop: false,
            allow_dup: false,
            partial_masks: Vec::new(),
            // Two queued messages per incoming sender stream: enough
            // capacity for any pairwise out-of-order delivery the
            // source trace's regression class needs.
            max_in_flight: 2 * (workers - 1),
            track_read_history: reordering,
            inject_bug: false,
        })
    }

    /// The component whose engine-book label update the injected bug
    /// severs: the first component of worker 1's block — a block
    /// *boundary* component, coupled across the partition cut by the
    /// tridiagonal operator.
    pub fn bug_component(&self) -> usize {
        Partition::blocks(MC_DIM, self.workers)
            .expect("scope partition")
            .components_of(1)[0]
    }

    /// The owned block of every worker.
    ///
    /// # Panics
    /// Never for the committed scopes (the partition is valid).
    pub fn blocks(&self) -> Vec<Vec<usize>> {
        let p = Partition::blocks(MC_DIM, self.workers).expect("scope partition");
        (0..self.workers).map(|w| p.components_of(w)).collect()
    }

    /// Worker owning global step `j` (round-robin, 1-based steps).
    pub fn owner(&self, j: u64) -> usize {
        ((j - 1) % self.workers as u64) as usize
    }

    /// Whether the worker acting at step `j` posts an exchange after
    /// its update (mirrors the engine's `per_worker_updates %
    /// exchange_every` gate).
    pub fn exchange_due(&self, j: u64) -> bool {
        if self.workers <= 1 {
            return false;
        }
        let updates = (j - 1) / self.workers as u64 + 1;
        updates.is_multiple_of(self.exchange_every.max(1))
    }

    /// One-line description for reports.
    pub fn describe(&self) -> String {
        format!(
            "scope {}: {} workers x {} steps, {:?}, envelope {}, drop={}, dup={}, \
             partial-masks={}, capacity={}{}",
            self.name,
            self.workers,
            self.steps,
            self.apply_policy,
            self.envelope.describe(),
            self.allow_drop,
            self.allow_dup,
            self.partial_masks.len(),
            self.max_in_flight,
            if self.inject_bug {
                ", INJECTED BUG"
            } else {
                ""
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_scopes_resolve_and_partition() {
        for name in ["quick", "flex", "reorder", "inject"] {
            let s = Scope::by_name(name).unwrap();
            assert_eq!(s.name, name);
            assert_eq!(s.blocks().len(), s.workers);
            assert_eq!(s.blocks().iter().map(Vec::len).sum::<usize>(), MC_DIM);
        }
        assert!(Scope::by_name("nope").is_err());
    }

    #[test]
    fn round_robin_owner_and_exchange_gate() {
        let s = Scope::quick();
        assert_eq!(s.owner(1), 0);
        assert_eq!(s.owner(2), 1);
        assert_eq!(s.owner(3), 0);
        assert!(s.exchange_due(1), "exchange_every=1 posts every turn");
        let mut s2 = s;
        s2.exchange_every = 2;
        assert!(!s2.exchange_due(1), "first update of worker 0 is update 1");
        assert!(s2.exchange_due(3), "second update of worker 0");
    }

    #[test]
    fn bug_component_is_a_block_boundary() {
        let s = Scope::inject();
        assert_eq!(s.bug_component(), MC_DIM / 2);
    }

    #[test]
    fn problem_is_a_half_contraction() {
        let p = McProblem::build();
        assert_eq!(p.n(), MC_DIM);
        assert!((p.alpha - 0.5).abs() < 1e-12);
        assert!(p.e0 > 0.0);
    }
}
