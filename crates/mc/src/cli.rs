//! Command-line driver behind `cargo run -p asynciter-bench --bin mc`.
//!
//! ```text
//! mc --scope quick --stats            # exhaustive CI sweep, verdict + counters
//! mc --scope flex --strategy bfs      # flexible-communication scope, BFS
//! mc --inject-mc-bug                  # negative control: must find + shrink + emit
//! mc --find-reorder                   # rediscover the out-of-order class
//! mc --scope quick --out MC_report.json
//! ```
//!
//! Exit codes: `0` — scope verified (or, in `--inject-mc-bug` /
//! `--find-reorder` mode, the sought violation was found and emitted);
//! `1` — a violation was found in a normal sweep, the must-find modes
//! came up empty, the state budget truncated the sweep, or the
//! arguments were invalid.

use crate::counterexample::{emit_counterexample, find_reorder_demo, inject_bug_demo};
use crate::explore::{explore, explore_check_por, ExploreOutcome, Strategy};
use crate::invariants::Property;
use crate::scope::{McProblem, Scope};
use crate::seam::{seam_bug_demo, seam_explore, seam_rebuild, SeamBug, SeamOutcome, SeamScope};
use crate::state::Por;
use asynciter_report::json::Json;
use std::path::PathBuf;

fn usage() -> String {
    "usage: mc [--scope quick|flex|reorder|inject|triple|deep|deeper|seam1|seam2] \
     [--strategy dfs|bfs] [--por off|on|check] [--steps N] [--workers N] \
     [--max-states N] [--expect-states N] [--stats] [--fault-dir DIR] \
     [--out FILE] [--from-trace FILE] [--inject-mc-bug] [--find-reorder] \
     [--inject-seam-hold] [--inject-seam-drop] [--inject-seam-dup]"
        .into()
}

/// The three CLI reduction modes: run unreduced, run reduced, or run
/// both and assert equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PorMode {
    Off,
    On,
    Check,
}

impl PorMode {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(PorMode::Off),
            "on" => Ok(PorMode::On),
            "check" => Ok(PorMode::Check),
            other => Err(format!(
                "unknown por mode '{other}' (valid: off, on, check)"
            )),
        }
    }
}

struct Args {
    scope: Scope,
    seam: Option<SeamScope>,
    seam_bug: Option<SeamBug>,
    strategy: Strategy,
    por: PorMode,
    max_states: u64,
    expect_states: Option<u64>,
    stats: bool,
    fault_dir: PathBuf,
    out: Option<PathBuf>,
    inject: bool,
    find_reorder: bool,
    scope_from_trace: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut scope_name: Option<String> = None;
    let mut seam_bug: Option<SeamBug> = None;
    let mut strategy: Option<Strategy> = None;
    let mut por: Option<PorMode> = None;
    let mut steps: Option<u64> = None;
    let mut workers: Option<usize> = None;
    let mut max_states = 5_000_000u64;
    let mut expect_states: Option<u64> = None;
    let mut stats = false;
    let mut fault_dir = PathBuf::from("target/mc-failures");
    let mut out = None;
    let mut from_trace: Option<PathBuf> = None;
    let mut inject = false;
    let mut find_reorder = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or(format!("{name} needs a value"))
                .map(str::to_string)
        };
        match a.as_str() {
            "--scope" => scope_name = Some(val("--scope")?),
            "--strategy" => strategy = Some(Strategy::parse(&val("--strategy")?)?),
            "--por" => por = Some(PorMode::parse(&val("--por")?)?),
            "--steps" => {
                steps = Some(
                    val("--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                )
            }
            "--workers" => {
                workers = Some(
                    val("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--max-states" => {
                max_states = val("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?
            }
            "--expect-states" => {
                expect_states = Some(
                    val("--expect-states")?
                        .parse()
                        .map_err(|e| format!("--expect-states: {e}"))?,
                )
            }
            "--stats" => stats = true,
            "--fault-dir" => fault_dir = PathBuf::from(val("--fault-dir")?),
            "--out" => out = Some(PathBuf::from(val("--out")?)),
            "--from-trace" => from_trace = Some(PathBuf::from(val("--from-trace")?)),
            "--inject-mc-bug" => inject = true,
            "--find-reorder" => find_reorder = true,
            "--inject-seam-hold" => seam_bug = Some(SeamBug::Hold),
            "--inject-seam-drop" => seam_bug = Some(SeamBug::Drop),
            "--inject-seam-dup" => seam_bug = Some(SeamBug::Dup),
            "--quick" => scope_name = Some("quick".into()),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    // The seam scopes run a different explorer: the cluster-regime
    // knobs do not apply to them.
    let seam = match scope_name.as_deref() {
        Some(name) if name.starts_with("seam") => {
            let seam = SeamScope::by_name(name)?;
            if strategy.is_some()
                || por.is_some()
                || steps.is_some()
                || workers.is_some()
                || inject
                || find_reorder
                || from_trace.is_some()
            {
                return Err(format!(
                    "--scope {name}: seam scopes take no --strategy/--por/--steps/--workers \
                     and no --inject-mc-bug/--find-reorder/--from-trace"
                ));
            }
            Some(seam)
        }
        _ => None,
    };
    let strategy = strategy.unwrap_or(Strategy::Dfs);
    let por = por.unwrap_or(PorMode::Off);
    let mut scope = match (&seam, &from_trace, &scope_name, inject, find_reorder) {
        (Some(_), ..) => Scope::quick(), // unused carrier; the seam scope drives the run
        (None, Some(path), _, _, _) => {
            let trace = asynciter_conformance::corpus::load_trace(path)?;
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("trace")
                .to_string();
            Scope::from_trace(&stem, &trace)?
        }
        (None, None, Some(name), _, _) => Scope::by_name(name)?,
        (None, None, None, true, _) => Scope::inject(),
        (None, None, None, false, true) => Scope::reorder(),
        (None, None, None, false, false) => Scope::quick(),
    };
    if inject {
        scope.inject_bug = true;
    }
    if let Some(s) = steps {
        scope.steps = s;
    }
    if let Some(w) = workers {
        if !(2..=3).contains(&w) {
            return Err("--workers: bounded scopes support 2 or 3 workers".into());
        }
        scope.workers = w;
    }
    Ok(Args {
        scope,
        seam,
        seam_bug,
        strategy,
        por,
        max_states,
        expect_states,
        stats,
        fault_dir,
        out,
        inject,
        find_reorder,
        scope_from_trace: from_trace.is_some(),
    })
}

fn stats_json(outcome: &ExploreOutcome, scope: &Scope, strategy: Strategy, por: Por) -> Json {
    let s = &outcome.stats;
    let mut obj = vec![
        ("scope".into(), Json::Str(scope.name.clone())),
        ("description".into(), Json::Str(scope.describe())),
        (
            "strategy".into(),
            Json::Str(
                match strategy {
                    Strategy::Dfs => "dfs",
                    Strategy::Bfs => "bfs",
                }
                .into(),
            ),
        ),
        (
            "por".into(),
            Json::Str(
                match por {
                    Por::Off => "off",
                    Por::On => "on",
                }
                .into(),
            ),
        ),
        ("visited".into(), Json::Num(s.visited as f64)),
        ("dedup_hits".into(), Json::Num(s.dedup_hits as f64)),
        ("edges".into(), Json::Num(s.edges as f64)),
        ("terminals".into(), Json::Num(s.terminals as f64)),
        (
            "pruned_capacity".into(),
            Json::Num(s.pruned_capacity as f64),
        ),
        (
            "pruned_inadmissible".into(),
            Json::Num(s.pruned_inadmissible as f64),
        ),
        (
            "por_pruned_choices".into(),
            Json::Num(s.por_pruned_choices as f64),
        ),
        ("max_frontier".into(), Json::Num(s.max_frontier as f64)),
        ("truncated".into(), Json::Bool(outcome.truncated)),
        (
            "verdict".into(),
            Json::Str(if outcome.violation.is_some() {
                "violation".into()
            } else if outcome.truncated {
                "truncated".into()
            } else {
                "verified".into()
            }),
        ),
    ];
    if let Some(v) = &outcome.violation {
        obj.push((
            "violation".into(),
            Json::Obj(vec![
                (
                    "property".into(),
                    Json::Str(v.violation.property.id().into()),
                ),
                ("step".into(), Json::Num(v.violation.j as f64)),
                ("detail".into(), Json::Str(v.violation.detail.clone())),
                ("path_len".into(), Json::Num(v.path.len() as f64)),
            ]),
        ));
    }
    Json::Obj(obj)
}

fn print_stats(outcome: &ExploreOutcome, wall_ms: u128) {
    let s = &outcome.stats;
    println!(
        "  visited {} states, {} dedup hits, {} edges, {} terminals",
        s.visited, s.dedup_hits, s.edges, s.terminals
    );
    println!(
        "  pruned: {} capacity, {} inadmissible, {} por; max frontier {}; {} ms",
        s.pruned_capacity, s.pruned_inadmissible, s.por_pruned_choices, s.max_frontier, wall_ms
    );
}

fn seam_stats_json(outcome: &SeamOutcome, scope: &SeamScope) -> Json {
    let s = &outcome.stats;
    let mut obj = vec![
        ("scope".into(), Json::Str(scope.name.clone())),
        ("description".into(), Json::Str(scope.describe())),
        ("visited".into(), Json::Num(s.visited as f64)),
        ("dedup_hits".into(), Json::Num(s.dedup_hits as f64)),
        ("edges".into(), Json::Num(s.edges as f64)),
        ("terminals".into(), Json::Num(s.terminals as f64)),
        (
            "pruned_capacity".into(),
            Json::Num(s.pruned_capacity as f64),
        ),
        (
            "pruned_inadmissible".into(),
            Json::Num(s.pruned_inadmissible as f64),
        ),
        ("truncated".into(), Json::Bool(outcome.truncated)),
        (
            "verdict".into(),
            Json::Str(if outcome.violation.is_some() {
                "violation".into()
            } else if outcome.truncated {
                "truncated".into()
            } else {
                "verified".into()
            }),
        ),
    ];
    if let Some(v) = &outcome.violation {
        obj.push((
            "violation".into(),
            Json::Obj(vec![
                (
                    "property".into(),
                    Json::Str(v.violation.property.id().into()),
                ),
                ("step".into(), Json::Num(v.violation.j as f64)),
                ("detail".into(), Json::Str(v.violation.detail.clone())),
                ("path_len".into(), Json::Num(v.path.len() as f64)),
            ]),
        ));
    }
    Json::Obj(obj)
}

/// Sweep branch for the transport-seam scopes.
fn seam_main(seam: &SeamScope, parsed: &Args) -> i32 {
    let problem = McProblem::build();
    println!("mc: {}", seam.describe());
    let start = std::time::Instant::now();
    let outcome = seam_explore(seam, &problem, parsed.max_states);
    let wall = start.elapsed().as_millis();
    if parsed.stats {
        let s = &outcome.stats;
        println!(
            "  visited {} states, {} dedup hits, {} edges, {} terminals",
            s.visited, s.dedup_hits, s.edges, s.terminals
        );
        println!(
            "  pruned: {} capacity, {} inadmissible; {} ms",
            s.pruned_capacity, s.pruned_inadmissible, wall
        );
    }
    if let Some(path) = &parsed.out {
        let mut json = seam_stats_json(&outcome, seam);
        if let Json::Obj(obj) = &mut json {
            obj.push(("wall_ms".into(), Json::Num(wall as f64)));
        }
        if let Err(e) = std::fs::write(path, json.render_pretty()) {
            eprintln!("mc: cannot write {}: {e}", path.display());
            return 1;
        }
        println!("mc: wrote {}", path.display());
    }
    if let Some(expect) = parsed.expect_states {
        if outcome.stats.visited != expect {
            eprintln!(
                "mc: state-count lock FAILED — expected {expect} states, visited {} \
                 (coverage changed; re-measure and update the lock deliberately)",
                outcome.stats.visited
            );
            return 1;
        }
        println!("mc: state-count lock ok ({expect} states)");
    }
    match &outcome.violation {
        None if outcome.truncated => {
            eprintln!(
                "mc: state budget exhausted after {} states — sweep NOT exhaustive",
                outcome.stats.visited
            );
            1
        }
        None => {
            println!(
                "mc: scope '{}' verified — {} states, all invariants hold on every \
                 admissible interleaving",
                seam.name, outcome.stats.visited
            );
            0
        }
        Some(found) => {
            eprintln!(
                "mc: VIOLATION [{}] at step {}: {}",
                found.violation.property.id(),
                found.violation.j,
                found.violation.detail
            );
            let (trace, _) = seam_rebuild(seam, &problem, &found.path);
            let out = parsed.fault_dir.join("mc-seam-violation.trace");
            match asynciter_conformance::corpus::save_trace(&out, &trace) {
                Ok(()) => eprintln!(
                    "mc: counterexample ({} steps) saved {}",
                    trace.len(),
                    out.display()
                ),
                Err(e) => eprintln!("mc: counterexample emission failed: {e}"),
            }
            1
        }
    }
}

/// CLI entry point; returns the process exit code.
pub fn mc_main(args: &[String]) -> i32 {
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };

    // Seam negative controls: one planted transport bug per fault
    // kind, each of which the seam explorer must catch and shrink.
    if let Some(bug) = parsed.seam_bug {
        let out = parsed.fault_dir.join(format!("mc-seam-{}.trace", bug.id()));
        return match seam_bug_demo(bug, &out) {
            Ok((orig, shrunk)) => {
                println!(
                    "inject-seam-{}: violation found, shrunk {orig} -> {shrunk} steps, saved {}",
                    bug.id(),
                    out.display()
                );
                0
            }
            Err(e) => {
                eprintln!("inject-seam-{}: FAILED: {e}", bug.id());
                1
            }
        };
    }

    // Seam scopes: exhaustive sweep of the transport-seam model.
    if let Some(seam) = &parsed.seam {
        return seam_main(seam, &parsed);
    }

    // Must-find modes delegate to the deterministic demos (the same
    // functions the tier-1 fixtures are generated and locked by) —
    // except `--from-trace --find-reorder`, which hunts the class on
    // the derived scope in the normal sweep below.
    if parsed.inject || (parsed.find_reorder && !parsed.scope_from_trace) {
        let name = if parsed.inject {
            ("inject-mc-bug", "mc-bug-severed-apply.trace")
        } else {
            ("find-reorder", "mc-reorder.trace")
        };
        let out = parsed.fault_dir.join(name.1);
        let run = if parsed.inject {
            inject_bug_demo(&out)
        } else {
            find_reorder_demo(&out)
        };
        return match run {
            Ok((orig, shrunk)) => {
                println!(
                    "{}: violation found, shrunk {orig} -> {shrunk} steps, saved {}",
                    name.0,
                    out.display()
                );
                0
            }
            Err(e) => {
                eprintln!("{}: FAILED: {e}", name.0);
                1
            }
        };
    }

    let problem = McProblem::build();
    println!("mc: {}", parsed.scope.describe());
    let start = std::time::Instant::now();
    let (outcome, por_used) = match parsed.por {
        PorMode::Off => (
            explore(
                &parsed.scope,
                &problem,
                parsed.strategy,
                parsed.max_states,
                parsed.find_reorder,
                Por::Off,
            ),
            Por::Off,
        ),
        PorMode::On => (
            explore(
                &parsed.scope,
                &problem,
                parsed.strategy,
                parsed.max_states,
                parsed.find_reorder,
                Por::On,
            ),
            Por::On,
        ),
        PorMode::Check => {
            match explore_check_por(
                &parsed.scope,
                &problem,
                parsed.strategy,
                parsed.max_states,
                parsed.find_reorder,
            ) {
                Err(e) => {
                    eprintln!("mc: POR-CHECK FAILED: {e}");
                    return 1;
                }
                Ok((off, on)) => {
                    let factor = off.stats.visited as f64 / on.stats.visited.max(1) as f64;
                    println!(
                        "mc: por-check ok — identical verdict; {} states unreduced, \
                         {} reduced ({factor:.2}x)",
                        off.stats.visited, on.stats.visited
                    );
                    (off, Por::Off)
                }
            }
        }
    };
    let wall = start.elapsed().as_millis();
    if parsed.stats {
        print_stats(&outcome, wall);
    }
    if let Some(path) = &parsed.out {
        let mut json = stats_json(&outcome, &parsed.scope, parsed.strategy, por_used);
        if let Json::Obj(obj) = &mut json {
            obj.push(("wall_ms".into(), Json::Num(wall as f64)));
        }
        if let Err(e) = std::fs::write(path, json.render_pretty()) {
            eprintln!("mc: cannot write {}: {e}", path.display());
            return 1;
        }
        println!("mc: wrote {}", path.display());
    }
    if let Some(expect) = parsed.expect_states {
        if outcome.stats.visited != expect {
            eprintln!(
                "mc: state-count lock FAILED — expected {expect} states, visited {} \
                 (coverage changed; re-measure and update the lock deliberately)",
                outcome.stats.visited
            );
            return 1;
        }
        println!("mc: state-count lock ok ({expect} states)");
    }
    match &outcome.violation {
        None if outcome.truncated => {
            eprintln!(
                "mc: state budget exhausted after {} states — sweep NOT exhaustive",
                outcome.stats.visited
            );
            1
        }
        None if parsed.find_reorder => {
            eprintln!(
                "mc: find-reorder came up empty on scope '{}' — {} states, \
                 no out-of-order application",
                parsed.scope.name, outcome.stats.visited
            );
            1
        }
        None => {
            println!(
                "mc: scope '{}' verified — {} states, all invariants hold on every \
                 admissible interleaving",
                parsed.scope.name, outcome.stats.visited
            );
            0
        }
        Some(found) if parsed.find_reorder && found.violation.property == Property::Reorder => {
            println!(
                "mc: find-reorder rediscovered the out-of-order class on scope '{}' \
                 at step {}: {}",
                parsed.scope.name, found.violation.j, found.violation.detail
            );
            0
        }
        Some(found) => {
            eprintln!(
                "mc: VIOLATION [{}] at step {}: {}",
                found.violation.property.id(),
                found.violation.j,
                found.violation.detail
            );
            let out = parsed
                .fault_dir
                .join(format!("mc-{}.trace", found.violation.property.id()));
            match emit_counterexample(&parsed.scope, &problem, found, &out) {
                Ok(rep) => eprintln!(
                    "mc: counterexample shrunk {} -> {} steps, saved {}",
                    rep.orig_steps,
                    rep.shrunk_steps,
                    out.display()
                ),
                Err(e) => eprintln!("mc: counterexample emission failed: {e}"),
            }
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn arg_parsing_covers_modes_and_errors() {
        assert!(parse_args(&s(&["--scope", "nope"])).is_err());
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["--workers", "9"])).is_err());
        let a = parse_args(&s(&["--quick", "--stats", "--strategy", "bfs"])).unwrap();
        assert_eq!(a.scope.name, "quick");
        assert!(a.stats);
        assert_eq!(a.strategy, Strategy::Bfs);
        let a = parse_args(&s(&["--inject-mc-bug"])).unwrap();
        assert!(a.scope.inject_bug);
        assert_eq!(a.scope.name, "inject");
        let a = parse_args(&s(&["--find-reorder"])).unwrap();
        assert_eq!(a.scope.name, "reorder");
        assert!(a.find_reorder);
    }

    #[test]
    fn error_messages_and_exit_codes_are_pinned() {
        // Every rejection path: exact message (operators script against
        // these) and exit code 1 through `mc_main`.
        let cases: &[(&[&str], &str)] = &[
            (
                &["--scope", "nope"],
                "unknown scope 'nope' (valid: quick, flex, reorder, inject, \
                 triple, deep, deeper)",
            ),
            (
                &["--scope", "seam3"],
                "unknown seam scope 'seam3' (valid: seam1, seam2)",
            ),
            (
                &["--strategy", "ids"],
                "unknown strategy 'ids' (valid: dfs, bfs)",
            ),
            (
                &["--por", "maybe"],
                "unknown por mode 'maybe' (valid: off, on, check)",
            ),
            (
                &["--workers", "4"],
                "--workers: bounded scopes support 2 or 3 workers",
            ),
            (
                &["--scope", "seam2", "--por", "on"],
                "--scope seam2: seam scopes take no --strategy/--por/--steps/--workers \
                 and no --inject-mc-bug/--find-reorder/--from-trace",
            ),
        ];
        for (args, want) in cases {
            let err = parse_args(&s(args)).err().expect("parse must fail");
            assert_eq!(&err, want, "message drifted for {args:?}");
            assert_eq!(mc_main(&s(args)), 1, "exit code drifted for {args:?}");
        }
    }

    #[test]
    fn seam_scopes_and_seam_bug_flags_parse() {
        let a = parse_args(&s(&["--scope", "seam1"])).unwrap();
        assert_eq!(a.seam.as_ref().unwrap().name, "seam1");
        assert_eq!(a.seam.as_ref().unwrap().workers, 1);
        let a = parse_args(&s(&["--scope", "seam2", "--stats"])).unwrap();
        assert_eq!(a.seam.as_ref().unwrap().workers, 2);
        assert!(a.stats);
        for (flag, bug) in [
            ("--inject-seam-hold", SeamBug::Hold),
            ("--inject-seam-drop", SeamBug::Drop),
            ("--inject-seam-dup", SeamBug::Dup),
        ] {
            let a = parse_args(&s(&[flag])).unwrap();
            assert_eq!(a.seam_bug, Some(bug));
        }
        // --find-reorder composes with --from-trace: the hunt runs on
        // the derived scope instead of the fixed reorder scope.
        let trace = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/corpus/mc-reorder.trace"
        );
        let a = parse_args(&s(&["--from-trace", trace, "--find-reorder"])).unwrap();
        assert!(a.scope_from_trace && a.find_reorder);
    }

    #[test]
    fn must_find_modes_exit_zero() {
        let dir = std::env::temp_dir().join("asynciter-mc-cli-test");
        let _ = std::fs::remove_dir_all(&dir);
        let code = mc_main(&s(&[
            "--inject-mc-bug",
            "--fault-dir",
            dir.to_str().unwrap(),
        ]));
        assert_eq!(code, 0, "negative control must be caught");
        assert!(dir.join("mc-bug-severed-apply.trace").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
