//! Command-line driver behind `cargo run -p asynciter-bench --bin mc`.
//!
//! ```text
//! mc --scope quick --stats            # exhaustive CI sweep, verdict + counters
//! mc --scope flex --strategy bfs      # flexible-communication scope, BFS
//! mc --inject-mc-bug                  # negative control: must find + shrink + emit
//! mc --find-reorder                   # rediscover the out-of-order class
//! mc --scope quick --out MC_report.json
//! ```
//!
//! Exit codes: `0` — scope verified (or, in `--inject-mc-bug` /
//! `--find-reorder` mode, the sought violation was found and emitted);
//! `1` — a violation was found in a normal sweep, the must-find modes
//! came up empty, the state budget truncated the sweep, or the
//! arguments were invalid.

use crate::counterexample::{emit_counterexample, find_reorder_demo, inject_bug_demo};
use crate::explore::{explore, ExploreOutcome, Strategy};
use crate::scope::{McProblem, Scope};
use asynciter_report::json::Json;
use std::path::PathBuf;

fn usage() -> String {
    "usage: mc [--scope quick|flex|reorder|inject] [--strategy dfs|bfs] \
     [--steps N] [--workers N] [--max-states N] [--stats] [--fault-dir DIR] \
     [--out FILE] [--inject-mc-bug] [--find-reorder]"
        .into()
}

struct Args {
    scope: Scope,
    strategy: Strategy,
    max_states: u64,
    stats: bool,
    fault_dir: PathBuf,
    out: Option<PathBuf>,
    inject: bool,
    find_reorder: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut scope_name: Option<String> = None;
    let mut strategy = Strategy::Dfs;
    let mut steps: Option<u64> = None;
    let mut workers: Option<usize> = None;
    let mut max_states = 5_000_000u64;
    let mut stats = false;
    let mut fault_dir = PathBuf::from("target/mc-failures");
    let mut out = None;
    let mut inject = false;
    let mut find_reorder = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or(format!("{name} needs a value"))
                .map(str::to_string)
        };
        match a.as_str() {
            "--scope" => scope_name = Some(val("--scope")?),
            "--strategy" => strategy = Strategy::parse(&val("--strategy")?)?,
            "--steps" => {
                steps = Some(
                    val("--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                )
            }
            "--workers" => {
                workers = Some(
                    val("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--max-states" => {
                max_states = val("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?
            }
            "--stats" => stats = true,
            "--fault-dir" => fault_dir = PathBuf::from(val("--fault-dir")?),
            "--out" => out = Some(PathBuf::from(val("--out")?)),
            "--inject-mc-bug" => inject = true,
            "--find-reorder" => find_reorder = true,
            "--quick" => scope_name = Some("quick".into()),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    let mut scope = match (&scope_name, inject, find_reorder) {
        (Some(name), _, _) => Scope::by_name(name)?,
        (None, true, _) => Scope::inject(),
        (None, false, true) => Scope::reorder(),
        (None, false, false) => Scope::quick(),
    };
    if inject {
        scope.inject_bug = true;
    }
    if let Some(s) = steps {
        scope.steps = s;
    }
    if let Some(w) = workers {
        if !(2..=3).contains(&w) {
            return Err("--workers: bounded scopes support 2 or 3 workers".into());
        }
        scope.workers = w;
    }
    Ok(Args {
        scope,
        strategy,
        max_states,
        stats,
        fault_dir,
        out,
        inject,
        find_reorder,
    })
}

fn stats_json(outcome: &ExploreOutcome, scope: &Scope, strategy: Strategy) -> Json {
    let s = &outcome.stats;
    let mut obj = vec![
        ("scope".into(), Json::Str(scope.name.clone())),
        ("description".into(), Json::Str(scope.describe())),
        (
            "strategy".into(),
            Json::Str(
                match strategy {
                    Strategy::Dfs => "dfs",
                    Strategy::Bfs => "bfs",
                }
                .into(),
            ),
        ),
        ("visited".into(), Json::Num(s.visited as f64)),
        ("dedup_hits".into(), Json::Num(s.dedup_hits as f64)),
        ("edges".into(), Json::Num(s.edges as f64)),
        ("terminals".into(), Json::Num(s.terminals as f64)),
        (
            "pruned_capacity".into(),
            Json::Num(s.pruned_capacity as f64),
        ),
        (
            "pruned_inadmissible".into(),
            Json::Num(s.pruned_inadmissible as f64),
        ),
        ("max_frontier".into(), Json::Num(s.max_frontier as f64)),
        ("truncated".into(), Json::Bool(outcome.truncated)),
        (
            "verdict".into(),
            Json::Str(if outcome.violation.is_some() {
                "violation".into()
            } else if outcome.truncated {
                "truncated".into()
            } else {
                "verified".into()
            }),
        ),
    ];
    if let Some(v) = &outcome.violation {
        obj.push((
            "violation".into(),
            Json::Obj(vec![
                (
                    "property".into(),
                    Json::Str(v.violation.property.id().into()),
                ),
                ("step".into(), Json::Num(v.violation.j as f64)),
                ("detail".into(), Json::Str(v.violation.detail.clone())),
                ("path_len".into(), Json::Num(v.path.len() as f64)),
            ]),
        ));
    }
    Json::Obj(obj)
}

fn print_stats(outcome: &ExploreOutcome, wall_ms: u128) {
    let s = &outcome.stats;
    println!(
        "  visited {} states, {} dedup hits, {} edges, {} terminals",
        s.visited, s.dedup_hits, s.edges, s.terminals
    );
    println!(
        "  pruned: {} capacity, {} inadmissible; max frontier {}; {} ms",
        s.pruned_capacity, s.pruned_inadmissible, s.max_frontier, wall_ms
    );
}

/// CLI entry point; returns the process exit code.
pub fn mc_main(args: &[String]) -> i32 {
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };

    // Must-find modes delegate to the deterministic demos (the same
    // functions the tier-1 fixtures are generated and locked by).
    if parsed.inject || parsed.find_reorder {
        let name = if parsed.inject {
            ("inject-mc-bug", "mc-bug-severed-apply.trace")
        } else {
            ("find-reorder", "mc-reorder.trace")
        };
        let out = parsed.fault_dir.join(name.1);
        let run = if parsed.inject {
            inject_bug_demo(&out)
        } else {
            find_reorder_demo(&out)
        };
        return match run {
            Ok((orig, shrunk)) => {
                println!(
                    "{}: violation found, shrunk {orig} -> {shrunk} steps, saved {}",
                    name.0,
                    out.display()
                );
                0
            }
            Err(e) => {
                eprintln!("{}: FAILED: {e}", name.0);
                1
            }
        };
    }

    let problem = McProblem::build();
    println!("mc: {}", parsed.scope.describe());
    let start = std::time::Instant::now();
    let outcome = explore(
        &parsed.scope,
        &problem,
        parsed.strategy,
        parsed.max_states,
        false,
    );
    let wall = start.elapsed().as_millis();
    if parsed.stats {
        print_stats(&outcome, wall);
    }
    if let Some(path) = &parsed.out {
        let mut json = stats_json(&outcome, &parsed.scope, parsed.strategy);
        if let Json::Obj(obj) = &mut json {
            obj.push(("wall_ms".into(), Json::Num(wall as f64)));
        }
        if let Err(e) = std::fs::write(path, json.render_pretty()) {
            eprintln!("mc: cannot write {}: {e}", path.display());
            return 1;
        }
        println!("mc: wrote {}", path.display());
    }
    match &outcome.violation {
        None if outcome.truncated => {
            eprintln!(
                "mc: state budget exhausted after {} states — sweep NOT exhaustive",
                outcome.stats.visited
            );
            1
        }
        None => {
            println!(
                "mc: scope '{}' verified — {} states, all invariants hold on every \
                 admissible interleaving",
                parsed.scope.name, outcome.stats.visited
            );
            0
        }
        Some(found) => {
            eprintln!(
                "mc: VIOLATION [{}] at step {}: {}",
                found.violation.property.id(),
                found.violation.j,
                found.violation.detail
            );
            let out = parsed
                .fault_dir
                .join(format!("mc-{}.trace", found.violation.property.id()));
            match emit_counterexample(&parsed.scope, &problem, found, &out) {
                Ok(rep) => eprintln!(
                    "mc: counterexample shrunk {} -> {} steps, saved {}",
                    rep.orig_steps,
                    rep.shrunk_steps,
                    out.display()
                ),
                Err(e) => eprintln!("mc: counterexample emission failed: {e}"),
            }
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn arg_parsing_covers_modes_and_errors() {
        assert!(parse_args(&s(&["--scope", "nope"])).is_err());
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["--workers", "9"])).is_err());
        let a = parse_args(&s(&["--quick", "--stats", "--strategy", "bfs"])).unwrap();
        assert_eq!(a.scope.name, "quick");
        assert!(a.stats);
        assert_eq!(a.strategy, Strategy::Bfs);
        let a = parse_args(&s(&["--inject-mc-bug"])).unwrap();
        assert!(a.scope.inject_bug);
        assert_eq!(a.scope.name, "inject");
        let a = parse_args(&s(&["--find-reorder"])).unwrap();
        assert_eq!(a.scope.name, "reorder");
        assert!(a.find_reorder);
    }

    #[test]
    fn must_find_modes_exit_zero() {
        let dir = std::env::temp_dir().join("asynciter-mc-cli-test");
        let _ = std::fs::remove_dir_all(&dir);
        let code = mc_main(&s(&[
            "--inject-mc-bug",
            "--fault-dir",
            dir.to_str().unwrap(),
        ]));
        assert_eq!(code, 0, "negative control must be caught");
        assert!(dir.join("mc-bug-severed-apply.trace").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
