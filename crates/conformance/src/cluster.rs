//! Seeded sampling of message-passing (cluster) fuzz cases.
//!
//! A [`ClusterPlan`] is the genotype of one message-level fuzz case: a
//! worker count, an exchange period, a receiver policy and a channel
//! model (link latency distribution + hold/drop/duplicate fault
//! probabilities + flexible partial-exchange probability), all derived
//! from one seed. Building the plan yields a
//! [`Cluster`] backend whose run
//! is a deterministic function of `(plan, problem)` — a failing case
//! replays from its plan alone, exactly like the schedule plans in
//! [`crate::plan`].
//!
//! The cluster engine records the schedule it *executes* (labels =
//! producing steps), which the differential oracle
//! [`crate::oracle::cluster_replay_equivalence`] injects back through
//! the Definition-1 replay engine and compares bit for bit — the
//! message-passing analogue of the Sim↔Replay oracle, covering
//! out-of-order, lossy, duplicating and partially-communicating
//! channels.
//!
//! [`ThreadedPlan`] is the concurrent sibling: the same fault recipe
//! executed by free-running worker threads. Its runs are racy, so the
//! matching oracle ([`crate::oracle::threaded_replay_equivalence`])
//! verifies each live run against its own recorded trace instead of
//! regenerating from the plan.

use asynciter_runtime::session::{Cluster, ThreadedCluster};
use asynciter_runtime::{ApplyPolicy, LinkModel};
use rand::rngs::StdRng;
use rand::RngExt;

/// One message-passing fuzz case: a seeded channel-model recipe.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    /// Number of workers (shards).
    pub workers: usize,
    /// Global step budget of the run.
    pub steps: u64,
    /// Channel-model seed.
    pub seed: u64,
    /// Exchange period (post a block message every this many updates).
    pub exchange_every: u64,
    /// Receiver policy.
    pub apply_policy: ApplyPolicy,
    /// Link latency model.
    pub link: LinkModel,
    /// Hold probability (out-of-order delivery).
    pub hold_prob: f64,
    /// Maximum extra latency of held deliveries.
    pub hold_extra: u64,
    /// Drop probability (message loss).
    pub drop_prob: f64,
    /// Duplication probability.
    pub dup_prob: f64,
    /// Partial (subset) exchange probability — flexible communication.
    pub partial_prob: f64,
}

impl ClusterPlan {
    /// Samples a random plan for an `n`-dimensional problem and `steps`
    /// global updates.
    ///
    /// Fault probabilities are capped (hold ≤ 0.4, drop ≤ 0.25,
    /// dup ≤ 0.2) so every sampled channel still converges within the
    /// problem budgets — the convergence oracle runs on every case.
    ///
    /// # Panics
    /// Panics when `n < 4` or `steps == 0`.
    pub fn sample(rng_: &mut StdRng, n: usize, steps: u64) -> Self {
        assert!(n >= 4, "ClusterPlan::sample: need n >= 4");
        assert!(steps > 0, "ClusterPlan::sample: need steps > 0");
        let workers = rng_.random_range(2..=4.min(n / 2));
        let link = match rng_.random_range(0..3u32) {
            0 => LinkModel::Fixed {
                ticks: rng_.random_range(1..=2),
            },
            1 => {
                let lo = rng_.random_range(1..=2);
                LinkModel::Jitter {
                    lo,
                    hi: rng_.random_range(lo + 1..=8),
                }
            }
            _ => LinkModel::HeavyTail {
                scale: 1,
                alpha: rng_.random_range(1.2..2.2),
            },
        };
        Self {
            workers,
            steps,
            seed: rng_.random::<u64>(),
            exchange_every: rng_.random_range(1..=3),
            apply_policy: if rng_.random() {
                ApplyPolicy::AsReceived
            } else {
                ApplyPolicy::KeepFreshest
            },
            link,
            hold_prob: rng_.random_range(0.0..0.4),
            hold_extra: rng_.random_range(4..=16),
            drop_prob: rng_.random_range(0.0..0.25),
            dup_prob: rng_.random_range(0.0..0.2),
            partial_prob: if rng_.random() {
                0.0
            } else {
                rng_.random_range(0.3..0.8)
            },
        }
    }

    /// Builds the `Session` backend described by this plan.
    pub fn backend(&self) -> Cluster {
        Cluster {
            workers: self.workers,
            partition: None,
            exchange_every: self.exchange_every,
            apply_policy: self.apply_policy,
            link: self.link,
            hold_prob: self.hold_prob,
            hold_extra: self.hold_extra,
            drop_prob: self.drop_prob,
            dup_prob: self.dup_prob,
            partial_prob: self.partial_prob,
        }
    }

    /// One-line description for reports and failure records.
    pub fn describe(&self) -> String {
        format!(
            "cluster-plan(seed={:#x}, workers={}, steps={}, exchange={}, {:?}, {:?}, \
             hold={:.2}+{}, drop={:.2}, dup={:.2}, partial={:.2})",
            self.seed,
            self.workers,
            self.steps,
            self.exchange_every,
            self.apply_policy,
            self.link,
            self.hold_prob,
            self.hold_extra,
            self.drop_prob,
            self.dup_prob,
            self.partial_prob,
        )
    }
}

/// One *concurrent* message-passing fuzz case: a seeded fault recipe
/// for the genuinely threaded cluster.
///
/// Unlike [`ClusterPlan`], the run this describes is racy — the OS
/// scheduler decides the executed interleaving, so two runs of the same
/// plan record different traces. The plan is therefore not a
/// regenerable phenotype; the differential oracle
/// [`crate::oracle::threaded_replay_equivalence`] instead checks each
/// *live* run against its own recorded trace (bit-identical replay,
/// condition (a), convergence).
#[derive(Debug, Clone)]
pub struct ThreadedPlan {
    /// Number of worker threads (shards).
    pub workers: usize,
    /// Step budget — a backstop only; runs stop on a residual target.
    pub max_steps: u64,
    /// Fault/partial-selection seed (per-worker streams derive from it).
    pub seed: u64,
    /// Exchange period (post a block message every this many updates).
    pub exchange_every: u64,
    /// Receiver policy.
    pub apply_policy: ApplyPolicy,
    /// Hold probability (out-of-order delivery over FIFO channels).
    pub hold_prob: f64,
    /// Maximum extra sends a held message waits for.
    pub hold_extra: u64,
    /// Drop probability (message loss).
    pub drop_prob: f64,
    /// Duplication probability.
    pub dup_prob: f64,
    /// Partial (subset) exchange probability — flexible communication.
    pub partial_prob: f64,
}

impl ThreadedPlan {
    /// Samples a random plan for an `n`-dimensional problem with a
    /// `max_steps` backstop budget. Fault probabilities are capped the
    /// same way as [`ClusterPlan::sample`] so every sampled channel
    /// still converges.
    ///
    /// # Panics
    /// Panics when `n < 4` or `max_steps == 0`.
    pub fn sample(rng_: &mut StdRng, n: usize, max_steps: u64) -> Self {
        assert!(n >= 4, "ThreadedPlan::sample: need n >= 4");
        assert!(max_steps > 0, "ThreadedPlan::sample: need max_steps > 0");
        Self {
            workers: rng_.random_range(2..=4.min(n / 2)),
            max_steps,
            seed: rng_.random::<u64>(),
            exchange_every: rng_.random_range(1..=3),
            apply_policy: if rng_.random() {
                ApplyPolicy::AsReceived
            } else {
                ApplyPolicy::KeepFreshest
            },
            hold_prob: rng_.random_range(0.0..0.4),
            hold_extra: rng_.random_range(4..=16),
            drop_prob: rng_.random_range(0.0..0.25),
            dup_prob: rng_.random_range(0.0..0.2),
            partial_prob: if rng_.random() {
                0.0
            } else {
                rng_.random_range(0.3..0.8)
            },
        }
    }

    /// Builds the `Session` backend described by this plan.
    pub fn backend(&self) -> ThreadedCluster {
        ThreadedCluster {
            workers: self.workers,
            partition: None,
            exchange_every: self.exchange_every,
            apply_policy: self.apply_policy,
            hold_prob: self.hold_prob,
            hold_extra: self.hold_extra,
            drop_prob: self.drop_prob,
            dup_prob: self.dup_prob,
            partial_prob: self.partial_prob,
            quiesce: None,
        }
    }

    /// One-line description for reports and failure records.
    pub fn describe(&self) -> String {
        format!(
            "threaded-plan(seed={:#x}, workers={}, max_steps={}, exchange={}, {:?}, \
             hold={:.2}+{}, drop={:.2}, dup={:.2}, partial={:.2})",
            self.seed,
            self.workers,
            self.max_steps,
            self.exchange_every,
            self.apply_policy,
            self.hold_prob,
            self.hold_extra,
            self.drop_prob,
            self.dup_prob,
            self.partial_prob,
        )
    }
}

/// Evidence of out-of-order message application in a cluster trace:
/// some worker's recorded read label for a component *decreased*
/// between two of its consecutive turns. Under round-robin scheduling
/// step `j` belongs to worker `(j − 1) mod workers`; a label can only
/// regress when an older message was applied after a newer one
/// (`ApplyPolicy::AsReceived` + a held delivery) — FIFO channels can
/// never produce it.
pub fn has_label_regression(trace: &asynciter_models::Trace, workers: usize) -> bool {
    if workers == 0 {
        return false;
    }
    let n = trace.n();
    // Last observed label vector per worker residue class.
    let mut last: Vec<Option<Vec<u64>>> = vec![None; workers];
    for j in 1..=trace.len() as u64 {
        let Ok(labels) = trace.labels(j) else {
            return false;
        };
        let w = ((j - 1) % workers as u64) as usize;
        if let Some(prev) = &last[w] {
            if (0..n).any(|c| labels[c] < prev[c]) {
                return true;
            }
        }
        last[w] = Some(labels.to_vec());
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{ConformanceProblem, ProblemKind};
    use asynciter_core::session::{RecordMode, Session};
    use asynciter_numerics::rng::rng;

    #[test]
    fn sampling_covers_links_and_policies() {
        let mut r = rng(42);
        let mut links = std::collections::BTreeSet::new();
        let mut policies = std::collections::BTreeSet::new();
        let mut partials = 0;
        for _ in 0..100 {
            let plan = ClusterPlan::sample(&mut r, 16, 100);
            links.insert(match plan.link {
                LinkModel::Fixed { .. } => "fixed",
                LinkModel::Jitter { .. } => "jitter",
                LinkModel::HeavyTail { .. } => "heavy",
            });
            policies.insert(format!("{:?}", plan.apply_policy));
            partials += usize::from(plan.partial_prob > 0.0);
        }
        assert_eq!(links.len(), 3, "link kinds missed: {links:?}");
        assert_eq!(policies.len(), 2);
        assert!(partials > 20 && partials < 80);
    }

    #[test]
    fn plans_run_deterministically() {
        let problem = ConformanceProblem::build(ProblemKind::Jacobi);
        let mut r = rng(7);
        let plan = ClusterPlan::sample(&mut r, problem.n(), 400);
        let run = || {
            Session::new(problem.op.as_ref())
                .x0(problem.x0.clone())
                .steps(plan.steps)
                .seed(plan.seed)
                .record(RecordMode::Full)
                .backend(plan.backend())
                .run()
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.final_x, b.final_x);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        for j in 1..=ta.len() as u64 {
            assert_eq!(ta.labels(j).unwrap(), tb.labels(j).unwrap());
        }
    }

    #[test]
    fn label_regression_detector() {
        use asynciter_models::{LabelStore, Trace};
        // Two workers over n = 2; worker 0 acts at odd steps. Labels
        // only grow: no regression.
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[0], &[0, 0]);
        t.push_step(&[1], &[0, 0]);
        t.push_step(&[0], &[1, 2]);
        t.push_step(&[1], &[3, 2]);
        assert!(!has_label_regression(&t, 2));
        // Worker 1's view of component 0 regresses 3 → 1.
        let mut t = Trace::new(2, LabelStore::Full);
        t.push_step(&[0], &[0, 0]);
        t.push_step(&[1], &[3, 0]);
        t.push_step(&[0], &[1, 2]);
        t.push_step(&[1], &[1, 2]);
        assert!(has_label_regression(&t, 2));
        // The same steps viewed as one worker interleave legitimately.
        assert!(has_label_regression(&t, 1));
    }
}
