//! The conformance campaign: generate → certify → cross-check → shrink.
//!
//! One campaign runs `cases` fuzz cases. Case `c` deterministically
//! derives a plan from `seed` and problem `c mod 3`, records its trace,
//! checks the plan's own [`AdmissibilityWitness`] accepts it (the
//! generated-admissibility invariant), then drives the differential
//! oracles: metamorphic on every case, replay round-trip / flexible
//! degradation / sim equivalence / cluster equivalence (a seeded
//! message-passing plan whose recorded schedule must replay
//! bit-identically) / threaded equivalence (a *racy* real-thread run
//! checked against its own recorded schedule) on striding subsets.
//! Every campaign
//! also runs the *negative controls* — adversarial schedules the
//! witness must reject — and re-validates the committed corpus.
//!
//! Any failing case is minimised with [`crate::shrink::shrink_trace`]
//! (predicate: the same oracle still fails on the injected trace) and
//! the counterexample is written as a replayable `.trace` file for
//! commit under `tests/corpus/`.
//!
//! [`AdmissibilityWitness`]: asynciter_models::AdmissibilityWitness

use crate::cluster::{has_label_regression, ClusterPlan, ThreadedPlan};
use crate::corpus;
use crate::oracle;
use crate::plan::SchedulePlan;
use crate::problems::{ConformanceProblem, ProblemKind};
use crate::shrink::shrink_trace;
use asynciter_core::session::{RecordMode, Session};
use asynciter_models::schedule::{FrozenLabelAdversary, StarvedComponent};
use asynciter_models::{LabelStore, ModelError, Trace};
use asynciter_numerics::rng::{child_seed, rng};
use asynciter_report::json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Mode stamp for the report (`"quick"` / `"soak"` / `"custom"`).
    pub mode: String,
    /// Number of fuzz cases.
    pub cases: u64,
    /// Master seed.
    pub seed: u64,
    /// Committed corpus to re-validate (skipped when `None` or absent).
    pub corpus_dir: Option<PathBuf>,
    /// Where minimised counterexamples are written.
    pub fault_dir: PathBuf,
    /// Run the replay round-trip oracle every this many cases.
    pub roundtrip_every: u64,
    /// Run the flexible-degradation oracle every this many cases.
    pub flexible_every: u64,
    /// Run the sim-equivalence oracle every this many cases.
    pub sim_every: u64,
    /// Run the cluster-equivalence oracle every this many cases.
    pub cluster_every: u64,
    /// Run the threaded-equivalence oracle (real concurrent workers)
    /// every this many cases.
    pub threaded_every: u64,
    /// Simulated iterations per sim-equivalence case.
    pub sim_iterations: u64,
    /// Predicate-evaluation budget per shrink.
    pub shrink_budget: u64,
}

impl CampaignConfig {
    /// The CI-sized campaign: ≥ 200 schedules over the three problems.
    pub fn quick(seed: u64) -> Self {
        Self {
            mode: "quick".into(),
            cases: 240,
            seed,
            corpus_dir: Some(PathBuf::from("tests/corpus")),
            fault_dir: PathBuf::from("."),
            roundtrip_every: 5,
            flexible_every: 7,
            sim_every: 10,
            // 240 quick cases / 3 = 80 cluster plans per quick campaign.
            cluster_every: 3,
            // Coprime to the 5-problem stride so the (costlier) threaded
            // cases sweep every problem family: 19 plans per quick run.
            threaded_every: 13,
            sim_iterations: 300,
            shrink_budget: 100_000,
        }
    }

    /// The nightly-scale campaign.
    pub fn soak(seed: u64) -> Self {
        Self {
            mode: "soak".into(),
            cases: 2_000,
            sim_iterations: 600,
            ..Self::quick(seed)
        }
    }
}

/// One recorded failure, with its minimised counterexample when the
/// failing oracle consumes an injectable trace.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// Case index (`u64::MAX` for corpus/control failures).
    pub case: u64,
    /// Problem id.
    pub problem: String,
    /// Oracle (or phase) that failed.
    pub oracle: String,
    /// Plan description (empty for corpus/control failures).
    pub plan: String,
    /// What went wrong.
    pub message: String,
    /// Steps in the minimised counterexample, when one was produced.
    pub shrunk_steps: Option<u64>,
    /// Where the counterexample was written.
    pub trace_path: Option<String>,
}

/// Campaign outcome.
#[derive(Debug)]
pub struct CampaignReport {
    /// Mode stamp.
    pub mode: String,
    /// Master seed.
    pub seed: u64,
    /// Fuzz cases executed.
    pub cases_run: u64,
    /// Problems covered (ids).
    pub problems: Vec<String>,
    /// Problem id → fuzz cases actually run on it. Unlike `problems`
    /// (the configured axis), this is *observed* coverage — the CI
    /// coverage check reads it, so a striding bug that starves a
    /// family shows up as a zero here and fails the job.
    pub problem_cases: BTreeMap<String, u64>,
    /// Oracle → number of runs.
    pub oracle_runs: BTreeMap<String, u64>,
    /// Adversarial schedules correctly rejected by the witness.
    pub witness_rejections: u64,
    /// Corpus files re-validated.
    pub corpus_checked: u64,
    /// All failures (empty on a clean campaign).
    pub failures: Vec<FailureRecord>,
    /// Wall-clock seconds for the whole campaign.
    pub wall_secs: f64,
}

impl CampaignReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Serialises the report for `CONFORMANCE_report.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(1.0)),
            ("kind".into(), Json::Str("conformance".into())),
            ("mode".into(), Json::Str(self.mode.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("cases".into(), Json::Num(self.cases_run as f64)),
            (
                "problems".into(),
                Json::Arr(self.problems.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
            (
                "problem_cases".into(),
                Json::Obj(
                    self.problem_cases
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "oracles".into(),
                Json::Obj(
                    self.oracle_runs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "witness_rejections".into(),
                Json::Num(self.witness_rejections as f64),
            ),
            (
                "corpus_checked".into(),
                Json::Num(self.corpus_checked as f64),
            ),
            (
                "failures".into(),
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                (
                                    "case".into(),
                                    if f.case == u64::MAX {
                                        Json::Null
                                    } else {
                                        Json::Num(f.case as f64)
                                    },
                                ),
                                ("problem".into(), Json::Str(f.problem.clone())),
                                ("oracle".into(), Json::Str(f.oracle.clone())),
                                ("plan".into(), Json::Str(f.plan.clone())),
                                ("message".into(), Json::Str(f.message.clone())),
                                (
                                    "shrunk_steps".into(),
                                    match f.shrunk_steps {
                                        Some(s) => Json::Num(s as f64),
                                        None => Json::Null,
                                    },
                                ),
                                (
                                    "trace_path".into(),
                                    match &f.trace_path {
                                        Some(p) => Json::Str(p.clone()),
                                        None => Json::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("wall_secs".into(), Json::Num(self.wall_secs)),
        ])
    }
}

/// Which oracles run for a given case index.
fn oracles_for(cfg: &CampaignConfig, case: u64) -> Vec<&'static str> {
    let mut out = vec!["metamorphic"];
    if case.is_multiple_of(cfg.roundtrip_every) {
        out.push("replay-roundtrip");
    }
    if case.is_multiple_of(cfg.flexible_every) {
        out.push("flexible");
    }
    if case.is_multiple_of(cfg.sim_every) {
        out.push("sim-equivalence");
    }
    if case.is_multiple_of(cfg.cluster_every) {
        out.push("cluster-equivalence");
    }
    if case.is_multiple_of(cfg.threaded_every) {
        out.push("threaded-equivalence");
    }
    out
}

/// Shrinks a failing trace against `still_fails`, writes the
/// counterexample, and fills the failure record.
fn shrink_and_persist(
    cfg: &CampaignConfig,
    record: &mut FailureRecord,
    trace: &Trace,
    mut still_fails: impl FnMut(&Trace) -> bool,
) {
    let res = shrink_trace(trace, &mut still_fails, cfg.shrink_budget);
    record.shrunk_steps = Some(res.trace.len() as u64);
    let path = cfg.fault_dir.join(format!(
        "fault-case{}-{}.trace",
        record.case,
        record.oracle.replace(' ', "-")
    ));
    match corpus::save_trace(&path, &res.trace) {
        Ok(()) => record.trace_path = Some(path.display().to_string()),
        Err(e) => record
            .message
            .push_str(&format!(" (counterexample not saved: {e})")),
    }
}

/// Negative controls: the witness must reject schedules that violate
/// conditions (b) and (c) by construction. Returns the rejection count
/// (2 on success) and records failures otherwise.
fn negative_controls(seed: u64, failures: &mut Vec<FailureRecord>) -> u64 {
    let problem = ConformanceProblem::build(ProblemKind::Jacobi);
    let mut r = rng(child_seed(seed, 0xDEAD));
    let plan = SchedulePlan::sample(&mut r, problem.n(), 400, problem.limits);
    let mut rejections = 0;
    let mut control = |name: &str, trace: Trace, expect: &str| match plan.witness().check(&trace) {
        Err(ModelError::ConditionViolated { condition, .. }) if condition == expect => {
            rejections += 1;
        }
        other => failures.push(FailureRecord {
            case: u64::MAX,
            problem: "jacobi".into(),
            oracle: format!("witness-control-{name}"),
            plan: plan.describe(),
            message: format!("expected condition ({expect}) rejection, got {other:?}"),
            shrunk_steps: None,
            trace_path: None,
        }),
    };
    // Condition (b): freeze one component's label at 0 forever.
    let mut frozen = FrozenLabelAdversary::new(plan.build(), 1, 0);
    control(
        "frozen-label",
        asynciter_models::schedule::record(&mut frozen, 400, LabelStore::Full),
        "b",
    );
    // Condition (c): starve one component past the witness's gap.
    let mut starved = StarvedComponent::new(plan.build(), 0, 0);
    control(
        "starved",
        asynciter_models::schedule::record(&mut starved, 400, LabelStore::Full),
        "c",
    );
    rejections
}

/// Re-validates the committed corpus: seed traces must equal their
/// regenerated plans and pass their witnesses; fault fixtures must
/// parse and replay deterministically (their original failure
/// predicates are plan-specific, so reproduction is checked by the
/// tier-1 suite — `fault_fixture_reproduces_from_the_demo` — not
/// here).
fn check_corpus(
    dir: &Path,
    problems: &[ConformanceProblem],
    failures: &mut Vec<FailureRecord>,
) -> u64 {
    let mut fail = |oracle: &str, path: &Path, message: String| {
        failures.push(FailureRecord {
            case: u64::MAX,
            problem: String::new(),
            oracle: oracle.into(),
            plan: String::new(),
            message: format!("{}: {message}", path.display()),
            shrunk_steps: None,
            trace_path: Some(path.display().to_string()),
        });
    };
    let entries = match corpus::load_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            fail("corpus-load", dir, e);
            return 0;
        }
    };
    let plans: BTreeMap<String, SchedulePlan> = corpus::seed_plans().into_iter().collect();
    let cluster_plans: BTreeMap<String, ClusterPlan> =
        corpus::cluster_plans().into_iter().collect();
    let mut checked = 0;
    for (path, trace) in entries {
        checked += 1;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        if let Some(cplan) = cluster_plans.get(&stem) {
            // Committed cluster traces must equal their regenerated
            // plans (engine/channel-model determinism) and replay
            // bit-identically through the Definition-1 engine.
            let regen = corpus::record_cluster_trace(cplan);
            if regen.len() != trace.len()
                || (1..=trace.len() as u64).any(|j| {
                    regen.step(j).active != trace.step(j).active
                        || regen.labels(j).ok() != trace.labels(j).ok()
                })
            {
                fail(
                    "corpus-cluster-regen",
                    &path,
                    "committed cluster trace no longer matches its plan (engine drift)".into(),
                );
                continue;
            }
            if let Some(p) = problems.iter().find(|p| p.n() == trace.n()) {
                if let Err(e) = oracle::replay_roundtrip(p, &trace) {
                    fail("corpus-cluster-replay", &path, e);
                }
            }
            continue;
        }
        if let Some(plan) = plans.get(&stem) {
            let regen = plan.record_trace();
            if regen.len() != trace.len()
                || (1..=trace.len() as u64).any(|j| {
                    regen.step(j).active != trace.step(j).active
                        || regen.labels(j).ok() != trace.labels(j).ok()
                })
            {
                fail(
                    "corpus-regen",
                    &path,
                    "committed trace no longer matches its plan (generator drift)".into(),
                );
                continue;
            }
            if let Err(e) = plan.witness().check(&trace) {
                fail("corpus-witness", &path, format!("witness rejected: {e}"));
            }
        } else if stem.starts_with("threaded-") {
            // Witnessed racy executions: there is no plan to regenerate
            // against (the OS scheduler picked the interleaving), but
            // the committed schedule must still be admissible and
            // replay deterministically.
            if let Err(e) = asynciter_models::conditions::check_condition_a(&trace) {
                fail(
                    "corpus-threaded-condition-a",
                    &path,
                    format!("condition (a) violated: {e}"),
                );
                continue;
            }
            if let Some(p) = problems.iter().find(|p| p.n() == trace.n()) {
                if let Err(e) = oracle::replay_roundtrip(p, &trace) {
                    fail("corpus-threaded-replay", &path, e);
                }
            }
        } else if stem.starts_with("fault-")
            || stem.starts_with("mc-")
            || stem.starts_with("service-")
        {
            // Replayability of committed counterexamples — fuzzer
            // faults, model-checker counterexamples and service
            // isolation exhibits alike: the matching problem (by
            // dimension) must accept the injected trace.
            if let Some(p) = problems.iter().find(|p| p.n() == trace.n()) {
                if let Err(e) = oracle::replay_roundtrip(p, &trace) {
                    fail("corpus-fault-replay", &path, e);
                }
            }
        } else {
            fail("corpus-unknown", &path, "unrecognised corpus file".into());
        }
    }
    checked
}

/// Runs a full campaign. Deterministic given the config.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let start = std::time::Instant::now();
    let problems: Vec<ConformanceProblem> = ProblemKind::ALL
        .iter()
        .map(|&k| ConformanceProblem::build(k))
        .collect();
    let mut oracle_runs: BTreeMap<String, u64> = BTreeMap::new();
    let mut problem_cases: BTreeMap<String, u64> = problems
        .iter()
        .map(|p| (p.kind.id().to_string(), 0))
        .collect();
    let mut failures = Vec::new();

    for case in 0..cfg.cases {
        let problem = &problems[(case % problems.len() as u64) as usize];
        *problem_cases
            .get_mut(problem.kind.id())
            .expect("initialised above") += 1;
        let mut r = rng(child_seed(cfg.seed, case));
        let plan = SchedulePlan::sample(&mut r, problem.n(), problem.steps, problem.limits);
        let trace = plan.record_trace();

        // Generated-admissibility invariant: the plan's own witness
        // must accept its trace.
        *oracle_runs.entry("witness".into()).or_default() += 1;
        if let Err(e) = plan.witness().check(&trace) {
            let witness = plan.witness();
            let mut record = FailureRecord {
                case,
                problem: problem.kind.id().into(),
                oracle: "witness".into(),
                plan: plan.describe(),
                message: format!("generated schedule rejected: {e}"),
                shrunk_steps: None,
                trace_path: None,
            };
            shrink_and_persist(cfg, &mut record, &trace, |t| witness.check(t).is_err());
            failures.push(record);
            continue;
        }

        for oracle_name in oracles_for(cfg, case) {
            *oracle_runs.entry(oracle_name.into()).or_default() += 1;
            let result = match oracle_name {
                "metamorphic" => oracle::metamorphic(problem, &trace),
                "replay-roundtrip" => oracle::replay_roundtrip(problem, &trace),
                "flexible" => oracle::flexible_degrades(problem, &trace, child_seed(plan.seed, 9)),
                "sim-equivalence" => oracle::sim_equivalence(
                    problem,
                    child_seed(cfg.seed, case ^ 0x51D),
                    2 + (case % 3) as usize,
                    cfg.sim_iterations,
                ),
                "cluster-equivalence" => {
                    let mut cr = rng(child_seed(cfg.seed, case ^ 0xC1A));
                    let cplan = ClusterPlan::sample(&mut cr, problem.n(), problem.steps);
                    let described = cplan.describe();
                    oracle::cluster_replay_equivalence(problem, &cplan)
                        .map_err(|e| format!("{e} [{described}]"))
                }
                "threaded-equivalence" => {
                    let mut tr = rng(child_seed(cfg.seed, case ^ 0x7DD));
                    let tplan = ThreadedPlan::sample(&mut tr, problem.n(), 4_000_000);
                    let described = tplan.describe();
                    oracle::threaded_replay_equivalence(problem, &tplan)
                        .map(|_trace| ())
                        .map_err(|e| format!("{e} [{described}]"))
                }
                _ => unreachable!("unknown oracle"),
            };
            if let Err(message) = result {
                let mut record = FailureRecord {
                    case,
                    problem: problem.kind.id().into(),
                    oracle: oracle_name.into(),
                    plan: plan.describe(),
                    message,
                    shrunk_steps: None,
                    trace_path: None,
                };
                if !matches!(
                    oracle_name,
                    "sim-equivalence" | "cluster-equivalence" | "threaded-equivalence"
                ) {
                    // These oracles consume the injected trace, so the
                    // trace is the shrinkable input.
                    let still_fails = |t: &Trace| match oracle_name {
                        "metamorphic" => oracle::metamorphic(problem, t).is_err(),
                        "replay-roundtrip" => oracle::replay_roundtrip(problem, t).is_err(),
                        "flexible" => {
                            oracle::flexible_degrades(problem, t, child_seed(plan.seed, 9)).is_err()
                        }
                        _ => unreachable!(),
                    };
                    shrink_and_persist(cfg, &mut record, &trace, still_fails);
                }
                failures.push(record);
            }
        }
    }

    let witness_rejections = negative_controls(cfg.seed, &mut failures);
    let corpus_checked = match &cfg.corpus_dir {
        Some(dir) if dir.is_dir() => check_corpus(dir, &problems, &mut failures),
        _ => 0,
    };

    CampaignReport {
        mode: cfg.mode.clone(),
        seed: cfg.seed,
        cases_run: cfg.cases,
        problems: ProblemKind::ALL
            .iter()
            .map(|k| k.id().to_string())
            .collect(),
        problem_cases,
        oracle_runs,
        witness_rejections,
        corpus_checked,
        failures,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// The injected-fault demo behind `--inject-fault`: corrupts an
/// admissible trace with a frozen label, shrinks the witness rejection
/// to its minimal exhibit, and writes the counterexample. Returns
/// `(original steps, shrunk steps)`.
///
/// # Errors
/// A message when the demo's own expectations fail (corruption not
/// rejected, shrink lost the failure, or the file cannot be written).
pub fn inject_fault_demo(seed: u64, out: &Path) -> Result<(u64, u64), String> {
    let problem = ConformanceProblem::build(ProblemKind::Jacobi);
    let mut r = rng(child_seed(seed, 0xFA117));
    let plan = SchedulePlan::sample(&mut r, problem.n(), 400, problem.limits);
    let base = plan.record_trace();
    // The fault: component 1 keeps re-delivering its initial value —
    // condition (b) fails once the envelope floor passes label 0.
    let mut corrupt = Trace::new(base.n(), LabelStore::Full);
    for j in 1..=base.len() as u64 {
        let active: Vec<usize> = base.step(j).active.iter().map(|&i| i as usize).collect();
        let mut labels = base.labels(j).map_err(|e| e.to_string())?.to_vec();
        labels[1] = 0;
        corrupt.push_step(&active, &labels);
    }
    let witness = plan.witness();
    let still_fails = |t: &Trace| {
        matches!(
            witness.check(t),
            Err(ModelError::ConditionViolated {
                condition: "b",
                component: 1,
                ..
            })
        )
    };
    if !still_fails(&corrupt) {
        return Err("injected fault was not rejected by the witness".into());
    }
    let res = shrink_trace(&corrupt, still_fails, 200_000);
    if !still_fails(&res.trace) {
        return Err("shrinking lost the injected fault".into());
    }
    corpus::save_trace(out, &res.trace)?;
    Ok((corrupt.len() as u64, res.trace.len() as u64))
}

/// The message-reordering demo behind `--cluster-reorder`: runs a
/// cluster plan whose channel holds messages aggressively under
/// `ApplyPolicy::AsReceived`, so some worker provably applies an older
/// message after a newer one (a per-worker read-label regression —
/// impossible over FIFO channels), then shrinks the trace to a minimal
/// exhibit of that regression and persists it. Returns
/// `(original steps, shrunk steps)`.
///
/// # Errors
/// A message when the demo's expectations fail (no regression produced,
/// shrinking lost it, or the file cannot be written).
pub fn cluster_reorder_demo(seed: u64, out: &Path) -> Result<(u64, u64), String> {
    let problem = ConformanceProblem::build(ProblemKind::Jacobi);
    let workers = 3usize;
    let backend = asynciter_runtime::session::Cluster {
        workers,
        hold_prob: 0.6,
        hold_extra: 12,
        link: asynciter_runtime::LinkModel::Jitter { lo: 1, hi: 6 },
        apply_policy: asynciter_runtime::ApplyPolicy::AsReceived,
        ..asynciter_runtime::session::Cluster::default()
    };
    let report = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .steps(240)
        .seed(child_seed(seed, 0x0C0))
        .record(RecordMode::Full)
        .backend(backend)
        .run()
        .map_err(|e| format!("cluster run failed: {e}"))?;
    let trace = report.trace.expect("RecordMode::Full");
    let still_fails = |t: &Trace| has_label_regression(t, workers);
    if !still_fails(&trace) {
        return Err("channel model produced no out-of-order application".into());
    }
    let res = shrink_trace(&trace, still_fails, 200_000);
    if !still_fails(&res.trace) {
        return Err("shrinking lost the reordering evidence".into());
    }
    corpus::save_trace(out, &res.trace)?;
    Ok((trace.len() as u64, res.trace.len() as u64))
}

/// The severed-link negative control behind `--inject-cluster-fault`:
/// drops every message entry for a block-boundary component (an
/// *essential* message — a neighbouring shard reads that component), and
/// verifies the harness catches the fault two independent ways: the
/// consensus residual stays above the problem tolerance (metamorphic
/// catch) and the recorded trace shows the component's read label frozen
/// at 0 on every non-owner turn (frozen-label catch, condition (b)
/// territory). Returns `(steps, final residual)` when the fault was
/// caught.
///
/// # Errors
/// A message when the fault is *not* caught — which would mean the
/// conformance harness has a blind spot.
pub fn inject_cluster_fault_demo(seed: u64) -> Result<(u64, f64), String> {
    let problem = ConformanceProblem::build(ProblemKind::Jacobi);
    let n = problem.n();
    let workers = 4usize;
    let partition =
        asynciter_models::Partition::blocks(n, workers).map_err(|e| format!("partition: {e}"))?;
    // The last component of worker 0's block: read by worker 1's first
    // component, so its messages are essential.
    let boundary = partition
        .components_of(0)
        .last()
        .copied()
        .expect("nonempty");
    let mut cfg = asynciter_runtime::ClusterConfig::new(problem.steps)
        .with_seed(child_seed(seed, 0xFA17))
        .with_record(LabelStore::Full);
    cfg.sever_component = Some(boundary);
    let res = asynciter_runtime::ClusterEngine::run(
        problem.op.as_ref(),
        &problem.x0,
        &partition,
        &cfg,
        None,
    )
    .map_err(|e| format!("cluster run failed: {e}"))?;
    if res.final_residual <= problem.tol {
        return Err(format!(
            "severed essential message NOT caught: residual {:.3e} within tolerance {:.1e}",
            res.final_residual, problem.tol
        ));
    }
    let frozen = (1..=res.trace.len() as u64)
        .filter(|j| ((j - 1) % workers as u64) as usize != 0)
        .all(|j| res.trace.labels(j).map(|l| l[boundary]) == Ok(0));
    if !frozen {
        return Err("severed component's remote read labels did not freeze at 0".into());
    }
    Ok((res.steps_run, res.final_residual))
}

/// CLI entry point shared by the `conformance` binary. Returns the
/// process exit code.
pub fn conformance_main(args: &[String]) -> i32 {
    // Mode presets are applied first regardless of flag order, so
    // `--fault-dir out --soak` keeps the fault dir (the last mode flag
    // wins; every other flag overlays the preset).
    let mut cfg = match args
        .iter()
        .rev()
        .find(|a| *a == "--quick" || *a == "--soak")
    {
        Some(a) if a == "--soak" => CampaignConfig::soak(0xA5A5),
        _ => CampaignConfig::quick(0xA5A5),
    };
    let mut out_json = PathBuf::from("CONFORMANCE_report.json");
    let mut inject_fault: Option<PathBuf> = None;
    let mut inject_scratch_leak: Option<PathBuf> = None;
    let mut cluster_reorder: Option<PathBuf> = None;
    let mut inject_cluster_fault = false;
    let mut regen_corpus = false;
    let mut record_threaded: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "--soak" => {} // handled above
            "--cases" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => {
                    cfg.cases = v;
                    cfg.mode = "custom".into();
                }
                None => return usage("--cases needs a number"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => return usage("--seed needs a number"),
            },
            "--corpus" => match it.next() {
                Some(v) => cfg.corpus_dir = Some(PathBuf::from(v)),
                None => return usage("--corpus needs a directory"),
            },
            "--no-corpus" => cfg.corpus_dir = None,
            "--fault-dir" => match it.next() {
                Some(v) => cfg.fault_dir = PathBuf::from(v),
                None => return usage("--fault-dir needs a directory"),
            },
            "--out" => match it.next() {
                Some(v) => out_json = PathBuf::from(v),
                None => return usage("--out needs a path"),
            },
            "--inject-fault" => {
                inject_fault = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| PathBuf::from("tests/corpus/fault-frozen-label.trace")),
                );
            }
            "--inject-scratch-leak" => {
                inject_scratch_leak =
                    Some(it.next().map(PathBuf::from).unwrap_or_else(|| {
                        PathBuf::from("tests/corpus/service-scratch-leak.trace")
                    }));
            }
            "--cluster-reorder" => {
                cluster_reorder =
                    Some(it.next().map(PathBuf::from).unwrap_or_else(|| {
                        PathBuf::from("tests/corpus/fault-cluster-reorder.trace")
                    }));
            }
            "--inject-cluster-fault" => inject_cluster_fault = true,
            "--regen-corpus" => regen_corpus = true,
            "--record-threaded" => {
                record_threaded = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| PathBuf::from("tests/corpus/threaded-00.trace")),
                );
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    if regen_corpus {
        let dir = cfg
            .corpus_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("tests/corpus"));
        return match corpus::regen_seed_corpus(&dir) {
            Ok(paths) => {
                for p in &paths {
                    println!("wrote {}", p.display());
                }
                0
            }
            Err(e) => {
                eprintln!("corpus regeneration failed: {e}");
                1
            }
        };
    }

    if let Some(out) = record_threaded {
        // Racy by design: every invocation witnesses a different
        // interleaving. The trace is only written after the oracle
        // verified it (condition (a), bit-identical replay,
        // convergence), so whatever lands in the corpus is sound.
        return match corpus::record_threaded_trace().and_then(|trace| {
            corpus::save_trace(&out, &trace)?;
            Ok(trace.len())
        }) {
            Ok(steps) => {
                println!(
                    "recorded a verified {steps}-step threaded-cluster execution → {}",
                    out.display()
                );
                0
            }
            Err(e) => {
                eprintln!("record-threaded failed: {e}");
                1
            }
        };
    }

    if let Some(out) = cluster_reorder {
        return match cluster_reorder_demo(cfg.seed, &out) {
            Ok((orig, shrunk)) => {
                println!(
                    "cluster reordering evidence: {orig}-step trace shrunk to {shrunk} steps → {}",
                    out.display()
                );
                0
            }
            Err(e) => {
                eprintln!("cluster-reorder demo failed: {e}");
                1
            }
        };
    }

    if inject_cluster_fault {
        return match inject_cluster_fault_demo(cfg.seed) {
            Ok((steps, residual)) => {
                println!(
                    "severed essential message caught after {steps} steps \
                     (consensus residual {residual:.3e} stays above tolerance)"
                );
                0
            }
            Err(e) => {
                eprintln!("inject-cluster-fault demo failed: {e}");
                1
            }
        };
    }

    if let Some(out) = inject_scratch_leak {
        return match crate::service::inject_scratch_leak_demo(cfg.seed, &out) {
            Ok((orig, shrunk)) => {
                println!(
                    "planted scratch leak caught by the isolation oracle: \
                     {orig}-step trace shrunk to {shrunk} steps → {}",
                    out.display()
                );
                0
            }
            Err(e) => {
                eprintln!("inject-scratch-leak demo failed: {e}");
                1
            }
        };
    }

    if let Some(out) = inject_fault {
        return match inject_fault_demo(cfg.seed, &out) {
            Ok((orig, shrunk)) => {
                println!(
                    "injected frozen-label fault: {orig}-step trace shrunk to {shrunk} steps → {}",
                    out.display()
                );
                0
            }
            Err(e) => {
                eprintln!("inject-fault demo failed: {e}");
                1
            }
        };
    }

    println!(
        "=== conformance {} campaign: {} cases, seed {:#x} ===",
        cfg.mode, cfg.cases, cfg.seed
    );
    let report = run_campaign(&cfg);
    for (oracle, runs) in &report.oracle_runs {
        println!("  {oracle:>18}: {runs} runs");
    }
    println!(
        "  witness controls rejected: {} | corpus files checked: {}",
        report.witness_rejections, report.corpus_checked
    );
    for f in &report.failures {
        eprintln!(
            "FAIL case={} problem={} oracle={}: {}{}",
            if f.case == u64::MAX {
                "-".to_string()
            } else {
                f.case.to_string()
            },
            f.problem,
            f.oracle,
            f.message,
            f.trace_path
                .as_deref()
                .map(|p| format!(" [counterexample: {p}]"))
                .unwrap_or_default(),
        );
    }
    if let Err(e) = std::fs::write(&out_json, report.to_json().render_pretty()) {
        eprintln!("could not write {}: {e}", out_json.display());
        return 1;
    }
    println!(
        "=== {} in {:.1}s → {} ===",
        if report.passed() { "PASS" } else { "FAIL" },
        report.wall_secs,
        out_json.display()
    );
    i32::from(!report.passed())
}

fn usage(err: &str) -> i32 {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: conformance [--quick|--soak] [--cases N] [--seed N] [--corpus DIR|--no-corpus]\n\
         \x20                  [--fault-dir DIR] [--out FILE] [--inject-fault [PATH]]\n\
         \x20                  [--cluster-reorder [PATH]] [--inject-cluster-fault] [--regen-corpus]\n\
         \x20                  [--record-threaded [PATH]] [--inject-scratch-leak [PATH]]"
    );
    i32::from(!err.is_empty()) * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(dir: &Path) -> CampaignConfig {
        CampaignConfig {
            mode: "custom".into(),
            cases: 6,
            seed: 0xBEEF,
            corpus_dir: None,
            fault_dir: dir.to_path_buf(),
            roundtrip_every: 3,
            flexible_every: 3,
            sim_every: 3,
            cluster_every: 3,
            threaded_every: 3,
            sim_iterations: 120,
            shrink_budget: 20_000,
        }
    }

    #[test]
    fn tiny_campaign_passes_and_reports() {
        let dir = std::env::temp_dir().join("asynciter-conformance-campaign-test");
        let report = run_campaign(&tiny_config(&dir));
        assert!(report.passed(), "failures: {:#?}", report.failures);
        assert_eq!(report.cases_run, 6);
        assert_eq!(report.witness_rejections, 2);
        assert_eq!(report.oracle_runs["metamorphic"], 6);
        assert_eq!(report.oracle_runs["sim-equivalence"], 2);
        assert_eq!(report.oracle_runs["cluster-equivalence"], 2);
        assert_eq!(report.oracle_runs["threaded-equivalence"], 2);
        // Observed coverage: 6 cases stride the 5 families (jacobi twice).
        assert_eq!(report.problem_cases["jacobi"], 2);
        for p in ["lasso", "obstacle", "logistic", "network-flow"] {
            assert_eq!(report.problem_cases[p], 1, "{p}");
        }
        let json = report.to_json().render_pretty();
        assert!(json.contains("\"conformance\""));
        assert!(json.contains("\"witness_rejections\": 2"));
        assert!(json.contains("\"problem_cases\""));
        assert!(json.contains("\"network-flow\": 1"));
    }

    #[test]
    fn cluster_reorder_demo_shrinks_and_persists() {
        let dir = std::env::temp_dir().join("asynciter-conformance-reorder-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("fault-cluster-reorder.trace");
        let (orig, shrunk) = cluster_reorder_demo(0xA5A5, &out).unwrap();
        assert_eq!(orig, 240);
        assert!(shrunk < orig, "no shrinking happened");
        let trace = corpus::load_trace(&out).unwrap();
        assert!(has_label_regression(&trace, 3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn severed_essential_message_is_caught() {
        let (steps, residual) = inject_cluster_fault_demo(0xA5A5).unwrap();
        assert!(steps > 0);
        assert!(residual > 1e-8, "fault should keep the residual high");
    }

    #[test]
    fn inject_fault_demo_shrinks_and_persists() {
        let dir = std::env::temp_dir().join("asynciter-conformance-fault-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("fault-frozen-label.trace");
        let (orig, shrunk) = inject_fault_demo(0xA5A5, &out).unwrap();
        assert_eq!(orig, 400);
        assert!(shrunk < orig / 10, "shrunk only to {shrunk} steps");
        // The persisted counterexample parses and still fails.
        let trace = corpus::load_trace(&out).unwrap();
        assert_eq!(trace.len() as u64, shrunk);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
