//! Multi-tenant service conformance: the tenant-equivalence oracle
//! wrapper, divergence shrinking, and the planted scratch-leak
//! negative control.
//!
//! The service crate defines isolation as *bit-identity with a solo
//! run* and checks it with [`asynciter_service::check_outcome`]. This
//! module is the conformance tier on top of that contract:
//!
//! - [`tenant_plan`] — a seeded mixed workload (every catalog problem,
//!   every deterministic backend, per-tenant seeds) used by the
//!   differential equivalence tests.
//! - [`tenant_equivalence`] — run the plan through a service in either
//!   mode and return every divergence the oracle finds.
//! - [`shrink_leak_trace`] — when a recorded job diverges because it
//!   ran from the wrong start bits (the scratch-leak failure mode),
//!   shrink its trace to a minimal schedule on which the clean start
//!   and the leaked start provably produce different iterate bits.
//! - [`inject_scratch_leak_demo`] — the negative control behind the
//!   CLI's `--inject-scratch-leak`: plant the dirty-lease bug, prove
//!   the oracle catches it, shrink, and persist the counterexample
//!   (committed as `tests/corpus/service-scratch-leak.trace`).

use std::path::Path;

use asynciter_core::session::{Replay, Session};
use asynciter_models::Trace;
use asynciter_numerics::rng::child_seed;
use asynciter_runtime::ApplyPolicy;
use asynciter_service::{
    check_outcome, BackendSpec, Catalog, CompletedJob, DelaySpec, Divergence, JobSpec, ProblemId,
    ScheduleSpec, Service, ServiceConfig, ServiceMode, ServiceOutcome,
};

use crate::corpus;
use crate::shrink::shrink_trace;

/// A seeded mixed workload: `tenants` job specs cycling through every
/// catalog problem and every deterministic backend family, each with a
/// tenant seed derived from `seed`. Pure data — the same `(tenants,
/// seed, record)` always yields the same specs, so a service run of the
/// plan is as reproducible as any single session.
#[must_use]
pub fn tenant_plan(tenants: u64, seed: u64, record: bool) -> Vec<JobSpec> {
    (0..tenants)
        .map(|t| {
            let problem = ProblemId::ALL[(t as usize) % ProblemId::ALL.len()];
            let backend = match t % 3 {
                0 => BackendSpec::Replay {
                    schedule: if t % 6 == 0 {
                        ScheduleSpec::Sync
                    } else {
                        ScheduleSpec::Chaotic {
                            k_min: 1,
                            k_max: 4,
                            b: 6,
                        }
                    },
                },
                1 => BackendSpec::Flexible {
                    m: 2 + (t as usize % 3),
                    partial: t % 2 == 0,
                },
                _ => BackendSpec::Cluster {
                    workers: 2 + (t as usize % 3),
                    delay: match t % 9 {
                        2 => DelaySpec::Fixed { ticks: 2 },
                        5 => DelaySpec::HeavyTail {
                            scale: 1,
                            alpha: 1.5,
                        },
                        _ => DelaySpec::Jitter { lo: 1, hi: 4 },
                    },
                    hold_prob: 0.15,
                    drop_prob: 0.05,
                    policy: if t % 6 == 2 {
                        ApplyPolicy::KeepFreshest
                    } else {
                        ApplyPolicy::AsReceived
                    },
                },
            };
            JobSpec {
                tenant: t,
                seed: child_seed(seed, t),
                problem,
                backend,
                record,
            }
        })
        .collect()
}

/// What a tenant-equivalence sweep produced.
#[derive(Debug)]
pub struct EquivalenceSweep {
    /// The drained service outcome (records, reports, stream doc).
    pub outcome: ServiceOutcome,
    /// Every isolation violation the solo-diff oracle found.
    pub divergences: Vec<Divergence>,
}

/// Runs a [`tenant_plan`] workload through a service in `mode` and
/// checks every completed job against its solo run.
///
/// # Errors
/// A message when admission itself fails (the plan is sized within the
/// default queue, so this indicates a harness bug).
pub fn tenant_equivalence(
    tenants: u64,
    seed: u64,
    mode: ServiceMode,
    record: bool,
) -> Result<EquivalenceSweep, String> {
    let mut svc = Service::new(ServiceConfig {
        mode,
        queue_capacity: (tenants as usize).max(16),
        ..ServiceConfig::default()
    });
    for spec in tenant_plan(tenants, seed, record) {
        svc.submit(spec).map_err(|e| format!("admission: {e}"))?;
    }
    let outcome = svc.drain();
    let divergences = check_outcome(svc.catalog(), &outcome);
    Ok(EquivalenceSweep {
        outcome,
        divergences,
    })
}

/// Replays `trace` from `x0` through the Definition-1 engine and
/// returns the final iterate bits.
fn replay_from(
    catalog: &Catalog,
    problem: ProblemId,
    x0: &[f64],
    trace: &Trace,
) -> Option<Vec<f64>> {
    let entry = catalog.get(problem);
    Session::new(entry.op.as_ref())
        .x0(x0)
        .replay_trace(trace.clone())
        .ok()?
        .backend(Replay)
        .run()
        .ok()
        .map(|r| r.final_x)
}

/// Shrinks a diverging recorded job's trace to a minimal schedule on
/// which the canonical start and the start the service actually used
/// produce different final-iterate bits — the smallest replayable
/// exhibit of a start-vector leak. Returns `(original steps, shrunk
/// steps)` and writes the minimised trace to `out`.
///
/// # Errors
/// A message when the job carries no trace or captured start (submit
/// with `record: true`), when the divergence is *not* start-vector
/// dependent (the starts agree bitwise — an engine-determinism bug the
/// replay oracles own), or when shrinking loses the evidence.
pub fn shrink_leak_trace(
    catalog: &Catalog,
    completed: &CompletedJob,
    out: &Path,
) -> Result<(u64, u64), String> {
    let report = completed
        .report
        .as_ref()
        .ok_or("diverging job carries no report")?;
    let trace = report
        .trace
        .as_ref()
        .ok_or("diverging job was not recorded (submit with record: true)")?;
    let dirty = completed
        .x0
        .as_ref()
        .ok_or("diverging job did not capture its start vector")?;
    let clean = &catalog.get(completed.spec.problem).x0;
    if clean.len() == dirty.len()
        && clean
            .iter()
            .zip(dirty)
            .all(|(a, b)| a.to_bits() == b.to_bits())
    {
        return Err(
            "divergence is not start-vector dependent: the service ran from the canonical \
             start bits (suspect the engine, not the scratch pool)"
                .into(),
        );
    }
    let problem = completed.spec.problem;
    let still_fails = |t: &Trace| match (
        replay_from(catalog, problem, clean, t),
        replay_from(catalog, problem, dirty, t),
    ) {
        (Some(a), Some(b)) => a.iter().zip(&b).any(|(x, y)| x.to_bits() != y.to_bits()),
        _ => false,
    };
    if !still_fails(trace) {
        return Err("clean and leaked starts replay identically on the full trace".into());
    }
    let res = shrink_trace(trace, still_fails, 200_000);
    if !still_fails(&res.trace) {
        return Err("shrinking lost the start-vector divergence".into());
    }
    corpus::save_trace(out, &res.trace)?;
    Ok((trace.len() as u64, res.trace.len() as u64))
}

/// The scratch-leak negative control behind `--inject-scratch-leak`:
/// runs same-dimension recorded jobs through a deterministic service
/// with the planted dirty-lease bug enabled, proves the
/// tenant-equivalence oracle catches the resulting isolation break,
/// shrinks the first diverging job's trace with [`shrink_leak_trace`],
/// and persists the counterexample. Returns `(original steps, shrunk
/// steps)`.
///
/// # Errors
/// A message when the planted bug is *not* caught — which would mean
/// the isolation oracle has a blind spot — or when shrinking fails.
pub fn inject_scratch_leak_demo(seed: u64, out: &Path) -> Result<(u64, u64), String> {
    let mut svc = Service::new(ServiceConfig {
        mode: ServiceMode::Deterministic {
            seed: child_seed(seed, 0x5C4A),
        },
        inject_scratch_leak: true,
        ..ServiceConfig::default()
    });
    // Same-dimension jobs, so a recycled workspace is handed on as-is
    // and the dirty lease leaks one tenant's final iterate into the
    // next tenant's start vector.
    for t in 0..4 {
        svc.submit(JobSpec {
            tenant: t,
            seed: child_seed(seed, 100 + t),
            problem: ProblemId::Jacobi,
            backend: BackendSpec::Replay {
                schedule: ScheduleSpec::Sync,
            },
            record: true,
        })
        .map_err(|e| format!("admission: {e}"))?;
    }
    let outcome = svc.drain();
    let divergences = check_outcome(svc.catalog(), &outcome);
    let Some(first) = divergences.first() else {
        return Err(
            "planted scratch leak was NOT caught: every tenant report matched its solo run".into(),
        );
    };
    let job = outcome
        .jobs
        .iter()
        .find(|c| c.record.job == first.job)
        .ok_or("diverging job id missing from the outcome")?;
    shrink_leak_trace(svc.catalog(), job, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sweeps_have_no_divergences_in_either_mode() {
        for mode in [
            ServiceMode::Deterministic { seed: 11 },
            ServiceMode::FreeRunning { workers: 2 },
        ] {
            let sweep = tenant_equivalence(6, 0xFEED, mode, false).unwrap();
            assert_eq!(sweep.outcome.doc.completed, 6, "{mode:?}");
            assert!(
                sweep.divergences.is_empty(),
                "{mode:?}: {:?}",
                sweep.divergences
            );
        }
    }

    #[test]
    fn tenant_plans_are_reproducible_data() {
        assert_eq!(tenant_plan(16, 3, false), tenant_plan(16, 3, false));
        assert_ne!(tenant_plan(16, 3, false), tenant_plan(16, 4, false));
    }

    #[test]
    fn the_leak_demo_catches_shrinks_and_reproduces_bytewise() {
        let dir = std::env::temp_dir().join("asynciter-conformance-scratch-leak-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.trace");
        let b = dir.join("b.trace");
        let (orig, shrunk) = inject_scratch_leak_demo(2026, &a).unwrap();
        assert!(shrunk >= 1 && shrunk <= orig, "{shrunk} vs {orig}");
        let trace = corpus::load_trace(&a).unwrap();
        assert_eq!(trace.len() as u64, shrunk);
        // Same seed, same bytes: the committed fixture is reproducible.
        inject_scratch_leak_demo(2026, &b).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
