//! The committed seed corpus.
//!
//! `tests/corpus/` holds three kinds of fixtures, all in the `trace_io`
//! text format:
//!
//! - `seed-<problem>-<k>.trace` — traces of the canonical
//!   [`seed_plans`], regenerated and compared bit-for-bit by the tier-1
//!   suite (a regression lock on generator determinism *and* a ready
//!   schedule set for property tests);
//! - `cluster-<k>.trace` — executed message-passing schedules of the
//!   canonical [`cluster_plans`] (recorded on the Jacobi problem),
//!   locking the cluster engine's channel model the same way;
//! - `threaded-<k>.trace` — one *witnessed execution* of the canonical
//!   [`threaded_plan`] on the Jacobi problem: a genuinely concurrent,
//!   faulty multi-worker run whose recorded schedule was verified to
//!   replay bit-identically at record time (`--record-threaded`).
//!   Racy runs cannot be regenerated from their plan, so unlike the
//!   other seeds these are *not* compared against a regeneration —
//!   they are re-validated as admissible, deterministically replayable
//!   schedules;
//! - `fault-*.trace` — minimised counterexamples produced by the
//!   shrinker (from real failures or the `--inject-fault` /
//!   `--cluster-reorder` demos), committed so the exact failing
//!   schedule replays forever.
//!
//! Corpus traces are deliberately short: they are schedule *seeds*, not
//! convergence runs, so the files stay reviewable in version control.

use crate::cluster::{ClusterPlan, ThreadedPlan};
use crate::plan::SchedulePlan;
use crate::problems::{ConformanceProblem, ProblemKind};
use asynciter_core::session::{RecordMode, Session};
use asynciter_models::trace_io::{trace_from_str, trace_to_string};
use asynciter_models::Trace;
use asynciter_numerics::rng::{child_seed, rng};
use std::path::{Path, PathBuf};

/// Master seed of the canonical corpus plans. Changing it invalidates
/// every committed `seed-*.trace` — regenerate with
/// `conformance --regen-corpus`.
pub const CORPUS_SEED: u64 = 0xC0FFEE;

/// Steps per corpus trace (short by design; see module docs).
pub const CORPUS_STEPS: u64 = 240;

/// Plans per problem kind in the canonical corpus.
pub const PLANS_PER_PROBLEM: u64 = 3;

/// The canonical corpus: `(file stem, plan)` for every committed seed
/// trace, deterministically derived from [`CORPUS_SEED`].
pub fn seed_plans() -> Vec<(String, SchedulePlan)> {
    let mut out = Vec::new();
    for (p, kind) in ProblemKind::ALL.iter().enumerate() {
        let problem = ConformanceProblem::build(*kind);
        for k in 0..PLANS_PER_PROBLEM {
            let mut r = rng(child_seed(CORPUS_SEED, (p as u64) << 8 | k));
            let plan = SchedulePlan::sample(&mut r, problem.n(), CORPUS_STEPS, problem.limits);
            out.push((format!("seed-{}-{k:02}", kind.id()), plan));
        }
    }
    out
}

/// Cluster (message-passing) plans in the canonical corpus.
pub const CLUSTER_PLANS: u64 = 3;

/// The canonical cluster corpus: `(file stem, plan)` for every
/// committed `cluster-<k>.trace`, deterministically derived from
/// [`CORPUS_SEED`]. Traces are recorded on the Jacobi problem.
pub fn cluster_plans() -> Vec<(String, ClusterPlan)> {
    let problem = ConformanceProblem::build(ProblemKind::Jacobi);
    (0..CLUSTER_PLANS)
        .map(|k| {
            let mut r = rng(child_seed(CORPUS_SEED, 0xC1_00 | k));
            let plan = ClusterPlan::sample(&mut r, problem.n(), CORPUS_STEPS);
            (format!("cluster-{k:02}"), plan)
        })
        .collect()
}

/// Records the executed schedule of a canonical cluster plan on the
/// Jacobi problem — the phenotype committed as `cluster-<k>.trace`.
///
/// # Panics
/// Panics when the canonical plan fails to run (a bug).
pub fn record_cluster_trace(plan: &ClusterPlan) -> Trace {
    let problem = ConformanceProblem::build(ProblemKind::Jacobi);
    Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .steps(plan.steps)
        .seed(plan.seed)
        .record(RecordMode::Full)
        .backend(plan.backend())
        .run()
        .expect("canonical cluster plan runs")
        .trace
        .expect("RecordMode::Full keeps the trace")
}

/// The canonical threaded (genuinely concurrent) plan behind
/// `threaded-00.trace`: a faulty three-worker recipe on the Jacobi
/// problem. The plan is canonical; its *executions* are racy, so the
/// committed trace is one witnessed run, not a regenerable phenotype.
pub fn threaded_plan() -> ThreadedPlan {
    ThreadedPlan {
        workers: 3,
        max_steps: 4_000_000,
        seed: child_seed(CORPUS_SEED, 0x7D_00),
        exchange_every: 1,
        apply_policy: asynciter_runtime::ApplyPolicy::AsReceived,
        hold_prob: 0.3,
        hold_extra: 8,
        drop_prob: 0.15,
        dup_prob: 0.1,
        partial_prob: 0.4,
    }
}

/// Runs the canonical [`threaded_plan`] on the Jacobi problem and
/// returns the recorded trace, *after* the
/// [`crate::oracle::threaded_replay_equivalence`] oracle has verified
/// it (condition (a), bit-identical replay, convergence). This is the
/// `--record-threaded` recorder for `threaded-00.trace`.
///
/// # Errors
/// Propagates the oracle's failure message.
pub fn record_threaded_trace() -> Result<Trace, String> {
    let problem = ConformanceProblem::build(ProblemKind::Jacobi);
    crate::oracle::threaded_replay_equivalence(&problem, &threaded_plan())
}

/// Writes a trace to `path` in the archive format, creating parent
/// directories.
///
/// # Errors
/// I/O or serialisation failures, as a message.
pub fn save_trace(path: &Path, trace: &Trace) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
    }
    let text = trace_to_string(trace).map_err(|e| format!("serialise: {e}"))?;
    std::fs::write(path, text).map_err(|e| format!("write {path:?}: {e}"))
}

/// Loads a single trace file.
///
/// # Errors
/// I/O or parse failures, as a message.
pub fn load_trace(path: &Path) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    trace_from_str(&text).map_err(|e| format!("parse {path:?}: {e}"))
}

/// Loads every `*.trace` file under `dir`, sorted by file name.
///
/// # Errors
/// Directory or file failures, as a message; an absent directory is an
/// error (the corpus is committed, so it must exist where expected).
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Trace)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {dir:?}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "trace"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| load_trace(&p).map(|t| (p, t)))
        .collect()
}

/// Regenerates the canonical `seed-*.trace` and `cluster-*.trace`
/// files under `dir`.
///
/// # Errors
/// Propagates [`save_trace`] failures.
pub fn regen_seed_corpus(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut written = Vec::new();
    for (stem, plan) in seed_plans() {
        let path = dir.join(format!("{stem}.trace"));
        save_trace(&path, &plan.record_trace())?;
        written.push(path);
    }
    for (stem, plan) in cluster_plans() {
        let path = dir.join(format!("{stem}.trace"));
        save_trace(&path, &record_cluster_trace(&plan))?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_plans_are_stable_and_admissible() {
        let a = seed_plans();
        let b = seed_plans();
        assert_eq!(
            a.len(),
            (ProblemKind::ALL.len() as u64 * PLANS_PER_PROBLEM) as usize
        );
        for ((name_a, plan_a), (name_b, plan_b)) in a.iter().zip(&b) {
            assert_eq!(name_a, name_b);
            let ta = plan_a.record_trace();
            let tb = plan_b.record_trace();
            assert_eq!(ta.len(), tb.len());
            for j in 1..=ta.len() as u64 {
                assert_eq!(
                    ta.labels(j).unwrap(),
                    tb.labels(j).unwrap(),
                    "{name_a} j={j}"
                );
            }
            plan_a
                .witness()
                .check(&ta)
                .unwrap_or_else(|e| panic!("{name_a}: {e}"));
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("asynciter-conformance-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        let (name, plan) = &seed_plans()[0];
        let trace = plan.record_trace();
        let path = dir.join(format!("{name}.trace"));
        save_trace(&path, &trace).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1.len(), trace.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
