//! Seeded sampling of provably admissible schedule plans.
//!
//! A [`SchedulePlan`] is the *genotype* of one fuzz case: a base
//! generator drawn from the schedule zoo, optional thinning/jitter
//! mutations, a delay envelope and a coverage gap. Building the plan
//! composes the stack
//!
//! ```text
//! CoverageGuard( EnvelopeClamp( LabelJitter( ActiveThin( base ))))
//! ```
//!
//! so the recorded trace is accepted by the plan's
//! [`AdmissibilityWitness`] *by construction*: the clamp forces
//! conditions (a)/(b) (and (d) for bounded envelopes), the guard forces
//! condition (c). Sampling, building and recording are all deterministic
//! functions of the plan's seed — a failing case replays from its plan
//! alone.

use asynciter_models::conditions::{AdmissibilityWitness, DelayEnvelope};
use asynciter_models::schedule::{
    record, ActiveThin, BlockRoundRobin, ChaoticBounded, CoverageGuard, CyclicCoordinate,
    EnvelopeClamp, HeavyTailDelay, LabelJitter, ScheduleGen, SyncJacobi, UnboundedSqrtDelay,
};
use asynciter_models::{LabelStore, Partition, Trace};
use asynciter_numerics::rng::child_seed;
use rand::rngs::StdRng;
use rand::RngExt;

/// The base generator of a plan, drawn from the schedule zoo.
#[derive(Debug, Clone, PartialEq)]
pub enum BaseKind {
    /// Synchronous Jacobi steering.
    Sync,
    /// Cyclic single-coordinate (Gauss–Seidel) steering.
    Cyclic,
    /// Block round robin over `machines` blocks with read lag `lag`.
    BlockRoundRobin {
        /// Number of machine blocks.
        machines: usize,
        /// Read lag in iterations (`≥ 1`).
        lag: u64,
    },
    /// Chazan–Miranker chaotic relaxation with bounded delays.
    Chaotic {
        /// Minimum active-set size.
        k_min: usize,
        /// Maximum active-set size.
        k_max: usize,
        /// Delay bound of the base generator (before clamping).
        b: u64,
        /// FIFO (`true`) or out-of-order (`false`) labels.
        monotone: bool,
    },
    /// Baudet-style `√j`-growing delays with scale `c`.
    SqrtDelay {
        /// Growth scale.
        c: f64,
    },
    /// Pareto heavy-tailed delays with shape `alpha`.
    HeavyTail {
        /// Pareto shape (smaller = heavier tail).
        alpha: f64,
    },
}

/// Sampling bounds, chosen per problem so the metamorphic oracle's step
/// budget always dominates the worst staleness the plan can impose.
#[derive(Debug, Clone, Copy)]
pub struct PlanLimits {
    /// Largest constant delay bound an envelope may carry.
    pub max_bounded_b: u64,
    /// Largest `√j` growth scale an envelope may carry.
    pub max_sqrt_c: f64,
}

impl Default for PlanLimits {
    fn default() -> Self {
        Self {
            max_bounded_b: 24,
            max_sqrt_c: 2.5,
        }
    }
}

/// One fuzz case: a seeded, self-certifying schedule recipe.
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    /// Number of components `n`.
    pub n: usize,
    /// Trace length in iterations.
    pub steps: u64,
    /// Master seed; every stochastic stage derives a child seed from it.
    pub seed: u64,
    /// The base generator.
    pub base: BaseKind,
    /// Delay envelope enforced by the clamp (certifies (b)/(d)).
    pub envelope: DelayEnvelope,
    /// Coverage gap enforced by the guard (certifies (c)).
    pub max_gap: u64,
    /// Partial-update mutation: keep probability for active components.
    pub thin_keep: Option<f64>,
    /// Label mutation: per-component probability of redrawing the label
    /// within the envelope.
    pub jitter_prob: Option<f64>,
}

impl SchedulePlan {
    /// Samples a random plan for `n` components and `steps` iterations.
    ///
    /// # Panics
    /// Panics when `n < 2` or `steps == 0` (no interesting schedules
    /// exist there).
    pub fn sample(rng_: &mut StdRng, n: usize, steps: u64, limits: PlanLimits) -> Self {
        assert!(n >= 2, "SchedulePlan::sample: need n >= 2");
        assert!(steps > 0, "SchedulePlan::sample: need steps > 0");
        let seed = rng_.random::<u64>();
        let k_max_hi = (n / 2).max(1);
        let base = match rng_.random_range(0..7u32) {
            0 => BaseKind::Sync,
            1 => BaseKind::Cyclic,
            2 => BaseKind::BlockRoundRobin {
                machines: rng_.random_range(2..=4.min(n)),
                lag: rng_.random_range(1..=6),
            },
            3 | 4 => BaseKind::Chaotic {
                k_min: 1,
                k_max: rng_.random_range(1..=k_max_hi),
                b: rng_.random_range(2..=16),
                monotone: rng_.random(),
            },
            5 => BaseKind::SqrtDelay {
                c: rng_.random_range(0.5..2.0),
            },
            _ => BaseKind::HeavyTail {
                alpha: rng_.random_range(1.1..2.5),
            },
        };
        let envelope = if rng_.random() {
            DelayEnvelope::Bounded(rng_.random_range(4..=limits.max_bounded_b))
        } else {
            DelayEnvelope::SqrtGrowth {
                c: rng_.random_range(0.5..limits.max_sqrt_c),
            }
        };
        let max_gap = rng_.random_range(n as u64 + 1..=4 * n as u64);
        let thin_keep = (rng_.random_range(0.0..1.0) < 0.4).then(|| rng_.random_range(0.3..0.9));
        let jitter_prob = (rng_.random_range(0.0..1.0) < 0.5).then(|| rng_.random_range(0.1..0.6));
        Self {
            n,
            steps,
            seed,
            base,
            envelope,
            max_gap,
            thin_keep,
            jitter_prob,
        }
    }

    /// Builds the guarded generator stack described by this plan.
    ///
    /// # Panics
    /// Panics when the plan's parameters are structurally invalid (the
    /// sampler never produces such plans).
    pub fn build(&self) -> Box<dyn ScheduleGen> {
        let n = self.n;
        let base: Box<dyn ScheduleGen> = match &self.base {
            BaseKind::Sync => Box::new(SyncJacobi::new(n)),
            BaseKind::Cyclic => Box::new(CyclicCoordinate::new(n)),
            BaseKind::BlockRoundRobin { machines, lag } => Box::new(BlockRoundRobin::new(
                Partition::blocks(n, *machines).expect("sampler keeps machines <= n"),
                *lag,
            )),
            BaseKind::Chaotic {
                k_min,
                k_max,
                b,
                monotone,
            } => Box::new(ChaoticBounded::new(
                n,
                *k_min,
                *k_max,
                *b,
                *monotone,
                child_seed(self.seed, 0),
            )),
            BaseKind::SqrtDelay { c } => Box::new(UnboundedSqrtDelay::new(
                n,
                1,
                (n / 2).max(1),
                *c,
                child_seed(self.seed, 0),
            )),
            BaseKind::HeavyTail { alpha } => Box::new(HeavyTailDelay::new(
                n,
                1,
                (n / 2).max(1),
                *alpha,
                child_seed(self.seed, 0),
            )),
        };
        let thinned: Box<dyn ScheduleGen> = match self.thin_keep {
            Some(keep) => Box::new(ActiveThin::new(base, keep, child_seed(self.seed, 1))),
            None => base,
        };
        let jittered: Box<dyn ScheduleGen> = match self.jitter_prob {
            Some(p) => Box::new(LabelJitter::new(
                thinned,
                self.envelope,
                p,
                child_seed(self.seed, 2),
            )),
            None => thinned,
        };
        Box::new(CoverageGuard::new(
            EnvelopeClamp::new(jittered, self.envelope),
            self.max_gap,
        ))
    }

    /// The certificate this plan's traces provably satisfy.
    pub fn witness(&self) -> AdmissibilityWitness {
        AdmissibilityWitness::new(self.envelope, self.max_gap)
    }

    /// Records the plan's trace with full labels — the phenotype the
    /// oracles consume.
    pub fn record_trace(&self) -> Trace {
        let mut gen = self.build();
        record(gen.as_mut(), self.steps, LabelStore::Full)
    }

    /// One-line description for reports and failure records.
    pub fn describe(&self) -> String {
        format!(
            "plan(seed={:#x}, n={}, steps={}, base={:?}, {}, max_gap={}, thin={:?}, jitter={:?})",
            self.seed,
            self.n,
            self.steps,
            self.base,
            self.envelope.describe(),
            self.max_gap,
            self.thin_keep,
            self.jitter_prob,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::rng::rng;

    #[test]
    fn sampled_plans_are_admissible_by_construction() {
        let mut r = rng(0xF00D);
        for _ in 0..40 {
            let plan = SchedulePlan::sample(&mut r, 10, 300, PlanLimits::default());
            let trace = plan.record_trace();
            assert_eq!(trace.len(), 300);
            plan.witness().check(&trace).unwrap_or_else(|e| {
                panic!("{} rejected: {e}", plan.describe());
            });
        }
    }

    #[test]
    fn plans_replay_deterministically() {
        let mut r = rng(7);
        let plan = SchedulePlan::sample(&mut r, 8, 200, PlanLimits::default());
        let a = plan.record_trace();
        let b = plan.record_trace();
        for j in 1..=200u64 {
            assert_eq!(a.step(j).active, b.step(j).active);
            assert_eq!(a.labels(j).unwrap(), b.labels(j).unwrap());
        }
    }

    #[test]
    fn sampling_covers_the_zoo() {
        let mut r = rng(99);
        let mut kinds = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let plan = SchedulePlan::sample(&mut r, 12, 10, PlanLimits::default());
            kinds.insert(match plan.base {
                BaseKind::Sync => "sync",
                BaseKind::Cyclic => "cyclic",
                BaseKind::BlockRoundRobin { .. } => "block",
                BaseKind::Chaotic { .. } => "chaotic",
                BaseKind::SqrtDelay { .. } => "sqrt",
                BaseKind::HeavyTail { .. } => "heavy",
            });
        }
        assert_eq!(kinds.len(), 6, "sampler missed base kinds: {kinds:?}");
    }

    #[test]
    fn limits_cap_the_envelope() {
        let limits = PlanLimits {
            max_bounded_b: 6,
            max_sqrt_c: 1.0,
        };
        let mut r = rng(3);
        for _ in 0..50 {
            let plan = SchedulePlan::sample(&mut r, 8, 10, limits);
            match plan.envelope {
                DelayEnvelope::Bounded(b) => assert!(b <= 6),
                DelayEnvelope::SqrtGrowth { c } => assert!(c <= 1.0),
            }
        }
    }
}
