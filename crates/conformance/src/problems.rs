//! The problem family the metamorphic oracle sweeps.
//!
//! Five operator families with different structure — a linear max-norm
//! contraction (Jacobi), a nonsmooth prox-gradient fixed point (lasso),
//! a projected/constrained iteration (obstacle), a densely-coupled
//! machine-learning loss (certified logistic gradient descent) and a
//! dual graph relaxation (hub-grounded network-flow prices) — each with
//! a replay budget and tolerance calibrated so that *every* schedule a
//! [`crate::plan::SchedulePlan`] can produce (worst-case staleness and
//! thinning included) converges within budget. Plan sampling is capped
//! by the problem's [`PlanLimits`] so budget and admissible staleness
//! stay matched.

use crate::plan::PlanLimits;
use asynciter_opt::lasso::LassoProblem;
use asynciter_opt::linear::JacobiOperator;
use asynciter_opt::logistic::LogisticGradOperator;
use asynciter_opt::network_flow::{NetworkFlowProblem, PriceRelaxation};
use asynciter_opt::obstacle::{ObstacleProblem, ProjectedJacobi};
use asynciter_opt::prox::L1;
use asynciter_opt::proxgrad::{gamma_max, SparseProxGrad};
use asynciter_opt::traits::{Operator, SmoothObjective};

/// The problem axis of the conformance matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// Diagonally dominant tridiagonal system, Jacobi operator.
    Jacobi,
    /// Lasso regression via the sparse prox-gradient operator.
    Lasso,
    /// Membrane obstacle problem, projected Jacobi.
    Obstacle,
    /// ℓ₂-regularised logistic regression via the certified gradient
    /// operator (dense data coupling).
    Logistic,
    /// Min-cost network flow via the hub-grounded dual price relaxation.
    NetworkFlow,
}

impl ProblemKind {
    /// Every problem, sweep order. New kinds append — the committed
    /// corpus derives per-problem seeds from each kind's index here.
    pub const ALL: [ProblemKind; 5] = [
        ProblemKind::Jacobi,
        ProblemKind::Lasso,
        ProblemKind::Obstacle,
        ProblemKind::Logistic,
        ProblemKind::NetworkFlow,
    ];

    /// Stable identifier for reports.
    pub fn id(self) -> &'static str {
        match self {
            ProblemKind::Jacobi => "jacobi",
            ProblemKind::Lasso => "lasso",
            ProblemKind::Obstacle => "obstacle",
            ProblemKind::Logistic => "logistic",
            ProblemKind::NetworkFlow => "network-flow",
        }
    }
}

/// A built problem instance plus its conformance calibration.
pub struct ConformanceProblem {
    /// Which family this is.
    pub kind: ProblemKind,
    /// The fixed-point operator.
    pub op: Box<dyn Operator>,
    /// Canonical start.
    pub x0: Vec<f64>,
    /// Known fixed point, when the family admits an exact solve
    /// (enables constraint-enforced flexible runs).
    pub xstar: Option<Vec<f64>>,
    /// Schedule length / replay budget for the metamorphic oracle.
    pub steps: u64,
    /// Residual tolerance the budget must reach under any plan.
    pub tol: f64,
    /// Looser tolerance for flexible (partial-communication) runs.
    pub flex_tol: f64,
    /// Sampling caps keeping worst-case staleness inside the budget.
    pub limits: PlanLimits,
}

impl ConformanceProblem {
    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.op.dim()
    }

    /// Builds the calibrated instance of `kind`.
    ///
    /// # Panics
    /// Panics only if the static instances fail to construct (a bug).
    pub fn build(kind: ProblemKind) -> Self {
        match kind {
            ProblemKind::Jacobi => {
                let n = 16;
                let op = JacobiOperator::new(
                    asynciter_numerics::sparse::tridiagonal(n, 4.0, -1.0),
                    vec![1.0; n],
                )
                .expect("static Jacobi instance");
                let xstar = op.solve_dense_spd().expect("SPD solve");
                Self {
                    kind,
                    x0: vec![0.0; n],
                    xstar: Some(xstar),
                    op: Box::new(op),
                    steps: 6_000,
                    tol: 1e-8,
                    flex_tol: 1e-6,
                    limits: PlanLimits::default(),
                }
            }
            ProblemKind::Lasso => {
                let (n, m, k) = (12, 72, 3);
                let problem =
                    LassoProblem::random(n, m, k, 0.05, 0.01, 7).expect("static lasso instance");
                let q = problem.quadratic.clone();
                let gamma = 0.9 * gamma_max(q.strong_convexity(), q.lipschitz());
                let op = SparseProxGrad::new(q, L1::new(problem.lambda), gamma)
                    .expect("gamma within Theorem-1 range");
                let (xstar, _) = op.solve_exact().expect("exact lasso solve");
                Self {
                    kind,
                    x0: vec![0.0; n],
                    xstar: Some(xstar),
                    op: Box::new(op),
                    steps: 8_000,
                    tol: 1e-7,
                    flex_tol: 1e-5,
                    limits: PlanLimits::default(),
                }
            }
            ProblemKind::Obstacle => {
                let g = 6;
                let problem = ObstacleProblem::bump(g, g, 0.6).expect("static obstacle instance");
                let op = ProjectedJacobi::new(problem);
                Self {
                    kind,
                    x0: op.upper_start(),
                    xstar: None,
                    op: Box::new(op),
                    // The projected Jacobi contraction is the slowest of
                    // the family; cap staleness harder and budget longer.
                    steps: 30_000,
                    tol: 1e-6,
                    flex_tol: 1e-4,
                    limits: PlanLimits {
                        max_bounded_b: 16,
                        max_sqrt_c: 1.2,
                    },
                }
            }
            ProblemKind::Logistic => {
                let (n, m) = (8, 48);
                // The canonical certified instance: ridge above the
                // coupling bound, so every admissible schedule converges.
                let op = LogisticGradOperator::certified_random(n, m, 2.0, 13)
                    .expect("certified logistic instance");
                let xstar = op.solve_exact().expect("reference logistic solve");
                Self {
                    kind,
                    x0: vec![0.0; n],
                    xstar: Some(xstar),
                    op: Box::new(op),
                    steps: 8_000,
                    tol: 1e-7,
                    flex_tol: 1e-5,
                    limits: PlanLimits::default(),
                }
            }
            ProblemKind::NetworkFlow => {
                let problem = NetworkFlowProblem::wheel(12, 21).expect("static wheel instance");
                let op = PriceRelaxation::new(problem.clone(), 0).expect("hub-grounded relaxation");
                let xstar = problem.exact_prices(0).expect("exact dual prices");
                Self {
                    kind,
                    x0: vec![0.0; op.dim()],
                    xstar: Some(xstar),
                    op: Box::new(op),
                    // The wheel certificate is 1/2 per full relaxation
                    // sweep; cap staleness like the obstacle problem so
                    // the budget dominates worst-case envelopes.
                    steps: 10_000,
                    tol: 1e-7,
                    flex_tol: 1e-5,
                    limits: PlanLimits {
                        max_bounded_b: 16,
                        max_sqrt_c: 1.5,
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problems_build_with_consistent_dimensions() {
        for kind in ProblemKind::ALL {
            let p = ConformanceProblem::build(kind);
            assert_eq!(p.x0.len(), p.n());
            if let Some(xs) = &p.xstar {
                assert_eq!(xs.len(), p.n());
                // xstar really is a fixed point.
                let mut fx = vec![0.0; p.n()];
                p.op.apply(xs, &mut fx);
                let err = asynciter_numerics::vecops::max_abs_diff(xs, &fx);
                assert!(err < 1e-8, "{}: xstar residual {err}", kind.id());
            }
            assert!(p.steps > 0 && p.tol > 0.0 && p.flex_tol >= p.tol);
        }
    }
}
