//! # asynciter-conformance
//!
//! The conformance fuzzer: an executable specification of the paper's
//! central claim — convergence under *any* admissible asynchronous
//! schedule, with unbounded delays, out-of-order messages and flexible
//! (partial) communication.
//!
//! Hand-written schedules exercise a handful of points in an infinite
//! space. This crate machine-generates thousands, following the
//! schedule-sequence view of Peng–Xu–Yan–Yin and the flexible model of
//! Mishchenko–Iutzeler–Malick:
//!
//! - [`plan`] — a seeded random **admissible-schedule generator**:
//!   [`plan::SchedulePlan`] samples a base generator from the
//!   `asynciter-models` schedule zoo and composes it with random
//!   delay/label/partial-update mutations, then wraps the stack in the
//!   guard combinators (`EnvelopeClamp`, `CoverageGuard`) so that every
//!   generated schedule *provably* satisfies the paper's admissibility
//!   conditions — each plan carries its own
//!   [`AdmissibilityWitness`](asynciter_models::AdmissibilityWitness).
//! - [`shrink`] — minimises any failing schedule to a small replayable
//!   counterexample `Trace` (prefix truncation, steering-set thinning,
//!   label freshening), built on the deterministic greedy machinery of
//!   the workspace `proptest` shim. Minimised traces are persisted via
//!   `trace_io` and committed as regression seeds.
//! - [`oracle`] — the differential oracles: **metamorphic** (every
//!   admissible schedule drives the residual below tolerance on
//!   Jacobi/lasso/obstacle), **equivalence** (replay round-trips are
//!   bit-identical; a `replay_equivalent` simulation's trace, injected
//!   back through `Session::replay_trace`, reproduces the simulated
//!   iterates bit for bit), and **flexible degradation** (partial
//!   communication still converges, with coherent constraint stats).
//! - [`cluster`] — seeded **message-passing fuzz cases**
//!   ([`cluster::ClusterPlan`]): worker counts, link latency models and
//!   hold/drop/duplicate/partial channel faults for the sharded
//!   `Cluster` backend, whose executed schedules the cluster-equivalence
//!   oracle replays bit-identically through the Definition-1 engine.
//! - [`corpus`] — the committed seed corpus under `tests/corpus/`:
//!   canonical plans, trace files, and the fault fixtures produced by
//!   shrinking.
//! - [`service`] — the multi-tenant tier: seeded mixed workloads for
//!   the service layer, the tenant-equivalence oracle wrapper
//!   (isolation = bit-identity with solo runs), start-vector-leak
//!   shrinking, and the planted scratch-leak negative control.
//! - [`runner`] — the campaign driver behind the `conformance` binary
//!   (`--quick`/`--soak`), with JSON reporting through
//!   `asynciter-report`.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod cluster;
pub mod corpus;
pub mod oracle;
pub mod plan;
pub mod problems;
pub mod runner;
pub mod service;
pub mod shrink;

pub use cluster::ClusterPlan;
pub use plan::SchedulePlan;
pub use problems::{ConformanceProblem, ProblemKind};
pub use runner::{run_campaign, CampaignConfig, CampaignReport};
pub use shrink::shrink_trace;
