//! Trace shrinking: minimise a failing schedule to a small replayable
//! counterexample.
//!
//! The shrinker is property-agnostic: it takes a predicate "does this
//! trace still exhibit the failure?" and greedily applies three
//! deterministic reduction passes until none makes progress:
//!
//! 1. **Prefix truncation** — the smallest failing prefix, found with
//!    the halving candidates of the `proptest` shim.
//! 2. **Steering-set thinning** — drop components from each step's
//!    `S_j` (never below one).
//! 3. **Label freshening** — move labels toward `j − 1`, removing
//!    staleness that is irrelevant to the failure. A label the
//!    predicate depends on survives, which is exactly what makes the
//!    minimised trace point at the offending read.
//!
//! All passes preserve the structural trace invariants (`push_step`
//! re-validates), so the result always replays through
//! `Session::replay_trace`.

use asynciter_models::{LabelStore, Trace};
use proptest::shrink::{minimize, u64_candidates, vec_remove_candidates};

/// Outcome of a shrink run.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The minimised trace (still failing the predicate).
    pub trace: Trace,
    /// Predicate evaluations spent.
    pub attempts: u64,
    /// Reduction passes completed.
    pub rounds: u32,
}

/// The first `k ≥ 1` steps of a trace (full labels).
fn prefix(t: &Trace, k: u64) -> Trace {
    let mut out = Trace::new(t.n(), LabelStore::Full);
    for j in 1..=k.min(t.len() as u64) {
        let active: Vec<usize> = t.step(j).active.iter().map(|&i| i as usize).collect();
        out.push_step(&active, t.labels(j).expect("shrink requires full labels"));
    }
    out
}

/// A copy of `t` with step `j`'s active set and labels replaced.
fn with_step(t: &Trace, j: u64, active: &[usize], labels: &[u64]) -> Trace {
    let mut out = Trace::new(t.n(), LabelStore::Full);
    for jj in 1..=t.len() as u64 {
        if jj == j {
            out.push_step(active, labels);
        } else {
            let a: Vec<usize> = t.step(jj).active.iter().map(|&i| i as usize).collect();
            out.push_step(&a, t.labels(jj).expect("full labels"));
        }
    }
    out
}

/// Size measure driving the fixed-point loop: total steps plus total
/// active components plus total staleness-carrying labels.
fn weight(t: &Trace) -> u64 {
    let mut w = t.len() as u64;
    for (j, s) in t.iter() {
        w += s.active.len() as u64;
        w += t
            .labels(j)
            .expect("full labels")
            .iter()
            .filter(|&&l| l != j - 1)
            .count() as u64;
    }
    w
}

/// Per-step edits only make sense on already-small traces; above this
/// the prefix pass must do the cutting first (a candidate costs a full
/// trace rebuild, so the quadratic passes are gated).
const EDIT_PASS_MAX_LEN: u64 = 2_000;

/// Greedily minimises `trace` while `still_fails` holds, spending at
/// most `max_attempts` predicate evaluations.
///
/// Returns the trace unchanged when the predicate does not fail on the
/// input (nothing to shrink) — callers should check the predicate first
/// if they need to distinguish the two cases.
///
/// # Panics
/// Panics on traces without full labels (min-only traces are not
/// replayable counterexamples).
pub fn shrink_trace<F: FnMut(&Trace) -> bool>(
    trace: &Trace,
    mut still_fails: F,
    max_attempts: u64,
) -> ShrinkResult {
    assert_eq!(
        trace.store(),
        LabelStore::Full,
        "shrink_trace: requires full labels"
    );
    if trace.is_empty() || !still_fails(trace) {
        return ShrinkResult {
            trace: trace.clone(),
            attempts: 0,
            rounds: 0,
        };
    }
    let mut cur = trace.clone();
    let mut spent = 0u64;
    let mut rounds = 0u32;
    loop {
        let before = weight(&cur);
        let budget = max_attempts.saturating_sub(spent);

        // Pass 1 — prefix truncation, searched over the *length* so a
        // candidate is one cheap rebuild, driven by the proptest shim's
        // halving candidates.
        let (best_len, attempts) = minimize(
            cur.len() as u64,
            |&k| still_fails(&prefix(&cur, k)),
            |&k| u64_candidates(1, k),
            budget,
        );
        spent += attempts;
        if best_len < cur.len() as u64 {
            cur = prefix(&cur, best_len);
        }

        // Passes 2 and 3 are quadratic in the trace length; only worth
        // it (and only affordable) once the prefix pass has cut down.
        if (cur.len() as u64) <= EDIT_PASS_MAX_LEN {
            // Pass 2 — steering-set thinning, per step from the end
            // (later steps usually carry the failure).
            for j in (1..=cur.len() as u64).rev() {
                if spent >= max_attempts {
                    break;
                }
                let active: Vec<usize> = cur.step(j).active.iter().map(|&i| i as usize).collect();
                if active.len() <= 1 {
                    continue;
                }
                let labels = cur.labels(j).expect("full labels").to_vec();
                let (thinned, attempts) = minimize(
                    active,
                    |a| still_fails(&with_step(&cur, j, a, &labels)),
                    |a| vec_remove_candidates(a, 1),
                    max_attempts.saturating_sub(spent),
                );
                spent += attempts;
                if thinned.len() < cur.step(j).active.len() {
                    cur = with_step(&cur, j, &thinned, &labels);
                }
            }

            // Pass 3 — label freshening: whole trace, then per step,
            // then per entry (short traces only).
            let all_fresh = {
                let mut t = Trace::new(cur.n(), LabelStore::Full);
                for j in 1..=cur.len() as u64 {
                    let a: Vec<usize> = cur.step(j).active.iter().map(|&i| i as usize).collect();
                    t.push_step(&a, &vec![j - 1; cur.n()]);
                }
                t
            };
            if weight(&all_fresh) < weight(&cur) && spent < max_attempts {
                spent += 1;
                if still_fails(&all_fresh) {
                    cur = all_fresh;
                }
            }
            for j in 1..=cur.len() as u64 {
                if spent >= max_attempts {
                    break;
                }
                let active: Vec<usize> = cur.step(j).active.iter().map(|&i| i as usize).collect();
                let labels = cur.labels(j).expect("full labels").to_vec();
                let fresh = vec![j - 1; cur.n()];
                if labels != fresh {
                    spent += 1;
                    if still_fails(&with_step(&cur, j, &active, &fresh)) {
                        cur = with_step(&cur, j, &active, &fresh);
                        continue;
                    }
                    if cur.len() <= 200 {
                        for h in 0..cur.n() {
                            if labels[h] == j - 1 || spent >= max_attempts {
                                continue;
                            }
                            let mut ls = cur.labels(j).expect("full labels").to_vec();
                            if ls[h] == j - 1 {
                                continue;
                            }
                            ls[h] = j - 1;
                            spent += 1;
                            if still_fails(&with_step(&cur, j, &active, &ls)) {
                                cur = with_step(&cur, j, &active, &ls);
                            }
                        }
                    }
                }
            }
        }

        rounds += 1;
        if weight(&cur) >= before || spent >= max_attempts || rounds >= 8 {
            break;
        }
    }
    ShrinkResult {
        trace: cur,
        attempts: spent,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_models::conditions::{AdmissibilityWitness, DelayEnvelope};
    use asynciter_models::schedule::{record, ChaoticBounded};
    use asynciter_models::ModelError;

    fn chaotic_trace(steps: u64) -> Trace {
        let mut g = ChaoticBounded::new(6, 2, 4, 8, false, 5);
        record(&mut g, steps, LabelStore::Full)
    }

    #[test]
    fn shrinks_stale_read_to_a_tiny_trace() {
        // Failure: some step reads with delay >= 5. The minimal
        // exhibit is a single-digit trace whose last step carries the
        // stale read, with every other label freshened.
        let t = chaotic_trace(400);
        let fails = |t: &Trace| {
            t.iter().any(|(j, _)| {
                t.labels(j)
                    .map(|ls| ls.iter().any(|&l| j - l >= 5))
                    .unwrap_or(false)
            })
        };
        assert!(fails(&t));
        let res = shrink_trace(&t, fails, 200_000);
        assert!(fails(&res.trace), "shrunk trace lost the failure");
        assert!(
            res.trace.len() <= 6,
            "expected near-minimal trace, got {} steps",
            res.trace.len()
        );
        // Exactly one stale label survives the freshening pass.
        let stale: usize = res
            .trace
            .iter()
            .map(|(j, _)| {
                res.trace
                    .labels(j)
                    .unwrap()
                    .iter()
                    .filter(|&&l| j - l >= 5)
                    .count()
            })
            .sum();
        assert_eq!(stale, 1, "freshening left extra staleness");
    }

    #[test]
    fn shrinks_witness_violation_to_its_cause() {
        // Corrupt a long admissible trace by freezing component 2's
        // label at 0, then shrink against "witness rejects with (b) on
        // component 2". The minimum must still pin component 2.
        let base = chaotic_trace(400);
        let mut corrupt = Trace::new(base.n(), LabelStore::Full);
        for j in 1..=base.len() as u64 {
            let active: Vec<usize> = base.step(j).active.iter().map(|&i| i as usize).collect();
            let mut labels = base.labels(j).unwrap().to_vec();
            labels[2] = 0;
            corrupt.push_step(&active, &labels);
        }
        let witness = AdmissibilityWitness::new(DelayEnvelope::Bounded(8), 400);
        let fails = |t: &Trace| {
            matches!(
                witness.check(t),
                Err(ModelError::ConditionViolated {
                    condition: "b",
                    component: 2,
                    ..
                })
            )
        };
        assert!(fails(&corrupt));
        let res = shrink_trace(&corrupt, fails, 200_000);
        assert!(fails(&res.trace));
        // The envelope floor first rises above 0 at j = b + 1 = 9, so
        // the minimal rejected prefix has exactly 9 steps.
        assert_eq!(res.trace.len(), 9);
    }

    #[test]
    fn non_failing_trace_returns_unchanged() {
        let t = chaotic_trace(50);
        let res = shrink_trace(&t, |_| false, 10_000);
        assert_eq!(res.trace.len(), 50);
        assert_eq!(res.attempts, 0);
    }

    #[test]
    fn shrunk_traces_keep_structural_invariants() {
        let t = chaotic_trace(300);
        let fails = |t: &Trace| t.len() >= 3;
        let res = shrink_trace(&t, fails, 50_000);
        assert_eq!(res.trace.len(), 3);
        // Round-trips through the archive format (replayability).
        let text = asynciter_models::trace_io::trace_to_string(&res.trace).unwrap();
        let back = asynciter_models::trace_io::trace_from_str(&text).unwrap();
        assert_eq!(back.len(), 3);
    }
}
