//! Differential oracles: what must hold for every admissible schedule.
//!
//! Each oracle takes a problem and (usually) a recorded trace, runs the
//! relevant backends through the unified `Session` API, and returns
//! `Err(message)` when the paper's guarantee is violated:
//!
//! - [`metamorphic`] — Theorem-level convergence: replaying any
//!   admissible trace drives the fixed-point residual below the
//!   problem's tolerance.
//! - [`replay_roundtrip`] — determinism and archival equivalence: a
//!   replayed trace re-replays bit-identically, including after a
//!   round-trip through the `trace_io` text format.
//! - [`sim_equivalence`] — cross-backend: a `replay_equivalent`
//!   simulation's trace, injected into the replay engine, reproduces
//!   the simulated iterates bit for bit.
//! - [`flexible_degrades`] — Definition 3: the flexible engine with
//!   partial communication still converges on the same schedule
//!   (looser tolerance), publishes partials, and reports coherent
//!   constraint statistics.
//! - [`cluster_replay_equivalence`] — cross-backend, message level: a
//!   cluster run's recorded schedule, injected into the replay engine,
//!   reproduces the cluster's consensus bit for bit — out-of-order,
//!   lossy, duplicating and partially-communicating channels included —
//!   and the consensus converges within the problem tolerance.
//! - [`cluster_degenerates_to_replay`] — the degenerate cluster
//!   (1 worker, in-order, faultless) *is* the synchronous schedule:
//!   bit-identical to `Replay` with the default schedule.
//! - [`threaded_replay_equivalence`] — cross-backend, *racy* runs: a
//!   genuinely concurrent threaded-cluster run (real threads, faulty
//!   transport, residual-target stopping) records a trace that replays
//!   bit-identically through the Definition-1 engine, satisfies
//!   condition (a), and converges within the problem tolerance.
//! - [`threaded_degenerates_to_cluster`] — one free-running worker with
//!   a faultless transport executes exactly the sequential cluster's
//!   step sequence: bit-identical iterates under the same budget.

use crate::cluster::{ClusterPlan, ThreadedPlan};
use crate::problems::ConformanceProblem;
use asynciter_core::session::RecordMode;
use asynciter_core::session::{Flexible, Replay, Session};
use asynciter_core::stopping::StoppingRule;
use asynciter_models::Partition;
use asynciter_models::Trace;
use asynciter_runtime::session::{Cluster, ThreadedCluster};
use asynciter_sim::compute::{ComputeModel, LatencyModel};
use asynciter_sim::runner::SimConfig;
use asynciter_sim::session::Sim;

/// Convergence under an injected admissible trace.
///
/// # Errors
/// A message naming the residual and tolerance when the replay fails to
/// converge (or the backend errors).
pub fn metamorphic(problem: &ConformanceProblem, trace: &Trace) -> Result<(), String> {
    let report = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .replay_trace(trace.clone())
        .map_err(|e| format!("replay_trace rejected the trace: {e}"))?
        .backend(Replay)
        .run()
        .map_err(|e| format!("replay failed: {e}"))?;
    if !report.final_residual.is_finite() || report.final_residual > problem.tol {
        return Err(format!(
            "metamorphic: residual {:.3e} above tolerance {:.1e} after {} steps",
            report.final_residual, problem.tol, report.steps
        ));
    }
    Ok(())
}

/// Bit-identical re-replay, directly and through the archive format.
///
/// # Errors
/// A message locating the first divergence.
pub fn replay_roundtrip(problem: &ConformanceProblem, trace: &Trace) -> Result<(), String> {
    let run = |t: Trace| {
        Session::new(problem.op.as_ref())
            .x0(problem.x0.clone())
            .replay_trace(t)
            .map_err(|e| format!("replay_trace rejected the trace: {e}"))?
            .record(RecordMode::Full)
            .run()
            .map_err(|e| format!("replay failed: {e}"))
    };
    let first = run(trace.clone())?;
    let second = run(trace.clone())?;
    if first.final_x != second.final_x {
        return Err("roundtrip: two replays of one trace disagree".into());
    }
    let text = asynciter_models::trace_io::trace_to_string(trace)
        .map_err(|e| format!("trace_io write failed: {e}"))?;
    let parsed = asynciter_models::trace_io::trace_from_str(&text)
        .map_err(|e| format!("trace_io read failed: {e}"))?;
    let archived = run(parsed)?;
    if first.final_x != archived.final_x {
        return Err("roundtrip: archived trace replays differently".into());
    }
    // The replay engine must re-record exactly the schedule it was fed.
    let re = first.trace.as_ref().expect("RecordMode::Full");
    if re.len() != trace.len() {
        return Err(format!(
            "roundtrip: re-recorded {} steps, injected {}",
            re.len(),
            trace.len()
        ));
    }
    for j in 1..=trace.len() as u64 {
        if re.step(j).active != trace.step(j).active || re.labels(j).ok() != trace.labels(j).ok() {
            return Err(format!(
                "roundtrip: re-recorded schedule diverges at step {j}"
            ));
        }
    }
    Ok(())
}

/// Simulator latency/compute regime for an equivalence case, derived
/// from the seed so soak runs sweep all three.
fn sim_regime(seed: u64, procs: usize) -> (Vec<ComputeModel>, LatencyModel) {
    match seed % 3 {
        0 => (
            vec![ComputeModel::Fixed { ticks: 1 }; procs],
            LatencyModel::Fixed { ticks: 1 },
        ),
        1 => (
            vec![ComputeModel::Uniform { lo: 1, hi: 5 }; procs],
            LatencyModel::Jitter { lo: 1, hi: 9 },
        ),
        _ => (
            vec![
                ComputeModel::HeavyTail {
                    scale: 1,
                    alpha: 1.3,
                };
                procs
            ],
            LatencyModel::HeavyTail {
                scale: 1,
                alpha: 1.3,
            },
        ),
    }
}

/// Cross-backend equivalence: Sim and Replay produce bit-identical
/// iterates on the same recorded schedule.
///
/// # Errors
/// A message naming the first divergent component, or any backend error.
pub fn sim_equivalence(
    problem: &ConformanceProblem,
    seed: u64,
    procs: usize,
    iterations: u64,
) -> Result<(), String> {
    let n = problem.n();
    let partition =
        Partition::blocks(n, procs).map_err(|e| format!("sim partition {n}/{procs}: {e}"))?;
    let mut cfg = SimConfig::uniform(partition, iterations);
    cfg.seed = seed;
    let (compute, latency) = sim_regime(seed, procs);
    cfg.compute = compute;
    cfg.latency = latency;
    debug_assert!(cfg.replay_equivalent());
    let sim = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .steps(iterations)
        .record(RecordMode::Full)
        .backend(Sim(cfg))
        .run()
        .map_err(|e| format!("sim failed: {e}"))?;
    let trace = sim.trace.clone().expect("RecordMode::Full");
    let replay = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .replay_trace(trace)
        .map_err(|e| format!("sim trace not replayable: {e}"))?
        .backend(Replay)
        .run()
        .map_err(|e| format!("replay of sim trace failed: {e}"))?;
    for (i, (a, b)) in sim.final_x.iter().zip(&replay.final_x).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "sim-equivalence: component {i} differs (sim {a:?} vs replay {b:?}) \
                 after {iterations} iterations, seed {seed}, {procs} procs"
            ));
        }
    }
    Ok(())
}

/// Flexible communication degrades gracefully on the same schedule:
/// convergence within the looser tolerance, partials actually published
/// and coherent constraint statistics.
///
/// # Errors
/// A message naming the violated expectation.
pub fn flexible_degrades(
    problem: &ConformanceProblem,
    trace: &Trace,
    seed: u64,
) -> Result<(), String> {
    let enforce = problem.xstar.is_some();
    let mut session = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .replay_trace(trace.clone())
        .map_err(|e| format!("replay_trace rejected the trace: {e}"))?
        .seed(seed)
        .backend(Flexible {
            m: 3,
            partial: true,
            enforce_constraint: enforce,
            ..Flexible::default()
        });
    if let Some(xs) = &problem.xstar {
        session = session.xstar(xs.clone());
    }
    let report = session.run().map_err(|e| format!("flexible failed: {e}"))?;
    if !report.final_residual.is_finite() || report.final_residual > problem.flex_tol {
        return Err(format!(
            "flexible: residual {:.3e} above tolerance {:.1e}",
            report.final_residual, problem.flex_tol
        ));
    }
    if report.partial_publishes == 0 {
        return Err("flexible: partial mode never published a partial".into());
    }
    // Publishes are counted per component; with m = 3 inner steps at
    // most m crossings per outer step can publish each of the n
    // components. More would mean the engine miscounts.
    if report.partial_publishes > report.steps * 3 * trace.n() as u64 {
        return Err(format!(
            "flexible: incoherent stats — {} publishes over {} steps of dim {}",
            report.partial_publishes,
            report.steps,
            trace.n()
        ));
    }
    // Constraint-stat accounting (checks run exactly when a read
    // attempts a partial upgrade and the fixed point is known): with
    // enforcement a violating upgrade is skipped, without it the
    // upgrade proceeds — either way every check is accounted for.
    if enforce {
        if report.constraint_checked != report.partial_reads + report.constraint_violations {
            return Err(format!(
                "flexible: incoherent stats — {} checks but {} reads + {} violations",
                report.constraint_checked, report.partial_reads, report.constraint_violations
            ));
        }
    } else if report.constraint_checked != 0 || report.constraint_violations != 0 {
        return Err(format!(
            "flexible: constraint stats without a known fixed point ({} checks)",
            report.constraint_checked
        ));
    }
    Ok(())
}

/// Cross-backend equivalence at the message level: the cluster's
/// recorded schedule replays bit-identically through the Definition-1
/// engine, the trace satisfies condition (a), and the consensus
/// converges within the problem tolerance.
///
/// # Errors
/// A message naming the first divergent component, the failed
/// condition, or the unconverged residual.
pub fn cluster_replay_equivalence(
    problem: &ConformanceProblem,
    plan: &ClusterPlan,
) -> Result<(), String> {
    let cluster = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .steps(plan.steps)
        .seed(plan.seed)
        .record(RecordMode::Full)
        .backend(plan.backend())
        .run()
        .map_err(|e| format!("cluster failed: {e}"))?;
    if !cluster.final_residual.is_finite() || cluster.final_residual > problem.tol {
        return Err(format!(
            "cluster: consensus residual {:.3e} above tolerance {:.1e} after {} steps",
            cluster.final_residual, problem.tol, cluster.steps
        ));
    }
    let trace = cluster.trace.clone().expect("RecordMode::Full");
    asynciter_models::conditions::check_condition_a(&trace)
        .map_err(|e| format!("cluster trace violates condition (a): {e}"))?;
    let replay = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .replay_trace(trace)
        .map_err(|e| format!("cluster trace not replayable: {e}"))?
        .backend(Replay)
        .run()
        .map_err(|e| format!("replay of cluster trace failed: {e}"))?;
    for (i, (a, b)) in cluster.final_x.iter().zip(&replay.final_x).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "cluster-equivalence: component {i} differs (cluster {a:?} vs replay {b:?}) \
                 under {}",
                plan.describe()
            ));
        }
    }
    Ok(())
}

/// The degenerate cluster — one worker, in-order links, no faults — is
/// the synchronous Jacobi iteration: bit-identical to [`Replay`] on the
/// default schedule.
///
/// # Errors
/// A message naming the first divergent component.
pub fn cluster_degenerates_to_replay(
    problem: &ConformanceProblem,
    steps: u64,
) -> Result<(), String> {
    let cluster = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .steps(steps)
        .backend(Cluster {
            workers: 1,
            ..Cluster::default()
        })
        .run()
        .map_err(|e| format!("degenerate cluster failed: {e}"))?;
    let replay = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .steps(steps)
        .backend(Replay)
        .run()
        .map_err(|e| format!("replay failed: {e}"))?;
    for (i, (a, b)) in cluster.final_x.iter().zip(&replay.final_x).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "degenerate cluster: component {i} differs ({a:?} vs {b:?}) after {steps} steps"
            ));
        }
    }
    Ok(())
}

/// Cross-backend equivalence for *racy* executions: a genuinely
/// concurrent threaded-cluster run — real threads over a faulty
/// transport, stopped by a residual target — must record a trace that
/// satisfies condition (a) and replays bit-identically through the
/// Definition-1 engine, and its consensus must converge within the
/// problem tolerance.
///
/// Because the OS scheduler picks the interleaving, the run cannot be
/// regenerated from the plan; the oracle checks the live run against
/// its own trace and returns that trace (so callers may archive the
/// witnessed execution).
///
/// # Errors
/// A message naming the first divergent component, the failed
/// condition, or the unconverged residual.
pub fn threaded_replay_equivalence(
    problem: &ConformanceProblem,
    plan: &ThreadedPlan,
) -> Result<Trace, String> {
    // Stop two orders below the tolerance: the stopping rule reads
    // worker 0's (slightly stale) local view, while the oracle judges
    // the assembled consensus.
    let eps = problem.tol / 100.0;
    let run = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .steps(plan.max_steps)
        .seed(plan.seed)
        .stopping(StoppingRule::Residual {
            eps,
            check_every: 16,
        })
        .record(RecordMode::Full)
        .backend(plan.backend())
        .run()
        .map_err(|e| format!("threaded cluster failed: {e}"))?;
    if !run.final_residual.is_finite() || run.final_residual > problem.tol {
        return Err(format!(
            "threaded: consensus residual {:.3e} above tolerance {:.1e} after {} steps",
            run.final_residual, problem.tol, run.steps
        ));
    }
    let trace = run.trace.clone().expect("RecordMode::Full");
    asynciter_models::conditions::check_condition_a(&trace)
        .map_err(|e| format!("threaded trace violates condition (a): {e}"))?;
    let replay = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .replay_trace(trace.clone())
        .map_err(|e| format!("threaded trace not replayable: {e}"))?
        .backend(Replay)
        .run()
        .map_err(|e| format!("replay of threaded trace failed: {e}"))?;
    for (i, (a, b)) in run.final_x.iter().zip(&replay.final_x).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "threaded-equivalence: component {i} differs (threaded {a:?} vs replay {b:?}) \
                 under {}",
                plan.describe()
            ));
        }
    }
    Ok(trace)
}

/// The degenerate threaded cluster — one free-running worker, faultless
/// transport — executes exactly the sequential cluster's step sequence:
/// bit-identical iterates under the same budget. (Both share the same
/// per-step arithmetic; this pins the concurrency layer itself to a
/// no-op at one worker.)
///
/// # Errors
/// A message naming the first divergent component.
pub fn threaded_degenerates_to_cluster(
    problem: &ConformanceProblem,
    steps: u64,
) -> Result<(), String> {
    let threaded = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .steps(steps)
        .backend(ThreadedCluster {
            workers: 1,
            ..ThreadedCluster::default()
        })
        .run()
        .map_err(|e| format!("degenerate threaded cluster failed: {e}"))?;
    let cluster = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .steps(steps)
        .backend(Cluster {
            workers: 1,
            ..Cluster::default()
        })
        .run()
        .map_err(|e| format!("sequential cluster failed: {e}"))?;
    for (i, (a, b)) in threaded.final_x.iter().zip(&cluster.final_x).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "degenerate threaded cluster: component {i} differs \
                 (threaded {a:?} vs cluster {b:?}) after {steps} steps"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SchedulePlan;
    use crate::problems::{ConformanceProblem, ProblemKind};
    use asynciter_numerics::rng::rng;

    #[test]
    fn oracles_pass_on_a_sampled_plan() {
        let problem = ConformanceProblem::build(ProblemKind::Jacobi);
        let mut r = rng(11);
        let plan = SchedulePlan::sample(&mut r, problem.n(), problem.steps, problem.limits);
        let trace = plan.record_trace();
        metamorphic(&problem, &trace).unwrap();
        replay_roundtrip(&problem, &trace).unwrap();
        flexible_degrades(&problem, &trace, 5).unwrap();
        sim_equivalence(&problem, 1, 2, 300).unwrap();
        sim_equivalence(&problem, 2, 3, 300).unwrap();
    }

    #[test]
    fn cluster_oracles_pass_on_sampled_plans() {
        for kind in ProblemKind::ALL {
            let problem = ConformanceProblem::build(kind);
            let mut r = rng(17);
            for _ in 0..3 {
                let plan = ClusterPlan::sample(&mut r, problem.n(), problem.steps);
                cluster_replay_equivalence(&problem, &plan)
                    .unwrap_or_else(|e| panic!("{}: {e}", plan.describe()));
            }
            cluster_degenerates_to_replay(&problem, 60).unwrap();
        }
    }

    #[test]
    fn threaded_oracles_pass_on_sampled_plans() {
        let problem = ConformanceProblem::build(ProblemKind::Jacobi);
        let mut r = rng(29);
        for _ in 0..2 {
            let plan = ThreadedPlan::sample(&mut r, problem.n(), 4_000_000);
            threaded_replay_equivalence(&problem, &plan)
                .unwrap_or_else(|e| panic!("{}: {e}", plan.describe()));
        }
        threaded_degenerates_to_cluster(&problem, 60).unwrap();
    }

    #[test]
    fn metamorphic_rejects_a_frozen_schedule() {
        // Freezing a component's label at 0 makes replay converge to
        // the wrong point: the oracle must notice.
        let problem = ConformanceProblem::build(ProblemKind::Jacobi);
        let mut r = rng(13);
        let plan = SchedulePlan::sample(&mut r, problem.n(), problem.steps, problem.limits);
        let base = plan.record_trace();
        let mut corrupt =
            asynciter_models::Trace::new(base.n(), asynciter_models::LabelStore::Full);
        for j in 1..=base.len() as u64 {
            let active: Vec<usize> = base.step(j).active.iter().map(|&i| i as usize).collect();
            let mut labels = base.labels(j).unwrap().to_vec();
            labels[0] = 0;
            corrupt.push_step(&active, &labels);
        }
        assert!(metamorphic(&problem, &corrupt).is_err());
    }
}
