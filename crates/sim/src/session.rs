//! Discrete-event-simulator backend for the unified [`Session`] API.
//!
//! [`Sim`] wraps a [`SimConfig`] (compute models, latency model,
//! partition, flexible-communication settings) and runs it behind
//! `asynciter_core::session::Backend`. The session's [`RunControl`]
//! overrides the schedule-length controls — `max_steps` becomes
//! `max_iterations`, `error_every` and `record` map onto their simulator
//! equivalents, and an explicitly set session seed replaces the config
//! seed — so the same session drives replay, threads and simulation
//! interchangeably.
//!
//! [`Session`]: asynciter_core::session::Session
//! [`RunControl`]: asynciter_core::session::RunControl

use crate::runner::{SimConfig, Simulator};
use asynciter_core::session::{macro_count, unsupported, Backend, Problem, RunControl, RunReport};
use asynciter_core::CoreError;

/// The simulator backend: `Sim(config)`.
///
/// The wrapped [`SimConfig`] carries everything execution-specific
/// (partition, per-processor compute models, link latency, inner steps,
/// partial sends); the session supplies problem and observation controls.
#[derive(Debug, Clone)]
pub struct Sim(pub SimConfig);

impl Backend for Sim {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(
        &mut self,
        problem: &Problem<'_>,
        ctl: &mut RunControl<'_>,
    ) -> asynciter_core::Result<RunReport> {
        if ctl.stopping.is_some() {
            return Err(unsupported(self.name(), "a stopping rule"));
        }
        if ctl.residual_every > 0 {
            return Err(unsupported(self.name(), "residual sampling"));
        }
        if ctl.schedule.is_some() {
            return Err(unsupported(
                self.name(),
                "an explicit schedule (the event loop generates its own)",
            ));
        }
        let mut cfg = self.0.clone();
        cfg.max_iterations = ctl.max_steps;
        cfg.error_every = ctl.error_every;
        cfg.record_labels = ctl.record.label_store();
        if let Some(seed) = ctl.seed {
            cfg.seed = seed;
        }
        let start = std::time::Instant::now();
        let res = Simulator::run(problem.op, &problem.x0, &cfg, problem.xstar.as_deref()).map_err(
            |e| CoreError::Backend {
                backend: self.name(),
                message: e.to_string(),
            },
        )?;
        let wall = start.elapsed();
        let final_residual = problem.op.residual_inf(&res.final_consensus);
        let steps = res.trace.len() as u64;
        let macro_iterations = macro_count(Some(&res.trace));
        Ok(RunReport {
            backend: self.name(),
            final_x: res.final_consensus,
            steps,
            macro_iterations,
            errors: res.errors,
            error_times: res.error_times,
            residuals: Vec::new(),
            final_residual,
            stopped_early: false,
            per_worker_updates: per_proc_phases(&res.timeline),
            partial_publishes: res.timeline.partial_count() as u64,
            partial_reads: 0,
            constraint_checked: 0,
            constraint_violations: 0,
            trace: ctl.record.keeps_trace().then_some(res.trace),
            sim_time: Some(res.end_time),
            tenant: None,
            job: None,
            wall,
        })
    }
}

/// Completed phases per simulated processor.
fn per_proc_phases(timeline: &crate::timeline::Timeline) -> Vec<u64> {
    let mut counts = vec![0u64; timeline.num_procs];
    for phase in &timeline.phases {
        counts[phase.proc] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_core::session::{RecordMode, Replay, Session};
    use asynciter_models::partition::Partition;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn sim_backend_runs_and_reports() {
        let op = jacobi(8);
        let xstar = op.solve_dense_spd().unwrap();
        let cfg = SimConfig::uniform(Partition::blocks(8, 2).unwrap(), 1);
        let report = Session::new(&op)
            .steps(500)
            .xstar(xstar.clone())
            .error_every(50)
            .record(RecordMode::Full)
            .backend(Sim(cfg))
            .run()
            .unwrap();
        assert_eq!(report.backend, "sim");
        assert_eq!(report.steps, 500);
        assert_eq!(report.errors.len(), 10);
        assert!(report.sim_time.is_some());
        assert_eq!(report.per_worker_updates.iter().sum::<u64>(), 500);
        assert!(report.final_error(&xstar) < 1e-9);
        assert!(report.trace.is_some());
        assert!(report.macro_iterations > 0);
    }

    #[test]
    fn single_proc_sim_matches_replay_bitwise() {
        // One processor, unit compute, one inner step: each phase is a
        // full Jacobi sweep on fresh data — identical arithmetic to the
        // replay engine's synchronous schedule.
        let op = jacobi(10);
        let cfg = SimConfig::uniform(Partition::blocks(10, 1).unwrap(), 1);
        let sim = Session::new(&op).steps(40).backend(Sim(cfg)).run().unwrap();
        let replay = Session::new(&op).steps(40).backend(Replay).run().unwrap();
        assert_eq!(sim.final_x, replay.final_x);
        assert_eq!(sim.steps, replay.steps);
    }

    #[test]
    fn unsupported_controls_error_cleanly() {
        let op = jacobi(8);
        let cfg = SimConfig::uniform(Partition::blocks(8, 2).unwrap(), 1);
        let err = Session::new(&op)
            .steps(10)
            .residual_every(2)
            .backend(Sim(cfg))
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Backend { .. }), "{err}");
    }
}
