//! # asynciter-sim
//!
//! A deterministic discrete-event simulator of processors and
//! communication links running asynchronous iterations — the instrument
//! that regenerates the paper's two figures:
//!
//! - **Fig. 1**: two processors with heterogeneous compute times perform
//!   updating phases and exchange values at the end of each phase; the
//!   timeline shows phases labelled by iteration numbers and arrows for
//!   the communications.
//! - **Fig. 2**: the same with *flexible communication* — partial updates
//!   (hatched arrows) leave mid-phase.
//!
//! Unlike the thread runtimes (which are real but nondeterministic), the
//! simulator gives exact, reproducible timelines with real arithmetic:
//! each simulated processor actually computes its block of the operator
//! from its local (stale) copies, so simulated runs converge/diverge for
//! real mathematical reasons, and every run yields both a
//! [`timeline::Timeline`] (for rendering) and an
//! [`asynciter_models::Trace`] (for macro-iteration/epoch analysis).

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod compute;
pub mod error;
pub mod runner;
pub mod scenario;
pub mod session;
pub mod timeline;

pub use error::SimError;
pub use runner::{SimConfig, SimResult, Simulator};
pub use session::Sim;
pub use timeline::{CommKind, Timeline};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;
