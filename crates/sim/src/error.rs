//! Error type for the simulator crate.

use std::fmt;

/// Errors produced by the discrete-event simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Configuration and problem dimensions disagree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
        /// Context string.
        context: &'static str,
    },
    /// A configuration parameter is invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DimensionMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            SimError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::InvalidParameter {
            name: "x",
            message: "bad".into(),
        };
        assert!(e.to_string().contains("`x`"));
    }
}
