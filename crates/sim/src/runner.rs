//! The discrete-event simulation loop.
//!
//! Each processor owns a block of components and keeps a *local copy* of
//! the whole iterate (its knowledge of the others). An updating phase:
//!
//! 1. captures the local copy at its **start** (the phase's input — this
//!    is where staleness enters),
//! 2. runs `inner_steps` iterations of the operator on the owned block
//!    (off-block frozen),
//! 3. optionally sends `partial_sends` intermediate block values at
//!    evenly spaced times inside the phase (flexible communication,
//!    Fig. 2's hatched arrows),
//! 4. at its **end** is assigned the next global iteration number `j`
//!    (completion order = the iteration order of Definition 1),
//!    publishes locally, and sends the final values to every peer
//!    (Fig. 1's arrows), each arrival delayed by the latency model.
//!
//! Message arrivals update the receiver's local copy (keep-freshest by
//! sender phase) and its per-component *global-label* bookkeeping, from
//! which the run emits a [`Trace`] whose labels provably satisfy
//! condition (a): a phase's read labels come from completions strictly
//! before its own `j`.

use crate::compute::{ComputeModel, LatencyModel};
use crate::error::SimError;
use crate::timeline::{Comm, CommKind, Phase, Timeline};
use asynciter_models::partition::Partition;
use asynciter_models::trace::{LabelStore, Trace};
use asynciter_opt::traits::Operator;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Component → processor assignment.
    pub partition: Partition,
    /// Per-processor compute-time models.
    pub compute: Vec<ComputeModel>,
    /// Link latency model (shared by all links; latencies are drawn
    /// independently per message).
    pub latency: LatencyModel,
    /// Inner iterations per phase (`m ≥ 1`).
    pub inner_steps: usize,
    /// Number of mid-phase partial sends (0 = classic asynchronous).
    pub partial_sends: usize,
    /// Total global iterations to simulate.
    pub max_iterations: u64,
    /// RNG seed.
    pub seed: u64,
    /// Label retention of the emitted trace.
    pub record_labels: LabelStore,
    /// Record consensus error vs `xstar` every this many iterations
    /// (0 = never).
    pub error_every: u64,
}

impl SimConfig {
    /// True when every simulated phase is arithmetically expressible as
    /// one Definition-1 step — `inner_steps == 1` and no partial sends —
    /// so the emitted trace, replayed through the deterministic replay
    /// engine, must reproduce the simulated iterates *bit for bit*.
    /// The conformance fuzzer's cross-backend oracle only injects traces
    /// from configurations satisfying this predicate; multi-step phases
    /// and mid-phase partials have no single-step replay form.
    pub fn replay_equivalent(&self) -> bool {
        self.inner_steps == 1 && self.partial_sends == 0
    }

    /// A plain configuration with fixed unit compute times and unit
    /// latency.
    pub fn uniform(partition: Partition, max_iterations: u64) -> Self {
        let p = partition.num_machines();
        Self {
            partition,
            compute: vec![ComputeModel::Fixed { ticks: 1 }; p],
            latency: LatencyModel::Fixed { ticks: 1 },
            inner_steps: 1,
            partial_sends: 0,
            max_iterations,
            seed: 0,
            record_labels: LabelStore::Full,
            error_every: 0,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug)]
pub struct SimResult {
    /// The recorded timeline (Fig. 1/2 data).
    pub timeline: Timeline,
    /// The recorded trace (macro-iteration/epoch analysis data).
    pub trace: Trace,
    /// Consensus iterate (owner components) at the end.
    pub final_consensus: Vec<f64>,
    /// `(j, ‖consensus − x*‖_∞)` samples.
    pub errors: Vec<(u64, f64)>,
    /// Simulated completion time of each error sample (same indexing as
    /// `errors`) — lets experiments convert convergence into simulated
    /// wall-clock.
    pub error_times: Vec<u64>,
    /// Simulated end time.
    pub end_time: u64,
}

#[derive(Debug)]
enum Event {
    /// Phase of processor `p` completes.
    PhaseEnd { p: usize },
    /// A message with block values arrives at `to`.
    MsgArrive {
        to: usize,
        comps: Vec<(u32, f64)>,
        sender_phase: u64,
        global_label: u64,
    },
}

/// In-flight phase bookkeeping.
struct InFlight {
    start: u64,
    end: u64,
    phase_idx: u64,
    read_labels: Vec<u64>,
    final_values: Vec<f64>,
}

/// The deterministic simulator. See module docs.
#[derive(Debug, Default)]
pub struct Simulator;

impl Simulator {
    /// Runs the simulation.
    ///
    /// # Errors
    /// Dimension/parameter validation failures.
    pub fn run(
        op: &dyn Operator,
        x0: &[f64],
        cfg: &SimConfig,
        xstar: Option<&[f64]>,
    ) -> crate::Result<SimResult> {
        let n = op.dim();
        let procs = cfg.partition.num_machines();
        if x0.len() != n || cfg.partition.n() != n {
            return Err(SimError::DimensionMismatch {
                expected: n,
                actual: if x0.len() != n {
                    x0.len()
                } else {
                    cfg.partition.n()
                },
                context: "Simulator::run",
            });
        }
        if cfg.compute.len() != procs {
            return Err(SimError::DimensionMismatch {
                expected: procs,
                actual: cfg.compute.len(),
                context: "Simulator::run (compute models)",
            });
        }
        if cfg.max_iterations == 0 || cfg.inner_steps == 0 {
            return Err(SimError::InvalidParameter {
                name: "max_iterations/inner_steps",
                message: "must be positive".into(),
            });
        }
        if cfg.error_every > 0 && xstar.is_none() {
            return Err(SimError::InvalidParameter {
                name: "error_every",
                message: "error recording requires xstar".into(),
            });
        }

        let mut rng = asynciter_numerics::rng::rng(cfg.seed);
        let blocks: Vec<Vec<usize>> = (0..procs).map(|p| cfg.partition.components_of(p)).collect();

        // Per-processor state.
        let mut local: Vec<Vec<f64>> = vec![x0.to_vec(); procs];
        let mut known_label: Vec<Vec<u64>> = vec![vec![0; n]; procs];
        // Freshest sender phase applied per (proc, component) for
        // keep-freshest message application.
        let mut known_phase: Vec<Vec<u64>> = vec![vec![0; n]; procs];
        let mut phase_count: Vec<u64> = vec![0; procs];
        let mut last_completed_j: Vec<u64> = vec![0; procs];
        let mut in_flight: Vec<Option<InFlight>> = (0..procs).map(|_| None).collect();

        let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut events: Vec<Option<Event>> = Vec::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
                    events: &mut Vec<Option<Event>>,
                    seq: &mut u64,
                    t: u64,
                    e: Event| {
            events.push(Some(e));
            heap.push(Reverse((t, *seq, events.len() - 1)));
            *seq += 1;
        };

        let mut timeline = Timeline::new(procs);
        let mut trace = Trace::new(n, cfg.record_labels);
        let mut errors = Vec::new();
        let mut error_times = Vec::new();
        let mut j_global = 0u64;
        let mut now = 0u64;
        // Reusable phase-compute buffers (see `schedule_phase`).
        let mut w_buf = vec![0.0; n];
        let mut upd = vec![0.0; n];
        let mut op_scratch = vec![0.0; op.scratch_len()];

        // Schedules the next phase of processor `p` starting at `t`.
        // `w_buf`/`upd`/`op_scratch` are the run's reusable work buffers
        // (phase input copy, block output, operator scratch), so the
        // compute section allocates only what a phase must own (its
        // recorded read labels and final values).
        #[allow(clippy::too_many_arguments)]
        fn schedule_phase(
            p: usize,
            t: u64,
            op: &dyn Operator,
            cfg: &SimConfig,
            blocks: &[Vec<usize>],
            local: &[Vec<f64>],
            known_label: &[Vec<u64>],
            phase_count: &mut [u64],
            last_completed_j: &[u64],
            in_flight: &mut [Option<InFlight>],
            rng: &mut rand::rngs::StdRng,
            timeline: &mut Timeline,
            heap: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
            events: &mut Vec<Option<Event>>,
            seq: &mut u64,
            w_buf: &mut [f64],
            upd: &mut [f64],
            op_scratch: &mut [f64],
        ) {
            phase_count[p] += 1;
            let k = phase_count[p];
            let dur = cfg.compute[p].duration(k, rng);
            let end = t + dur;
            // The phase input is the local copy *now* (stale for
            // everything updated later).
            w_buf.copy_from_slice(&local[p]);
            let read_labels = known_label[p].clone();
            // Inner iterations on the owned block, capturing intermediate
            // (partial) values after each inner step when mid-phase sends
            // are configured.
            let mut partials: Vec<Vec<f64>> = Vec::new();
            for _ in 0..cfg.inner_steps {
                op.update_active_with(w_buf, &blocks[p], upd, op_scratch);
                for &i in &blocks[p] {
                    w_buf[i] = upd[i];
                }
                if cfg.partial_sends > 0 {
                    partials.push(blocks[p].iter().map(|&i| w_buf[i]).collect());
                }
            }
            let final_values: Vec<f64> = if cfg.partial_sends > 0 {
                partials.pop().expect("inner_steps >= 1")
            } else {
                blocks[p].iter().map(|&i| w_buf[i]).collect()
            };
            // Mid-phase partial sends at evenly spaced interior times,
            // carrying the freshest intermediate available then.
            if cfg.partial_sends > 0 && !partials.is_empty() {
                let sends = cfg.partial_sends.min(partials.len());
                for s in 1..=sends {
                    let send_t = t + dur * s as u64 / (sends as u64 + 1);
                    let stage = ((partials.len() * s).div_ceil(sends + 1)).min(partials.len() - 1);
                    let values = &partials[stage];
                    for dest in 0..blocks.len() {
                        if dest == p {
                            continue;
                        }
                        let recv_t = send_t + cfg.latency.latency(rng);
                        timeline.comms.push(Comm {
                            from: p,
                            to: dest,
                            send_t,
                            recv_t,
                            sender_phase: k,
                            kind: CommKind::Partial,
                        });
                        let e = Event::MsgArrive {
                            to: dest,
                            comps: blocks[p]
                                .iter()
                                .zip(values)
                                .map(|(&i, &v)| (i as u32, v))
                                .collect(),
                            sender_phase: k,
                            // Partials are at least as fresh as the
                            // sender's last completed iteration.
                            global_label: last_completed_j[p],
                        };
                        events.push(Some(e));
                        heap.push(Reverse((recv_t, *seq, events.len() - 1)));
                        *seq += 1;
                    }
                }
            }
            in_flight[p] = Some(InFlight {
                start: t,
                end,
                phase_idx: k,
                read_labels,
                final_values,
            });
            events.push(Some(Event::PhaseEnd { p }));
            heap.push(Reverse((end, *seq, events.len() - 1)));
            *seq += 1;
        }

        for p in 0..procs {
            schedule_phase(
                p,
                0,
                op,
                cfg,
                &blocks,
                &local,
                &known_label,
                &mut phase_count,
                &last_completed_j,
                &mut in_flight,
                &mut rng,
                &mut timeline,
                &mut heap,
                &mut events,
                &mut seq,
                &mut w_buf,
                &mut upd,
                &mut op_scratch,
            );
        }

        while let Some(Reverse((t, _, idx))) = heap.pop() {
            if j_global >= cfg.max_iterations {
                break;
            }
            now = t;
            let event = events[idx].take().expect("event consumed once");
            match event {
                Event::MsgArrive {
                    to,
                    comps,
                    sender_phase,
                    global_label,
                } => {
                    for &(c, v) in &comps {
                        let c = c as usize;
                        // Keep-freshest by sender phase (single owner per
                        // component ⇒ phases order that component's
                        // values); equal phases accept (later partials of
                        // the same phase are fresher).
                        if sender_phase >= known_phase[to][c] {
                            known_phase[to][c] = sender_phase;
                            local[to][c] = v;
                            known_label[to][c] = known_label[to][c].max(global_label);
                        }
                    }
                }
                Event::PhaseEnd { p } => {
                    let fl = in_flight[p].take().expect("phase in flight");
                    j_global += 1;
                    let j = j_global;
                    last_completed_j[p] = j;
                    // Publish locally.
                    for (&i, &v) in blocks[p].iter().zip(&fl.final_values) {
                        local[p][i] = v;
                        known_label[p][i] = j;
                        known_phase[p][i] = fl.phase_idx;
                    }
                    timeline.phases.push(Phase {
                        proc: p,
                        start: fl.start,
                        end: fl.end,
                        j,
                    });
                    // Condition (a) by construction: reads predate j.
                    debug_assert!(fl.read_labels.iter().all(|&l| l < j));
                    trace.push_step(&blocks[p], &fl.read_labels);
                    // Final-value messages to all peers.
                    for dest in 0..procs {
                        if dest == p {
                            continue;
                        }
                        let recv_t = fl.end + cfg.latency.latency(&mut rng);
                        timeline.comms.push(Comm {
                            from: p,
                            to: dest,
                            send_t: fl.end,
                            recv_t,
                            sender_phase: fl.phase_idx,
                            kind: CommKind::Full,
                        });
                        push(
                            &mut heap,
                            &mut events,
                            &mut seq,
                            recv_t,
                            Event::MsgArrive {
                                to: dest,
                                comps: blocks[p]
                                    .iter()
                                    .zip(&fl.final_values)
                                    .map(|(&i, &v)| (i as u32, v))
                                    .collect(),
                                sender_phase: fl.phase_idx,
                                global_label: j,
                            },
                        );
                    }
                    if cfg.error_every > 0 && j.is_multiple_of(cfg.error_every) {
                        let xs = xstar.expect("validated above");
                        let mut consensus = vec![0.0; n];
                        for (q, block) in blocks.iter().enumerate() {
                            for &i in block {
                                consensus[i] = local[q][i];
                            }
                        }
                        errors.push((j, asynciter_numerics::vecops::max_abs_diff(&consensus, xs)));
                        error_times.push(fl.end);
                    }
                    if j < cfg.max_iterations {
                        schedule_phase(
                            p,
                            fl.end,
                            op,
                            cfg,
                            &blocks,
                            &local,
                            &known_label,
                            &mut phase_count,
                            &last_completed_j,
                            &mut in_flight,
                            &mut rng,
                            &mut timeline,
                            &mut heap,
                            &mut events,
                            &mut seq,
                            &mut w_buf,
                            &mut upd,
                            &mut op_scratch,
                        );
                    }
                }
            }
        }

        // Phases still in flight at the horizon never received an
        // iteration number and are absent from `timeline.phases`; drop
        // their already-scheduled partial communications so the timeline
        // stays self-consistent.
        let completed: Vec<u64> = (0..procs)
            .map(|p| timeline.phases.iter().filter(|ph| ph.proc == p).count() as u64)
            .collect();
        timeline
            .comms
            .retain(|c| c.sender_phase <= completed[c.from]);

        let mut final_consensus = vec![0.0; n];
        for (q, block) in blocks.iter().enumerate() {
            for &i in block {
                final_consensus[i] = local[q][i];
            }
        }

        Ok(SimResult {
            timeline,
            trace,
            final_consensus,
            errors,
            error_times,
            end_time: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_models::conditions::check_condition_a;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    fn base_cfg(n: usize, procs: usize, iters: u64) -> SimConfig {
        SimConfig::uniform(Partition::blocks(n, procs).unwrap(), iters)
    }

    #[test]
    fn deterministic_runs() {
        let op = jacobi(8);
        let cfg = {
            let mut c = base_cfg(8, 2, 100);
            c.compute = vec![
                ComputeModel::Uniform { lo: 1, hi: 5 },
                ComputeModel::Uniform { lo: 2, hi: 9 },
            ];
            c.latency = LatencyModel::Jitter { lo: 0, hi: 7 };
            c.seed = 42;
            c
        };
        let a = Simulator::run(&op, &[0.0; 8], &cfg, None).unwrap();
        let b = Simulator::run(&op, &[0.0; 8], &cfg, None).unwrap();
        assert_eq!(a.final_consensus, b.final_consensus);
        assert_eq!(a.timeline.phases, b.timeline.phases);
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn timeline_is_valid_and_trace_satisfies_condition_a() {
        let op = jacobi(12);
        let mut cfg = base_cfg(12, 3, 300);
        cfg.compute = vec![
            ComputeModel::Fixed { ticks: 2 },
            ComputeModel::Uniform { lo: 1, hi: 6 },
            ComputeModel::HeavyTail {
                scale: 1,
                alpha: 1.5,
            },
        ];
        cfg.latency = LatencyModel::Jitter { lo: 0, hi: 10 };
        cfg.seed = 7;
        let res = Simulator::run(&op, &[0.0; 12], &cfg, None).unwrap();
        res.timeline.validate().expect("valid timeline");
        check_condition_a(&res.trace).expect("condition (a)");
        assert_eq!(res.trace.len(), 300);
    }

    #[test]
    fn converges_to_fixed_point() {
        let op = jacobi(12);
        let xstar = op.solve_dense_spd().unwrap();
        let mut cfg = base_cfg(12, 3, 2000);
        cfg.latency = LatencyModel::Jitter { lo: 0, hi: 4 };
        cfg.seed = 3;
        let res = Simulator::run(&op, &[0.0; 12], &cfg, Some(&xstar)).unwrap();
        assert!(
            vecops::max_abs_diff(&res.final_consensus, &xstar) < 1e-9,
            "error {}",
            vecops::max_abs_diff(&res.final_consensus, &xstar)
        );
    }

    #[test]
    fn partial_sends_appear_in_timeline() {
        let op = jacobi(8);
        let mut cfg = base_cfg(8, 2, 50);
        cfg.inner_steps = 4;
        cfg.partial_sends = 2;
        cfg.compute = vec![ComputeModel::Fixed { ticks: 8 }; 2];
        let res = Simulator::run(&op, &[0.0; 8], &cfg, None).unwrap();
        assert!(res.timeline.partial_count() > 0);
        res.timeline.validate().unwrap();
        // Partials are sent strictly inside phases.
        for c in &res.timeline.comms {
            if c.kind == CommKind::Partial {
                let phase = res
                    .timeline
                    .phases
                    .iter()
                    .find(|p| p.proc == c.from && p.start < c.send_t && c.send_t < p.end);
                assert!(
                    phase.is_some(),
                    "partial send at {} not inside any phase of {}",
                    c.send_t,
                    c.from
                );
            }
        }
    }

    #[test]
    fn heterogeneous_speeds_skew_phase_counts() {
        let op = jacobi(8);
        let mut cfg = base_cfg(8, 2, 300);
        cfg.compute = vec![
            ComputeModel::Fixed { ticks: 1 },
            ComputeModel::Fixed { ticks: 10 },
        ];
        let res = Simulator::run(&op, &[0.0; 8], &cfg, None).unwrap();
        let fast = res.timeline.phases_of(0).len();
        let slow = res.timeline.phases_of(1).len();
        assert!(fast > 5 * slow, "expected ~10x skew, got {fast} vs {slow}");
    }

    #[test]
    fn errors_recorded_when_requested() {
        let op = jacobi(8);
        let xstar = op.solve_dense_spd().unwrap();
        let mut cfg = base_cfg(8, 2, 200);
        cfg.error_every = 20;
        let res = Simulator::run(&op, &[0.0; 8], &cfg, Some(&xstar)).unwrap();
        assert_eq!(res.errors.len(), 10);
        assert!(res.errors.first().unwrap().1 >= res.errors.last().unwrap().1);
        assert_eq!(res.error_times.len(), 10);
        assert!(res.error_times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn validation_errors() {
        let op = jacobi(8);
        let mut cfg = base_cfg(8, 2, 10);
        cfg.compute.pop();
        assert!(Simulator::run(&op, &[0.0; 8], &cfg, None).is_err());
        let cfg = base_cfg(8, 2, 0);
        assert!(Simulator::run(&op, &[0.0; 8], &cfg, None).is_err());
        let mut cfg = base_cfg(8, 2, 10);
        cfg.error_every = 5;
        assert!(Simulator::run(&op, &[0.0; 8], &cfg, None).is_err());
        assert!(Simulator::run(&op, &[0.0; 7], &cfg, None).is_err());
    }
}
