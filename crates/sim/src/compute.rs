//! Per-processor compute-time and per-link latency models.
//!
//! Simulated time is `u64` ticks. Compute models determine how long each
//! updating phase takes; latency models determine when a sent value
//! arrives. Jittered latencies naturally reorder messages; Baudet's
//! model (`k`-th update takes `k` ticks) reproduces the `√j` delay
//! growth of the paper's §II example.

use rand::rngs::StdRng;
use rand::RngExt;

/// How long a processor's `k`-th updating phase takes (k counts from 1).
#[derive(Debug, Clone)]
pub enum ComputeModel {
    /// Every phase takes `ticks`.
    Fixed {
        /// Phase duration.
        ticks: u64,
    },
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Minimum duration.
        lo: u64,
        /// Maximum duration.
        hi: u64,
    },
    /// Baudet's slowing processor: the `k`-th phase takes `k · scale`.
    Baudet {
        /// Per-phase scale.
        scale: u64,
    },
    /// Pareto-tailed durations: `ceil(scale · pareto(alpha))`.
    HeavyTail {
        /// Scale (minimum duration).
        scale: u64,
        /// Tail index.
        alpha: f64,
    },
}

impl ComputeModel {
    /// Duration of phase `k ≥ 1`.
    ///
    /// # Panics
    /// Panics when `k == 0` or the model is degenerate (`hi < lo`).
    pub fn duration(&self, k: u64, rng: &mut StdRng) -> u64 {
        assert!(k >= 1, "ComputeModel::duration: k counts from 1");
        match self {
            ComputeModel::Fixed { ticks } => (*ticks).max(1),
            ComputeModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "ComputeModel::Uniform: lo > hi");
                rng.random_range(*lo..=*hi).max(1)
            }
            ComputeModel::Baudet { scale } => (k * scale.max(&1)).max(1),
            ComputeModel::HeavyTail { scale, alpha } => {
                let d = asynciter_numerics::rng::pareto(rng, 1.0, *alpha);
                ((*scale as f64 * d).ceil() as u64).max(1)
            }
        }
    }
}

/// Link latency model.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Constant latency.
    Fixed {
        /// Latency in ticks.
        ticks: u64,
    },
    /// Uniform jitter in `[lo, hi]` — jitter wider than the send period
    /// reorders messages.
    Jitter {
        /// Minimum latency.
        lo: u64,
        /// Maximum latency.
        hi: u64,
    },
    /// Pareto-tailed latency (occasional very late messages).
    HeavyTail {
        /// Scale (minimum latency).
        scale: u64,
        /// Tail index.
        alpha: f64,
    },
}

impl LatencyModel {
    /// Samples a latency.
    ///
    /// # Panics
    /// Panics when the model is degenerate (`hi < lo`).
    pub fn latency(&self, rng: &mut StdRng) -> u64 {
        match self {
            LatencyModel::Fixed { ticks } => *ticks,
            LatencyModel::Jitter { lo, hi } => {
                assert!(lo <= hi, "LatencyModel::Jitter: lo > hi");
                rng.random_range(*lo..=*hi)
            }
            LatencyModel::HeavyTail { scale, alpha } => {
                let d = asynciter_numerics::rng::pareto(rng, 1.0, *alpha);
                (*scale as f64 * d).ceil() as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::rng::rng;

    #[test]
    fn fixed_models_are_constant() {
        let mut r = rng(1);
        assert_eq!(ComputeModel::Fixed { ticks: 5 }.duration(1, &mut r), 5);
        assert_eq!(ComputeModel::Fixed { ticks: 5 }.duration(9, &mut r), 5);
        assert_eq!(LatencyModel::Fixed { ticks: 2 }.latency(&mut r), 2);
        // Zero tick durations are clamped to 1 (time must advance).
        assert_eq!(ComputeModel::Fixed { ticks: 0 }.duration(1, &mut r), 1);
    }

    #[test]
    fn baudet_model_grows_linearly() {
        let mut r = rng(2);
        let m = ComputeModel::Baudet { scale: 1 };
        assert_eq!(m.duration(1, &mut r), 1);
        assert_eq!(m.duration(7, &mut r), 7);
        let m2 = ComputeModel::Baudet { scale: 3 };
        assert_eq!(m2.duration(4, &mut r), 12);
    }

    #[test]
    fn uniform_within_range() {
        let mut r = rng(3);
        let m = ComputeModel::Uniform { lo: 2, hi: 6 };
        for _ in 0..100 {
            let d = m.duration(1, &mut r);
            assert!((2..=6).contains(&d));
        }
        let l = LatencyModel::Jitter { lo: 0, hi: 9 };
        for _ in 0..100 {
            assert!(l.latency(&mut r) <= 9);
        }
    }

    #[test]
    fn heavy_tail_occasionally_huge() {
        let mut r = rng(4);
        let m = LatencyModel::HeavyTail {
            scale: 1,
            alpha: 1.1,
        };
        let max = (0..5000).map(|_| m.latency(&mut r)).max().unwrap();
        assert!(max > 50, "max latency {max}");
    }
}
