//! Canned scenarios reproducing the paper's figures and examples.
//!
//! - [`fig1`] — the two-processor asynchronous iteration of Fig. 1:
//!   heterogeneous phase durations, values exchanged at the end of each
//!   updating phase.
//! - [`fig2`] — Fig. 2: the same with flexible communication (partial
//!   updates leave mid-phase).
//! - [`baudet`] — the §II example: `P1` updates in one tick, `P2`'s
//!   `k`-th phase takes `k` ticks; delays grow like `√j`.
//!
//! Each scenario pairs a concrete 2-component contraction (so the
//! simulated arithmetic is real) with the compute/latency models that
//! produce the figure's shape.

use crate::compute::{ComputeModel, LatencyModel};
use crate::runner::SimConfig;
use asynciter_models::partition::Partition;
use asynciter_numerics::sparse::CsrMatrix;
use asynciter_opt::linear::JacobiOperator;

/// The 2×2 strictly diagonally dominant system used by the figure
/// scenarios: `F(x) = ((1 + x₂)/2, (2 + x₁)/3)`, a max-norm contraction
/// with factor `1/2` and fixed point `(1, 1)` (solve `2x₁ − x₂ = 1`,
/// `−x₁ + 3x₂ = 2`) — any 2-component contraction works; this one keeps
/// the arithmetic human-checkable.
pub fn two_component_operator() -> JacobiOperator {
    let a = CsrMatrix::from_triplets(
        2,
        2,
        &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 3.0)],
    )
    .expect("static matrix");
    JacobiOperator::new(a, vec![1.0, 2.0]).expect("valid system")
}

/// Fig. 1 scenario: two processors, `P1` phases of 3 ticks, `P2` phases
/// jittering in `[4, 7]`, unit link latency, end-of-phase exchange only.
pub fn fig1(iterations: u64, seed: u64) -> SimConfig {
    SimConfig {
        partition: Partition::identity(2),
        compute: vec![
            ComputeModel::Fixed { ticks: 3 },
            ComputeModel::Uniform { lo: 4, hi: 7 },
        ],
        latency: LatencyModel::Fixed { ticks: 1 },
        inner_steps: 1,
        partial_sends: 0,
        max_iterations: iterations,
        seed,
        record_labels: asynciter_models::LabelStore::Full,
        error_every: 0,
    }
}

/// Fig. 2 scenario: as [`fig1`] but each phase runs 4 inner iterations
/// and sends 2 partial updates mid-phase (the hatched arrows).
pub fn fig2(iterations: u64, seed: u64) -> SimConfig {
    let mut cfg = fig1(iterations, seed);
    cfg.compute = vec![
        ComputeModel::Fixed { ticks: 6 },
        ComputeModel::Uniform { lo: 8, hi: 12 },
    ];
    cfg.inner_steps = 4;
    cfg.partial_sends = 2;
    cfg
}

/// Baudet's example: `P1` updates `x₁` in one tick, `P2`'s `k`-th phase
/// takes `k` ticks; exchange at phase end with (near-)zero latency.
pub fn baudet(iterations: u64) -> SimConfig {
    SimConfig {
        partition: Partition::identity(2),
        compute: vec![
            ComputeModel::Fixed { ticks: 1 },
            ComputeModel::Baudet { scale: 1 },
        ],
        latency: LatencyModel::Fixed { ticks: 0 },
        inner_steps: 1,
        partial_sends: 0,
        max_iterations: iterations,
        seed: 0,
        record_labels: asynciter_models::LabelStore::Full,
        error_every: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Simulator;
    use asynciter_models::analysis::{delay_growth_exponent, delay_series};
    use asynciter_opt::traits::Operator;

    #[test]
    fn two_component_operator_contracts() {
        let op = two_component_operator();
        assert_eq!(op.dim(), 2);
        assert!(op.contraction_factor() < 1.0);
        let xstar = op.solve_dense_spd().unwrap();
        // Fixed point: 2x₀ − x₁ = 1, −x₀ + 3x₁ = 2 → x = (1, 1).
        assert!((xstar[0] - 1.0).abs() < 1e-12);
        assert!((xstar[1] - 1.0).abs() < 1e-12);
        // And F fixes (1, 1) exactly: (1+1)/2 = 1, (2+1)/3 = 1.
        assert_eq!(op.component(0, &[1.0, 1.0]), 1.0);
        assert_eq!(op.component(1, &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn fig1_scenario_produces_expected_shape() {
        let op = two_component_operator();
        let res = Simulator::run(&op, &[0.0, 0.0], &fig1(30, 1), None).unwrap();
        res.timeline.validate().unwrap();
        // P1 is faster → more phases.
        assert!(res.timeline.phases_of(0).len() > res.timeline.phases_of(1).len());
        // Every full communication present, no partials.
        assert_eq!(res.timeline.partial_count(), 0);
        assert_eq!(res.timeline.comms.len(), 30); // one per completion (to 1 peer)
    }

    #[test]
    fn fig2_scenario_has_partials() {
        let op = two_component_operator();
        let res = Simulator::run(&op, &[0.0, 0.0], &fig2(20, 1), None).unwrap();
        res.timeline.validate().unwrap();
        assert!(res.timeline.partial_count() > 0);
    }

    #[test]
    fn baudet_scenario_reproduces_sqrt_delay_growth() {
        let op = two_component_operator();
        let res = Simulator::run(&op, &[0.0, 0.0], &baudet(30_000), None).unwrap();
        // Delay of x₂'s information at P1's steps grows like √j.
        let series: Vec<(u64, u64)> = delay_series(&res.trace, 1)
            .unwrap()
            .into_iter()
            .zip(res.trace.iter())
            .filter(|(_, (_, s))| s.active.as_slice() == [0])
            .map(|(d, _)| d)
            .collect();
        let (_, p, r2) = delay_growth_exponent(&series, 1024).expect("fit");
        assert!(
            (p - 0.5).abs() < 0.1,
            "delay exponent {p} (r² = {r2}) not ~ 0.5"
        );
    }

    #[test]
    fn baudet_sim_matches_analytic_trace_shape() {
        // The simulator's Baudet run must agree with the closed-form
        // construction in asynciter-models on the P2 update density.
        let op = two_component_operator();
        let res = Simulator::run(&op, &[0.0, 0.0], &baudet(10_000), None).unwrap();
        let p2_updates = res
            .trace
            .iter()
            .filter(|(_, s)| s.active.as_slice() == [1])
            .count() as f64;
        let expected = (2.0 * 10_000f64).sqrt();
        assert!(
            (p2_updates / expected - 1.0).abs() < 0.2,
            "P2 update count {p2_updates} vs ~{expected}"
        );
    }
}
