//! Timeline recording: updating phases and communications.
//!
//! The data behind the paper's Fig. 1 / Fig. 2: for each processor the
//! sequence of updating phases (rectangles labelled by iteration
//! numbers) and for each exchanged value an arrow `(send time, receive
//! time)`, full (solid) or partial (hatched — flexible communication).

/// A single updating phase of one processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Processor index.
    pub proc: usize,
    /// Start tick.
    pub start: u64,
    /// End tick (exclusive; `end > start`).
    pub end: u64,
    /// Global iteration number assigned at completion.
    pub j: u64,
}

/// The kind of a communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommKind {
    /// End-of-phase exchange of the completed update (Fig. 1 arrows).
    Full,
    /// Mid-phase partial update (Fig. 2 hatched arrows).
    Partial,
}

/// One communication: a value leaving `from` at `send_t` and becoming
/// visible at `to` at `recv_t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comm {
    /// Sender processor.
    pub from: usize,
    /// Receiver processor.
    pub to: usize,
    /// Send tick.
    pub send_t: u64,
    /// Receive tick.
    pub recv_t: u64,
    /// Sender-local phase index the value belongs to.
    pub sender_phase: u64,
    /// Communication kind.
    pub kind: CommKind,
}

/// A recorded simulation timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Number of processors.
    pub num_procs: usize,
    /// All phases, in completion order.
    pub phases: Vec<Phase>,
    /// All communications, in scheduling order.
    pub comms: Vec<Comm>,
}

impl Timeline {
    /// Creates an empty timeline over `num_procs` processors.
    pub fn new(num_procs: usize) -> Self {
        Self {
            num_procs,
            phases: Vec::new(),
            comms: Vec::new(),
        }
    }

    /// Latest tick referenced by any phase or communication.
    pub fn horizon(&self) -> u64 {
        let p = self.phases.iter().map(|p| p.end).max().unwrap_or(0);
        let c = self.comms.iter().map(|c| c.recv_t).max().unwrap_or(0);
        p.max(c)
    }

    /// Phases of one processor, in time order.
    pub fn phases_of(&self, proc: usize) -> Vec<&Phase> {
        self.phases.iter().filter(|p| p.proc == proc).collect()
    }

    /// Number of partial communications.
    pub fn partial_count(&self) -> usize {
        self.comms
            .iter()
            .filter(|c| c.kind == CommKind::Partial)
            .count()
    }

    /// Validates structural invariants: phases per processor are
    /// non-overlapping and time-ordered; communications respect
    /// `send_t ≤ recv_t`; iteration numbers are dense starting at 1 in
    /// completion order.
    pub fn validate(&self) -> Result<(), String> {
        for proc in 0..self.num_procs {
            let ps = self.phases_of(proc);
            for w in ps.windows(2) {
                if w[1].start < w[0].end {
                    return Err(format!(
                        "processor {proc}: phases {} and {} overlap",
                        w[0].j, w[1].j
                    ));
                }
            }
        }
        for p in &self.phases {
            if p.end <= p.start {
                return Err(format!("phase {} has nonpositive duration", p.j));
            }
        }
        for c in &self.comms {
            if c.recv_t < c.send_t {
                return Err(format!(
                    "communication {}→{} travels back in time",
                    c.from, c.to
                ));
            }
        }
        let mut sorted: Vec<u64> = self.phases.iter().map(|p| p.j).collect();
        sorted.sort_unstable();
        for (k, &j) in sorted.iter().enumerate() {
            if j != k as u64 + 1 {
                return Err(format!(
                    "iteration numbers not dense: expected {}, got {j}",
                    k + 1
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Timeline {
        let mut t = Timeline::new(2);
        t.phases.push(Phase {
            proc: 0,
            start: 0,
            end: 2,
            j: 1,
        });
        t.phases.push(Phase {
            proc: 1,
            start: 0,
            end: 3,
            j: 2,
        });
        t.phases.push(Phase {
            proc: 0,
            start: 2,
            end: 4,
            j: 3,
        });
        t.comms.push(Comm {
            from: 0,
            to: 1,
            send_t: 2,
            recv_t: 3,
            sender_phase: 1,
            kind: CommKind::Full,
        });
        t
    }

    #[test]
    fn horizon_and_filters() {
        let t = toy();
        assert_eq!(t.horizon(), 4);
        assert_eq!(t.phases_of(0).len(), 2);
        assert_eq!(t.phases_of(1).len(), 1);
        assert_eq!(t.partial_count(), 0);
    }

    #[test]
    fn validate_accepts_toy() {
        assert!(toy().validate().is_ok());
    }

    #[test]
    fn validate_rejects_overlap() {
        let mut t = toy();
        t.phases.push(Phase {
            proc: 0,
            start: 3,
            end: 5,
            j: 4,
        });
        assert!(t.validate().unwrap_err().contains("overlap"));
    }

    #[test]
    fn validate_rejects_time_travel() {
        let mut t = toy();
        t.comms.push(Comm {
            from: 1,
            to: 0,
            send_t: 5,
            recv_t: 4,
            sender_phase: 1,
            kind: CommKind::Partial,
        });
        assert!(t.validate().unwrap_err().contains("back in time"));
    }

    #[test]
    fn validate_rejects_sparse_numbering() {
        let mut t = toy();
        t.phases[2].j = 7;
        assert!(t.validate().is_err());
    }
}
