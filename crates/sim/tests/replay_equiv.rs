//! The simulator half of the cross-backend equivalence oracle: any trace
//! emitted by a [`SimConfig::replay_equivalent`] simulation, injected
//! back into the deterministic replay engine via
//! `Session::replay_trace`, reproduces the simulated iterates bit for
//! bit. The conformance fuzzer checks this over many seeds; these tests
//! pin the property (and its boundary) at the sim crate level.

use asynciter_core::session::{RecordMode, Replay, Session};
use asynciter_models::partition::Partition;
use asynciter_numerics::sparse::tridiagonal;
use asynciter_opt::linear::JacobiOperator;
use asynciter_sim::compute::{ComputeModel, LatencyModel};
use asynciter_sim::runner::SimConfig;
use asynciter_sim::session::Sim;

fn jacobi(n: usize) -> JacobiOperator {
    JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
}

#[test]
fn replay_equivalent_predicate() {
    let mut cfg = SimConfig::uniform(Partition::blocks(8, 2).unwrap(), 10);
    assert!(cfg.replay_equivalent());
    cfg.inner_steps = 3;
    assert!(!cfg.replay_equivalent());
    cfg.inner_steps = 1;
    cfg.partial_sends = 1;
    assert!(!cfg.replay_equivalent());
}

#[test]
fn multi_proc_sim_trace_replays_bitwise() {
    let n = 12;
    let op = jacobi(n);
    for (procs, seed) in [(2usize, 1u64), (3, 7), (4, 42)] {
        let mut cfg = SimConfig::uniform(Partition::blocks(n, procs).unwrap(), 300);
        cfg.seed = seed;
        cfg.compute = vec![ComputeModel::Uniform { lo: 1, hi: 5 }; procs];
        cfg.latency = LatencyModel::Jitter { lo: 1, hi: 9 };
        assert!(cfg.replay_equivalent());
        let sim = Session::new(&op)
            .steps(300)
            .record(RecordMode::Full)
            .backend(Sim(cfg))
            .run()
            .unwrap();
        let replay = Session::new(&op)
            .replay_trace(sim.trace.clone().unwrap())
            .unwrap()
            .backend(Replay)
            .run()
            .unwrap();
        assert_eq!(
            sim.final_x, replay.final_x,
            "procs={procs} seed={seed}: sim and replay disagree"
        );
        assert_eq!(sim.steps, replay.steps);
    }
}

#[test]
fn heavy_tail_sim_trace_replays_bitwise() {
    let n = 10;
    let op = jacobi(n);
    let mut cfg = SimConfig::uniform(Partition::blocks(n, 2).unwrap(), 400);
    cfg.seed = 1234;
    cfg.compute = vec![
        ComputeModel::HeavyTail {
            scale: 1,
            alpha: 1.3,
        };
        2
    ];
    cfg.latency = LatencyModel::HeavyTail {
        scale: 1,
        alpha: 1.3,
    };
    let sim = Session::new(&op)
        .steps(400)
        .record(RecordMode::Full)
        .backend(Sim(cfg))
        .run()
        .unwrap();
    let replay = Session::new(&op)
        .replay_trace(sim.trace.clone().unwrap())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(sim.final_x, replay.final_x);
}
