//! Convex separable network flow and the Bertsekas–El Baz dual
//! relaxation (\[6\], \[8\]).
//!
//! The problem: on a directed graph with arc costs
//! `c_a(f_a) = ½ r_a f_a² − t_a f_a` (`r_a > 0`), find flows satisfying
//! node balance `div_i(f) = s_i` at minimum total cost. Dualising the
//! balance constraints with node prices `p` gives the optimality
//! condition `c_a'(f_a) = p_tail − p_head`, i.e.
//! `f_a(p) = (p_tail − p_head + t_a)/r_a`, and the dual problem is an
//! unconstrained concave quadratic in `p`, invariant under constant
//! shifts — so one node is *grounded* (`p_ground ≡ 0`).
//!
//! The distributed relaxation method updates one node's price at a time,
//! choosing `p_i` so that node `i`'s balance is met exactly given its
//! neighbours' current prices — a per-node closed form for quadratic
//! costs. This is precisely the algorithm whose totally asynchronous
//! convergence (unbounded delays, out-of-order messages) was established
//! in \[6\]; here it runs as an [`Operator`] under every engine in the
//! workspace.

use crate::error::OptError;
use crate::traits::Operator;

/// A directed arc with strictly convex quadratic cost
/// `c(f) = ½ r f² − t f`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    /// Tail node (flow leaves here when `f > 0`).
    pub tail: usize,
    /// Head node.
    pub head: usize,
    /// Cost curvature (resistance) `r > 0`.
    pub r: f64,
    /// Linear cost offset `t` (the flow the arc "wants" to carry).
    pub t: f64,
}

/// A convex quadratic-cost network flow problem.
#[derive(Debug, Clone)]
pub struct NetworkFlowProblem {
    num_nodes: usize,
    arcs: Vec<Arc>,
    supplies: Vec<f64>,
    /// Per node: (arc index, +1.0 if the node is the tail, −1.0 if head).
    incident: Vec<Vec<(usize, f64)>>,
}

impl NetworkFlowProblem {
    /// Builds a problem; validates arc endpoints, positive curvatures,
    /// balanced supplies (`Σ s_i = 0`) and weak connectivity.
    ///
    /// # Errors
    /// [`OptError::InvalidProblem`] on any structural violation.
    pub fn new(num_nodes: usize, arcs: Vec<Arc>, supplies: Vec<f64>) -> crate::Result<Self> {
        if num_nodes < 2 {
            return Err(OptError::InvalidProblem {
                message: "need at least two nodes".into(),
            });
        }
        if supplies.len() != num_nodes {
            return Err(OptError::DimensionMismatch {
                expected: num_nodes,
                actual: supplies.len(),
                context: "NetworkFlowProblem::new (supplies)",
            });
        }
        let total: f64 = supplies.iter().sum();
        if total.abs() > 1e-9 {
            return Err(OptError::InvalidProblem {
                message: format!("supplies must balance: Σ s_i = {total:.3e}"),
            });
        }
        for (k, a) in arcs.iter().enumerate() {
            if a.tail >= num_nodes || a.head >= num_nodes || a.tail == a.head {
                return Err(OptError::InvalidProblem {
                    message: format!("arc {k} has invalid endpoints {}→{}", a.tail, a.head),
                });
            }
            if !a.r.is_finite() || a.r <= 0.0 {
                return Err(OptError::InvalidProblem {
                    message: format!("arc {k} has nonpositive curvature r = {}", a.r),
                });
            }
        }
        let mut incident = vec![Vec::new(); num_nodes];
        for (k, a) in arcs.iter().enumerate() {
            incident[a.tail].push((k, 1.0));
            incident[a.head].push((k, -1.0));
        }
        // Weak connectivity via union-find-less BFS.
        let mut seen = vec![false; num_nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &(k, _) in &incident[u] {
                let a = &arcs[k];
                for v in [a.tail, a.head] {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        if seen.iter().any(|s| !s) {
            return Err(OptError::InvalidProblem {
                message: "graph is not (weakly) connected".into(),
            });
        }
        Ok(Self {
            num_nodes,
            arcs,
            supplies,
            incident,
        })
    }

    /// Random connected transshipment instance: a random spanning tree
    /// plus `extra_arcs` random arcs; curvatures log-uniform in
    /// `[0.5, 2]`, offsets standard normal. Supplies are the divergence
    /// of a random flow, so the instance is always feasible.
    ///
    /// # Errors
    /// Propagates structural validation.
    pub fn random(num_nodes: usize, extra_arcs: usize, seed: u64) -> crate::Result<Self> {
        if num_nodes < 2 {
            return Err(OptError::InvalidProblem {
                message: "need at least two nodes".into(),
            });
        }
        let mut rng = asynciter_numerics::rng::rng(seed);
        let mut arcs = Vec::with_capacity(num_nodes - 1 + extra_arcs);
        // Random spanning tree: connect node k to a random earlier node.
        use rand::RngExt;
        for k in 1..num_nodes {
            let parent = rng.random_range(0..k);
            let (tail, head) = if rng.random_range(0..2u32) == 0 {
                (parent, k)
            } else {
                (k, parent)
            };
            arcs.push(Arc {
                tail,
                head,
                r: asynciter_numerics::rng::uniform_vec(&mut rng, 1, 0.5_f64.ln(), 2.0_f64.ln())[0]
                    .exp(),
                t: asynciter_numerics::rng::normal(&mut rng),
            });
        }
        for _ in 0..extra_arcs {
            let tail = rng.random_range(0..num_nodes);
            let mut head = rng.random_range(0..num_nodes);
            if head == tail {
                head = (head + 1) % num_nodes;
            }
            arcs.push(Arc {
                tail,
                head,
                r: asynciter_numerics::rng::uniform_vec(&mut rng, 1, 0.5_f64.ln(), 2.0_f64.ln())[0]
                    .exp(),
                t: asynciter_numerics::rng::normal(&mut rng),
            });
        }
        // Feasible supplies: divergence of a random flow.
        let flow: Vec<f64> = asynciter_numerics::rng::normal_vec(&mut rng, arcs.len());
        let mut supplies = vec![0.0; num_nodes];
        for (a, &f) in arcs.iter().zip(&flow) {
            supplies[a.tail] += f;
            supplies[a.head] -= f;
        }
        Self::new(num_nodes, arcs, supplies)
    }

    /// Hub-grounded wheel instance — the canonical network-flow problem
    /// for the totally asynchronous engines. `ring ≥ 3` rim nodes each
    /// connect to the hub (node 0) through a *low-resistance* arc
    /// (`r ∈ [0.5, 1]`) and to their two ring neighbours through
    /// *high-resistance* arcs (`r ∈ [2, 4]`); offsets are standard
    /// normal and supplies are the divergence of a random flow (always
    /// feasible). Grounding [`PriceRelaxation`] at the hub then yields a
    /// **certified** max-norm contraction: each rim row's factor is
    /// `(w_left + w_right)/(w_hub + w_left + w_right) ≤ 1/2` (weights
    /// `w = 1/r`), so the relaxation converges under *any* admissible
    /// schedule — the property the conformance fuzzer's metamorphic
    /// oracle demands.
    ///
    /// # Errors
    /// Errors when `ring < 3` (no wheel exists).
    pub fn wheel(ring: usize, seed: u64) -> crate::Result<Self> {
        if ring < 3 {
            return Err(OptError::InvalidProblem {
                message: format!("wheel needs ring >= 3, got {ring}"),
            });
        }
        let mut rng = asynciter_numerics::rng::rng(seed);
        let n = ring + 1;
        let mut arcs = Vec::with_capacity(2 * ring);
        for k in 0..ring {
            let rim = k + 1;
            // Spoke: hub ↔ rim, low resistance (strong hub coupling).
            arcs.push(Arc {
                tail: 0,
                head: rim,
                r: asynciter_numerics::rng::uniform_vec(&mut rng, 1, 0.5, 1.0)[0],
                t: asynciter_numerics::rng::normal(&mut rng),
            });
            // Ring: rim ↔ next rim, high resistance (weak rim coupling).
            arcs.push(Arc {
                tail: rim,
                head: (k + 1) % ring + 1,
                r: asynciter_numerics::rng::uniform_vec(&mut rng, 1, 2.0, 4.0)[0],
                t: asynciter_numerics::rng::normal(&mut rng),
            });
        }
        let flow: Vec<f64> = asynciter_numerics::rng::normal_vec(&mut rng, arcs.len());
        let mut supplies = vec![0.0; n];
        for (a, &f) in arcs.iter().zip(&flow) {
            supplies[a.tail] += f;
            supplies[a.head] -= f;
        }
        Self::new(n, arcs, supplies)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// The supplies.
    pub fn supplies(&self) -> &[f64] {
        &self.supplies
    }

    /// The dual-optimal flows at prices `p`:
    /// `f_a = (p_tail − p_head + t_a)/r_a`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn flows(&self, p: &[f64]) -> Vec<f64> {
        assert_eq!(p.len(), self.num_nodes, "flows: price dimension");
        self.arcs
            .iter()
            .map(|a| (p[a.tail] - p[a.head] + a.t) / a.r)
            .collect()
    }

    /// Divergence `div_i(f) = Σ_{out} f − Σ_{in} f` of an arc-flow vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn divergence(&self, f: &[f64]) -> Vec<f64> {
        assert_eq!(f.len(), self.arcs.len(), "divergence: flow dimension");
        let mut div = vec![0.0; self.num_nodes];
        for (a, &fa) in self.arcs.iter().zip(f) {
            div[a.tail] += fa;
            div[a.head] -= fa;
        }
        div
    }

    /// Balance residual `‖div(f(p)) − s‖_∞`: the distributed convergence
    /// metric (each term is locally computable by one node).
    pub fn balance_residual(&self, p: &[f64]) -> f64 {
        let div = self.divergence(&self.flows(p));
        div.iter()
            .zip(&self.supplies)
            .fold(0.0_f64, |m, (d, s)| m.max((d - s).abs()))
    }

    /// Primal cost `Σ_a c_a(f_a)`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn primal_cost(&self, f: &[f64]) -> f64 {
        assert_eq!(f.len(), self.arcs.len(), "primal_cost: flow dimension");
        self.arcs
            .iter()
            .zip(f)
            .map(|(a, &fa)| 0.5 * a.r * fa * fa - a.t * fa)
            .sum()
    }

    /// Exact optimal prices (grounded at node `ground`) by solving the
    /// reduced weighted-Laplacian system with dense Cholesky.
    ///
    /// # Errors
    /// Propagates factorisation failures.
    ///
    /// # Panics
    /// Panics when `ground` is out of range.
    pub fn exact_prices(&self, ground: usize) -> crate::Result<Vec<f64>> {
        assert!(ground < self.num_nodes, "exact_prices: ground out of range");
        let n = self.num_nodes;
        // Reduced index map: skip the ground node.
        let red = |i: usize| if i < ground { i } else { i - 1 };
        let m = n - 1;
        let mut lap = asynciter_numerics::dense::DenseMatrix::zeros(m, m);
        let mut rhs = vec![0.0; m];
        // Balance at node i: Σ_a sign_{ia} (p_tail − p_head + t_a)/r_a = s_i.
        for i in 0..n {
            if i == ground {
                continue;
            }
            let ri = red(i);
            rhs[ri] = self.supplies[i];
            for &(k, sign) in &self.incident[i] {
                let a = &self.arcs[k];
                let w = 1.0 / a.r;
                // sign * (p_tail - p_head + t)/r contributes to row i.
                rhs[ri] -= sign * a.t * w;
                if a.tail != ground {
                    lap[(ri, red(a.tail))] += sign * w;
                }
                if a.head != ground {
                    lap[(ri, red(a.head))] -= sign * w;
                }
            }
        }
        let sol = lap.solve_spd(&rhs)?;
        let mut p = vec![0.0; n];
        for i in 0..n {
            if i != ground {
                p[i] = sol[red(i)];
            }
        }
        Ok(p)
    }
}

/// The per-node price relaxation operator: `F_i(p)` is the unique `p_i`
/// balancing node `i` given the other prices (exact coordinate
/// maximisation of the dual); the ground node's component is the
/// identity, pinning the dual's shift invariance.
#[derive(Debug, Clone)]
pub struct PriceRelaxation {
    problem: NetworkFlowProblem,
    ground: usize,
    /// Cached `κ_i = Σ_{a ∋ i} 1/r_a`.
    kappa: Vec<f64>,
}

impl PriceRelaxation {
    /// Builds the operator.
    ///
    /// # Errors
    /// Errors when `ground` is out of range or some node is isolated
    /// (cannot happen for validated connected problems; defensive).
    pub fn new(problem: NetworkFlowProblem, ground: usize) -> crate::Result<Self> {
        if ground >= problem.num_nodes() {
            return Err(OptError::InvalidParameter {
                name: "ground",
                message: format!("ground {ground} out of range 0..{}", problem.num_nodes()),
            });
        }
        let kappa: Vec<f64> = (0..problem.num_nodes())
            .map(|i| {
                problem.incident[i]
                    .iter()
                    .map(|&(k, _)| 1.0 / problem.arcs[k].r)
                    .sum()
            })
            .collect();
        if let Some((i, _)) = kappa.iter().enumerate().find(|(_, &k)| k == 0.0) {
            return Err(OptError::InvalidProblem {
                message: format!("node {i} is isolated"),
            });
        }
        Ok(Self {
            problem,
            ground,
            kappa,
        })
    }

    /// The underlying problem.
    pub fn problem(&self) -> &NetworkFlowProblem {
        &self.problem
    }

    /// The grounded node.
    pub fn ground(&self) -> usize {
        self.ground
    }

    /// Max-norm contraction factor of the relaxation over the non-ground
    /// components (the ground's price is pinned, so its coordinate never
    /// moves): row `i`'s factor is
    /// `Σ_{a ∋ i, other endpoint ≠ ground} w_a / κ_i` with `w = 1/r` —
    /// `< 1` exactly when every node couples to the ground through some
    /// positive-weight path fraction, and `≤ 1/2` by construction for
    /// [`NetworkFlowProblem::wheel`] grounded at the hub. A factor `< 1`
    /// certifies totally asynchronous convergence (Chazan–Miranker);
    /// general instances may report `1.0` (merely nonexpansive rows),
    /// which still converges but without a uniform geometric certificate.
    pub fn contraction_factor(&self) -> f64 {
        let mut alpha = 0.0_f64;
        for i in 0..self.problem.num_nodes() {
            if i == self.ground {
                continue;
            }
            let coupled: f64 = self.problem.incident[i]
                .iter()
                .filter(|&&(k, sign)| {
                    let a = &self.problem.arcs[k];
                    let other = if sign > 0.0 { a.head } else { a.tail };
                    other != self.ground
                })
                .map(|&(k, _)| 1.0 / self.problem.arcs[k].r)
                .sum();
            alpha = alpha.max(coupled / self.kappa[i]);
        }
        alpha
    }
}

impl Operator for PriceRelaxation {
    fn dim(&self) -> usize {
        self.problem.num_nodes()
    }

    #[inline]
    fn component(&self, i: usize, p: &[f64]) -> f64 {
        if i == self.ground {
            return p[i];
        }
        // Solve div_i(f(p)) = s_i for p_i:
        //   p_i κ_i − Σ_{a: tail=i} (p_head − t_a)/r_a
        //           − Σ_{a: head=i} (p_tail + t_a)/r_a = s_i.
        let mut acc = self.problem.supplies[i];
        for &(k, sign) in &self.problem.incident[i] {
            let a = &self.problem.arcs[k];
            let w = 1.0 / a.r;
            if sign > 0.0 {
                // i is the tail; the other endpoint is the head.
                acc += (p[a.head] - a.t) * w;
            } else {
                // i is the head.
                acc += (p[a.tail] + a.t) * w;
            }
        }
        acc / self.kappa[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_problem() -> NetworkFlowProblem {
        // One arc 0→1 with r=2, t=0; supply (1, −1): must push f = 1.
        NetworkFlowProblem::new(
            2,
            vec![Arc {
                tail: 0,
                head: 1,
                r: 2.0,
                t: 0.0,
            }],
            vec![1.0, -1.0],
        )
        .unwrap()
    }

    #[test]
    fn two_node_exact_prices() {
        let p = two_node_problem();
        let prices = p.exact_prices(0).unwrap();
        // f = (p0 − p1)/2 = 1 → p1 = −2 with p0 = 0.
        assert!((prices[0] - 0.0).abs() < 1e-12);
        assert!((prices[1] + 2.0).abs() < 1e-12);
        assert!(p.balance_residual(&prices) < 1e-12);
        let f = p.flows(&prices);
        assert!((f[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relaxation_fixed_point_is_exact_price() {
        let prob = NetworkFlowProblem::random(12, 15, 3).unwrap();
        let pstar = prob.exact_prices(0).unwrap();
        let op = PriceRelaxation::new(prob, 0).unwrap();
        for i in 0..12 {
            assert!(
                (op.component(i, &pstar) - pstar[i]).abs() < 1e-9,
                "node {i}"
            );
        }
    }

    #[test]
    fn synchronous_relaxation_converges() {
        let prob = NetworkFlowProblem::random(16, 20, 7).unwrap();
        let op = PriceRelaxation::new(prob.clone(), 0).unwrap();
        let mut p = vec![0.0; 16];
        let mut next = vec![0.0; 16];
        for _ in 0..20_000 {
            op.apply(&p, &mut next);
            std::mem::swap(&mut p, &mut next);
        }
        assert!(
            prob.balance_residual(&p) < 1e-8,
            "residual {}",
            prob.balance_residual(&p)
        );
    }

    #[test]
    fn optimal_flow_minimises_cost_among_feasible_perturbations() {
        let prob = NetworkFlowProblem::random(8, 10, 9).unwrap();
        let pstar = prob.exact_prices(0).unwrap();
        let fstar = prob.flows(&pstar);
        let cost = prob.primal_cost(&fstar);
        // Perturb along any cycle (add ε on arc k, subtract via the
        // divergence-free correction is complex; instead check first-order
        // optimality: reduced costs vanish) — for quadratic costs,
        // c'(f) = p_tail − p_head exactly by construction, so verify the
        // cost against a feasible competitor obtained by re-solving from a
        // different ground.
        let p2 = prob.exact_prices(3).unwrap();
        let f2 = prob.flows(&p2);
        assert!((prob.primal_cost(&f2) - cost).abs() < 1e-8);
        for (a, b) in fstar.iter().zip(&f2) {
            assert!((a - b).abs() < 1e-8, "flows differ between groundings");
        }
    }

    #[test]
    fn divergence_of_flows_equals_supplies_at_optimum() {
        let prob = NetworkFlowProblem::random(10, 12, 11).unwrap();
        let pstar = prob.exact_prices(0).unwrap();
        let div = prob.divergence(&prob.flows(&pstar));
        for (d, s) in div.iter().zip(prob.supplies()) {
            assert!((d - s).abs() < 1e-9);
        }
    }

    #[test]
    fn validation_rejects_bad_instances() {
        // Unbalanced supplies.
        assert!(NetworkFlowProblem::new(
            2,
            vec![Arc {
                tail: 0,
                head: 1,
                r: 1.0,
                t: 0.0
            }],
            vec![1.0, 0.0],
        )
        .is_err());
        // Self-loop.
        assert!(NetworkFlowProblem::new(
            2,
            vec![Arc {
                tail: 0,
                head: 0,
                r: 1.0,
                t: 0.0
            }],
            vec![0.0, 0.0],
        )
        .is_err());
        // Nonpositive curvature.
        assert!(NetworkFlowProblem::new(
            2,
            vec![Arc {
                tail: 0,
                head: 1,
                r: 0.0,
                t: 0.0
            }],
            vec![0.0, 0.0],
        )
        .is_err());
        // Disconnected.
        assert!(NetworkFlowProblem::new(
            3,
            vec![Arc {
                tail: 0,
                head: 1,
                r: 1.0,
                t: 0.0
            }],
            vec![0.0, 0.0, 0.0],
        )
        .is_err());
        // Supply length.
        assert!(NetworkFlowProblem::new(
            2,
            vec![Arc {
                tail: 0,
                head: 1,
                r: 1.0,
                t: 0.0
            }],
            vec![0.0],
        )
        .is_err());
    }

    #[test]
    fn ground_component_is_identity() {
        let prob = two_node_problem();
        let op = PriceRelaxation::new(prob, 0).unwrap();
        assert_eq!(op.component(0, &[5.0, 1.0]), 5.0);
    }

    #[test]
    fn wheel_is_certified_contractive_and_solvable() {
        let prob = NetworkFlowProblem::wheel(12, 5).unwrap();
        assert_eq!(prob.num_nodes(), 13);
        assert!(prob.supplies().iter().sum::<f64>().abs() < 1e-9);
        let op = PriceRelaxation::new(prob.clone(), 0).unwrap();
        let alpha = op.contraction_factor();
        assert!(
            alpha <= 0.5 + 1e-12,
            "wheel certificate violated: alpha = {alpha}"
        );
        // The certificate is real: iterates contract at least that fast
        // towards the exact prices.
        let pstar = prob.exact_prices(0).unwrap();
        let mut p = vec![0.0; 13];
        let mut next = vec![0.0; 13];
        let mut prev_err = asynciter_numerics::vecops::max_abs_diff(&p, &pstar);
        for _ in 0..50 {
            op.apply(&p, &mut next);
            std::mem::swap(&mut p, &mut next);
            let err = asynciter_numerics::vecops::max_abs_diff(&p, &pstar);
            assert!(
                err <= alpha * prev_err + 1e-12,
                "{err} > {alpha} * {prev_err}"
            );
            prev_err = err;
        }
        assert!(prob.balance_residual(&p) < 1e-9);
    }

    #[test]
    fn wheel_rejects_degenerate_rings() {
        assert!(NetworkFlowProblem::wheel(2, 0).is_err());
    }

    #[test]
    fn general_instances_report_nonexpansive_rows_honestly() {
        // A path graph grounded at one end: the far node's row couples
        // only to non-ground neighbours, so the reported factor is 1.
        let prob = NetworkFlowProblem::new(
            3,
            vec![
                Arc {
                    tail: 0,
                    head: 1,
                    r: 1.0,
                    t: 0.0,
                },
                Arc {
                    tail: 1,
                    head: 2,
                    r: 1.0,
                    t: 0.0,
                },
            ],
            vec![1.0, 0.0, -1.0],
        )
        .unwrap();
        let op = PriceRelaxation::new(prob, 0).unwrap();
        assert_eq!(op.contraction_factor(), 1.0);
    }

    #[test]
    fn random_supplies_balance() {
        for seed in 0..5 {
            let prob = NetworkFlowProblem::random(9, 6, seed).unwrap();
            assert!(prob.supplies().iter().sum::<f64>().abs() < 1e-9);
        }
    }
}
