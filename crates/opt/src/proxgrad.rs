//! Approximate gradient-type operators (Definition 4 of the paper) and
//! the classical forward–backward operator.
//!
//! For the composite problem `min_x f(x) + g(x)` (Eq. (4)) with step
//! `γ ∈ (0, 2/(μ+L)]`, the paper's Definition 4 iterates the *prox-then-
//! gradient* operator
//!
//! ```text
//! G_i(x) = [prox_{γg}(x)]_i − γ ∇_i f( prox_{γg}(x) ) .
//! ```
//!
//! Its fixed point `x*` satisfies `p* = prox_{γg}(x*)`,
//! `x* = p* − γ∇f(p*)`, and a one-line subgradient computation shows `p*`
//! solves (4): the iteration converges to `x*` and the problem solution
//! is recovered by one final prox. When both `f` and `g` are separable
//! (the paper's assumption), `G` is a componentwise contraction with
//! max-norm factor `max(|1−γμ|, |1−γL|) ≤ 1 − γμ = 1 − ρ` — the constant
//! of Theorem 1. When `f` couples components through a sparse
//! diagonally-dominant quadratic, [`SparseProxGrad`] still contracts in
//! the max norm with a Gershgorin-certified factor.
//!
//! [`ForwardBackward`] is the textbook *gradient-then-prox* operator
//! `T(x) = prox_{γg}(x − γ∇f(x))`, whose fixed point is the solution of
//! (4) itself; it is provided both as a baseline and as the reference
//! solver used to compute exact solutions.

use crate::error::OptError;
use crate::quadratic::SparseQuadratic;
use crate::traits::{Operator, SeparableProx, SeparableSmooth, SmoothObjective};

/// Largest step size admitted by Theorem 1: `γ_max = 2/(μ+L)`.
///
/// # Panics
/// Panics unless `0 < μ ≤ L`.
#[inline]
pub fn gamma_max(mu: f64, l: f64) -> f64 {
    assert!(mu > 0.0 && l >= mu, "gamma_max: need 0 < mu <= l");
    2.0 / (mu + l)
}

/// The contraction modulus `ρ = γμ` of Theorem 1.
#[inline]
pub fn rho(gamma: f64, mu: f64) -> f64 {
    gamma * mu
}

/// Max-norm contraction factor of the scalar gradient step
/// `v ↦ v − γ f'(v)` over curvatures in `[μ, L]`:
/// `α = max(|1 − γμ|, |1 − γL|)`.
#[inline]
pub fn gradient_step_factor(gamma: f64, mu: f64, l: f64) -> f64 {
    (1.0 - gamma * mu).abs().max((1.0 - gamma * l).abs())
}

pub(crate) fn validate_gamma(gamma: f64, mu: f64, l: f64) -> crate::Result<()> {
    if !gamma.is_finite() || gamma <= 0.0 {
        return Err(OptError::InvalidParameter {
            name: "gamma",
            message: format!("step size must be finite and positive, got {gamma}"),
        });
    }
    let gmax = gamma_max(mu, l);
    if gamma > gmax * (1.0 + 1e-12) {
        return Err(OptError::InvalidParameter {
            name: "gamma",
            message: format!(
                "step size {gamma} exceeds Theorem 1 range (0, 2/(mu+L)] = (0, {gmax}]"
            ),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Definition 4, separable f (the paper's exact setting)
// ---------------------------------------------------------------------------

/// Definition-4 operator for separable `f` and separable `g`:
/// `G_i(x) = prox_i(x_i) − γ f_i'(prox_i(x_i))`, an `O(1)`-per-component
/// max-norm contraction with factor `≤ 1 − γμ`.
#[derive(Debug, Clone)]
pub struct SeparableProxGrad<F, P> {
    f: F,
    g: P,
    gamma: f64,
}

impl<F: SeparableSmooth, P: SeparableProx> SeparableProxGrad<F, P> {
    /// Builds the operator, checking `γ ∈ (0, 2/(μ+L)]` and the prox's
    /// dimension hint.
    ///
    /// # Errors
    /// Errors on step-size or dimension violations.
    pub fn new(f: F, g: P, gamma: f64) -> crate::Result<Self> {
        let (mu, l) = f.curvature();
        validate_gamma(gamma, mu, l)?;
        if let Some(d) = g.dim_hint() {
            if d != SeparableSmooth::dim(&f) {
                return Err(OptError::DimensionMismatch {
                    expected: SeparableSmooth::dim(&f),
                    actual: d,
                    context: "SeparableProxGrad::new (prox dim)",
                });
            }
        }
        Ok(Self { f, g, gamma })
    }

    /// Step size `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The certified max-norm contraction factor
    /// `α = max(|1−γμ|, |1−γL|) ≤ 1 − γμ`.
    pub fn contraction_factor(&self) -> f64 {
        let (mu, l) = self.f.curvature();
        gradient_step_factor(self.gamma, mu, l)
    }

    /// Theorem 1's `ρ = γμ`.
    pub fn rho(&self) -> f64 {
        rho(self.gamma, self.f.curvature().0)
    }

    /// The smooth part.
    pub fn f(&self) -> &F {
        &self.f
    }

    /// The regulariser.
    pub fn g(&self) -> &P {
        &self.g
    }

    /// Computes the fixed point `x*` of `G` and the problem solution
    /// `p* = prox(x*)` by iterating each (independent) scalar component
    /// to machine precision.
    ///
    /// # Errors
    /// [`OptError::DidNotConverge`] if some component fails to settle
    /// (cannot happen for admissible `γ`; defensive).
    pub fn solve_exact(&self) -> crate::Result<(Vec<f64>, Vec<f64>)> {
        let n = SeparableSmooth::dim(&self.f);
        let mut xstar = vec![0.0; n];
        let mut pstar = vec![0.0; n];
        for i in 0..n {
            let mut x = 0.0_f64;
            let mut converged = false;
            for _ in 0..100_000 {
                let p = self.g.prox_component(i, x, self.gamma);
                let next = p - self.gamma * self.f.grad_component(i, p);
                // One-ULP-aware tolerance: below ~2.2e-16·|x| the iterate
                // can oscillate between adjacent floats forever.
                if (next - x).abs() <= 1e-15 * (1.0 + x.abs()) {
                    x = next;
                    converged = true;
                    break;
                }
                x = next;
            }
            if !converged {
                return Err(OptError::DidNotConverge {
                    iterations: 100_000,
                    residual: f64::NAN,
                });
            }
            xstar[i] = x;
            pstar[i] = self.g.prox_component(i, x, self.gamma);
        }
        Ok((xstar, pstar))
    }
}

impl<F: SeparableSmooth, P: SeparableProx> Operator for SeparableProxGrad<F, P> {
    fn dim(&self) -> usize {
        SeparableSmooth::dim(&self.f)
    }

    #[inline]
    fn component(&self, i: usize, x: &[f64]) -> f64 {
        let p = self.g.prox_component(i, x[i], self.gamma);
        p - self.gamma * SeparableSmooth::grad_component(&self.f, i, p)
    }
}

// ---------------------------------------------------------------------------
// Definition 4, sparse coupled quadratic f
// ---------------------------------------------------------------------------

/// Definition-4 operator with `f(x) = ½xᵀQx − bᵀx` (sparse, strictly
/// diagonally dominant) and separable `g`:
///
/// ```text
/// G_i(x) = p_i − γ ( Σ_c q_ic · p_c − b_i ),    p_c = prox_c(x_c),
/// ```
///
/// evaluated over row `i`'s sparsity pattern only — no scratch vector,
/// `O(nnz(row i))` per component, so asynchronous block updates stay
/// allocation-free.
#[derive(Debug, Clone)]
pub struct SparseProxGrad<P> {
    f: SparseQuadratic,
    g: P,
    gamma: f64,
}

impl<P: SeparableProx> SparseProxGrad<P> {
    /// Builds the operator, checking the Theorem-1 step range against the
    /// Gershgorin curvature bounds of `Q` and that `Q`'s rows carry
    /// strictly increasing column indices. The latter is load-bearing:
    /// [`Operator::component`] folds the prox over row `i`'s sparsity
    /// pattern and identifies the diagonal by `c == i`, so a duplicate or
    /// unsorted column (possible for external CSR data built with
    /// `CsrMatrix::from_raw_parts`) would silently compute wrong
    /// gradients — and Gershgorin certificates read through `diagonal()`
    /// would be wrong too.
    ///
    /// # Errors
    /// Errors on step-size, dimension, or sparsity-structure violations.
    pub fn new(f: SparseQuadratic, g: P, gamma: f64) -> crate::Result<Self> {
        if !f.q().rows_sorted_strictly() {
            return Err(OptError::InvalidProblem {
                message: "Q has unsorted or duplicate column indices in some row; \
                          rebuild it via CsrMatrix::from_triplets"
                    .into(),
            });
        }
        validate_gamma(gamma, f.strong_convexity(), f.lipschitz())?;
        if let Some(d) = g.dim_hint() {
            if d != f.dim() {
                return Err(OptError::DimensionMismatch {
                    expected: f.dim(),
                    actual: d,
                    context: "SparseProxGrad::new (prox dim)",
                });
            }
        }
        Ok(Self { f, g, gamma })
    }

    /// Step size `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The smooth part.
    pub fn f(&self) -> &SparseQuadratic {
        &self.f
    }

    /// The regulariser.
    pub fn g(&self) -> &P {
        &self.g
    }

    /// Certified max-norm contraction factor of `G = (I − γ∇f) ∘ prox`:
    /// since the prox is componentwise nonexpansive,
    /// `‖G(x) − G(y)‖_∞ ≤ ‖I − γQ‖_∞ · ‖x − y‖_∞`.
    pub fn contraction_factor(&self) -> f64 {
        self.f.gradient_step_inf_contraction(self.gamma)
    }

    /// Theorem 1's `ρ = γμ` with `μ` the Gershgorin strong-convexity
    /// bound.
    pub fn rho(&self) -> f64 {
        rho(self.gamma, self.f.strong_convexity())
    }

    /// Computes the fixed point `x*` of `G` (and the solution
    /// `p* = prox(x*)` of problem (4)) by running the synchronous
    /// iteration to machine precision — valid because `G` is a certified
    /// max-norm contraction.
    ///
    /// # Errors
    /// [`OptError::DidNotConverge`] when the residual stalls above
    /// `1e-14` (ill-conditioned `γ` near the boundary).
    pub fn solve_exact(&self) -> crate::Result<(Vec<f64>, Vec<f64>)> {
        let n = self.f.dim();
        let mut x = vec![0.0; n];
        let mut next = vec![0.0; n];
        let mut res = f64::INFINITY;
        for _ in 0..2_000_000 {
            self.apply(&x, &mut next);
            res = asynciter_numerics::vecops::max_abs_diff(&x, &next);
            std::mem::swap(&mut x, &mut next);
            if res <= 1e-15 {
                break;
            }
        }
        if res > 1e-13 {
            return Err(OptError::DidNotConverge {
                iterations: 2_000_000,
                residual: res,
            });
        }
        let p: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| self.g.prox_component(i, v, self.gamma))
            .collect();
        Ok((x, p))
    }
}

impl<P: SeparableProx> Operator for SparseProxGrad<P> {
    fn dim(&self) -> usize {
        self.f.dim()
    }

    #[inline]
    fn component(&self, i: usize, x: &[f64]) -> f64 {
        let (idx, vals) = self.f.q().row(i);
        let mut qp = 0.0;
        let mut pi = 0.0;
        for (&c, &qic) in idx.iter().zip(vals) {
            let pc = self.g.prox_component(c, x[c], self.gamma);
            qp += qic * pc;
            if c == i {
                pi = pc;
            }
        }
        // Row might lack an explicit diagonal (never for validated
        // diagonally-dominant Q, but stay correct regardless).
        if self.f.q().get(i, i) == 0.0 {
            pi = self.g.prox_component(i, x[i], self.gamma);
        }
        pi - self.gamma * (qp - self.f.b()[i])
    }
}

// ---------------------------------------------------------------------------
// Forward–backward (gradient-then-prox) baseline
// ---------------------------------------------------------------------------

/// The classical forward–backward operator
/// `T_i(x) = prox_i( x_i − γ ∇_i f(x) )`, whose fixed point is the
/// solution of problem (4) directly.
#[derive(Debug, Clone)]
pub struct ForwardBackward<F, P> {
    f: F,
    g: P,
    gamma: f64,
}

impl<F: SmoothObjective, P: SeparableProx> ForwardBackward<F, P> {
    /// Builds the operator with the same step-size validation as the
    /// Definition-4 operators.
    ///
    /// # Errors
    /// Errors on step-size or dimension violations.
    pub fn new(f: F, g: P, gamma: f64) -> crate::Result<Self> {
        validate_gamma(
            gamma,
            f.strong_convexity().max(f64::MIN_POSITIVE),
            f.lipschitz(),
        )?;
        if let Some(d) = g.dim_hint() {
            if d != f.dim() {
                return Err(OptError::DimensionMismatch {
                    expected: f.dim(),
                    actual: d,
                    context: "ForwardBackward::new (prox dim)",
                });
            }
        }
        Ok(Self { f, g, gamma })
    }

    /// Step size `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The smooth part.
    pub fn f(&self) -> &F {
        &self.f
    }

    /// The regulariser.
    pub fn g(&self) -> &P {
        &self.g
    }

    /// Reference solve: iterate synchronously until the residual drops
    /// below `tol` or `max_iter` is exhausted; returns the solution of
    /// problem (4).
    ///
    /// # Errors
    /// [`OptError::DidNotConverge`] on stall.
    pub fn solve(&self, tol: f64, max_iter: usize) -> crate::Result<Vec<f64>> {
        let n = self.f.dim();
        let mut x = vec![0.0; n];
        let mut next = vec![0.0; n];
        for _ in 0..max_iter {
            self.apply(&x, &mut next);
            let res = asynciter_numerics::vecops::max_abs_diff(&x, &next);
            std::mem::swap(&mut x, &mut next);
            if res <= tol {
                return Ok(x);
            }
        }
        let mut fin = vec![0.0; n];
        self.apply(&x, &mut fin);
        Err(OptError::DidNotConverge {
            iterations: max_iter,
            residual: asynciter_numerics::vecops::max_abs_diff(&x, &fin),
        })
    }
}

impl<F: SmoothObjective, P: SeparableProx> Operator for ForwardBackward<F, P> {
    fn dim(&self) -> usize {
        self.f.dim()
    }

    #[inline]
    fn component(&self, i: usize, x: &[f64]) -> f64 {
        self.g.prox_component(
            i,
            x[i] - self.gamma * self.f.grad_component(i, x),
            self.gamma,
        )
    }
}

/// Plain gradient-descent operator `x ↦ x − γ∇f(x)` (the `g ≡ 0` case).
#[derive(Debug, Clone)]
pub struct GradientOperator<F> {
    f: F,
    gamma: f64,
}

impl<F: SmoothObjective> GradientOperator<F> {
    /// Builds the operator; `γ` must be positive and finite (no upper
    /// check — used for ablations beyond the certified range).
    ///
    /// # Errors
    /// Errors on nonpositive `γ`.
    pub fn new(f: F, gamma: f64) -> crate::Result<Self> {
        if !gamma.is_finite() || gamma <= 0.0 {
            return Err(OptError::InvalidParameter {
                name: "gamma",
                message: format!("step size must be finite and positive, got {gamma}"),
            });
        }
        Ok(Self { f, gamma })
    }

    /// Step size `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The objective.
    pub fn f(&self) -> &F {
        &self.f
    }
}

impl<F: SmoothObjective> Operator for GradientOperator<F> {
    fn dim(&self) -> usize {
        self.f.dim()
    }

    #[inline]
    fn component(&self, i: usize, x: &[f64]) -> f64 {
        x[i] - self.gamma * self.f.grad_component(i, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prox::{BoxConstraint, ZeroReg, L1};
    use crate::quadratic::{SeparableQuadratic, SparseQuadratic};
    use asynciter_numerics::vecops;

    fn sep_problem() -> SeparableProxGrad<SeparableQuadratic, L1> {
        let f = SeparableQuadratic::new(vec![1.0, 2.0, 4.0], vec![1.0, -2.0, 0.1]).unwrap();
        let g = L1::new(0.5);
        let gamma = gamma_max(1.0, 4.0); // 0.4
        SeparableProxGrad::new(f, g, gamma).unwrap()
    }

    #[test]
    fn gamma_helpers() {
        assert_eq!(gamma_max(1.0, 3.0), 0.5);
        assert_eq!(rho(0.5, 1.0), 0.5);
        assert!((gradient_step_factor(0.4, 1.0, 4.0) - 0.6).abs() < 1e-15);
    }

    #[test]
    fn step_size_validation() {
        let f = SeparableQuadratic::new(vec![1.0, 4.0], vec![0.0, 0.0]).unwrap();
        assert!(SeparableProxGrad::new(f.clone(), ZeroReg, 0.5).is_err()); // > 2/5
        assert!(SeparableProxGrad::new(f.clone(), ZeroReg, -0.1).is_err());
        assert!(SeparableProxGrad::new(f, ZeroReg, 0.4).is_ok());
    }

    #[test]
    fn dim_hint_checked() {
        let f = SeparableQuadratic::new(vec![1.0, 1.0], vec![0.0, 0.0]).unwrap();
        let g = BoxConstraint::per_component(vec![0.0; 3], vec![1.0; 3]);
        assert!(SeparableProxGrad::new(f, g, 0.5).is_err());
    }

    #[test]
    fn separable_fixed_point_solves_problem() {
        let op = sep_problem();
        let (xstar, pstar) = op.solve_exact().unwrap();
        // x* is a fixed point of G.
        for i in 0..3 {
            assert!(
                (op.component(i, &xstar) - xstar[i]).abs() < 1e-12,
                "component {i}"
            );
        }
        // p* solves min f + g: optimality 0 ∈ ∇f(p) + ∂g(p) componentwise.
        let f = op.f();
        let lam = 0.5;
        for (i, &pi) in pstar.iter().enumerate().take(3) {
            let gpi = SeparableSmooth::grad_component(f, i, pi);
            if pstar[i] > 1e-12 {
                assert!((gpi + lam).abs() < 1e-9, "i={i}: {gpi}");
            } else if pstar[i] < -1e-12 {
                assert!((gpi - lam).abs() < 1e-9, "i={i}: {gpi}");
            } else {
                assert!(gpi.abs() <= lam + 1e-9, "i={i}: {gpi}");
            }
        }
        // And x* = p* − γ∇f(p*).
        for i in 0..3 {
            let expect = pstar[i] - op.gamma() * SeparableSmooth::grad_component(f, i, pstar[i]);
            assert!((xstar[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn separable_contraction_observed() {
        let op = sep_problem();
        let alpha = op.contraction_factor();
        assert!(alpha < 1.0);
        let mut rng = asynciter_numerics::rng::rng(1);
        for _ in 0..20 {
            let x = asynciter_numerics::rng::normal_vec(&mut rng, 3);
            let y = asynciter_numerics::rng::normal_vec(&mut rng, 3);
            let mut tx = vec![0.0; 3];
            let mut ty = vec![0.0; 3];
            op.apply(&x, &mut tx);
            op.apply(&y, &mut ty);
            assert!(vecops::max_abs_diff(&tx, &ty) <= alpha * vecops::max_abs_diff(&x, &y) + 1e-12);
        }
    }

    #[test]
    fn rho_bounds_contraction() {
        let op = sep_problem();
        // alpha <= 1 - rho for gamma <= 2/(mu+L).
        assert!(op.contraction_factor() <= 1.0 - op.rho() + 1e-15);
    }

    #[test]
    fn sparse_proxgrad_rejects_duplicate_or_unsorted_columns() {
        // External CSR data with a duplicated diagonal entry. The
        // duplicate hides from `is_symmetric`/Gershgorin (binary search
        // finds one copy: diagonal reads 2.0, true row sum 4.0), so
        // SparseQuadratic construction succeeds with silently wrong
        // curvature — the operator must refuse at its own front door.
        let q = asynciter_numerics::sparse::CsrMatrix::from_raw_parts(
            2,
            2,
            vec![0, 3, 5],
            vec![0, 0, 1, 0, 1],
            vec![2.0, 2.0, -1.0, -1.0, 4.0],
        )
        .unwrap();
        assert!(!q.rows_sorted_strictly());
        let f = SparseQuadratic::new(q, vec![0.0, 0.0]).expect(
            "duplicate columns slip past symmetry/Gershgorin checks — \
             exactly why SparseProxGrad must validate",
        );
        let gamma = 0.5 * gamma_max(f.strong_convexity(), f.lipschitz());
        let err = SparseProxGrad::new(f, ZeroReg, gamma).unwrap_err();
        assert!(
            err.to_string().contains("unsorted or duplicate"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn sparse_proxgrad_matches_dense_composition() {
        let f = SparseQuadratic::random_diag_dominant(10, 3, 0.4, 1.5, 5).unwrap();
        let gamma = gamma_max(f.strong_convexity(), f.lipschitz());
        let g = L1::new(0.3);
        let op = SparseProxGrad::new(f, g, gamma).unwrap();
        let mut rng = asynciter_numerics::rng::rng(2);
        let x = asynciter_numerics::rng::normal_vec(&mut rng, 10);
        // Reference: p = prox(x); out = p − γ(Qp − b).
        let p: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| op.g().prox_component(i, v, gamma))
            .collect();
        let mut qp = vec![0.0; 10];
        op.f().q().matvec(&p, &mut qp);
        for i in 0..10 {
            let expect = p[i] - gamma * (qp[i] - op.f().b()[i]);
            let got = op.component(i, &x);
            assert!((got - expect).abs() < 1e-12, "i={i}: {got} vs {expect}");
        }
    }

    #[test]
    fn sparse_fixed_point_is_solution() {
        let f = SparseQuadratic::random_diag_dominant(12, 3, 0.4, 1.5, 6).unwrap();
        let gamma = 0.9 * gamma_max(f.strong_convexity(), f.lipschitz());
        let lam = 0.2;
        let op = SparseProxGrad::new(f, L1::new(lam), gamma).unwrap();
        let (xstar, pstar) = op.solve_exact().unwrap();
        assert!(op.residual_inf(&xstar) < 1e-10);
        // Optimality of p*: 0 ∈ Qp − b + λ∂‖·‖₁.
        let mut grad = vec![0.0; 12];
        op.f().grad(&pstar, &mut grad);
        for i in 0..12 {
            if pstar[i] > 1e-10 {
                assert!((grad[i] + lam).abs() < 1e-8, "i={i}");
            } else if pstar[i] < -1e-10 {
                assert!((grad[i] - lam).abs() < 1e-8, "i={i}");
            } else {
                assert!(grad[i].abs() <= lam + 1e-8, "i={i}");
            }
        }
    }

    #[test]
    fn sparse_contraction_certificate_holds() {
        let f = SparseQuadratic::random_diag_dominant(14, 4, 0.5, 2.0, 8).unwrap();
        let gamma = gamma_max(f.strong_convexity(), f.lipschitz());
        let op = SparseProxGrad::new(f, L1::new(0.1), gamma).unwrap();
        let alpha = op.contraction_factor();
        assert!(alpha < 1.0);
        let mut rng = asynciter_numerics::rng::rng(3);
        for _ in 0..10 {
            let x = asynciter_numerics::rng::normal_vec(&mut rng, 14);
            let y = asynciter_numerics::rng::normal_vec(&mut rng, 14);
            let mut tx = vec![0.0; 14];
            let mut ty = vec![0.0; 14];
            op.apply(&x, &mut tx);
            op.apply(&y, &mut ty);
            assert!(vecops::max_abs_diff(&tx, &ty) <= alpha * vecops::max_abs_diff(&x, &y) + 1e-12);
        }
    }

    #[test]
    fn forward_backward_agrees_with_defn4_solution() {
        // The FB fixed point is p*; the Definition-4 fixed point is
        // x* = p* − γ∇f(p*). Both recover the same problem solution.
        let f = SparseQuadratic::random_diag_dominant(9, 2, 0.3, 1.0, 12).unwrap();
        let gamma = 0.8 * gamma_max(f.strong_convexity(), f.lipschitz());
        let lam = 0.15;
        let fb = ForwardBackward::new(f.clone(), L1::new(lam), gamma).unwrap();
        let p_fb = fb.solve(1e-14, 1_000_000).unwrap();
        let d4 = SparseProxGrad::new(f, L1::new(lam), gamma).unwrap();
        let (_, p_d4) = d4.solve_exact().unwrap();
        assert!(vecops::max_abs_diff(&p_fb, &p_d4) < 1e-9);
    }

    #[test]
    fn gradient_operator_is_fb_with_zero_reg() {
        let f = SparseQuadratic::random_diag_dominant(8, 2, 0.3, 1.0, 13).unwrap();
        let gamma = 0.5 * gamma_max(f.strong_convexity(), f.lipschitz());
        let gop = GradientOperator::new(f.clone(), gamma).unwrap();
        let fb = ForwardBackward::new(f, ZeroReg, gamma).unwrap();
        let mut rng = asynciter_numerics::rng::rng(4);
        let x = asynciter_numerics::rng::normal_vec(&mut rng, 8);
        for i in 0..8 {
            assert!((gop.component(i, &x) - fb.component(i, &x)).abs() < 1e-15);
        }
    }

    #[test]
    fn gradient_operator_rejects_bad_gamma() {
        let f = SeparableQuadratic::new(vec![1.0, 1.0], vec![0.0, 0.0]).unwrap();
        assert!(GradientOperator::new(f.clone(), 0.0).is_err());
        assert!(GradientOperator::new(f, f64::NAN).is_err());
    }
}
