//! # asynciter-opt
//!
//! Operators and optimisation problems for asynchronous iterations:
//! everything that plays the role of `F` (Definition 1) or of the
//! approximate gradient-type operator `G` (Definition 4) in El-Baz
//! (IPPS 2022), plus the application substrates the paper surveys.
//!
//! - [`traits`] — the [`traits::Operator`] abstraction consumed
//!   by every engine in the workspace, smooth objectives and separable
//!   proximal maps.
//! - [`prox`] — proximal operators: `ℓ₁` soft-thresholding, box /
//!   nonnegativity / lower-obstacle indicators, elastic net, ridge.
//! - [`quadratic`] — separable and sparse coupled quadratics (the
//!   `f` of problem (4) in its exactly-analysable forms).
//! - [`proxgrad`] — the paper's Definition-4 operator
//!   `G_i(x) = [prox_{γg}(x)]_i − γ ∇_i f(prox_{γg}(x))` and the classical
//!   forward–backward operator, with contraction-factor accounting.
//! - [`linear`] — Jacobi/relaxation operators for linear fixed points
//!   (chaotic relaxation's original home) and diagonally-dominant
//!   generators.
//! - [`lasso`] — ℓ₁-regularised least squares with reference solvers.
//! - [`logistic`] — ℓ₂-regularised logistic regression (the machine-
//!   learning loss of §V).
//! - [`network_flow`] — convex quadratic-cost network flow and the
//!   Bertsekas–El Baz dual price relaxation (\[6\], \[8\]).
//! - [`obstacle`] — the 2-D obstacle problem and projected relaxation
//!   (\[26\]).
//! - [`bellman_ford`] — distributed shortest paths (the Arpanet routing
//!   example, \[11\]/\[17\]).
//! - [`newton`] — diagonal modified-Newton operators (\[25\]).
//! - [`relaxed`] — successive-relaxation wrapper `F_ω` for any operator.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod bellman_ford;
pub mod error;
pub mod lasso;
pub mod linear;
pub mod logistic;
pub mod network_flow;
pub mod newton;
pub mod obstacle;
pub mod prox;
pub mod proxgrad;
pub mod quadratic;
pub mod relaxed;
pub mod traits;

pub use error::OptError;
pub use traits::{Operator, SeparableProx, SeparableSmooth, SmoothObjective};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, OptError>;
