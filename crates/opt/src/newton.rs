//! Diagonal modified-Newton operators (\[25\]).
//!
//! The asynchronous *modified Newton* methods of El Baz–Elkihel scale
//! each coordinate's gradient step by a frozen diagonal Hessian estimate:
//!
//! ```text
//! F_i(x) = x_i − θ · ∇_i f(x) / ĥ_i ,
//! ```
//!
//! where `ĥ_i ≈ ∂²f/∂x_i²` is computed once at a reference point
//! (the "modified" part: the preconditioner is not refreshed, which keeps
//! asynchronous updates cheap and the operator's contraction analysis
//! tractable) and `θ ∈ (0, 1]` is a damping factor. For well-scaled
//! problems the per-coordinate scaling removes curvature anisotropy and
//! beats the fixed-step gradient operator — experiment E9 quantifies by
//! how much.

use crate::error::OptError;
use crate::traits::{Operator, SmoothObjective};

/// Diagonal modified-Newton fixed-point operator.
#[derive(Debug, Clone)]
pub struct DiagNewton<F> {
    f: F,
    inv_h: Vec<f64>,
    theta: f64,
}

impl<F: SmoothObjective> DiagNewton<F> {
    /// Builds the operator with the diagonal Hessian estimated by central
    /// differences of `∇_i f` at `x_ref` (exact for quadratics).
    ///
    /// # Errors
    /// Errors when `θ ∉ (0, 1]`, dimensions mismatch, or some estimated
    /// curvature is not strictly positive (the method requires strong
    /// convexity along every coordinate).
    pub fn at_reference(f: F, x_ref: &[f64], theta: f64) -> crate::Result<Self> {
        if !(theta > 0.0 && theta <= 1.0) {
            return Err(OptError::InvalidParameter {
                name: "theta",
                message: format!("damping must be in (0, 1], got {theta}"),
            });
        }
        if x_ref.len() != f.dim() {
            return Err(OptError::DimensionMismatch {
                expected: f.dim(),
                actual: x_ref.len(),
                context: "DiagNewton::at_reference",
            });
        }
        let n = f.dim();
        let mut inv_h = vec![0.0; n];
        let mut xp = x_ref.to_vec();
        let mut xm = x_ref.to_vec();
        for i in 0..n {
            let h = 1e-5 * (1.0 + x_ref[i].abs());
            xp[i] = x_ref[i] + h;
            xm[i] = x_ref[i] - h;
            let hii = (f.grad_component(i, &xp) - f.grad_component(i, &xm)) / (2.0 * h);
            xp[i] = x_ref[i];
            xm[i] = x_ref[i];
            if !hii.is_finite() || hii <= 0.0 {
                return Err(OptError::InvalidProblem {
                    message: format!("estimated curvature h[{i}] = {hii} not positive"),
                });
            }
            inv_h[i] = 1.0 / hii;
        }
        Ok(Self { f, inv_h, theta })
    }

    /// The damping factor `θ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The frozen inverse diagonal Hessian.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_h
    }

    /// The objective.
    pub fn f(&self) -> &F {
        &self.f
    }
}

impl<F: SmoothObjective> Operator for DiagNewton<F> {
    fn dim(&self) -> usize {
        self.f.dim()
    }

    #[inline]
    fn component(&self, i: usize, x: &[f64]) -> f64 {
        x[i] - self.theta * self.f.grad_component(i, x) * self.inv_h[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxgrad::GradientOperator;
    use crate::quadratic::{SeparableQuadratic, SparseQuadratic};
    use asynciter_numerics::vecops;

    #[test]
    fn exact_on_separable_quadratic_in_one_step() {
        // For f = Σ a_i (x_i − c_i)²/2 the diagonal Newton step with θ=1
        // jumps exactly to the minimiser.
        let f = SeparableQuadratic::new(vec![1.0, 10.0, 100.0], vec![1.0, -2.0, 3.0]).unwrap();
        let c = f.minimizer();
        let op = DiagNewton::at_reference(f, &[0.0; 3], 1.0).unwrap();
        let mut out = vec![0.0; 3];
        op.apply(&[5.0, 5.0, 5.0], &mut out);
        assert!(vecops::max_abs_diff(&out, &c) < 1e-6, "{out:?}");
    }

    #[test]
    fn curvature_estimate_is_exact_for_quadratics() {
        let f = SparseQuadratic::random_diag_dominant(8, 2, 0.4, 1.0, 3).unwrap();
        let diag = f.q().diagonal();
        let op = DiagNewton::at_reference(f, &[0.3; 8], 1.0).unwrap();
        for (i, (&inv, &d)) in op.inv_diag().iter().zip(&diag).enumerate() {
            assert!(
                (1.0 / inv - d).abs() < 1e-4,
                "i={i}: {} vs {}",
                1.0 / inv,
                d
            );
        }
    }

    #[test]
    fn newton_beats_gradient_on_anisotropic_quadratic() {
        // Condition number 100: fixed-step gradient crawls, diagonal
        // Newton converges fast.
        let f = SeparableQuadratic::new(vec![1.0, 100.0], vec![2.0, -1.0]).unwrap();
        let target = f.minimizer();
        let newton = DiagNewton::at_reference(f.clone(), &[0.0, 0.0], 0.9).unwrap();
        let gamma = 2.0 / (1.0 + 100.0);
        let grad = GradientOperator::new(f, gamma).unwrap();

        let run = |op: &dyn Operator, iters: usize| {
            let mut x = vec![10.0, 10.0];
            let mut next = vec![0.0; 2];
            for _ in 0..iters {
                op.apply(&x, &mut next);
                std::mem::swap(&mut x, &mut next);
            }
            vecops::max_abs_diff(&x, &target)
        };
        let e_newton = run(&newton, 50);
        let e_grad = run(&grad, 50);
        assert!(
            e_newton < 1e-3 * e_grad,
            "newton {e_newton} vs gradient {e_grad}"
        );
    }

    #[test]
    fn damping_slows_but_still_converges() {
        let f = SeparableQuadratic::new(vec![2.0, 8.0], vec![0.5, 0.5]).unwrap();
        let op = DiagNewton::at_reference(f, &[0.0, 0.0], 0.5).unwrap();
        let mut x = vec![3.0, -3.0];
        let mut next = vec![0.0; 2];
        for _ in 0..100 {
            op.apply(&x, &mut next);
            std::mem::swap(&mut x, &mut next);
        }
        assert!(vecops::max_abs_diff(&x, &[0.5, 0.5]) < 1e-10);
    }

    #[test]
    fn rejects_invalid_configs() {
        let f = SeparableQuadratic::new(vec![1.0, 1.0], vec![0.0, 0.0]).unwrap();
        assert!(DiagNewton::at_reference(f.clone(), &[0.0, 0.0], 0.0).is_err());
        assert!(DiagNewton::at_reference(f.clone(), &[0.0, 0.0], 1.5).is_err());
        assert!(DiagNewton::at_reference(f, &[0.0], 1.0).is_err());
    }

    #[test]
    fn fixed_point_is_stationary_point() {
        let f = SparseQuadratic::random_diag_dominant(10, 3, 0.4, 1.0, 5).unwrap();
        let xstar = f.minimizer_dense().unwrap();
        let op = DiagNewton::at_reference(f, &[0.0; 10], 0.8).unwrap();
        assert!(op.residual_inf(&xstar) < 1e-7);
    }
}
