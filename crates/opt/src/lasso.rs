//! ℓ₁-regularised least squares (lasso) instances.
//!
//! `min_x ½‖Ax − b‖² + λ‖x‖₁` is the canonical machine-learning face of
//! problem (4): `f(x) = ½‖Ax − b‖²` is `L`-smooth with `L = λ_max(AᵀA)`
//! and `μ = λ_min(AᵀA)`-strongly convex, `g = λ‖·‖₁` is separable
//! non-smooth. The totally asynchronous theory additionally wants the
//! Gram matrix `Q = AᵀA` strictly diagonally dominant (near-orthogonal
//! features); [`LassoProblem::random`] generates tall random designs and
//! certifies dominance, boosting the diagonal via a small ridge term when
//! the draw falls short.
//!
//! [`LassoProblem::reference_solution`] provides a coordinate-descent
//! solution to machine precision, used as ground truth by the Theorem-1
//! experiments.

use crate::error::OptError;
use crate::quadratic::SparseQuadratic;
use asynciter_numerics::dense::DenseMatrix;
use asynciter_numerics::sparse::CsrMatrix;

/// A lasso instance in Gram form: `min ½ xᵀQx − qᵀx + λ‖x‖₁ (+ const)`,
/// with `Q = AᵀA + δI` and `q = Aᵀb`.
#[derive(Debug, Clone)]
pub struct LassoProblem {
    /// The quadratic part (Gram matrix, certified diagonally dominant).
    pub quadratic: SparseQuadratic,
    /// ℓ₁ weight `λ`.
    pub lambda: f64,
    /// Ridge boost `δ` that was required to certify dominance (0 when the
    /// raw Gram matrix was already dominant).
    pub ridge_boost: f64,
    /// The design matrix (kept for diagnostics).
    pub design: DenseMatrix,
    /// Targets.
    pub targets: Vec<f64>,
}

impl LassoProblem {
    /// Generates a random instance: `m × n` standard-normal design scaled
    /// by `1/√m`, a `k`-sparse ground-truth signal, targets
    /// `b = A x_true + σ·noise`, and ℓ₁ weight `λ`.
    ///
    /// The Gram matrix of such a design concentrates around `I` for
    /// `m ≫ n`; whatever dominance deficit remains is repaired by adding
    /// the smallest ridge `δI` that leaves a margin of `0.05`, and the
    /// amount is reported in [`LassoProblem::ridge_boost`].
    ///
    /// # Errors
    /// Errors on degenerate sizes or nonpositive `λ`.
    pub fn random(
        n: usize,
        m: usize,
        sparsity: usize,
        lambda: f64,
        noise: f64,
        seed: u64,
    ) -> crate::Result<Self> {
        if n < 2 || m < n {
            return Err(OptError::InvalidParameter {
                name: "n/m",
                message: format!("need 2 <= n <= m, got n={n}, m={m}"),
            });
        }
        if sparsity == 0 || sparsity > n {
            return Err(OptError::InvalidParameter {
                name: "sparsity",
                message: format!("need 1 <= sparsity <= n, got {sparsity}"),
            });
        }
        if lambda.is_nan() || lambda <= 0.0 {
            return Err(OptError::InvalidParameter {
                name: "lambda",
                message: "must be positive".into(),
            });
        }
        let mut rng = asynciter_numerics::rng::rng(seed);
        let scale = 1.0 / (m as f64).sqrt();
        let a = {
            let data = asynciter_numerics::rng::normal_vec(&mut rng, m * n)
                .into_iter()
                .map(|v| v * scale)
                .collect();
            DenseMatrix::from_vec(m, n, data)?
        };
        // k-sparse ground truth with ±1-ish magnitudes.
        let mut x_true = vec![0.0; n];
        for i in asynciter_numerics::rng::sample_indices(&mut rng, n, sparsity) {
            let v = asynciter_numerics::rng::normal(&mut rng);
            x_true[i] = v.signum() * (1.0 + v.abs());
        }
        let mut b = vec![0.0; m];
        a.matvec(&x_true, &mut b);
        for v in &mut b {
            *v += noise * asynciter_numerics::rng::normal(&mut rng);
        }
        Self::from_design(a, b, lambda)
    }

    /// Builds the Gram-form problem from an explicit design and targets,
    /// boosting the diagonal with the smallest ridge `δ` that certifies a
    /// diagonal-dominance margin of `0.05`.
    ///
    /// # Errors
    /// Errors on dimension mismatch or nonpositive `λ`.
    pub fn from_design(a: DenseMatrix, b: Vec<f64>, lambda: f64) -> crate::Result<Self> {
        if a.rows() != b.len() {
            return Err(OptError::DimensionMismatch {
                expected: a.rows(),
                actual: b.len(),
                context: "LassoProblem::from_design",
            });
        }
        if lambda.is_nan() || lambda <= 0.0 {
            return Err(OptError::InvalidParameter {
                name: "lambda",
                message: "must be positive".into(),
            });
        }
        let n = a.cols();
        let gram = a.gram(1.0);
        // Dominance deficit of the raw Gram matrix.
        let mut deficit = 0.0_f64;
        for i in 0..n {
            let row = gram.row(i);
            let off: f64 = row
                .iter()
                .enumerate()
                .filter(|(c, _)| *c != i)
                .map(|(_, v)| v.abs())
                .sum();
            deficit = deficit.max(off - row[i]);
        }
        let ridge_boost = if deficit > -0.05 { deficit + 0.05 } else { 0.0 };
        let mut trip = Vec::with_capacity(n * n);
        for i in 0..n {
            for (c, &v) in gram.row(i).iter().enumerate() {
                let v = if c == i { v + ridge_boost } else { v };
                if v != 0.0 {
                    trip.push((i, c, v));
                }
            }
        }
        let q = CsrMatrix::from_triplets(n, n, &trip)?;
        let mut atb = vec![0.0; n];
        a.matvec_transpose(&b, &mut atb);
        let quadratic = SparseQuadratic::new(q, atb)?;
        Ok(Self {
            quadratic,
            lambda,
            ridge_boost,
            design: a,
            targets: b,
        })
    }

    /// Problem dimension `n`.
    pub fn dim(&self) -> usize {
        self.design.cols()
    }

    /// Full objective `½‖Ax − b‖² + (δ/2)‖x‖² + λ‖x‖₁`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let m = self.design.rows();
        let mut ax = vec![0.0; m];
        self.design.matvec(x, &mut ax);
        let resid: f64 = ax
            .iter()
            .zip(&self.targets)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let ridge: f64 = self.ridge_boost * x.iter().map(|v| v * v).sum::<f64>();
        0.5 * resid + 0.5 * ridge + self.lambda * x.iter().map(|v| v.abs()).sum::<f64>()
    }

    /// Reference solution by cyclic coordinate descent with exact
    /// per-coordinate minimisation (soft thresholding), run until the
    /// sweep changes no coordinate by more than `tol`.
    ///
    /// # Errors
    /// [`OptError::DidNotConverge`] when `max_sweeps` is exhausted.
    pub fn reference_solution(&self, tol: f64, max_sweeps: usize) -> crate::Result<Vec<f64>> {
        let n = self.dim();
        let q = self.quadratic.q();
        let qb = self.quadratic.b();
        let mut x = vec![0.0; n];
        for _ in 0..max_sweeps {
            let mut delta = 0.0_f64;
            for i in 0..n {
                let qii = q.get(i, i);
                let rest = q.row_dot_offdiag(i, &x);
                // min over v: ½ q_ii v² + v·(rest − qb_i) + λ|v|.
                let u = (qb[i] - rest) / qii;
                let t = self.lambda / qii;
                let new = if u > t {
                    u - t
                } else if u < -t {
                    u + t
                } else {
                    0.0
                };
                delta = delta.max((new - x[i]).abs());
                x[i] = new;
            }
            if delta <= tol {
                return Ok(x);
            }
        }
        Err(OptError::DidNotConverge {
            iterations: max_sweeps,
            residual: f64::NAN,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prox::L1;
    use crate::proxgrad::{gamma_max, SparseProxGrad};
    use crate::traits::SmoothObjective;
    use asynciter_numerics::vecops;

    fn instance() -> LassoProblem {
        LassoProblem::random(24, 200, 5, 0.05, 0.01, 42).unwrap()
    }

    #[test]
    fn random_instance_is_diag_dominant() {
        let p = instance();
        assert!(p.quadratic.q().diagonal_dominance_margin() > 0.0);
        assert!(p.quadratic.strong_convexity() > 0.0);
    }

    #[test]
    fn reference_solution_satisfies_kkt() {
        let p = instance();
        let x = p.reference_solution(1e-14, 100_000).unwrap();
        let n = p.dim();
        let mut grad = vec![0.0; n];
        p.quadratic.grad(&x, &mut grad);
        for i in 0..n {
            if x[i] > 1e-10 {
                assert!((grad[i] + p.lambda).abs() < 1e-7, "i={i}: {}", grad[i]);
            } else if x[i] < -1e-10 {
                assert!((grad[i] - p.lambda).abs() < 1e-7, "i={i}: {}", grad[i]);
            } else {
                assert!(grad[i].abs() <= p.lambda + 1e-7, "i={i}: {}", grad[i]);
            }
        }
    }

    #[test]
    fn reference_agrees_with_proxgrad_fixed_point() {
        let p = instance();
        let x_cd = p.reference_solution(1e-14, 100_000).unwrap();
        let gamma = 0.9 * gamma_max(p.quadratic.strong_convexity(), p.quadratic.lipschitz());
        let op = SparseProxGrad::new(p.quadratic.clone(), L1::new(p.lambda), gamma).unwrap();
        let (_, p_star) = op.solve_exact().unwrap();
        assert!(
            vecops::max_abs_diff(&x_cd, &p_star) < 1e-8,
            "CD and prox-grad disagree by {}",
            vecops::max_abs_diff(&x_cd, &p_star)
        );
    }

    #[test]
    fn objective_at_solution_below_random_points() {
        let p = instance();
        let x = p.reference_solution(1e-12, 100_000).unwrap();
        let fx = p.objective(&x);
        let mut rng = asynciter_numerics::rng::rng(7);
        for _ in 0..10 {
            let y = asynciter_numerics::rng::normal_vec(&mut rng, p.dim());
            assert!(p.objective(&y) >= fx - 1e-9);
        }
        // Also beats small perturbations of itself.
        for i in 0..p.dim() {
            let mut y = x.clone();
            y[i] += 1e-3;
            assert!(p.objective(&y) >= fx - 1e-12, "i={i}");
        }
    }

    #[test]
    fn recovers_sparse_support_roughly() {
        // With low noise and strong signal, the lasso solution has most of
        // its mass on the true support.
        let p = LassoProblem::random(16, 400, 3, 0.02, 0.005, 11).unwrap();
        let x = p.reference_solution(1e-12, 100_000).unwrap();
        let mut mags: Vec<(usize, f64)> = x
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (i, v.abs()))
            .collect();
        mags.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        // Top-3 magnitudes should dwarf the rest.
        assert!(mags[2].1 > 5.0 * mags[3].1, "mags = {mags:?}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(LassoProblem::random(4, 3, 2, 0.1, 0.0, 0).is_err()); // m < n
        assert!(LassoProblem::random(4, 8, 0, 0.1, 0.0, 0).is_err());
        assert!(LassoProblem::random(4, 8, 2, 0.0, 0.0, 0).is_err());
        assert!(LassoProblem::random(1, 8, 1, 0.1, 0.0, 0).is_err());
    }
}
