//! Relaxation-parameter wrapper: `F_ω(x) = (1−ω)·x + ω·F(x)`.
//!
//! Classical successive relaxation applied to any fixed-point operator.
//! Under-relaxation (`ω < 1`) trades per-step progress for robustness:
//! for an `α`-contraction in any norm, `F_ω` contracts with factor
//! `(1−ω) + ω·α < 1` for every `ω ∈ (0, 1]`, and — more interestingly
//! for the asynchronous theory — for operators that are only
//! *nonexpansive* or whose max-norm bound slightly exceeds 1,
//! under-relaxation with averaging can restore the strict contraction
//! that totally asynchronous convergence needs. Over-relaxation
//! (`ω > 1`) accelerates synchronous sweeps but shrinks the admissible
//! delay range; the `omega` ablation quantifies both effects.

use crate::error::OptError;
use crate::traits::Operator;

/// `F_ω(x) = (1−ω)x + ωF(x)` for a wrapped operator `F`.
#[derive(Debug, Clone)]
pub struct RelaxedOperator<O> {
    inner: O,
    omega: f64,
}

impl<O: Operator> RelaxedOperator<O> {
    /// Wraps `inner` with relaxation parameter `ω ∈ (0, 2)`.
    ///
    /// # Errors
    /// Errors when `ω` is outside `(0, 2)` or not finite.
    pub fn new(inner: O, omega: f64) -> crate::Result<Self> {
        if !omega.is_finite() || omega <= 0.0 || omega >= 2.0 {
            return Err(OptError::InvalidParameter {
                name: "omega",
                message: format!("relaxation parameter must be in (0, 2), got {omega}"),
            });
        }
        Ok(Self { inner, omega })
    }

    /// The relaxation parameter.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// The wrapped operator.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Contraction factor of the relaxed operator given the inner
    /// operator's max-norm contraction factor `alpha`:
    /// `|1−ω| + ω·α` (valid for `ω ∈ (0, 2)`; tight for `ω ≤ 1`).
    pub fn relaxed_factor(&self, alpha: f64) -> f64 {
        (1.0 - self.omega).abs() + self.omega * alpha
    }
}

impl<O: Operator> Operator for RelaxedOperator<O> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    #[inline]
    fn component(&self, i: usize, x: &[f64]) -> f64 {
        (1.0 - self.omega) * x[i] + self.omega * self.inner.component(i, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::JacobiOperator;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn omega_one_is_identity_wrapper() {
        let op = jacobi(6);
        let relaxed = RelaxedOperator::new(jacobi(6), 1.0).unwrap();
        let x = vec![0.3; 6];
        for i in 0..6 {
            assert_eq!(relaxed.component(i, &x), op.component(i, &x));
        }
    }

    #[test]
    fn fixed_point_is_preserved_for_all_omega() {
        let op = jacobi(8);
        let xstar = op.solve_dense_spd().unwrap();
        for omega in [0.3, 0.7, 1.0, 1.5] {
            let relaxed = RelaxedOperator::new(jacobi(8), omega).unwrap();
            assert!(
                relaxed.residual_inf(&xstar) < 1e-12,
                "omega {omega}: fixed point moved"
            );
        }
    }

    #[test]
    fn under_relaxation_contracts_with_predicted_factor() {
        let inner = jacobi(8);
        let alpha = inner.contraction_factor();
        let relaxed = RelaxedOperator::new(jacobi(8), 0.5).unwrap();
        let predicted = relaxed.relaxed_factor(alpha);
        assert!(predicted < 1.0);
        // Empirical check on random pairs.
        let mut rng = asynciter_numerics::rng::rng(5);
        for _ in 0..20 {
            let x = asynciter_numerics::rng::normal_vec(&mut rng, 8);
            let y = asynciter_numerics::rng::normal_vec(&mut rng, 8);
            let mut fx = vec![0.0; 8];
            let mut fy = vec![0.0; 8];
            relaxed.apply(&x, &mut fx);
            relaxed.apply(&y, &mut fy);
            assert!(
                vecops::max_abs_diff(&fx, &fy) <= predicted * vecops::max_abs_diff(&x, &y) + 1e-12
            );
        }
    }

    #[test]
    fn under_relaxation_converges_synchronously() {
        let op = RelaxedOperator::new(jacobi(8), 0.6).unwrap();
        let xstar = op.inner().solve_dense_spd().unwrap();
        let mut x = vec![0.0; 8];
        let mut next = vec![0.0; 8];
        for _ in 0..200 {
            op.apply(&x, &mut next);
            std::mem::swap(&mut x, &mut next);
        }
        assert!(vecops::max_abs_diff(&x, &xstar) < 1e-10);
    }

    #[test]
    fn rejects_invalid_omega() {
        assert!(RelaxedOperator::new(jacobi(4), 0.0).is_err());
        assert!(RelaxedOperator::new(jacobi(4), 2.0).is_err());
        assert!(RelaxedOperator::new(jacobi(4), -0.5).is_err());
        assert!(RelaxedOperator::new(jacobi(4), f64::NAN).is_err());
    }
}
