//! The 2-D obstacle problem and projected relaxation (\[26\]).
//!
//! Find the equilibrium position `u` of an elastic membrane stretched
//! over an obstacle `ψ` on the unit square with zero boundary values:
//!
//! ```text
//! u ≥ ψ,   (−Δ_h u − b) ≥ 0,   (u − ψ)ᵀ(−Δ_h u − b) = 0 ,
//! ```
//!
//! the discrete linear complementarity problem equivalent to
//! `min ½uᵀAu − bᵀu  s.t. u ≥ ψ` with `A` the 5-point Laplacian (an
//! M-matrix). The *projected Jacobi* operator
//! `F_i(u) = max(ψ_i, (b_i − Σ_{j≠i} a_ij u_j)/a_ii)` is monotone and a
//! weighted-max-norm contraction, which is why the obstacle problem was
//! the numerical-simulation showcase for asynchronous iterations with
//! flexible communication on the IBM SP4 in \[26\].

use crate::error::OptError;
use crate::traits::Operator;
use asynciter_numerics::sparse::{laplacian_2d, CsrMatrix};

/// A discretised obstacle problem on an `nx × ny` interior grid of the
/// unit square.
#[derive(Debug, Clone)]
pub struct ObstacleProblem {
    nx: usize,
    ny: usize,
    h: f64,
    a: CsrMatrix,
    b: Vec<f64>,
    psi: Vec<f64>,
}

impl ObstacleProblem {
    /// Builds the problem from load and obstacle functions evaluated at
    /// interior grid points `(x, y) ∈ (0,1)²`.
    ///
    /// # Errors
    /// Errors when the grid is degenerate.
    pub fn new(
        nx: usize,
        ny: usize,
        load: impl Fn(f64, f64) -> f64,
        obstacle: impl Fn(f64, f64) -> f64,
    ) -> crate::Result<Self> {
        if nx < 2 || ny < 2 {
            return Err(OptError::InvalidParameter {
                name: "nx/ny",
                message: format!("need nx, ny >= 2, got {nx}, {ny}"),
            });
        }
        let h = 1.0 / (nx.max(ny) as f64 + 1.0);
        let a = laplacian_2d(nx, ny, h);
        let n = nx * ny;
        let mut b = Vec::with_capacity(n);
        let mut psi = Vec::with_capacity(n);
        for iy in 0..ny {
            for ix in 0..nx {
                let x = (ix + 1) as f64 * h;
                let y = (iy + 1) as f64 * h;
                b.push(load(x, y));
                psi.push(obstacle(x, y));
            }
        }
        Ok(Self {
            nx,
            ny,
            h,
            a,
            b,
            psi,
        })
    }

    /// The classical membrane-over-a-bump instance: zero load, obstacle
    /// `ψ(x,y) = max(0, c − 8·((x−½)² + (y−½)²))` — a paraboloid bump of
    /// height `c` in the middle of the square, negative (inactive)
    /// outside.
    ///
    /// # Errors
    /// Propagates grid validation.
    pub fn bump(nx: usize, ny: usize, height: f64) -> crate::Result<Self> {
        Self::new(
            nx,
            ny,
            |_, _| 0.0,
            move |x, y| height - 8.0 * ((x - 0.5).powi(2) + (y - 0.5).powi(2)),
        )
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Grid spacing.
    pub fn spacing(&self) -> f64 {
        self.h
    }

    /// Problem dimension `nx · ny`.
    pub fn dim(&self) -> usize {
        self.b.len()
    }

    /// The stiffness matrix `A = −Δ_h`.
    pub fn a(&self) -> &CsrMatrix {
        &self.a
    }

    /// The load vector.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// The obstacle.
    pub fn psi(&self) -> &[f64] {
        &self.psi
    }

    /// Reference solution by projected Gauss–Seidel, iterated until the
    /// sweep changes no component by more than `tol`.
    ///
    /// # Errors
    /// [`OptError::DidNotConverge`] when `max_sweeps` is exhausted.
    pub fn reference_solution(&self, tol: f64, max_sweeps: usize) -> crate::Result<Vec<f64>> {
        let n = self.dim();
        let mut u: Vec<f64> = self.psi.iter().map(|&p| p.max(0.0)).collect();
        for _ in 0..max_sweeps {
            let mut delta = 0.0_f64;
            for i in 0..n {
                let aii = self.a.get(i, i);
                let off = self.a.row_dot_offdiag(i, &u);
                let new = ((self.b[i] - off) / aii).max(self.psi[i]);
                delta = delta.max((new - u[i]).abs());
                u[i] = new;
            }
            if delta <= tol {
                return Ok(u);
            }
        }
        Err(OptError::DidNotConverge {
            iterations: max_sweeps,
            residual: f64::NAN,
        })
    }

    /// Complementarity diagnostics of a candidate solution:
    /// `(max feasibility violation ψ − u, max negative residual b − Au
    /// where u > ψ, max |(u − ψ)·(Au − b)|)`. All three ≈ 0 at the
    /// solution.
    pub fn complementarity_residuals(&self, u: &[f64]) -> (f64, f64, f64) {
        assert_eq!(u.len(), self.dim(), "complementarity: dimension");
        let mut au = vec![0.0; self.dim()];
        self.a.matvec(u, &mut au);
        let mut feas = 0.0_f64;
        let mut resid = 0.0_f64;
        let mut comp = 0.0_f64;
        for i in 0..self.dim() {
            feas = feas.max(self.psi[i] - u[i]);
            let r = au[i] - self.b[i]; // must be >= 0 (pushing up only)
            resid = resid.max(-r);
            comp = comp.max(((u[i] - self.psi[i]) * r).abs());
        }
        (feas, resid, comp)
    }

    /// Number of contact points (`u` within `tol` of `ψ`).
    pub fn contact_count(&self, u: &[f64], tol: f64) -> usize {
        u.iter()
            .zip(&self.psi)
            .filter(|(u, p)| (**u - **p).abs() <= tol)
            .count()
    }
}

/// The projected Jacobi operator of the obstacle problem:
/// `F_i(u) = max(ψ_i, (b_i − Σ_{j≠i} a_ij u_j)/a_ii)`.
///
/// This is simultaneously (i) the prox-gradient operator with exact
/// coordinate steps and `g` the indicator of `{u ≥ ψ}` and (ii) the
/// classical free-boundary relaxation; it is monotone (as an M-matrix
/// relaxation), so asynchronous iterates converge monotonically from
/// above — the property flexible communication exploits in \[26\].
#[derive(Debug, Clone)]
pub struct ProjectedJacobi {
    problem: ObstacleProblem,
    inv_diag: Vec<f64>,
}

impl ProjectedJacobi {
    /// Builds the operator.
    pub fn new(problem: ObstacleProblem) -> Self {
        let inv_diag = problem.a.diagonal().into_iter().map(|d| 1.0 / d).collect();
        Self { problem, inv_diag }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &ObstacleProblem {
        &self.problem
    }

    /// An initial vector dominating the solution (monotone convergence
    /// from above starts here): the unconstrained Jacobi fixed point is
    /// bounded by `max(b)/min(diag)`-ish; we use a crude safe upper bound.
    pub fn upper_start(&self) -> Vec<f64> {
        let bmax = self.problem.b.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        let pmax = self
            .problem
            .psi
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v.abs()));
        vec![bmax + pmax + 1.0; self.problem.dim()]
    }
}

impl Operator for ProjectedJacobi {
    fn dim(&self) -> usize {
        self.problem.dim()
    }

    #[inline]
    fn component(&self, i: usize, u: &[f64]) -> f64 {
        let off = self.problem.a.row_dot_offdiag(i, u);
        ((self.problem.b[i] - off) * self.inv_diag[i]).max(self.problem.psi[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump_problem() -> ObstacleProblem {
        ObstacleProblem::bump(12, 12, 0.6).unwrap()
    }

    #[test]
    fn reference_solution_satisfies_lcp() {
        let p = bump_problem();
        let u = p.reference_solution(1e-12, 100_000).unwrap();
        let (feas, resid, comp) = p.complementarity_residuals(&u);
        assert!(feas <= 1e-10, "feasibility {feas}");
        assert!(resid <= 1e-7, "residual {resid}");
        assert!(comp <= 1e-7, "complementarity {comp}");
    }

    #[test]
    fn bump_produces_active_contact_set() {
        let p = bump_problem();
        let u = p.reference_solution(1e-12, 100_000).unwrap();
        let contacts = p.contact_count(&u, 1e-9);
        // The bump's positive part must be in contact somewhere, but not
        // the whole grid.
        assert!(contacts > 0, "no contact points");
        assert!(contacts < p.dim(), "everything in contact");
        // Membrane is pulled above zero by the obstacle.
        assert!(u.iter().cloned().fold(0.0_f64, f64::max) > 0.5);
    }

    #[test]
    fn without_obstacle_reduces_to_laplace() {
        // ψ = −∞-ish: solution of zero-load Laplace with zero boundary is
        // identically zero.
        let p = ObstacleProblem::new(8, 8, |_, _| 0.0, |_, _| -1e12).unwrap();
        let u = p.reference_solution(1e-13, 100_000).unwrap();
        assert!(u.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn projected_jacobi_fixed_point_matches_reference() {
        let p = bump_problem();
        let u_ref = p.reference_solution(1e-13, 100_000).unwrap();
        let op = ProjectedJacobi::new(p);
        assert!(op.residual_inf(&u_ref) < 1e-9);
    }

    #[test]
    fn monotone_decrease_from_upper_start() {
        let op = ProjectedJacobi::new(bump_problem());
        let mut u = op.upper_start();
        let mut next = vec![0.0; op.dim()];
        for _ in 0..200 {
            op.apply(&u, &mut next);
            // Monotone from above: next <= u componentwise.
            for i in 0..op.dim() {
                assert!(next[i] <= u[i] + 1e-12, "monotonicity at {i}");
            }
            std::mem::swap(&mut u, &mut next);
        }
    }

    #[test]
    fn solution_respects_symmetry() {
        // The bump and domain are symmetric under x ↔ 1−x; so is the
        // solution.
        let p = bump_problem();
        let u = p.reference_solution(1e-12, 100_000).unwrap();
        let (nx, ny) = p.grid();
        for iy in 0..ny {
            for ix in 0..nx {
                let k = iy * nx + ix;
                let km = iy * nx + (nx - 1 - ix);
                assert!((u[k] - u[km]).abs() < 1e-8, "asymmetry at ({ix},{iy})");
            }
        }
    }

    #[test]
    fn rejects_degenerate_grid() {
        assert!(ObstacleProblem::new(1, 5, |_, _| 0.0, |_, _| 0.0).is_err());
        assert!(ObstacleProblem::bump(5, 1, 0.5).is_err());
    }

    #[test]
    fn refinement_converges_in_max_value() {
        // Coarse vs fine grid maxima agree to a few percent — sanity that
        // the discretisation is consistent.
        let coarse = ObstacleProblem::bump(10, 10, 0.6).unwrap();
        let fine = ObstacleProblem::bump(20, 20, 0.6).unwrap();
        let uc = coarse.reference_solution(1e-11, 100_000).unwrap();
        let uf = fine.reference_solution(1e-11, 100_000).unwrap();
        let mc = uc.iter().cloned().fold(0.0_f64, f64::max);
        let mf = uf.iter().cloned().fold(0.0_f64, f64::max);
        assert!((mc - mf).abs() < 0.05, "coarse {mc} vs fine {mf}");
    }
}
