//! Proximal operators of separable convex regularisers.
//!
//! All of the `g` functions of problem (4) used in the experiments:
//! `ℓ₁` (lasso), box / nonnegativity / lower-obstacle indicators
//! (constrained problems, obstacle problem), elastic net, ridge, and the
//! trivial zero regulariser. Each is supplied through
//! [`crate::traits::SeparableProx`], so every engine can
//! apply it one component at a time.
//!
//! Every prox here is *firmly nonexpansive*:
//! `|prox(u) − prox(v)| ≤ |u − v|` componentwise — the property that
//! composes with the gradient step's contraction in Theorem 1. The
//! crate's property tests verify nonexpansiveness for all of them.

use crate::traits::SeparableProx;

/// `g ≡ 0`: the prox is the identity. Turns prox-gradient into plain
/// gradient descent.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroReg;

impl SeparableProx for ZeroReg {
    #[inline]
    fn prox_component(&self, _i: usize, v: f64, _gamma: f64) -> f64 {
        v
    }

    fn value(&self, _x: &[f64]) -> f64 {
        0.0
    }
}

/// `g(x) = λ ‖x‖₁`: soft thresholding
/// `prox_{γg}(v) = sign(v) · max(|v| − γλ, 0)`.
#[derive(Debug, Clone, Copy)]
pub struct L1 {
    /// Regularisation weight `λ ≥ 0`.
    pub lambda: f64,
}

impl L1 {
    /// `ℓ₁` regulariser with weight `λ`.
    ///
    /// # Panics
    /// Panics when `λ < 0` or not finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "L1: lambda must be finite and nonnegative"
        );
        Self { lambda }
    }
}

impl SeparableProx for L1 {
    #[inline]
    fn prox_component(&self, _i: usize, v: f64, gamma: f64) -> f64 {
        let t = gamma * self.lambda;
        if v > t {
            v - t
        } else if v < -t {
            v + t
        } else {
            0.0
        }
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.lambda * x.iter().map(|v| v.abs()).sum::<f64>()
    }
}

/// `g(x) = (λ/2) ‖x‖₂²` (ridge): `prox_{γg}(v) = v / (1 + γλ)`.
#[derive(Debug, Clone, Copy)]
pub struct L2Squared {
    /// Regularisation weight `λ ≥ 0`.
    pub lambda: f64,
}

impl L2Squared {
    /// Ridge regulariser with weight `λ`.
    ///
    /// # Panics
    /// Panics when `λ < 0` or not finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "L2Squared: lambda must be finite and nonnegative"
        );
        Self { lambda }
    }
}

impl SeparableProx for L2Squared {
    #[inline]
    fn prox_component(&self, _i: usize, v: f64, gamma: f64) -> f64 {
        v / (1.0 + gamma * self.lambda)
    }

    fn value(&self, x: &[f64]) -> f64 {
        0.5 * self.lambda * x.iter().map(|v| v * v).sum::<f64>()
    }
}

/// Elastic net `g(x) = λ₁‖x‖₁ + (λ₂/2)‖x‖₂²`:
/// `prox(v) = S_{γλ₁}(v) / (1 + γλ₂)` (soft-threshold then shrink).
#[derive(Debug, Clone, Copy)]
pub struct ElasticNet {
    /// `ℓ₁` weight.
    pub l1: f64,
    /// `ℓ₂²` weight.
    pub l2: f64,
}

impl ElasticNet {
    /// Elastic-net regulariser.
    ///
    /// # Panics
    /// Panics on negative or non-finite weights.
    pub fn new(l1: f64, l2: f64) -> Self {
        assert!(l1.is_finite() && l1 >= 0.0, "ElasticNet: l1 weight");
        assert!(l2.is_finite() && l2 >= 0.0, "ElasticNet: l2 weight");
        Self { l1, l2 }
    }
}

impl SeparableProx for ElasticNet {
    #[inline]
    fn prox_component(&self, i: usize, v: f64, gamma: f64) -> f64 {
        let soft = L1 { lambda: self.l1 }.prox_component(i, v, gamma);
        soft / (1.0 + gamma * self.l2)
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.l1 * x.iter().map(|v| v.abs()).sum::<f64>()
            + 0.5 * self.l2 * x.iter().map(|v| v * v).sum::<f64>()
    }
}

/// Indicator of the box `[lo_i, hi_i]`: the prox is the projection
/// (clamp). Scalar bounds broadcast to every component.
#[derive(Debug, Clone)]
pub struct BoxConstraint {
    lo: Bound,
    hi: Bound,
}

#[derive(Debug, Clone)]
enum Bound {
    Scalar(f64),
    Vector(Vec<f64>),
}

impl Bound {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            Bound::Scalar(v) => *v,
            Bound::Vector(v) => v[i],
        }
    }

    fn dim(&self) -> Option<usize> {
        match self {
            Bound::Scalar(_) => None,
            Bound::Vector(v) => Some(v.len()),
        }
    }
}

impl BoxConstraint {
    /// Uniform box `[lo, hi]ⁿ`.
    ///
    /// # Panics
    /// Panics when `lo > hi` (NaN bounds are rejected too).
    pub fn uniform(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "BoxConstraint: lo must be <= hi");
        Self {
            lo: Bound::Scalar(lo),
            hi: Bound::Scalar(hi),
        }
    }

    /// Per-component box `[lo_i, hi_i]`.
    ///
    /// # Panics
    /// Panics on length mismatch or any `lo_i > hi_i`.
    pub fn per_component(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "BoxConstraint: bound lengths differ");
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(l <= h, "BoxConstraint: lo[{i}] > hi[{i}]");
        }
        Self {
            lo: Bound::Vector(lo),
            hi: Bound::Vector(hi),
        }
    }

    /// Nonnegativity constraint `x ≥ 0`.
    pub fn nonneg() -> Self {
        Self::uniform(0.0, f64::INFINITY)
    }

    /// Lower-obstacle constraint `x ≥ ψ` (the obstacle problem's `g`).
    pub fn lower_obstacle(psi: Vec<f64>) -> Self {
        Self {
            lo: Bound::Vector(psi),
            hi: Bound::Scalar(f64::INFINITY),
        }
    }

    /// Lower bound of component `i`.
    pub fn lo(&self, i: usize) -> f64 {
        self.lo.get(i)
    }

    /// Upper bound of component `i`.
    pub fn hi(&self, i: usize) -> f64 {
        self.hi.get(i)
    }
}

impl SeparableProx for BoxConstraint {
    #[inline]
    fn prox_component(&self, i: usize, v: f64, _gamma: f64) -> f64 {
        v.clamp(self.lo.get(i), self.hi.get(i))
    }

    fn value(&self, x: &[f64]) -> f64 {
        for (i, &v) in x.iter().enumerate() {
            // Tolerance-free indicator: engines only query feasible points
            // after projection, so exact comparison is intended.
            if v < self.lo.get(i) || v > self.hi.get(i) {
                return f64::INFINITY;
            }
        }
        0.0
    }

    fn dim_hint(&self) -> Option<usize> {
        self.lo.dim().or(self.hi.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_reg_is_identity() {
        let z = ZeroReg;
        assert_eq!(z.prox_component(0, 3.5, 0.7), 3.5);
        assert_eq!(z.value(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn soft_threshold_cases() {
        let g = L1::new(2.0);
        // gamma * lambda = 1.
        assert_eq!(g.prox_component(0, 3.0, 0.5), 2.0);
        assert_eq!(g.prox_component(0, -3.0, 0.5), -2.0);
        assert_eq!(g.prox_component(0, 0.5, 0.5), 0.0);
        assert_eq!(g.prox_component(0, -0.5, 0.5), 0.0);
        assert_eq!(g.prox_component(0, 1.0, 0.5), 0.0); // boundary
    }

    #[test]
    fn l1_prox_solves_prox_subproblem() {
        // prox minimises g(u) + (u-v)^2 / (2 gamma): compare against a
        // dense grid search.
        let g = L1::new(0.8);
        let gamma = 0.3;
        for &v in &[-2.0, -0.1, 0.0, 0.7, 3.0] {
            let p = g.prox_component(0, v, gamma);
            let obj = |u: f64| 0.8 * u.abs() + (u - v) * (u - v) / (2.0 * gamma);
            let mut best = f64::INFINITY;
            let mut arg = 0.0;
            let mut u = -4.0;
            while u <= 4.0 {
                if obj(u) < best {
                    best = obj(u);
                    arg = u;
                }
                u += 1e-4;
            }
            assert!((p - arg).abs() < 1e-3, "v={v}: prox {p} vs grid {arg}");
        }
    }

    #[test]
    fn l1_value() {
        assert_eq!(L1::new(2.0).value(&[1.0, -3.0]), 8.0);
    }

    #[test]
    fn ridge_shrinks() {
        let g = L2Squared::new(4.0);
        assert_eq!(g.prox_component(0, 3.0, 0.5), 1.0); // 3 / (1 + 2)
        assert_eq!(g.value(&[2.0]), 8.0);
    }

    #[test]
    fn elastic_net_composes() {
        let g = ElasticNet::new(1.0, 1.0);
        // gamma 1: soft(3, 1) = 2, then / (1 + 1) = 1.
        assert_eq!(g.prox_component(0, 3.0, 1.0), 1.0);
        assert!((g.value(&[1.0, -2.0]) - (3.0 + 2.5)).abs() < 1e-15);
    }

    #[test]
    fn elastic_net_degenerates_to_parts() {
        let en = ElasticNet::new(0.7, 0.0);
        let l1 = L1::new(0.7);
        for &v in &[-2.0, 0.1, 5.0] {
            assert_eq!(en.prox_component(0, v, 0.9), l1.prox_component(0, v, 0.9));
        }
        let en = ElasticNet::new(0.0, 0.7);
        let l2 = L2Squared::new(0.7);
        for &v in &[-2.0, 0.1, 5.0] {
            assert_eq!(en.prox_component(0, v, 0.9), l2.prox_component(0, v, 0.9));
        }
    }

    #[test]
    fn box_projects() {
        let g = BoxConstraint::uniform(-1.0, 2.0);
        assert_eq!(g.prox_component(0, -3.0, 1.0), -1.0);
        assert_eq!(g.prox_component(0, 0.5, 1.0), 0.5);
        assert_eq!(g.prox_component(0, 9.0, 1.0), 2.0);
        assert_eq!(g.value(&[0.0, 2.0]), 0.0);
        assert_eq!(g.value(&[0.0, 2.1]), f64::INFINITY);
    }

    #[test]
    fn per_component_box() {
        let g = BoxConstraint::per_component(vec![0.0, 1.0], vec![1.0, 5.0]);
        assert_eq!(g.prox_component(0, 2.0, 1.0), 1.0);
        assert_eq!(g.prox_component(1, 2.0, 1.0), 2.0);
        assert_eq!(g.dim_hint(), Some(2));
    }

    #[test]
    fn nonneg_and_obstacle() {
        let g = BoxConstraint::nonneg();
        assert_eq!(g.prox_component(0, -2.0, 1.0), 0.0);
        assert_eq!(g.prox_component(0, 7.0, 1.0), 7.0);

        let o = BoxConstraint::lower_obstacle(vec![0.5, -0.5]);
        assert_eq!(o.prox_component(0, 0.0, 1.0), 0.5);
        assert_eq!(o.prox_component(1, 0.0, 1.0), 0.0);
        assert_eq!(o.dim_hint(), Some(2));
    }

    #[test]
    #[should_panic(expected = "lo must be <= hi")]
    fn box_rejects_inverted_bounds() {
        BoxConstraint::uniform(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn l1_rejects_negative_lambda() {
        L1::new(-1.0);
    }

    #[test]
    fn all_proxes_nonexpansive_spot_check() {
        let proxes: Vec<Box<dyn SeparableProx>> = vec![
            Box::new(ZeroReg),
            Box::new(L1::new(0.7)),
            Box::new(L2Squared::new(1.3)),
            Box::new(ElasticNet::new(0.5, 0.9)),
            Box::new(BoxConstraint::uniform(-1.0, 1.0)),
        ];
        let pairs = [(-2.0, 3.0), (0.1, 0.2), (-5.0, -4.0), (0.0, 0.0)];
        for p in &proxes {
            for &(u, v) in &pairs {
                let pu = p.prox_component(0, u, 0.8);
                let pv = p.prox_component(0, v, 0.8);
                assert!(
                    (pu - pv).abs() <= (u - v).abs() + 1e-15,
                    "nonexpansiveness violated at ({u}, {v})"
                );
            }
        }
    }
}
