//! Linear fixed-point operators: Jacobi relaxation for `Ax = b`.
//!
//! Chaotic relaxation (Chazan–Miranker 1969) was formulated for exactly
//! this operator: `F_i(x) = (b_i − Σ_{j≠i} a_ij x_j) / a_ii`. When `A` is
//! strictly diagonally dominant, `F` is a max-norm contraction with
//! factor `max_i Σ_{j≠i}|a_ij|/|a_ii| < 1` and the totally asynchronous
//! iteration converges for *any* admissible schedule — the historical
//! starting point of the entire literature the paper surveys.

use crate::error::OptError;
use crate::traits::Operator;
use asynciter_numerics::sparse::CsrMatrix;

/// Jacobi relaxation operator for `Ax = b`.
#[derive(Debug, Clone)]
pub struct JacobiOperator {
    a: CsrMatrix,
    b: Vec<f64>,
    inv_diag: Vec<f64>,
}

impl JacobiOperator {
    /// Builds the operator.
    ///
    /// # Errors
    /// Errors when `A` is not square, dimensions mismatch, or some
    /// diagonal entry is zero.
    pub fn new(a: CsrMatrix, b: Vec<f64>) -> crate::Result<Self> {
        if a.rows() != a.cols() {
            return Err(OptError::DimensionMismatch {
                expected: a.rows(),
                actual: a.cols(),
                context: "JacobiOperator::new (square)",
            });
        }
        if a.rows() != b.len() {
            return Err(OptError::DimensionMismatch {
                expected: a.rows(),
                actual: b.len(),
                context: "JacobiOperator::new (rhs)",
            });
        }
        let diag = a.diagonal();
        if let Some((i, _)) = diag.iter().enumerate().find(|(_, &d)| d == 0.0) {
            return Err(OptError::InvalidProblem {
                message: format!("zero diagonal at row {i}"),
            });
        }
        let inv_diag = diag.iter().map(|d| 1.0 / d).collect();
        Ok(Self { a, b, inv_diag })
    }

    /// The system matrix.
    pub fn a(&self) -> &CsrMatrix {
        &self.a
    }

    /// The right-hand side.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Max-norm contraction factor `max_i Σ_{j≠i} |a_ij| / |a_ii|`
    /// (`< 1` iff `A` is strictly diagonally dominant).
    pub fn contraction_factor(&self) -> f64 {
        let off = self.a.offdiag_abs_row_sums();
        off.iter()
            .zip(&self.inv_diag)
            .map(|(o, id)| o * id.abs())
            .fold(0.0, f64::max)
    }

    /// Exact solution via dense Cholesky when `A` is SPD (tests and
    /// reference curves).
    ///
    /// # Errors
    /// Propagates factorisation failures.
    pub fn solve_dense_spd(&self) -> crate::Result<Vec<f64>> {
        Ok(self.a.to_dense().solve_spd(&self.b)?)
    }

    /// Linear-system residual `‖Ax − b‖_∞` (distinct from the fixed-point
    /// residual `‖x − F(x)‖_∞`, which it dominates up to `max|a_ii|`).
    pub fn system_residual(&self, x: &[f64]) -> f64 {
        let mut ax = vec![0.0; self.b.len()];
        self.a.matvec(x, &mut ax);
        ax.iter()
            .zip(&self.b)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl Operator for JacobiOperator {
    fn dim(&self) -> usize {
        self.b.len()
    }

    #[inline]
    fn component(&self, i: usize, x: &[f64]) -> f64 {
        (self.b[i] - self.a.row_dot_offdiag(i, x)) * self.inv_diag[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;

    fn toy() -> JacobiOperator {
        JacobiOperator::new(tridiagonal(5, 4.0, -1.0), vec![1.0; 5]).unwrap()
    }

    #[test]
    fn fixed_point_solves_system() {
        let op = toy();
        let xstar = op.solve_dense_spd().unwrap();
        for i in 0..5 {
            assert!((op.component(i, &xstar) - xstar[i]).abs() < 1e-12);
        }
        assert!(op.system_residual(&xstar) < 1e-12);
    }

    #[test]
    fn contraction_factor_tridiag() {
        let op = toy();
        assert!((op.contraction_factor() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn synchronous_iteration_converges_at_factor() {
        let op = toy();
        let xstar = op.solve_dense_spd().unwrap();
        let mut x = vec![0.0; 5];
        let mut next = vec![0.0; 5];
        let mut prev_err = vecops::max_abs_diff(&x, &xstar);
        for _ in 0..30 {
            op.apply(&x, &mut next);
            std::mem::swap(&mut x, &mut next);
            let err = vecops::max_abs_diff(&x, &xstar);
            assert!(err <= 0.5 * prev_err + 1e-15, "{err} vs {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 1e-8);
    }

    #[test]
    fn rejects_zero_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(JacobiOperator::new(a, vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let a = tridiagonal(3, 4.0, -1.0);
        assert!(JacobiOperator::new(a, vec![1.0; 2]).is_err());
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(JacobiOperator::new(rect, vec![1.0; 2]).is_err());
    }

    #[test]
    fn update_active_is_partial_jacobi() {
        let op = toy();
        let x = vec![1.0; 5];
        let mut out = x.clone();
        op.update_active(&x, &[0, 2], &mut out);
        assert_eq!(out[1], 1.0);
        assert!((out[0] - (1.0 + 1.0) / 4.0).abs() < 1e-15);
        assert!((out[2] - (1.0 + 2.0) / 4.0).abs() < 1e-15);
    }
}
