//! Error type for operators and problems.

use std::fmt;

/// Errors produced when constructing or solving optimisation problems.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// Two objects have incompatible dimensions.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
        /// Operation name.
        context: &'static str,
    },
    /// A parameter is outside its admissible range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        message: String,
    },
    /// A problem instance is structurally invalid (disconnected graph,
    /// unbalanced supplies, …).
    InvalidProblem {
        /// Explanation.
        message: String,
    },
    /// A reference solver failed to converge.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Final residual.
        residual: f64,
    },
    /// Propagated numerics error.
    Numerics(asynciter_numerics::NumericsError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::DimensionMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            OptError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            OptError::InvalidProblem { message } => write!(f, "invalid problem: {message}"),
            OptError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "reference solver did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            OptError::Numerics(e) => write!(f, "numerics error: {e}"),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<asynciter_numerics::NumericsError> for OptError {
    fn from(e: asynciter_numerics::NumericsError) -> Self {
        OptError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = OptError::InvalidProblem {
            message: "supplies do not balance".into(),
        };
        assert!(e.to_string().contains("supplies"));
        let e = OptError::DidNotConverge {
            iterations: 9,
            residual: 1.0,
        };
        assert!(e.to_string().contains("9 iterations"));
    }

    #[test]
    fn numerics_error_converts_and_sources() {
        use std::error::Error;
        let n = asynciter_numerics::NumericsError::Empty { context: "x" };
        let e: OptError = n.clone().into();
        assert_eq!(e, OptError::Numerics(n));
        assert!(e.source().is_some());
    }
}
