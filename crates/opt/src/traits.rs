//! Core abstractions: operators, smooth objectives, separable proxes.
//!
//! Every engine in the workspace (the deterministic replay engine, the
//! flexible-communication engine, the threaded runtimes and the
//! discrete-event simulator) drives a fixed-point [`Operator`]
//! `F : ℝⁿ → ℝⁿ` one component at a time — the shape dictated by
//! Definition 1, where iteration `j` recomputes `x_i(j) = F_i(x(l(j)))`
//! for `i ∈ S_j` from a possibly stale assembled vector `x(l(j))`.

/// A fixed-point operator `F : ℝⁿ → ℝⁿ` evaluated componentwise.
///
/// `Sync` is required because the threaded runtimes evaluate components
/// of a shared operator concurrently.
pub trait Operator: Sync {
    /// Dimension `n`.
    fn dim(&self) -> usize;

    /// `F_i(x)` for a single component.
    ///
    /// # Panics
    /// Implementations may panic when `i ≥ dim()` or `x.len() != dim()`.
    fn component(&self, i: usize, x: &[f64]) -> f64;

    /// Full application `out ← F(x)`.
    ///
    /// The default loops [`Operator::component`]; implementations with
    /// shared subexpressions should override.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    fn apply(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "Operator::apply: x dimension");
        assert_eq!(out.len(), self.dim(), "Operator::apply: out dimension");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.component(i, x);
        }
    }

    /// Writes `F_i(x)` for each `i ∈ active` into `out[i]`, leaving other
    /// entries of `out` untouched. Engines use this to realise the
    /// `i ∈ S_j` branch of Eq. (1).
    ///
    /// # Panics
    /// Panics on dimension mismatch or out-of-range indices (debug).
    fn update_active(&self, x: &[f64], active: &[usize], out: &mut [f64]) {
        for &i in active {
            out[i] = self.component(i, x);
        }
    }

    /// Residual `‖x − F(x)‖_∞`, the practical fixed-point error measure.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    fn residual_inf(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "Operator::residual_inf: dimension");
        let mut m = 0.0_f64;
        for i in 0..self.dim() {
            m = m.max((x[i] - self.component(i, x)).abs());
        }
        m
    }

    /// Length of the caller-owned scratch slice the `_with` evaluation
    /// paths need (`0` for operators whose components share no
    /// subexpressions). Engines allocate `vec![0.0; op.scratch_len()]`
    /// **once** per run/worker and thread it through every step, so the
    /// per-step paths stay heap-allocation-free even for operators with
    /// dense shared state (e.g. the per-sample weights of
    /// [`crate::logistic::LogisticGradOperator`]).
    fn scratch_len(&self) -> usize {
        0
    }

    /// Like [`Operator::update_active`], with caller-owned scratch.
    ///
    /// The default ignores `scratch` and delegates; operators with shared
    /// subexpressions override this to compute them once into `scratch`
    /// instead of once per component. Implementations must produce values
    /// **bit-identical** to [`Operator::component`] — engines mix the two
    /// paths and the cross-backend equivalence suite compares them
    /// bitwise.
    ///
    /// # Panics
    /// Panics on dimension mismatch, out-of-range indices (debug), or
    /// `scratch.len() < self.scratch_len()`.
    fn update_active_with(
        &self,
        x: &[f64],
        active: &[usize],
        out: &mut [f64],
        scratch: &mut [f64],
    ) {
        let _ = scratch;
        self.update_active(x, active, out);
    }

    /// Like [`Operator::apply`], with caller-owned scratch (same
    /// bit-identity contract as [`Operator::update_active_with`]).
    ///
    /// # Panics
    /// Panics on dimension mismatch or short scratch.
    fn apply_with(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        let _ = scratch;
        self.apply(x, out);
    }

    /// Like [`Operator::residual_inf`], with caller-owned scratch (same
    /// bit-identity contract as [`Operator::update_active_with`]).
    ///
    /// # Panics
    /// Panics on dimension mismatch or short scratch.
    fn residual_inf_with(&self, x: &[f64], scratch: &mut [f64]) -> f64 {
        let _ = scratch;
        self.residual_inf(x)
    }
}

/// A smooth (differentiable) objective `f : ℝⁿ → ℝ` with curvature
/// metadata. `lipschitz`/`strong_convexity` bound the eigenvalues of the
/// Hessian: `μ·I ⪯ ∇²f ⪯ L·I` (with `μ = 0` for merely convex `f`).
pub trait SmoothObjective: Sync {
    /// Dimension `n`.
    fn dim(&self) -> usize;

    /// Objective value `f(x)`.
    fn value(&self, x: &[f64]) -> f64;

    /// Partial derivative `∂f/∂x_i (x)`.
    fn grad_component(&self, i: usize, x: &[f64]) -> f64;

    /// Full gradient `out ← ∇f(x)`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    fn grad(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "SmoothObjective::grad: x dimension");
        assert_eq!(out.len(), self.dim(), "SmoothObjective::grad: out dim");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.grad_component(i, x);
        }
    }

    /// A Lipschitz constant `L` of `∇f` (upper curvature bound).
    fn lipschitz(&self) -> f64;

    /// A strong-convexity modulus `μ ≥ 0` (lower curvature bound).
    fn strong_convexity(&self) -> f64;
}

/// A *separable* smooth objective `f(x) = Σ_i f_i(x_i)` — the form
/// assumed by problem (4) of the paper ("`f` is a separable, L-smooth,
/// μ-strongly convex function"), under which the Definition-4 operator is
/// a componentwise max-norm contraction with factor `1 − γμ`.
pub trait SeparableSmooth: Sync {
    /// Dimension `n`.
    fn dim(&self) -> usize;

    /// `f_i(v)`.
    fn value_component(&self, i: usize, v: f64) -> f64;

    /// `f_i'(v)`.
    fn grad_component(&self, i: usize, v: f64) -> f64;

    /// Componentwise curvature bounds `(μ, L)`: for every `i` and `v`,
    /// `μ ≤ f_i''(v) ≤ L`.
    fn curvature(&self) -> (f64, f64);

    /// Total value `Σ_i f_i(x_i)`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    fn value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "SeparableSmooth::value: dimension");
        x.iter()
            .enumerate()
            .map(|(i, &v)| self.value_component(i, v))
            .sum()
    }
}

/// Every separable smooth objective is a smooth objective.
impl<T: SeparableSmooth> SmoothObjective for T {
    fn dim(&self) -> usize {
        SeparableSmooth::dim(self)
    }

    fn value(&self, x: &[f64]) -> f64 {
        SeparableSmooth::value(self, x)
    }

    fn grad_component(&self, i: usize, x: &[f64]) -> f64 {
        SeparableSmooth::grad_component(self, i, x[i])
    }

    fn lipschitz(&self) -> f64 {
        self.curvature().1
    }

    fn strong_convexity(&self) -> f64 {
        self.curvature().0
    }
}

/// A separable lower semi-continuous convex regulariser `g(x) = Σ_i
/// g_i(x_i)` given through its componentwise proximal maps
/// `prox_{γ g_i}(v) = argmin_u { g_i(u) + (u − v)²/(2γ) }`.
///
/// Separability of `g` is what makes `prox_{γg}` componentwise, which in
/// turn is what allows asynchronous component updates to apply it locally
/// — all of the paper's machine-learning regularisers (`ℓ₁`, box
/// indicators, elastic net) are of this form.
pub trait SeparableProx: Sync {
    /// `prox_{γ g_i}(v)`.
    ///
    /// # Panics
    /// Implementations with per-component data may panic for out-of-range
    /// `i`.
    fn prox_component(&self, i: usize, v: f64, gamma: f64) -> f64;

    /// `g(x)` (may be `+∞` for indicator functions; return
    /// [`f64::INFINITY`] outside the domain).
    fn value(&self, x: &[f64]) -> f64;

    /// Dimension constraint, when the prox carries per-component data
    /// (`None` for dimension-agnostic regularisers like scalar `ℓ₁`).
    fn dim_hint(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy operator F(x) = c (constant map) for trait-default testing.
    struct ConstMap {
        c: Vec<f64>,
    }

    impl Operator for ConstMap {
        fn dim(&self) -> usize {
            self.c.len()
        }
        fn component(&self, i: usize, _x: &[f64]) -> f64 {
            self.c[i]
        }
    }

    #[test]
    fn default_apply_loops_components() {
        let f = ConstMap {
            c: vec![1.0, 2.0, 3.0],
        };
        let mut out = [0.0; 3];
        f.apply(&[0.0; 3], &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn update_active_leaves_inactive_untouched() {
        let f = ConstMap {
            c: vec![1.0, 2.0, 3.0],
        };
        let mut out = [9.0; 3];
        f.update_active(&[0.0; 3], &[1], &mut out);
        assert_eq!(out, [9.0, 2.0, 9.0]);
    }

    #[test]
    fn residual_at_fixed_point_is_zero() {
        let f = ConstMap { c: vec![1.0, 2.0] };
        assert_eq!(f.residual_inf(&[1.0, 2.0]), 0.0);
        assert_eq!(f.residual_inf(&[0.0, 2.0]), 1.0);
    }

    #[test]
    fn scratch_defaults_delegate_to_plain_paths() {
        let f = ConstMap {
            c: vec![1.0, 2.0, 3.0],
        };
        assert_eq!(f.scratch_len(), 0);
        let mut scratch = [0.0; 0];
        let mut out = [9.0; 3];
        f.update_active_with(&[0.0; 3], &[1], &mut out, &mut scratch);
        assert_eq!(out, [9.0, 2.0, 9.0]);
        f.apply_with(&[0.0; 3], &mut out, &mut scratch);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert_eq!(f.residual_inf_with(&[1.0, 2.0, 3.0], &mut scratch), 0.0);
    }

    /// Separable quadratic halves-distance toy to exercise the blanket
    /// SmoothObjective impl.
    struct Sep;

    impl SeparableSmooth for Sep {
        fn dim(&self) -> usize {
            2
        }
        fn value_component(&self, _i: usize, v: f64) -> f64 {
            v * v
        }
        fn grad_component(&self, _i: usize, v: f64) -> f64 {
            2.0 * v
        }
        fn curvature(&self) -> (f64, f64) {
            (2.0, 2.0)
        }
    }

    #[test]
    fn separable_blanket_impl() {
        let s = Sep;
        assert_eq!(SmoothObjective::dim(&s), 2);
        assert_eq!(SmoothObjective::value(&s, &[1.0, 2.0]), 5.0);
        assert_eq!(SmoothObjective::grad_component(&s, 1, &[1.0, 2.0]), 4.0);
        assert_eq!(s.lipschitz(), 2.0);
        assert_eq!(s.strong_convexity(), 2.0);
        let mut g = [0.0; 2];
        s.grad(&[3.0, -1.0], &mut g);
        assert_eq!(g, [6.0, -2.0]);
    }
}
