//! Distributed shortest paths: the asynchronous Bellman–Ford operator.
//!
//! The first routing algorithm deployed on the Arpanet in 1969 was a
//! *distributed asynchronous Bellman–Ford* (paper §II, citing \[11\]
//! pp. 479–480 and \[17\]): every router keeps an estimate of its distance
//! to the destination and updates
//!
//! ```text
//! x_i ← min_{(i,j) ∈ E} ( w_ij + x_j ),       x_dest ≡ 0 ,
//! ```
//!
//! using whatever neighbour estimates have arrived — stale, reordered or
//! missing. The operator is monotone on `[x*, +∞)ⁿ` and converges under
//! exactly conditions (a)–(c); it is the canonical *non-contracting*
//! totally asynchronous iteration, complementing the contraction-based
//! optimisation examples.

use crate::error::OptError;
use crate::traits::Operator;

/// A directed graph with nonnegative arc weights, in adjacency-list form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// `adj[i]` lists `(j, w_ij)` for arcs `i → j`.
    adj: Vec<Vec<(usize, f64)>>,
}

impl Graph {
    /// Builds a graph from arcs; validates indices and nonnegative
    /// weights.
    ///
    /// # Errors
    /// [`OptError::InvalidProblem`] on violations.
    pub fn new(num_nodes: usize, arcs: &[(usize, usize, f64)]) -> crate::Result<Self> {
        let mut adj = vec![Vec::new(); num_nodes];
        for &(u, v, w) in arcs {
            if u >= num_nodes || v >= num_nodes {
                return Err(OptError::InvalidProblem {
                    message: format!("arc ({u},{v}) out of range"),
                });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(OptError::InvalidProblem {
                    message: format!("arc ({u},{v}) has invalid weight {w}"),
                });
            }
            adj[u].push((v, w));
        }
        Ok(Self { adj })
    }

    /// Builds an *undirected* graph (each edge in both directions).
    ///
    /// # Errors
    /// Propagates validation.
    pub fn undirected(num_nodes: usize, edges: &[(usize, usize, f64)]) -> crate::Result<Self> {
        let mut arcs = Vec::with_capacity(2 * edges.len());
        for &(u, v, w) in edges {
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
        Self::new(num_nodes, &arcs)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed arcs.
    pub fn num_arcs(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Out-neighbours of `i`.
    pub fn neighbors(&self, i: usize) -> &[(usize, f64)] {
        &self.adj[i]
    }

    /// Single-source shortest distances *to* `dest` along directed arcs,
    /// by Dijkstra on the reversed graph — the reference against which
    /// asynchronous Bellman–Ford is validated. Unreachable nodes get
    /// `f64::INFINITY`.
    ///
    /// # Panics
    /// Panics when `dest` is out of range.
    pub fn distances_to(&self, dest: usize) -> Vec<f64> {
        assert!(dest < self.num_nodes(), "distances_to: dest out of range");
        // Reverse adjacency.
        let mut radj = vec![Vec::new(); self.num_nodes()];
        for (u, outs) in self.adj.iter().enumerate() {
            for &(v, w) in outs {
                radj[v].push((u, w));
            }
        }
        let mut dist = vec![f64::INFINITY; self.num_nodes()];
        dist[dest] = 0.0;
        // Binary heap keyed on OrderedFloat-style bit tricks: use
        // (cost, node) with reverse ordering through cmp on bits of f64 —
        // weights are nonnegative and finite, so total order is safe.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        heap.push(Reverse((0u64, dest)));
        while let Some(Reverse((dbits, u))) = heap.pop() {
            let d = f64::from_bits(dbits);
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &radj[u] {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(Reverse((nd.to_bits(), v)));
                }
            }
        }
        dist
    }

    /// A synthetic approximation of the 1971-era Arpanet topology
    /// (18 IMPs, undirected links, weights are rough great-circle
    /// distances in megameters). Documented in DESIGN.md as a substitution
    /// for unavailable historical traces; the experiment's conclusion
    /// (asynchronous convergence under reordering) is topology-robust.
    pub fn arpanet() -> Self {
        // Node ids:
        //  0 UCLA    1 SRI     2 UCSB    3 UTAH    4 BBN     5 MIT
        //  6 RAND    7 SDC     8 HARVARD 9 LINCOLN 10 STANFORD
        // 11 ILLINOIS 12 CASE  13 CMU    14 AMES   15 MITRE
        // 16 BURROUGHS 17 NBS
        let edges: &[(usize, usize, f64)] = &[
            (0, 1, 0.56),   // UCLA–SRI
            (0, 2, 0.18),   // UCLA–UCSB
            (0, 6, 0.02),   // UCLA–RAND
            (1, 2, 0.44),   // SRI–UCSB
            (1, 3, 1.20),   // SRI–UTAH
            (1, 10, 0.03),  // SRI–STANFORD
            (1, 14, 0.04),  // SRI–AMES
            (3, 11, 1.90),  // UTAH–ILLINOIS
            (6, 7, 0.02),   // RAND–SDC
            (7, 3, 0.95),   // SDC–UTAH
            (4, 5, 0.01),   // BBN–MIT
            (4, 8, 0.01),   // BBN–HARVARD
            (5, 9, 0.02),   // MIT–LINCOLN
            (8, 13, 0.90),  // HARVARD–CMU
            (9, 12, 0.80),  // LINCOLN–CASE
            (11, 5, 1.60),  // ILLINOIS–MIT
            (12, 13, 0.20), // CASE–CMU
            (13, 4, 0.90),  // CMU–BBN
            (6, 15, 3.70),  // RAND–MITRE
            (15, 16, 0.20), // MITRE–BURROUGHS
            (15, 17, 0.03), // MITRE–NBS
            (16, 4, 0.60),  // BURROUGHS–BBN
            (14, 2, 0.45),  // AMES–UCSB
        ];
        Self::undirected(18, edges).expect("static topology is valid")
    }

    /// Random geometric graph: `n` points uniform in the unit square,
    /// undirected edges between pairs within `radius` weighted by
    /// Euclidean distance; a Hamiltonian-ish chain over the point order
    /// is added to guarantee connectivity.
    ///
    /// # Errors
    /// Errors when `n < 2` or `radius <= 0`.
    pub fn random_geometric(n: usize, radius: f64, seed: u64) -> crate::Result<Self> {
        if n < 2 {
            return Err(OptError::InvalidParameter {
                name: "n",
                message: "need at least two nodes".into(),
            });
        }
        if radius.is_nan() || radius <= 0.0 {
            return Err(OptError::InvalidParameter {
                name: "radius",
                message: "must be positive".into(),
            });
        }
        let mut rng = asynciter_numerics::rng::rng(seed);
        let xs = asynciter_numerics::rng::uniform_vec(&mut rng, n, 0.0, 1.0);
        let ys = asynciter_numerics::rng::uniform_vec(&mut rng, n, 0.0, 1.0);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = ((xs[i] - xs[j]).powi(2) + (ys[i] - ys[j]).powi(2)).sqrt();
                if d <= radius {
                    edges.push((i, j, d));
                }
            }
        }
        for i in 1..n {
            let d = ((xs[i] - xs[i - 1]).powi(2) + (ys[i] - ys[i - 1]).powi(2)).sqrt();
            edges.push((i - 1, i, d));
        }
        Self::undirected(n, &edges)
    }
}

/// The asynchronous Bellman–Ford operator: distance-to-destination
/// estimates with the destination pinned at zero. Nodes with no outgoing
/// arc keep their current estimate (unreachable).
#[derive(Debug, Clone)]
pub struct BellmanFordOperator {
    graph: Graph,
    dest: usize,
}

/// Initial "infinite" distance estimate: large but finite so error norms
/// stay meaningful (`f64::INFINITY − f64::INFINITY = NaN` would poison
/// diagnostics).
pub const DISTANCE_INIT: f64 = 1e12;

impl BellmanFordOperator {
    /// Builds the operator.
    ///
    /// # Errors
    /// Errors when `dest` is out of range.
    pub fn new(graph: Graph, dest: usize) -> crate::Result<Self> {
        if dest >= graph.num_nodes() {
            return Err(OptError::InvalidParameter {
                name: "dest",
                message: format!("destination {dest} out of range"),
            });
        }
        Ok(Self { graph, dest })
    }

    /// The destination node.
    pub fn dest(&self) -> usize {
        self.dest
    }

    /// The graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The canonical starting estimate: `DISTANCE_INIT` everywhere except
    /// 0 at the destination (asynchronous convergence is monotone from
    /// above on this cone).
    pub fn initial_estimate(&self) -> Vec<f64> {
        let mut x = vec![DISTANCE_INIT; self.graph.num_nodes()];
        x[self.dest] = 0.0;
        x
    }

    /// Exact distances via Dijkstra (reference).
    pub fn exact(&self) -> Vec<f64> {
        self.graph.distances_to(self.dest)
    }
}

impl Operator for BellmanFordOperator {
    fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    #[inline]
    fn component(&self, i: usize, x: &[f64]) -> f64 {
        if i == self.dest {
            return 0.0;
        }
        let mut best = x[i];
        for &(j, w) in self.graph.neighbors(i) {
            let cand = w + x[j];
            if cand < best {
                best = cand;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> Graph {
        // 0 — 1 — 2 — 3 with unit weights.
        Graph::undirected(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn dijkstra_on_line() {
        let g = line_graph();
        assert_eq!(g.distances_to(0), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(g.distances_to(3), vec![3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn dijkstra_respects_direction() {
        // Directed chain 0→1→2; nothing reaches 0 except itself.
        let g = Graph::new(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let d = g.distances_to(2);
        assert_eq!(d, vec![2.0, 1.0, 0.0]);
        let d0 = g.distances_to(0);
        assert_eq!(d0[0], 0.0);
        assert!(d0[1].is_infinite() && d0[2].is_infinite());
    }

    #[test]
    fn sync_bellman_ford_reaches_dijkstra() {
        let g = Graph::random_geometric(40, 0.25, 9).unwrap();
        let op = BellmanFordOperator::new(g, 0).unwrap();
        let exact = op.exact();
        let mut x = op.initial_estimate();
        let mut next = vec![0.0; op.dim()];
        for _ in 0..op.dim() + 2 {
            op.apply(&x, &mut next);
            std::mem::swap(&mut x, &mut next);
        }
        for i in 0..op.dim() {
            assert!((x[i] - exact[i]).abs() < 1e-12, "node {i}");
        }
    }

    #[test]
    fn operator_is_monotone_from_above() {
        let g = line_graph();
        let op = BellmanFordOperator::new(g, 0).unwrap();
        let mut x = op.initial_estimate();
        let mut next = vec![0.0; 4];
        for _ in 0..6 {
            op.apply(&x, &mut next);
            for i in 0..4 {
                assert!(next[i] <= x[i] + 1e-15);
            }
            std::mem::swap(&mut x, &mut next);
        }
    }

    #[test]
    fn dest_component_pinned_to_zero() {
        let op = BellmanFordOperator::new(line_graph(), 2).unwrap();
        assert_eq!(op.component(2, &[9.0, 9.0, 9.0, 9.0]), 0.0);
    }

    #[test]
    fn arpanet_topology_is_connected() {
        let g = Graph::arpanet();
        assert_eq!(g.num_nodes(), 18);
        let d = g.distances_to(0);
        assert!(
            d.iter().all(|v| v.is_finite()),
            "Arpanet must be connected: {d:?}"
        );
        // Cross-country paths exist: UCLA (0) to MIT (5) is multi-hop.
        assert!(d[5] > 1.0, "UCLA–MIT distance {}", d[5]);
    }

    #[test]
    fn random_geometric_is_connected() {
        for seed in 0..4 {
            let g = Graph::random_geometric(30, 0.05, seed).unwrap();
            let d = g.distances_to(0);
            assert!(d.iter().all(|v| v.is_finite()), "seed {seed}");
        }
    }

    #[test]
    fn graph_validation() {
        assert!(Graph::new(2, &[(0, 2, 1.0)]).is_err());
        assert!(Graph::new(2, &[(0, 1, -1.0)]).is_err());
        assert!(Graph::new(2, &[(0, 1, f64::NAN)]).is_err());
        assert!(Graph::random_geometric(1, 0.5, 0).is_err());
        assert!(Graph::random_geometric(5, 0.0, 0).is_err());
        assert!(BellmanFordOperator::new(line_graph(), 7).is_err());
    }

    #[test]
    fn triangle_inequality_of_solution() {
        let g = Graph::random_geometric(25, 0.3, 4).unwrap();
        let d = g.distances_to(3);
        for u in 0..g.num_nodes() {
            for &(v, w) in g.neighbors(u) {
                assert!(d[u] <= w + d[v] + 1e-12, "edge ({u},{v})");
            }
        }
    }
}
