//! Quadratic smooth objectives.
//!
//! Two flavours used throughout the experiments:
//!
//! - [`SeparableQuadratic`] — `f(x) = Σ_i a_i (x_i − c_i)²/2`: exactly the
//!   "separable, L-smooth, μ-strongly convex" `f` of problem (4), for
//!   which Theorem 1's `(1 − γμ)^k` rate is provable and tight.
//! - [`SparseQuadratic`] — `f(x) = ½ xᵀQx − bᵀx` with sparse SPD `Q`:
//!   coupled quadratics (lasso Gram matrices, discretised PDEs). Totally
//!   asynchronous convergence additionally needs `I − γQ` to contract in
//!   a weighted max norm, which holds when `Q` is strictly diagonally
//!   dominant; [`SparseQuadratic::gradient_step_inf_contraction`] reports
//!   the certified factor.

use crate::error::OptError;
use crate::traits::{SeparableSmooth, SmoothObjective};
use asynciter_numerics::sparse::CsrMatrix;

/// `f(x) = Σ_i a_i (x_i − c_i)² / 2` with `a_i > 0`.
#[derive(Debug, Clone)]
pub struct SeparableQuadratic {
    a: Vec<f64>,
    c: Vec<f64>,
}

impl SeparableQuadratic {
    /// Builds the separable quadratic with curvatures `a` and centres `c`.
    ///
    /// # Errors
    /// Errors on length mismatch, empty input, or nonpositive curvature.
    pub fn new(a: Vec<f64>, c: Vec<f64>) -> crate::Result<Self> {
        if a.is_empty() {
            return Err(OptError::InvalidParameter {
                name: "a",
                message: "empty curvature vector".into(),
            });
        }
        if a.len() != c.len() {
            return Err(OptError::DimensionMismatch {
                expected: a.len(),
                actual: c.len(),
                context: "SeparableQuadratic::new",
            });
        }
        if let Some((i, &v)) = a
            .iter()
            .enumerate()
            .find(|(_, &v)| !v.is_finite() || v <= 0.0)
        {
            return Err(OptError::InvalidParameter {
                name: "a",
                message: format!("curvature a[{i}] = {v} must be finite and > 0"),
            });
        }
        Ok(Self { a, c })
    }

    /// Random instance with curvatures log-uniform in `[mu, l]` (both
    /// attained) and centres standard normal. The spread `l/mu` is the
    /// condition number of `f`.
    ///
    /// # Errors
    /// Errors unless `0 < mu ≤ l` and `n ≥ 2`.
    pub fn random(n: usize, mu: f64, l: f64, seed: u64) -> crate::Result<Self> {
        if !(mu > 0.0 && l >= mu) {
            return Err(OptError::InvalidParameter {
                name: "mu/l",
                message: format!("need 0 < mu <= l, got mu={mu}, l={l}"),
            });
        }
        if n < 2 {
            return Err(OptError::InvalidParameter {
                name: "n",
                message: "need n >= 2 so both curvature extremes are attained".into(),
            });
        }
        let mut rng = asynciter_numerics::rng::rng(seed);
        let mut a = vec![0.0; n];
        a[0] = mu;
        a[1] = l;
        let (ln_mu, ln_l) = (mu.ln(), l.ln());
        for v in a.iter_mut().skip(2) {
            *v = asynciter_numerics::rng::uniform_vec(&mut rng, 1, 0.0, 1.0)[0]
                .mul_add(ln_l - ln_mu, ln_mu)
                .exp();
        }
        let c = asynciter_numerics::rng::normal_vec(&mut rng, n);
        Self::new(a, c)
    }

    /// The unconstrained minimiser (`x = c`).
    pub fn minimizer(&self) -> Vec<f64> {
        self.c.clone()
    }

    /// Curvature vector.
    pub fn curvatures(&self) -> &[f64] {
        &self.a
    }
}

impl SeparableSmooth for SeparableQuadratic {
    fn dim(&self) -> usize {
        self.a.len()
    }

    #[inline]
    fn value_component(&self, i: usize, v: f64) -> f64 {
        0.5 * self.a[i] * (v - self.c[i]) * (v - self.c[i])
    }

    #[inline]
    fn grad_component(&self, i: usize, v: f64) -> f64 {
        self.a[i] * (v - self.c[i])
    }

    fn curvature(&self) -> (f64, f64) {
        let mu = self.a.iter().copied().fold(f64::INFINITY, f64::min);
        let l = self.a.iter().copied().fold(0.0, f64::max);
        (mu, l)
    }
}

/// `f(x) = ½ xᵀQx − bᵀx` with sparse symmetric `Q`.
#[derive(Debug, Clone)]
pub struct SparseQuadratic {
    q: CsrMatrix,
    b: Vec<f64>,
    mu: f64,
    lipschitz: f64,
}

impl SparseQuadratic {
    /// Builds the quadratic; curvature bounds are certified from `Q` by
    /// Gershgorin discs: `μ ≥ min_i (q_ii − Σ_{j≠i}|q_ij|)`,
    /// `L ≤ max_i (q_ii + Σ_{j≠i}|q_ij|)`.
    ///
    /// # Errors
    /// Errors when `Q` is not square/symmetric, dimensions mismatch, or
    /// the Gershgorin lower bound is not positive (the asynchronous
    /// theory requires strong convexity *and* diagonal dominance).
    pub fn new(q: CsrMatrix, b: Vec<f64>) -> crate::Result<Self> {
        if q.rows() != q.cols() {
            return Err(OptError::DimensionMismatch {
                expected: q.rows(),
                actual: q.cols(),
                context: "SparseQuadratic::new (square)",
            });
        }
        if q.rows() != b.len() {
            return Err(OptError::DimensionMismatch {
                expected: q.rows(),
                actual: b.len(),
                context: "SparseQuadratic::new (rhs)",
            });
        }
        if !q.is_symmetric(1e-10) {
            return Err(OptError::InvalidProblem {
                message: "Q must be symmetric".into(),
            });
        }
        let diag = q.diagonal();
        let off = q.offdiag_abs_row_sums();
        let mu = diag
            .iter()
            .zip(&off)
            .map(|(d, o)| d - o)
            .fold(f64::INFINITY, f64::min);
        let lipschitz = diag
            .iter()
            .zip(&off)
            .map(|(d, o)| d + o)
            .fold(0.0, f64::max);
        if mu <= 0.0 {
            return Err(OptError::InvalidProblem {
                message: format!(
                    "Q is not strictly diagonally dominant (Gershgorin margin {mu:.3e}); \
                     totally asynchronous contraction is not certified"
                ),
            });
        }
        Ok(Self {
            q,
            b,
            mu,
            lipschitz,
        })
    }

    /// Random strictly diagonally dominant SPD instance: off-diagonal
    /// entries are random in `[−coupling, coupling]` on a sparse pattern
    /// with `degree` neighbours per row, and the diagonal is set to the
    /// off-diagonal absolute row sum plus a margin drawn from
    /// `[margin, 2·margin]`.
    ///
    /// # Errors
    /// Errors on nonpositive `margin`/`coupling` or `degree >= n`.
    pub fn random_diag_dominant(
        n: usize,
        degree: usize,
        coupling: f64,
        margin: f64,
        seed: u64,
    ) -> crate::Result<Self> {
        if !(margin > 0.0 && coupling > 0.0) {
            return Err(OptError::InvalidParameter {
                name: "margin/coupling",
                message: "must be positive".into(),
            });
        }
        if degree + 1 > n {
            return Err(OptError::InvalidParameter {
                name: "degree",
                message: format!("need degree + 1 <= n, got degree={degree}, n={n}"),
            });
        }
        let mut rng = asynciter_numerics::rng::rng(seed);
        let mut trip: Vec<(usize, usize, f64)> = Vec::new();
        // Symmetric pattern: for i < j pairs chosen from each row's random
        // neighbour draws.
        for i in 0..n {
            let picks = asynciter_numerics::rng::sample_indices(&mut rng, n, degree);
            for jj in picks {
                if jj <= i {
                    continue;
                }
                let v = asynciter_numerics::rng::uniform_vec(&mut rng, 1, -coupling, coupling)[0];
                trip.push((i, jj, v));
                trip.push((jj, i, v));
            }
        }
        // Accumulate |row sums| then set diagonals.
        let mut rowsum = vec![0.0; n];
        for &(r, _, v) in &trip {
            rowsum[r] += v.abs();
        }
        for (i, rs) in rowsum.iter().enumerate() {
            let m = asynciter_numerics::rng::uniform_vec(&mut rng, 1, margin, 2.0 * margin)[0];
            trip.push((i, i, rs + m));
        }
        let q = CsrMatrix::from_triplets(n, n, &trip)?;
        let b = asynciter_numerics::rng::normal_vec(&mut rng, n);
        Self::new(q, b)
    }

    /// The coupling matrix `Q`.
    pub fn q(&self) -> &CsrMatrix {
        &self.q
    }

    /// The linear term `b`.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Exact minimiser via dense Cholesky (small/medium `n` only).
    ///
    /// # Errors
    /// Propagates factorisation failures.
    pub fn minimizer_dense(&self) -> crate::Result<Vec<f64>> {
        Ok(self.q.to_dense().solve_spd(&self.b)?)
    }

    /// Certified `‖I − γQ‖_∞` (induced max-norm) — the totally
    /// asynchronous contraction factor of the gradient step:
    /// `max_i ( |1 − γ q_ii| + γ Σ_{j≠i} |q_ij| )`.
    ///
    /// # Panics
    /// Panics when `gamma <= 0`.
    pub fn gradient_step_inf_contraction(&self, gamma: f64) -> f64 {
        assert!(gamma > 0.0, "gradient_step_inf_contraction: gamma");
        let diag = self.q.diagonal();
        let off = self.q.offdiag_abs_row_sums();
        diag.iter()
            .zip(&off)
            .map(|(&d, &o)| (1.0 - gamma * d).abs() + gamma * o)
            .fold(0.0, f64::max)
    }
}

impl SmoothObjective for SparseQuadratic {
    fn dim(&self) -> usize {
        self.b.len()
    }

    fn value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "SparseQuadratic::value: dimension");
        let mut qx = vec![0.0; self.dim()];
        self.q.matvec(x, &mut qx);
        0.5 * asynciter_numerics::vecops::dot(x, &qx) - asynciter_numerics::vecops::dot(&self.b, x)
    }

    #[inline]
    fn grad_component(&self, i: usize, x: &[f64]) -> f64 {
        self.q.row_dot(i, x) - self.b[i]
    }

    fn grad(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "SparseQuadratic::grad: x dimension");
        assert_eq!(out.len(), self.dim(), "SparseQuadratic::grad: out dim");
        self.q.matvec(x, out);
        for (o, b) in out.iter_mut().zip(&self.b) {
            *o -= b;
        }
    }

    fn lipschitz(&self) -> f64 {
        self.lipschitz
    }

    fn strong_convexity(&self) -> f64 {
        self.mu
    }
}

/// `f(x) = ½ xᵀQx − bᵀx` with *dense* symmetric positive-definite `Q`
/// and **no diagonal-dominance requirement** — curvature bounds come from
/// power iteration instead of Gershgorin.
///
/// This is the deliberately "dangerous" quadratic: synchronous gradient
/// descent converges for every `γ < 2/L` (a Euclidean-norm property),
/// but totally asynchronous convergence needs `‖I − γQ‖_∞ < 1`, which a
/// non-dominant `Q` does not grant near `2/L`. The stability-boundary
/// experiment (X1) maps exactly where asynchronous iterations lose the
/// step sizes that synchronous ones keep.
#[derive(Debug, Clone)]
pub struct DenseQuadratic {
    q: asynciter_numerics::dense::DenseMatrix,
    b: Vec<f64>,
    mu: f64,
    lipschitz: f64,
}

impl DenseQuadratic {
    /// Builds the quadratic; `L = λ_max(Q)` by power iteration,
    /// `μ = L − λ_max(L·I − Q)` by a shifted power iteration.
    ///
    /// # Errors
    /// Errors when `Q` is not square/symmetric, dimensions mismatch, or
    /// `Q` is not (numerically) positive definite.
    pub fn new(q: asynciter_numerics::dense::DenseMatrix, b: Vec<f64>) -> crate::Result<Self> {
        if q.rows() != q.cols() {
            return Err(OptError::DimensionMismatch {
                expected: q.rows(),
                actual: q.cols(),
                context: "DenseQuadratic::new (square)",
            });
        }
        if q.rows() != b.len() {
            return Err(OptError::DimensionMismatch {
                expected: q.rows(),
                actual: b.len(),
                context: "DenseQuadratic::new (rhs)",
            });
        }
        if !q.is_symmetric(1e-9) {
            return Err(OptError::InvalidProblem {
                message: "Q must be symmetric".into(),
            });
        }
        let n = q.rows();
        let lipschitz = q.spectral_norm_symmetric(1e-12, 50_000);
        // Shifted power iteration: λ_max(L·I − Q) = L − λ_min(Q).
        let shifted = asynciter_numerics::dense::DenseMatrix::from_fn(n, n, |r, c| {
            let v = -q[(r, c)];
            if r == c {
                v + lipschitz
            } else {
                v
            }
        });
        let mu = lipschitz - shifted.spectral_norm_symmetric(1e-12, 50_000);
        if mu <= 0.0 {
            return Err(OptError::InvalidProblem {
                message: format!("Q is not positive definite (λ_min ≈ {mu:.3e})"),
            });
        }
        Ok(Self {
            q,
            b,
            mu,
            lipschitz,
        })
    }

    /// A random SPD instance with a planted eigenvalue spread and genuine
    /// off-diagonal mass: `Q = c·A Aᵀ/k + μ·I` with `A` standard normal
    /// `n × k`, scaled so `λ_max ≈ l`. Not diagonally dominant for small
    /// `k` — exactly the regime where max-norm contraction fails while
    /// the spectrum stays well-behaved.
    ///
    /// # Errors
    /// Propagates construction failures; requires `0 < mu < l`, `k ≥ 1`.
    pub fn random_spd(n: usize, k: usize, mu: f64, l: f64, seed: u64) -> crate::Result<Self> {
        if !(mu > 0.0 && l > mu) || k == 0 || n == 0 {
            return Err(OptError::InvalidParameter {
                name: "n/k/mu/l",
                message: format!("need n,k >= 1 and 0 < mu < l; got n={n}, k={k}, mu={mu}, l={l}"),
            });
        }
        let mut rng = asynciter_numerics::rng::rng(seed);
        let a: Vec<Vec<f64>> = (0..n)
            .map(|_| asynciter_numerics::rng::normal_vec(&mut rng, k))
            .collect();
        let mut g = asynciter_numerics::dense::DenseMatrix::from_fn(n, n, |r, c| {
            asynciter_numerics::vecops::dot(&a[r], &a[c]) / k as f64
        });
        // Scale the Gram part so that λ_max(Q) ≈ l after adding μ·I.
        let top = g.spectral_norm_symmetric(1e-10, 20_000);
        let scale = (l - mu) / top.max(1e-12);
        for r in 0..n {
            for c in 0..n {
                g[(r, c)] *= scale;
            }
            g[(r, r)] += mu;
        }
        let b = asynciter_numerics::rng::normal_vec(&mut rng, n);
        Self::new(g, b)
    }

    /// Exact minimiser via Cholesky.
    ///
    /// # Errors
    /// Propagates factorisation failures.
    pub fn minimizer(&self) -> crate::Result<Vec<f64>> {
        Ok(self.q.solve_spd(&self.b)?)
    }

    /// `‖I − γQ‖_∞` — the totally asynchronous contraction bound; `≥ 1`
    /// means asynchronous convergence is *not* certified at this step.
    ///
    /// # Panics
    /// Panics when `gamma <= 0`.
    pub fn gradient_step_inf_norm(&self, gamma: f64) -> f64 {
        assert!(gamma > 0.0, "gradient_step_inf_norm: gamma");
        let n = self.q.rows();
        let mut worst = 0.0_f64;
        for r in 0..n {
            let mut s = 0.0;
            for c in 0..n {
                let m = if r == c {
                    1.0 - gamma * self.q[(r, c)]
                } else {
                    -gamma * self.q[(r, c)]
                };
                s += m.abs();
            }
            worst = worst.max(s);
        }
        worst
    }
}

impl SmoothObjective for DenseQuadratic {
    fn dim(&self) -> usize {
        self.b.len()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let mut qx = vec![0.0; self.dim()];
        self.q.matvec(x, &mut qx);
        0.5 * asynciter_numerics::vecops::dot(x, &qx) - asynciter_numerics::vecops::dot(&self.b, x)
    }

    #[inline]
    fn grad_component(&self, i: usize, x: &[f64]) -> f64 {
        asynciter_numerics::vecops::dot(self.q.row(i), x) - self.b[i]
    }

    fn grad(&self, x: &[f64], out: &mut [f64]) {
        self.q.matvec(x, out);
        for (o, b) in out.iter_mut().zip(&self.b) {
            *o -= b;
        }
    }

    fn lipschitz(&self) -> f64 {
        self.lipschitz
    }

    fn strong_convexity(&self) -> f64 {
        self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;

    #[test]
    fn separable_gradient_and_minimizer() {
        let f = SeparableQuadratic::new(vec![2.0, 4.0], vec![1.0, -1.0]).unwrap();
        assert_eq!(SeparableSmooth::dim(&f), 2);
        assert_eq!(SeparableSmooth::grad_component(&f, 0, 2.0), 2.0);
        assert_eq!(SeparableSmooth::grad_component(&f, 1, 0.0), 4.0);
        assert_eq!(f.minimizer(), vec![1.0, -1.0]);
        assert_eq!(f.curvature(), (2.0, 4.0));
        // Value at minimiser is 0, elsewhere positive.
        assert_eq!(SeparableSmooth::value(&f, &[1.0, -1.0]), 0.0);
        assert!(SeparableSmooth::value(&f, &[0.0, 0.0]) > 0.0);
    }

    #[test]
    fn separable_random_attains_extremes() {
        let f = SeparableQuadratic::random(16, 0.5, 8.0, 3).unwrap();
        let (mu, l) = f.curvature();
        assert_eq!(mu, 0.5);
        assert_eq!(l, 8.0);
        assert!(f.curvatures().iter().all(|&a| (0.5..=8.0).contains(&a)));
    }

    #[test]
    fn separable_rejects_bad_input() {
        assert!(SeparableQuadratic::new(vec![], vec![]).is_err());
        assert!(SeparableQuadratic::new(vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(SeparableQuadratic::new(vec![0.0], vec![0.0]).is_err());
        assert!(SeparableQuadratic::random(1, 1.0, 2.0, 0).is_err());
        assert!(SeparableQuadratic::random(4, 2.0, 1.0, 0).is_err());
    }

    #[test]
    fn sparse_quadratic_gradient_matches_definition() {
        let q = tridiagonal(4, 4.0, -1.0);
        let b = vec![1.0, 0.0, -1.0, 2.0];
        let f = SparseQuadratic::new(q, b.clone()).unwrap();
        let x = [0.5, -0.5, 1.0, 0.0];
        let mut g = vec![0.0; 4];
        f.grad(&x, &mut g);
        for (i, &gi) in g.iter().enumerate() {
            assert!((gi - f.grad_component(i, &x)).abs() < 1e-15);
        }
        // Finite-difference check of component 1.
        let mut xp = x;
        let h = 1e-6;
        xp[1] += h;
        let fd = (f.value(&xp) - f.value(&x)) / h;
        assert!((fd - g[1]).abs() < 1e-4, "fd {fd} vs g {}", g[1]);
    }

    #[test]
    fn sparse_quadratic_curvature_bounds() {
        let q = tridiagonal(8, 4.0, -1.0);
        let f = SparseQuadratic::new(q, vec![0.0; 8]).unwrap();
        // Gershgorin: mu >= 4 - 2 = 2, L <= 4 + 2 = 6. True eigenvalues of
        // this Toeplitz matrix lie in (2, 6).
        assert_eq!(f.strong_convexity(), 2.0);
        assert_eq!(f.lipschitz(), 6.0);
    }

    #[test]
    fn sparse_rejects_non_dominant() {
        let q = tridiagonal(4, 1.0, -1.0); // margin 1 - 2 < 0 interior
        assert!(SparseQuadratic::new(q, vec![0.0; 4]).is_err());
    }

    #[test]
    fn sparse_rejects_asymmetric() {
        let q = CsrMatrix::from_triplets(2, 2, &[(0, 0, 3.0), (1, 1, 3.0), (0, 1, 1.0)]).unwrap();
        assert!(SparseQuadratic::new(q, vec![0.0; 2]).is_err());
    }

    #[test]
    fn minimizer_dense_zeroes_gradient() {
        let f = SparseQuadratic::random_diag_dominant(12, 3, 0.5, 1.0, 7).unwrap();
        let x = f.minimizer_dense().unwrap();
        let mut g = vec![0.0; 12];
        f.grad(&x, &mut g);
        assert!(
            vecops::norm_inf(&g) < 1e-9,
            "residual {}",
            vecops::norm_inf(&g)
        );
    }

    #[test]
    fn random_diag_dominant_is_dominant() {
        let f = SparseQuadratic::random_diag_dominant(20, 4, 1.0, 0.5, 9).unwrap();
        assert!(f.q().diagonal_dominance_margin() >= 0.5 - 1e-12);
        assert!(f.strong_convexity() > 0.0);
    }

    #[test]
    fn gradient_step_contracts_for_small_gamma() {
        let f = SparseQuadratic::random_diag_dominant(16, 3, 0.8, 1.0, 11).unwrap();
        let gamma = 1.0 / f.lipschitz();
        let alpha = f.gradient_step_inf_contraction(gamma);
        assert!(alpha < 1.0, "alpha = {alpha}");
        // Empirically verify on random pairs.
        let mut rng = asynciter_numerics::rng::rng(4);
        let x = asynciter_numerics::rng::normal_vec(&mut rng, 16);
        let y = asynciter_numerics::rng::normal_vec(&mut rng, 16);
        let mut gx = vec![0.0; 16];
        let mut gy = vec![0.0; 16];
        f.grad(&x, &mut gx);
        f.grad(&y, &mut gy);
        let tx: Vec<f64> = x.iter().zip(&gx).map(|(v, g)| v - gamma * g).collect();
        let ty: Vec<f64> = y.iter().zip(&gy).map(|(v, g)| v - gamma * g).collect();
        let num = vecops::max_abs_diff(&tx, &ty);
        let den = vecops::max_abs_diff(&x, &y);
        assert!(num <= alpha * den + 1e-12, "{num} > {alpha} * {den}");
    }

    #[test]
    fn dimension_errors() {
        let q = tridiagonal(3, 4.0, -1.0);
        assert!(SparseQuadratic::new(q, vec![0.0; 2]).is_err());
        assert!(SparseQuadratic::random_diag_dominant(4, 4, 1.0, 1.0, 0).is_err());
        assert!(SparseQuadratic::random_diag_dominant(4, 1, -1.0, 1.0, 0).is_err());
    }

    #[test]
    fn dense_quadratic_spectral_bounds() {
        let f = DenseQuadratic::random_spd(16, 3, 1.0, 10.0, 7).unwrap();
        assert!(
            (f.strong_convexity() - 1.0).abs() < 0.05,
            "mu {}",
            f.strong_convexity()
        );
        assert!((f.lipschitz() - 10.0).abs() < 0.5, "L {}", f.lipschitz());
        // Rayleigh quotients fall inside [mu, L].
        let mut rng = asynciter_numerics::rng::rng(9);
        for _ in 0..5 {
            let x = asynciter_numerics::rng::normal_vec(&mut rng, 16);
            let mut g = vec![0.0; 16];
            f.grad(&x, &mut g);
            // Qx = ∇f(x) + b, so xᵀQx = xᵀ∇f(x) + bᵀx.
            let num = vecops::dot(&x, &g) + vecops::dot(&f.b, &x);
            let den = vecops::dot(&x, &x);
            let rayleigh = num / den;
            assert!(rayleigh >= f.strong_convexity() - 1e-6);
            assert!(rayleigh <= f.lipschitz() + 1e-6);
        }
    }

    #[test]
    fn dense_quadratic_minimizer_zeroes_gradient() {
        let f = DenseQuadratic::random_spd(12, 4, 0.5, 6.0, 11).unwrap();
        let x = f.minimizer().unwrap();
        let mut g = vec![0.0; 12];
        f.grad(&x, &mut g);
        assert!(vecops::norm_inf(&g) < 1e-8);
    }

    #[test]
    fn dense_quadratic_low_rank_is_not_inf_contracting_near_two_over_l() {
        // Low-rank + ridge: dense coupling makes ‖I − γQ‖_∞ ≥ 1 long
        // before γ reaches the Euclidean stability edge 2/L.
        let f = DenseQuadratic::random_spd(24, 2, 0.5, 8.0, 13).unwrap();
        let near_edge = 1.8 / f.lipschitz();
        assert!(
            f.gradient_step_inf_norm(near_edge) > 1.0,
            "expected no inf-norm certificate near 2/L"
        );
        // But a sufficiently small step is certified even in inf norm
        // only if dominance-ish holds — not guaranteed here; merely check
        // the bound shrinks with γ.
        assert!(f.gradient_step_inf_norm(0.01) < f.gradient_step_inf_norm(near_edge));
    }

    #[test]
    fn dense_quadratic_validation() {
        let q = asynciter_numerics::dense::DenseMatrix::zeros(2, 3);
        assert!(DenseQuadratic::new(q, vec![0.0; 2]).is_err());
        let q = asynciter_numerics::dense::DenseMatrix::from_vec(2, 2, vec![1.0, 0.5, 0.4, 1.0])
            .unwrap();
        assert!(DenseQuadratic::new(q, vec![0.0; 2]).is_err()); // asymmetric
        assert!(DenseQuadratic::random_spd(8, 0, 1.0, 4.0, 0).is_err());
        assert!(DenseQuadratic::random_spd(8, 2, 4.0, 1.0, 0).is_err());
    }
}
