//! ℓ₂-regularised logistic regression.
//!
//! `f(x) = (1/m) Σ_h log(1 + exp(−z_h · a_hᵀx)) + (λ/2)‖x‖²` with labels
//! `z_h ∈ {−1, +1}` — the regularised empirical-risk form the paper's §V
//! motivates ("some loss function h gives a measure on how well a
//! prediction matches the target; we use the regularization function g to
//! avoid over-fitting"). It is `μ = λ` strongly convex and `L`-smooth
//! with `L ≤ λ + λ_max(AᵀA)/(4m)`.
//!
//! The gradient couples all components through the data, so this is the
//! workload for the *threaded* (Hogwild-style) runtime experiments rather
//! than the componentwise contraction theory.

use crate::error::OptError;
use crate::traits::{Operator, SmoothObjective};
use asynciter_numerics::dense::DenseMatrix;

/// A binary-classification logistic-regression objective.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// `m × n` feature matrix.
    a: DenseMatrix,
    /// Labels in `{−1, +1}`, length `m`.
    z: Vec<f64>,
    /// Ridge weight `λ > 0` (provides strong convexity).
    lambda: f64,
    /// Cached Lipschitz bound.
    lipschitz: f64,
}

impl LogisticRegression {
    /// Builds the objective.
    ///
    /// # Errors
    /// Errors on dimension mismatch, labels outside `{−1, +1}`, or
    /// nonpositive `λ`.
    pub fn new(a: DenseMatrix, z: Vec<f64>, lambda: f64) -> crate::Result<Self> {
        if a.rows() != z.len() {
            return Err(OptError::DimensionMismatch {
                expected: a.rows(),
                actual: z.len(),
                context: "LogisticRegression::new",
            });
        }
        if let Some((h, &v)) = z.iter().enumerate().find(|(_, &v)| v != 1.0 && v != -1.0) {
            return Err(OptError::InvalidParameter {
                name: "z",
                message: format!("label z[{h}] = {v} must be ±1"),
            });
        }
        if lambda.is_nan() || lambda <= 0.0 {
            return Err(OptError::InvalidParameter {
                name: "lambda",
                message: "must be positive (strong convexity)".into(),
            });
        }
        let m = a.rows() as f64;
        // λ_max(AᵀA) ≤ ‖A‖_F²; cheap and safe.
        let frob_sq: f64 = a.data().iter().map(|v| v * v).sum();
        let lipschitz = lambda + frob_sq / (4.0 * m);
        Ok(Self {
            a,
            z,
            lambda,
            lipschitz,
        })
    }

    /// Random two-Gaussian classification instance: class `+1` features
    /// centred at `+μ·1/√n`, class `−1` at `−μ·1/√n`, unit noise.
    ///
    /// # Errors
    /// Errors on degenerate sizes or nonpositive `λ`.
    pub fn random(n: usize, m: usize, sep: f64, lambda: f64, seed: u64) -> crate::Result<Self> {
        if n == 0 || m < 2 {
            return Err(OptError::InvalidParameter {
                name: "n/m",
                message: format!("need n >= 1, m >= 2; got n={n}, m={m}"),
            });
        }
        let mut rng = asynciter_numerics::rng::rng(seed);
        let shift = sep / (n as f64).sqrt();
        let mut data = Vec::with_capacity(m * n);
        let mut z = Vec::with_capacity(m);
        for h in 0..m {
            let label = if h % 2 == 0 { 1.0 } else { -1.0 };
            z.push(label);
            for _ in 0..n {
                data.push(label * shift + asynciter_numerics::rng::normal(&mut rng));
            }
        }
        let a = DenseMatrix::from_vec(m, n, data)?;
        Self::new(a, z, lambda)
    }

    /// Number of samples `m`.
    pub fn samples(&self) -> usize {
        self.a.rows()
    }

    /// The ridge weight.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Classification accuracy of parameters `x` on the training set.
    pub fn accuracy(&self, x: &[f64]) -> f64 {
        let mut correct = 0usize;
        for h in 0..self.a.rows() {
            let score = asynciter_numerics::vecops::dot(self.a.row(h), x);
            if score * self.z[h] > 0.0 {
                correct += 1;
            }
        }
        correct as f64 / self.a.rows() as f64
    }

    /// Rebuilds the objective over the same data with a different ridge
    /// weight (the data, and hence the coupling bound, are unchanged).
    ///
    /// # Errors
    /// Errors on nonpositive `λ`.
    pub fn with_lambda(&self, lambda: f64) -> crate::Result<Self> {
        Self::new(self.a.clone(), self.z.clone(), lambda)
    }

    /// Certified max-norm coupling of the data term: with
    /// `M_ij = (1/4m) Σ_h |a_hi||a_hj|` (an entrywise upper bound on the
    /// Hessian of the empirical loss, since `σ' ≤ 1/4`), returns
    /// `c = max_i Σ_{j≠i} M_ij` — the worst off-diagonal absolute row sum
    /// any Hessian `∇²f(x)` can have. Whenever `λ > c` the gradient-step
    /// operator of [`LogisticGradOperator`] is a certified max-norm
    /// contraction (see its docs).
    pub fn max_norm_coupling(&self) -> f64 {
        let m = self.a.rows();
        let n = self.a.cols();
        let mut off = vec![0.0; n];
        for h in 0..m {
            let row = self.a.row(h);
            let s: f64 = row.iter().map(|v| v.abs()).sum();
            for (o, &v) in off.iter_mut().zip(row) {
                // |a_hi| (S_h − |a_hi|) = Σ_{j≠i} |a_hi||a_hj|.
                *o += v.abs() * (s - v.abs());
            }
        }
        off.iter().fold(0.0_f64, |acc, &o| acc.max(o)) / (4.0 * m as f64)
    }

    /// Reference minimiser by (synchronous) gradient descent with step
    /// `1/L` run to gradient norm `tol`.
    ///
    /// # Errors
    /// [`OptError::DidNotConverge`] when `max_iter` is exhausted.
    pub fn reference_solution(&self, tol: f64, max_iter: usize) -> crate::Result<Vec<f64>> {
        let n = self.dim();
        let mut x = vec![0.0; n];
        let mut g = vec![0.0; n];
        let step = 1.0 / self.lipschitz();
        for _ in 0..max_iter {
            self.grad(&x, &mut g);
            let gn = asynciter_numerics::vecops::norm_inf(&g);
            if gn <= tol {
                return Ok(x);
            }
            asynciter_numerics::vecops::axpy(-step, &g, &mut x);
        }
        self.grad(&x, &mut g);
        Err(OptError::DidNotConverge {
            iterations: max_iter,
            residual: asynciter_numerics::vecops::norm_inf(&g),
        })
    }
}

/// Numerically-stable `log(1 + exp(t))`.
#[inline]
fn log1p_exp(t: f64) -> f64 {
    if t > 30.0 {
        t
    } else if t < -30.0 {
        t.exp()
    } else {
        t.exp().ln_1p()
    }
}

/// Numerically-stable logistic sigmoid `1/(1 + exp(−t))`.
#[inline]
fn sigmoid(t: f64) -> f64 {
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        let e = t.exp();
        e / (1.0 + e)
    }
}

impl SmoothObjective for LogisticRegression {
    fn dim(&self) -> usize {
        self.a.cols()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let m = self.a.rows();
        let mut loss = 0.0;
        for h in 0..m {
            let margin = self.z[h] * asynciter_numerics::vecops::dot(self.a.row(h), x);
            loss += log1p_exp(-margin);
        }
        loss / m as f64 + 0.5 * self.lambda * x.iter().map(|v| v * v).sum::<f64>()
    }

    fn grad_component(&self, i: usize, x: &[f64]) -> f64 {
        let m = self.a.rows();
        let mut g = 0.0;
        for h in 0..m {
            let row = self.a.row(h);
            let margin = self.z[h] * asynciter_numerics::vecops::dot(row, x);
            // d/dx_i log(1+exp(-z aᵀx)) = -z a_i σ(-z aᵀx).
            g -= self.z[h] * row[i] * sigmoid(-margin);
        }
        g / m as f64 + self.lambda * x[i]
    }

    fn grad(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "LogisticRegression::grad: x dim");
        assert_eq!(out.len(), self.dim(), "LogisticRegression::grad: out dim");
        out.fill(0.0);
        let m = self.a.rows();
        for h in 0..m {
            let row = self.a.row(h);
            let margin = self.z[h] * asynciter_numerics::vecops::dot(row, x);
            let w = -self.z[h] * sigmoid(-margin);
            asynciter_numerics::vecops::axpy(w, row, out);
        }
        for (o, &xi) in out.iter_mut().zip(x) {
            *o = *o / m as f64 + self.lambda * xi;
        }
    }

    fn lipschitz(&self) -> f64 {
        self.lipschitz
    }

    fn strong_convexity(&self) -> f64 {
        self.lambda
    }
}

// ---------------------------------------------------------------------------
// The canonical Session operator: certified asynchronous gradient descent
// ---------------------------------------------------------------------------

/// Gradient-descent fixed-point operator `G(x) = x − γ∇f(x)` for
/// ℓ₂-regularised logistic regression, with a *certified* max-norm
/// contraction factor — the canonical wiring that makes logistic
/// regression a first-class problem for every engine (gate matrix,
/// conformance fuzzer, cross-backend equivalence).
///
/// By the componentwise mean-value theorem,
/// `|G_i(x) − G_i(y)| ≤ (|1 − γH_ii| + γ Σ_{j≠i} |H_ij|) ‖x − y‖_∞` for
/// some Hessian `H = ∇²f(ξ)`. Since `σ' ∈ (0, 1/4]`, every Hessian obeys
/// `λ ≤ H_ii ≤ λ + M_ii` and `|H_ij| ≤ M_ij` with
/// `M = (1/4m) Σ_h |a_h||a_h|ᵀ`; for `γ ∈ (0, 2/(μ+L)]` this yields the
/// uniform bound `α = 1 − γ(λ − c)` with
/// `c = max_i Σ_{j≠i} M_ij` ([`LogisticRegression::max_norm_coupling`]).
/// Construction **fails unless `λ > c`** — only certifiably contractive
/// instances run under the totally asynchronous engines.
///
/// The gradient couples every component through the data, so the
/// per-sample weights `w_h = z_h σ(−z_h a_hᵀx)` are shared by all
/// components: [`Operator::update_active_with`] computes them once into
/// the caller-owned scratch (`scratch_len() == m`), making block updates
/// `O(m·n)` instead of `O(|block|·m·n)` with **zero** per-step heap
/// allocation. All evaluation paths are bit-identical to
/// [`Operator::component`].
#[derive(Debug, Clone)]
pub struct LogisticGradOperator {
    f: LogisticRegression,
    gamma: f64,
    alpha: f64,
}

impl LogisticGradOperator {
    /// Builds the operator, checking `γ ∈ (0, 2/(μ+L)]` and the
    /// contraction certificate `λ > c`.
    ///
    /// # Errors
    /// [`OptError::InvalidParameter`] on a step-size violation,
    /// [`OptError::InvalidProblem`] when the instance is not certifiably
    /// max-norm contractive (ridge too weak for the data coupling).
    pub fn new(f: LogisticRegression, gamma: f64) -> crate::Result<Self> {
        crate::proxgrad::validate_gamma(gamma, f.strong_convexity(), f.lipschitz())?;
        let coupling = f.max_norm_coupling();
        if coupling >= f.lambda() {
            return Err(OptError::InvalidProblem {
                message: format!(
                    "logistic instance is not certifiably max-norm contractive: \
                     coupling bound c = {coupling:.3e} >= lambda = {:.3e}; \
                     increase the ridge weight",
                    f.lambda()
                ),
            });
        }
        let alpha = 1.0 - gamma * (f.lambda() - coupling);
        Ok(Self { f, gamma, alpha })
    }

    /// Builds the operator at the largest certified step
    /// `γ = 2/(μ+L)` (Theorem 1's boundary).
    ///
    /// # Errors
    /// As [`LogisticGradOperator::new`].
    pub fn with_max_step(f: LogisticRegression) -> crate::Result<Self> {
        let gamma = crate::proxgrad::gamma_max(f.strong_convexity(), f.lipschitz());
        Self::new(f, gamma)
    }

    /// The canonical certified instance over random two-Gaussian data
    /// ([`LogisticRegression::random`]): ridge `1.5×` the data-coupling
    /// bound (floored at `0.5`, so tiny well-separated datasets stay
    /// numerically sane) at the maximal Theorem-1 step. This is **the**
    /// recipe shared by the gate matrix, the conformance problems and
    /// the cross-backend equivalence suites — one definition, so the
    /// certification margin can never drift between them.
    ///
    /// # Errors
    /// Propagates data-generation errors; the certification itself
    /// succeeds by construction (`λ > c`).
    pub fn certified_random(n: usize, m: usize, sep: f64, seed: u64) -> crate::Result<Self> {
        let data = LogisticRegression::random(n, m, sep, 1.0, seed)?;
        let data = data.with_lambda(1.5 * data.max_norm_coupling().max(0.5))?;
        Self::with_max_step(data)
    }

    /// Step size `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The certified max-norm contraction factor `α = 1 − γ(λ − c) < 1`.
    pub fn contraction_factor(&self) -> f64 {
        self.alpha
    }

    /// The underlying objective.
    pub fn f(&self) -> &LogisticRegression {
        &self.f
    }

    /// The operator's fixed point — the regularised empirical-risk
    /// minimiser — via the synchronous reference solver.
    ///
    /// # Errors
    /// [`OptError::DidNotConverge`] on stall (cannot happen for certified
    /// instances; defensive).
    pub fn solve_exact(&self) -> crate::Result<Vec<f64>> {
        self.f.reference_solution(1e-12, 2_000_000)
    }

    /// `w_h = z_h σ(−z_h a_hᵀ x)` for every sample, into `weights`.
    #[inline]
    fn sample_weights(&self, x: &[f64], weights: &mut [f64]) {
        for (h, w) in weights.iter_mut().enumerate() {
            let row = self.f.a.row(h);
            let margin = self.f.z[h] * asynciter_numerics::vecops::dot(row, x);
            *w = self.f.z[h] * sigmoid(-margin);
        }
    }

    /// `G_i(x)` from precomputed sample weights — the shared kernel of
    /// every evaluation path (bit-identical across all of them).
    #[inline]
    fn component_from_weights(&self, i: usize, x: &[f64], weights: &[f64]) -> f64 {
        let mut g = 0.0;
        for (h, &w) in weights.iter().enumerate() {
            g -= w * self.f.a.row(h)[i];
        }
        x[i] - self.gamma * (g / weights.len() as f64 + self.f.lambda * x[i])
    }
}

impl Operator for LogisticGradOperator {
    fn dim(&self) -> usize {
        self.f.dim()
    }

    fn component(&self, i: usize, x: &[f64]) -> f64 {
        let m = self.f.samples();
        let mut g = 0.0;
        for h in 0..m {
            let row = self.f.a.row(h);
            let margin = self.f.z[h] * asynciter_numerics::vecops::dot(row, x);
            let w = self.f.z[h] * sigmoid(-margin);
            g -= w * row[i];
        }
        x[i] - self.gamma * (g / m as f64 + self.f.lambda * x[i])
    }

    fn scratch_len(&self) -> usize {
        self.f.samples()
    }

    fn update_active_with(
        &self,
        x: &[f64],
        active: &[usize],
        out: &mut [f64],
        scratch: &mut [f64],
    ) {
        assert_eq!(x.len(), self.dim(), "LogisticGradOperator: x dim");
        assert_eq!(out.len(), self.dim(), "LogisticGradOperator: out dim");
        let weights = &mut scratch[..self.f.samples()];
        self.sample_weights(x, weights);
        for &i in active {
            out[i] = self.component_from_weights(i, x, weights);
        }
    }

    fn apply_with(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "LogisticGradOperator: x dim");
        assert_eq!(out.len(), self.dim(), "LogisticGradOperator: out dim");
        let weights = &mut scratch[..self.f.samples()];
        self.sample_weights(x, weights);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.component_from_weights(i, x, weights);
        }
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        let mut scratch = vec![0.0; self.scratch_len()];
        self.apply_with(x, out, &mut scratch);
    }

    fn residual_inf_with(&self, x: &[f64], scratch: &mut [f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "LogisticGradOperator: x dim");
        let weights = &mut scratch[..self.f.samples()];
        self.sample_weights(x, weights);
        let mut r = 0.0_f64;
        for i in 0..self.dim() {
            r = r.max((x[i] - self.component_from_weights(i, x, weights)).abs());
        }
        r
    }

    fn residual_inf(&self, x: &[f64]) -> f64 {
        let mut scratch = vec![0.0; self.scratch_len()];
        self.residual_inf_with(x, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> LogisticRegression {
        LogisticRegression::random(4, 60, 3.0, 0.1, 5).unwrap()
    }

    #[test]
    fn stable_helpers() {
        assert!((log1p_exp(0.0) - std::f64::consts::LN_2).abs() < 1e-15);
        assert!((log1p_exp(100.0) - 100.0).abs() < 1e-12);
        assert!(log1p_exp(-100.0) < 1e-40);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-100.0) < 1e-40);
        // σ(t) + σ(−t) = 1.
        for t in [-5.0, -0.3, 0.0, 2.0, 40.0] {
            assert!((sigmoid(t) + sigmoid(-t) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let f = toy();
        let mut rng = asynciter_numerics::rng::rng(1);
        let x = asynciter_numerics::rng::normal_vec(&mut rng, 4);
        let mut g = vec![0.0; 4];
        f.grad(&x, &mut g);
        let h = 1e-6;
        for i in 0..4 {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (f.value(&xp) - f.value(&xm)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-5, "i={i}: fd {fd} vs {}", g[i]);
            assert!((f.grad_component(i, &x) - g[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn reference_solution_has_small_gradient_and_learns() {
        let f = toy();
        let x = f.reference_solution(1e-10, 200_000).unwrap();
        let mut g = vec![0.0; 4];
        f.grad(&x, &mut g);
        assert!(asynciter_numerics::vecops::norm_inf(&g) <= 1e-10);
        // Well-separated classes → high training accuracy.
        assert!(f.accuracy(&x) > 0.85, "accuracy {}", f.accuracy(&x));
    }

    #[test]
    fn strong_convexity_is_lambda() {
        let f = toy();
        assert_eq!(f.strong_convexity(), 0.1);
        assert!(f.lipschitz() > 0.1);
    }

    #[test]
    fn value_decreases_along_negative_gradient() {
        let f = toy();
        let x = vec![0.5; 4];
        let mut g = vec![0.0; 4];
        f.grad(&x, &mut g);
        let mut y = x.clone();
        asynciter_numerics::vecops::axpy(-1e-3, &g, &mut y);
        assert!(f.value(&y) < f.value(&x));
    }

    /// A certifiably contractive instance: ridge above the coupling.
    fn certified() -> LogisticGradOperator {
        LogisticGradOperator::certified_random(6, 40, 2.0, 11).unwrap()
    }

    #[test]
    fn grad_operator_rejects_uncertified_instances() {
        let data = LogisticRegression::random(6, 40, 2.0, 1.0, 11).unwrap();
        let c = data.max_norm_coupling();
        assert!(c > 0.0);
        // Ridge below the coupling bound: not certifiable.
        let weak = data.with_lambda((0.5 * c).max(1e-6)).unwrap();
        assert!(LogisticGradOperator::with_max_step(weak).is_err());
        // Step size outside Theorem 1's range.
        let strong = data.with_lambda(2.0 * c).unwrap();
        let gmax = crate::proxgrad::gamma_max(strong.strong_convexity(), strong.lipschitz());
        assert!(LogisticGradOperator::new(strong, 1.1 * gmax).is_err());
    }

    #[test]
    fn grad_operator_paths_are_bit_identical() {
        let op = certified();
        let n = op.dim();
        let mut rng = asynciter_numerics::rng::rng(3);
        let x = asynciter_numerics::rng::normal_vec(&mut rng, n);
        let mut scratch = vec![0.0; op.scratch_len()];
        let mut via_update = vec![0.0; n];
        let active: Vec<usize> = (0..n).collect();
        op.update_active_with(&x, &active, &mut via_update, &mut scratch);
        let mut via_apply = vec![0.0; n];
        op.apply_with(&x, &mut via_apply, &mut scratch);
        for i in 0..n {
            let direct = op.component(i, &x);
            assert_eq!(direct.to_bits(), via_update[i].to_bits(), "update i={i}");
            assert_eq!(direct.to_bits(), via_apply[i].to_bits(), "apply i={i}");
        }
        // Residual paths agree bitwise too.
        assert_eq!(
            op.residual_inf(&x).to_bits(),
            op.residual_inf_with(&x, &mut scratch).to_bits()
        );
    }

    #[test]
    fn grad_operator_contraction_certificate_holds() {
        let op = certified();
        let n = op.dim();
        let alpha = op.contraction_factor();
        assert!((0.0..1.0).contains(&alpha), "alpha = {alpha}");
        let mut rng = asynciter_numerics::rng::rng(7);
        let mut scratch = vec![0.0; op.scratch_len()];
        for _ in 0..20 {
            let x = asynciter_numerics::rng::normal_vec(&mut rng, n);
            let y = asynciter_numerics::rng::normal_vec(&mut rng, n);
            let mut tx = vec![0.0; n];
            let mut ty = vec![0.0; n];
            op.apply_with(&x, &mut tx, &mut scratch);
            op.apply_with(&y, &mut ty, &mut scratch);
            let lhs = asynciter_numerics::vecops::max_abs_diff(&tx, &ty);
            let rhs = alpha * asynciter_numerics::vecops::max_abs_diff(&x, &y);
            assert!(lhs <= rhs + 1e-12, "{lhs} > alpha * {rhs}");
        }
    }

    #[test]
    fn grad_operator_fixed_point_is_the_minimiser() {
        let op = certified();
        let xstar = op.solve_exact().unwrap();
        // x* is a fixed point of G …
        assert!(op.residual_inf(&xstar) < 1e-10);
        // … and synchronous iteration reaches it.
        let n = op.dim();
        let mut x = vec![0.0; n];
        let mut next = vec![0.0; n];
        let mut scratch = vec![0.0; op.scratch_len()];
        for _ in 0..2_000 {
            op.apply_with(&x, &mut next, &mut scratch);
            std::mem::swap(&mut x, &mut next);
        }
        assert!(asynciter_numerics::vecops::max_abs_diff(&x, &xstar) < 1e-9);
    }

    #[test]
    fn coupling_is_data_only() {
        let data = LogisticRegression::random(5, 30, 1.5, 0.3, 9).unwrap();
        let c1 = data.max_norm_coupling();
        let c2 = data.with_lambda(7.0).unwrap().max_norm_coupling();
        assert_eq!(c1.to_bits(), c2.to_bits(), "coupling must ignore lambda");
    }

    #[test]
    fn rejects_invalid_input() {
        let a = DenseMatrix::zeros(3, 2);
        assert!(LogisticRegression::new(a.clone(), vec![1.0, -1.0], 0.1).is_err());
        assert!(LogisticRegression::new(a.clone(), vec![1.0, 0.5, -1.0], 0.1).is_err());
        assert!(LogisticRegression::new(a, vec![1.0, -1.0, 1.0], 0.0).is_err());
        assert!(LogisticRegression::random(0, 5, 1.0, 0.1, 0).is_err());
    }
}
