//! ℓ₂-regularised logistic regression.
//!
//! `f(x) = (1/m) Σ_h log(1 + exp(−z_h · a_hᵀx)) + (λ/2)‖x‖²` with labels
//! `z_h ∈ {−1, +1}` — the regularised empirical-risk form the paper's §V
//! motivates ("some loss function h gives a measure on how well a
//! prediction matches the target; we use the regularization function g to
//! avoid over-fitting"). It is `μ = λ` strongly convex and `L`-smooth
//! with `L ≤ λ + λ_max(AᵀA)/(4m)`.
//!
//! The gradient couples all components through the data, so this is the
//! workload for the *threaded* (Hogwild-style) runtime experiments rather
//! than the componentwise contraction theory.

use crate::error::OptError;
use crate::traits::SmoothObjective;
use asynciter_numerics::dense::DenseMatrix;

/// A binary-classification logistic-regression objective.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// `m × n` feature matrix.
    a: DenseMatrix,
    /// Labels in `{−1, +1}`, length `m`.
    z: Vec<f64>,
    /// Ridge weight `λ > 0` (provides strong convexity).
    lambda: f64,
    /// Cached Lipschitz bound.
    lipschitz: f64,
}

impl LogisticRegression {
    /// Builds the objective.
    ///
    /// # Errors
    /// Errors on dimension mismatch, labels outside `{−1, +1}`, or
    /// nonpositive `λ`.
    pub fn new(a: DenseMatrix, z: Vec<f64>, lambda: f64) -> crate::Result<Self> {
        if a.rows() != z.len() {
            return Err(OptError::DimensionMismatch {
                expected: a.rows(),
                actual: z.len(),
                context: "LogisticRegression::new",
            });
        }
        if let Some((h, &v)) = z.iter().enumerate().find(|(_, &v)| v != 1.0 && v != -1.0) {
            return Err(OptError::InvalidParameter {
                name: "z",
                message: format!("label z[{h}] = {v} must be ±1"),
            });
        }
        if lambda.is_nan() || lambda <= 0.0 {
            return Err(OptError::InvalidParameter {
                name: "lambda",
                message: "must be positive (strong convexity)".into(),
            });
        }
        let m = a.rows() as f64;
        // λ_max(AᵀA) ≤ ‖A‖_F²; cheap and safe.
        let frob_sq: f64 = a.data().iter().map(|v| v * v).sum();
        let lipschitz = lambda + frob_sq / (4.0 * m);
        Ok(Self {
            a,
            z,
            lambda,
            lipschitz,
        })
    }

    /// Random two-Gaussian classification instance: class `+1` features
    /// centred at `+μ·1/√n`, class `−1` at `−μ·1/√n`, unit noise.
    ///
    /// # Errors
    /// Errors on degenerate sizes or nonpositive `λ`.
    pub fn random(n: usize, m: usize, sep: f64, lambda: f64, seed: u64) -> crate::Result<Self> {
        if n == 0 || m < 2 {
            return Err(OptError::InvalidParameter {
                name: "n/m",
                message: format!("need n >= 1, m >= 2; got n={n}, m={m}"),
            });
        }
        let mut rng = asynciter_numerics::rng::rng(seed);
        let shift = sep / (n as f64).sqrt();
        let mut data = Vec::with_capacity(m * n);
        let mut z = Vec::with_capacity(m);
        for h in 0..m {
            let label = if h % 2 == 0 { 1.0 } else { -1.0 };
            z.push(label);
            for _ in 0..n {
                data.push(label * shift + asynciter_numerics::rng::normal(&mut rng));
            }
        }
        let a = DenseMatrix::from_vec(m, n, data)?;
        Self::new(a, z, lambda)
    }

    /// Number of samples `m`.
    pub fn samples(&self) -> usize {
        self.a.rows()
    }

    /// The ridge weight.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Classification accuracy of parameters `x` on the training set.
    pub fn accuracy(&self, x: &[f64]) -> f64 {
        let mut correct = 0usize;
        for h in 0..self.a.rows() {
            let score = asynciter_numerics::vecops::dot(self.a.row(h), x);
            if score * self.z[h] > 0.0 {
                correct += 1;
            }
        }
        correct as f64 / self.a.rows() as f64
    }

    /// Reference minimiser by (synchronous) gradient descent with step
    /// `1/L` run to gradient norm `tol`.
    ///
    /// # Errors
    /// [`OptError::DidNotConverge`] when `max_iter` is exhausted.
    pub fn reference_solution(&self, tol: f64, max_iter: usize) -> crate::Result<Vec<f64>> {
        let n = self.dim();
        let mut x = vec![0.0; n];
        let mut g = vec![0.0; n];
        let step = 1.0 / self.lipschitz();
        for _ in 0..max_iter {
            self.grad(&x, &mut g);
            let gn = asynciter_numerics::vecops::norm_inf(&g);
            if gn <= tol {
                return Ok(x);
            }
            asynciter_numerics::vecops::axpy(-step, &g, &mut x);
        }
        self.grad(&x, &mut g);
        Err(OptError::DidNotConverge {
            iterations: max_iter,
            residual: asynciter_numerics::vecops::norm_inf(&g),
        })
    }
}

/// Numerically-stable `log(1 + exp(t))`.
#[inline]
fn log1p_exp(t: f64) -> f64 {
    if t > 30.0 {
        t
    } else if t < -30.0 {
        t.exp()
    } else {
        t.exp().ln_1p()
    }
}

/// Numerically-stable logistic sigmoid `1/(1 + exp(−t))`.
#[inline]
fn sigmoid(t: f64) -> f64 {
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        let e = t.exp();
        e / (1.0 + e)
    }
}

impl SmoothObjective for LogisticRegression {
    fn dim(&self) -> usize {
        self.a.cols()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let m = self.a.rows();
        let mut loss = 0.0;
        for h in 0..m {
            let margin = self.z[h] * asynciter_numerics::vecops::dot(self.a.row(h), x);
            loss += log1p_exp(-margin);
        }
        loss / m as f64 + 0.5 * self.lambda * x.iter().map(|v| v * v).sum::<f64>()
    }

    fn grad_component(&self, i: usize, x: &[f64]) -> f64 {
        let m = self.a.rows();
        let mut g = 0.0;
        for h in 0..m {
            let row = self.a.row(h);
            let margin = self.z[h] * asynciter_numerics::vecops::dot(row, x);
            // d/dx_i log(1+exp(-z aᵀx)) = -z a_i σ(-z aᵀx).
            g -= self.z[h] * row[i] * sigmoid(-margin);
        }
        g / m as f64 + self.lambda * x[i]
    }

    fn grad(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "LogisticRegression::grad: x dim");
        assert_eq!(out.len(), self.dim(), "LogisticRegression::grad: out dim");
        out.fill(0.0);
        let m = self.a.rows();
        for h in 0..m {
            let row = self.a.row(h);
            let margin = self.z[h] * asynciter_numerics::vecops::dot(row, x);
            let w = -self.z[h] * sigmoid(-margin);
            asynciter_numerics::vecops::axpy(w, row, out);
        }
        for (o, &xi) in out.iter_mut().zip(x) {
            *o = *o / m as f64 + self.lambda * xi;
        }
    }

    fn lipschitz(&self) -> f64 {
        self.lipschitz
    }

    fn strong_convexity(&self) -> f64 {
        self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> LogisticRegression {
        LogisticRegression::random(4, 60, 3.0, 0.1, 5).unwrap()
    }

    #[test]
    fn stable_helpers() {
        assert!((log1p_exp(0.0) - std::f64::consts::LN_2).abs() < 1e-15);
        assert!((log1p_exp(100.0) - 100.0).abs() < 1e-12);
        assert!(log1p_exp(-100.0) < 1e-40);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-100.0) < 1e-40);
        // σ(t) + σ(−t) = 1.
        for t in [-5.0, -0.3, 0.0, 2.0, 40.0] {
            assert!((sigmoid(t) + sigmoid(-t) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let f = toy();
        let mut rng = asynciter_numerics::rng::rng(1);
        let x = asynciter_numerics::rng::normal_vec(&mut rng, 4);
        let mut g = vec![0.0; 4];
        f.grad(&x, &mut g);
        let h = 1e-6;
        for i in 0..4 {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (f.value(&xp) - f.value(&xm)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-5, "i={i}: fd {fd} vs {}", g[i]);
            assert!((f.grad_component(i, &x) - g[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn reference_solution_has_small_gradient_and_learns() {
        let f = toy();
        let x = f.reference_solution(1e-10, 200_000).unwrap();
        let mut g = vec![0.0; 4];
        f.grad(&x, &mut g);
        assert!(asynciter_numerics::vecops::norm_inf(&g) <= 1e-10);
        // Well-separated classes → high training accuracy.
        assert!(f.accuracy(&x) > 0.85, "accuracy {}", f.accuracy(&x));
    }

    #[test]
    fn strong_convexity_is_lambda() {
        let f = toy();
        assert_eq!(f.strong_convexity(), 0.1);
        assert!(f.lipschitz() > 0.1);
    }

    #[test]
    fn value_decreases_along_negative_gradient() {
        let f = toy();
        let x = vec![0.5; 4];
        let mut g = vec![0.0; 4];
        f.grad(&x, &mut g);
        let mut y = x.clone();
        asynciter_numerics::vecops::axpy(-1e-3, &g, &mut y);
        assert!(f.value(&y) < f.value(&x));
    }

    #[test]
    fn rejects_invalid_input() {
        let a = DenseMatrix::zeros(3, 2);
        assert!(LogisticRegression::new(a.clone(), vec![1.0, -1.0], 0.1).is_err());
        assert!(LogisticRegression::new(a.clone(), vec![1.0, 0.5, -1.0], 0.1).is_err());
        assert!(LogisticRegression::new(a, vec![1.0, -1.0, 1.0], 0.0).is_err());
        assert!(LogisticRegression::random(0, 5, 1.0, 0.1, 0).is_err());
    }
}
