//! Property-based tests for operators and problems.

use asynciter_opt::bellman_ford::{BellmanFordOperator, Graph};
use asynciter_opt::network_flow::NetworkFlowProblem;
use asynciter_opt::prox::{BoxConstraint, ElasticNet, L2Squared, ZeroReg, L1};
use asynciter_opt::proxgrad::{gamma_max, gradient_step_factor, SeparableProxGrad};
use asynciter_opt::quadratic::{SeparableQuadratic, SparseQuadratic};
use asynciter_opt::traits::{Operator, SeparableProx, SmoothObjective};
use proptest::prelude::*;

proptest! {
    #[test]
    fn proxes_are_nonexpansive(
        u in -50.0..50.0f64,
        v in -50.0..50.0f64,
        gamma in 0.01..5.0f64,
        lam in 0.0..3.0f64,
    ) {
        let proxes: Vec<Box<dyn SeparableProx>> = vec![
            Box::new(ZeroReg),
            Box::new(L1::new(lam)),
            Box::new(L2Squared::new(lam)),
            Box::new(ElasticNet::new(lam, 0.5 * lam)),
            Box::new(BoxConstraint::uniform(-1.0, 2.0)),
        ];
        for p in &proxes {
            let pu = p.prox_component(0, u, gamma);
            let pv = p.prox_component(0, v, gamma);
            prop_assert!((pu - pv).abs() <= (u - v).abs() + 1e-12);
        }
    }

    #[test]
    fn prox_decreases_moreau_objective(
        v in -20.0..20.0f64,
        gamma in 0.05..2.0f64,
        lam in 0.01..2.0f64,
        probe in -20.0..20.0f64,
    ) {
        // prox minimises g(u) + (u − v)²/(2γ): any probe point must score
        // at least as high.
        let g = L1::new(lam);
        let p = g.prox_component(0, v, gamma);
        let obj = |u: f64| lam * u.abs() + (u - v) * (u - v) / (2.0 * gamma);
        prop_assert!(obj(p) <= obj(probe) + 1e-12);
    }

    #[test]
    fn soft_threshold_shrinks_towards_zero(
        v in -30.0..30.0f64,
        gamma in 0.01..3.0f64,
        lam in 0.0..3.0f64,
    ) {
        let p = L1::new(lam).prox_component(0, v, gamma);
        prop_assert!(p.abs() <= v.abs() + 1e-15);
        prop_assert!(p * v >= 0.0, "sign flip: {v} -> {p}");
    }

    #[test]
    fn gradient_step_factor_below_one_inside_range(
        mu in 0.05..2.0f64,
        spread in 1.0..20.0f64,
        frac in 0.05..1.0f64,
    ) {
        let l = mu * spread;
        let gamma = frac * gamma_max(mu, l);
        let alpha = gradient_step_factor(gamma, mu, l);
        prop_assert!(alpha < 1.0, "alpha = {alpha}");
        prop_assert!(alpha <= 1.0 - gamma * mu + 1e-12);
    }

    #[test]
    fn separable_proxgrad_contracts_pointwise(
        seed in 0u64..500,
        frac in 0.1..1.0f64,
        lam in 0.0..1.0f64,
    ) {
        let f = SeparableQuadratic::random(6, 0.5, 4.0, seed).unwrap();
        let gamma = frac * gamma_max(0.5, 4.0);
        let op = SeparableProxGrad::new(f, L1::new(lam), gamma).unwrap();
        let alpha = op.contraction_factor();
        let mut rng = asynciter_numerics::rng::rng(seed ^ 0xABCD);
        let x = asynciter_numerics::rng::normal_vec(&mut rng, 6);
        let y = asynciter_numerics::rng::normal_vec(&mut rng, 6);
        let mut tx = vec![0.0; 6];
        let mut ty = vec![0.0; 6];
        op.apply(&x, &mut tx);
        op.apply(&y, &mut ty);
        let num = asynciter_numerics::vecops::max_abs_diff(&tx, &ty);
        let den = asynciter_numerics::vecops::max_abs_diff(&x, &y);
        prop_assert!(num <= alpha * den + 1e-10);
    }

    #[test]
    fn sparse_quadratic_gershgorin_brackets_rayleigh(
        seed in 0u64..200,
    ) {
        let f = SparseQuadratic::random_diag_dominant(10, 3, 0.5, 1.0, seed).unwrap();
        // Rayleigh quotient of random vectors lies in [mu, L].
        let mut rng = asynciter_numerics::rng::rng(seed ^ 0x1234);
        let x = asynciter_numerics::rng::normal_vec(&mut rng, 10);
        let mut qx = vec![0.0; 10];
        f.q().matvec(&x, &mut qx);
        let num = asynciter_numerics::vecops::dot(&x, &qx);
        let den = asynciter_numerics::vecops::dot(&x, &x);
        let rayleigh = num / den;
        prop_assert!(rayleigh >= f.strong_convexity() - 1e-9);
        prop_assert!(rayleigh <= f.lipschitz() + 1e-9);
    }

    #[test]
    fn bellman_ford_sync_sweeps_match_dijkstra(
        seed in 0u64..100,
        n in 5usize..30,
        dest_frac in 0.0..1.0f64,
    ) {
        let g = Graph::random_geometric(n, 0.4, seed).unwrap();
        let dest = ((n as f64 - 1.0) * dest_frac) as usize;
        let op = BellmanFordOperator::new(g, dest).unwrap();
        let exact = op.exact();
        let mut x = op.initial_estimate();
        let mut next = vec![0.0; n];
        for _ in 0..n + 1 {
            op.apply(&x, &mut next);
            std::mem::swap(&mut x, &mut next);
        }
        for i in 0..n {
            prop_assert!((x[i] - exact[i]).abs() < 1e-9, "node {i}");
        }
    }

    #[test]
    fn network_flow_exact_prices_balance(
        seed in 0u64..100,
        n in 3usize..14,
        extra in 0usize..10,
    ) {
        let prob = NetworkFlowProblem::random(n, extra, seed).unwrap();
        let p = prob.exact_prices(0).unwrap();
        prop_assert!(prob.balance_residual(&p) < 1e-7,
            "residual {}", prob.balance_residual(&p));
    }

    #[test]
    fn network_flow_grounding_invariance(
        seed in 0u64..50,
    ) {
        // The optimal flows are independent of which node is grounded.
        let prob = NetworkFlowProblem::random(8, 6, seed).unwrap();
        let f0 = prob.flows(&prob.exact_prices(0).unwrap());
        let f1 = prob.flows(&prob.exact_prices(prob.num_nodes() - 1).unwrap());
        for (a, b) in f0.iter().zip(&f1) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn update_active_subset_of_apply(
        seed in 0u64..100,
        mask in prop::collection::vec(prop::bool::ANY, 8),
    ) {
        let f = SparseQuadratic::random_diag_dominant(8, 2, 0.4, 1.0, seed).unwrap();
        let gamma = 0.5 * gamma_max(f.strong_convexity(), f.lipschitz());
        let op = asynciter_opt::proxgrad::SparseProxGrad::new(f, L1::new(0.1), gamma).unwrap();
        let mut rng = asynciter_numerics::rng::rng(seed ^ 0x77);
        let x = asynciter_numerics::rng::normal_vec(&mut rng, 8);
        let mut full = vec![0.0; 8];
        op.apply(&x, &mut full);
        let active: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        let mut partial = x.clone();
        op.update_active(&x, &active, &mut partial);
        for i in 0..8 {
            if active.contains(&i) {
                prop_assert!((partial[i] - full[i]).abs() < 1e-15);
            } else {
                prop_assert!((partial[i] - x[i]).abs() < 1e-15);
            }
        }
    }
}
