//! Pooled scratch workspaces for the multi-tenant service layer.
//!
//! PR 5 made every engine's per-step loop allocation-free by threading
//! caller-owned scratch buffers through the operator seam
//! (`scratch_len` / `update_active_with` / …). A multi-tenant service
//! re-opens that hole at a coarser granularity: if every admitted job
//! allocates its own `x0` staging vector and operator scratch, a
//! 1000-tenant sweep performs thousands of heap round trips even though
//! each individual run is alloc-free inside. [`ScratchPool`] closes it:
//! workers lease a workspace per job, the pool recycles buffers across
//! tenants, and — after warm-up — lease/return cycles perform **zero**
//! heap allocations (locked by the workspace counting-allocator test).
//!
//! The isolation contract is deliberate and simple: a clean lease is
//! bitwise indistinguishable from a fresh `vec![0.0; len]`. That makes
//! buffer recycling invisible to the bit-identity conformance oracles —
//! a tenant whose job starts from a pooled workspace must produce the
//! exact bits of a solo run. The pool also carries the PR's planted
//! negative control: [`ScratchPool::inject_dirty_leases`] skips the
//! zero-fill on reuse, leaking the previous tenant's data into the next
//! lease, which the tenant-equivalence oracle must catch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A recycling pool of `f64` workspaces shared by service workers.
///
/// Buffers are handed out as [`ScratchLease`]s and returned on drop.
/// Thread-safe: free-running workers lease concurrently; the free list
/// is a mutex-guarded stack (leases are held across a whole job, so the
/// lock is far off any hot path).
///
/// ```
/// use asynciter_runtime::scratch::ScratchPool;
///
/// let pool = ScratchPool::new();
/// {
///     let mut ws = pool.lease(4);
///     ws[0] = 1.0;
/// } // returned here
/// let ws = pool.lease(4);
/// assert_eq!(&ws[..], &[0.0; 4], "a clean lease is zero-filled");
/// assert_eq!(pool.stats().reused, 1);
/// ```
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<Vec<f64>>>,
    leases: AtomicU64,
    reused: AtomicU64,
    created: AtomicU64,
    dirty: AtomicBool,
}

/// Counters describing pool behaviour (observability + the alloc-free
/// assertions in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total leases handed out.
    pub leases: u64,
    /// Leases satisfied by recycling a returned buffer.
    pub reused: u64,
    /// Leases that had to allocate a fresh buffer.
    pub created: u64,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// **Negative control only.** When enabled, reused buffers are
    /// handed out *without* the zero-fill — the previous tenant's data
    /// leaks into the next lease. This plants the cross-tenant
    /// isolation bug that the service equivalence oracle must detect
    /// (`--inject-scratch-leak`); it exists so the oracle's power is a
    /// tested fact rather than an assumption.
    pub fn inject_dirty_leases(&self, enabled: bool) {
        self.dirty.store(enabled, Ordering::Relaxed);
    }

    /// Whether the planted dirty-lease bug is active.
    pub fn dirty_leases_injected(&self) -> bool {
        self.dirty.load(Ordering::Relaxed)
    }

    /// Leases a workspace of exactly `len` zeros (bitwise equal to
    /// `vec![0.0; len]` — unless the dirty-lease bug is injected).
    /// Returns the buffer to the pool when the lease drops.
    pub fn lease(&self, len: usize) -> ScratchLease<'_> {
        let recycled = self.free.lock().expect("scratch pool poisoned").pop();
        self.leases.fetch_add(1, Ordering::Relaxed);
        let buf = match recycled {
            Some(mut buf) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                if self.dirty.load(Ordering::Relaxed) {
                    // Planted bug: keep whatever the previous tenant
                    // left behind; only grow with zeros if too short.
                    buf.resize(len, 0.0);
                    buf.truncate(len);
                } else {
                    buf.clear();
                    buf.resize(len, 0.0);
                }
                buf
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                vec![0.0; len]
            }
        };
        ScratchLease { pool: self, buf }
    }

    /// Pre-populates the pool with `count` buffers of capacity `len`,
    /// so subsequent leases up to that size never allocate.
    pub fn warm(&self, count: usize, len: usize) {
        let mut free = self.free.lock().expect("scratch pool poisoned");
        for _ in 0..count {
            self.created.fetch_add(1, Ordering::Relaxed);
            free.push(vec![0.0; len]);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            leases: self.leases.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            created: self.created.load(Ordering::Relaxed),
        }
    }

    /// Buffers currently sitting in the free list.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("scratch pool poisoned").len()
    }

    fn give_back(&self, buf: Vec<f64>) {
        self.free.lock().expect("scratch pool poisoned").push(buf);
    }
}

/// An exclusive workspace borrowed from a [`ScratchPool`]. Derefs to
/// `[f64]`; the buffer returns to the pool (contents intact — zeroing
/// happens on the *next* clean lease) when this drops.
#[derive(Debug)]
pub struct ScratchLease<'p> {
    pool: &'p ScratchPool,
    buf: Vec<f64>,
}

impl std::ops::Deref for ScratchLease<'_> {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        &self.buf
    }
}

impl std::ops::DerefMut for ScratchLease<'_> {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        self.pool.give_back(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_leases_are_bitwise_fresh() {
        let pool = ScratchPool::new();
        {
            let mut ws = pool.lease(8);
            for (i, v) in ws.iter_mut().enumerate() {
                *v = i as f64 + 0.5;
            }
        }
        // Same size, smaller, and larger reuses must all come back as
        // exact zeros (larger forces a zero-extend of the same buffer).
        for len in [8usize, 3, 16] {
            let ws = pool.lease(len);
            assert_eq!(&ws[..], vec![0.0f64; len].as_slice(), "len {len}");
        }
    }

    #[test]
    fn buffers_recycle_instead_of_reallocating() {
        let pool = ScratchPool::new();
        drop(pool.lease(16));
        drop(pool.lease(16));
        drop(pool.lease(8));
        let stats = pool.stats();
        assert_eq!(stats.leases, 3);
        assert_eq!(stats.created, 1, "one backing buffer serves all three");
        assert_eq!(stats.reused, 2);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn warm_pool_serves_without_creating() {
        let pool = ScratchPool::new();
        pool.warm(2, 32);
        drop(pool.lease(32));
        drop(pool.lease(16));
        assert_eq!(pool.stats().created, 2, "warm-up only");
        assert_eq!(pool.stats().reused, 2);
    }

    #[test]
    fn injected_dirty_lease_leaks_previous_contents() {
        let pool = ScratchPool::new();
        {
            let mut ws = pool.lease(4);
            ws.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        }
        pool.inject_dirty_leases(true);
        let ws = pool.lease(4);
        assert_eq!(&ws[..], &[1.0, 2.0, 3.0, 4.0], "the leak is real");
        drop(ws);
        pool.inject_dirty_leases(false);
        let ws = pool.lease(4);
        assert_eq!(&ws[..], &[0.0; 4], "clean again once disabled");
    }

    #[test]
    fn concurrent_leases_are_exclusive() {
        let pool = ScratchPool::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let mut ws = pool.lease(64);
                        ws.fill(t as f64 + 1.0);
                        let expect = t as f64 + 1.0;
                        assert!(ws.iter().all(|&v| v == expect), "exclusive ownership");
                    }
                });
            }
        });
        assert_eq!(pool.stats().leases, 200);
        assert!(pool.stats().created <= 4, "at most one buffer per thread");
    }
}
