//! Distributed termination detection for asynchronous iterations
//! (in the spirit of El Baz \[22\]).
//!
//! Detecting convergence of an asynchronous iteration is harder than for
//! synchronous methods: there is no global step at which "everyone is
//! done", and a locally small residual can be destroyed by a stale
//! update still propagating. Reference \[22\] anchors detection to the
//! macro-iteration structure: activity must stay quiescent long enough
//! that every component has been refreshed from post-quiescence data.
//!
//! This module implements that idea for the shared-memory runtime:
//!
//! - each worker tracks the max change of its block over consecutive
//!   updates and declares itself *quiet* after `streak` consecutive
//!   updates below `eps`;
//! - a detector terminates the run once **all** workers are quiet *and*
//!   have remained quiet for `margin` further global updates (the
//!   flush window standing in for "one more macro-iteration") —
//!   guaranteeing every component was recomputed from post-quiescence
//!   values before stopping.
//!
//! Experiment E10 compares this against the naive rule (stop at first
//! all-quiet instant) and measures premature stops.

use crate::error::RuntimeError;
use crate::shared::SharedVec;
use asynciter_models::partition::Partition;
use asynciter_opt::traits::Operator;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Per-worker quiescence tracker.
#[derive(Debug, Clone)]
pub struct QuiescenceTracker {
    eps: f64,
    required: u64,
    streak: u64,
}

impl QuiescenceTracker {
    /// Quiet after `required` consecutive updates with block change
    /// `≤ eps`.
    ///
    /// # Panics
    /// Panics when `eps < 0` or `required == 0`.
    pub fn new(eps: f64, required: u64) -> Self {
        assert!(eps >= 0.0, "QuiescenceTracker: eps");
        assert!(required > 0, "QuiescenceTracker: required");
        Self {
            eps,
            required,
            streak: 0,
        }
    }

    /// Feeds the max change of the worker's latest block update; returns
    /// the updated quiet status.
    pub fn observe(&mut self, change: f64) -> bool {
        if change <= self.eps {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        self.streak >= self.required
    }

    /// Current quiet status.
    pub fn is_quiet(&self) -> bool {
        self.streak >= self.required
    }
}

/// Number of quiet updates every worker must contribute *inside* the
/// flush window before detection may fire. One fresh report is not
/// enough: a worker's solo scheduling burst advances the global counter
/// without any information exchange, so a peer's single report can sit
/// exactly at the window edge while everything it ever saw predates the
/// burst. Requiring several in-window reports from everyone forces real
/// interleaving — the epoch/macro-iteration intuition ("each machine
/// made at least two updates on the interval") made safe for shared
/// memory with a little slack.
pub const REPORTS_IN_WINDOW: usize = 8;

/// Shared detector state.
#[derive(Debug)]
pub struct QuiescenceDetector {
    quiet: Vec<AtomicBool>,
    /// Ring of each worker's recent report indices (single writer per
    /// ring, so a plain rotating cursor is race-free).
    report_ring: Vec<Vec<AtomicU64>>,
    cursor: Vec<AtomicU64>,
    /// Global update index of the most recent non-quiet report.
    last_disturbance: AtomicU64,
}

impl QuiescenceDetector {
    /// Detector over `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            quiet: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            report_ring: (0..workers)
                .map(|_| (0..REPORTS_IN_WINDOW).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            cursor: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            last_disturbance: AtomicU64::new(0),
        }
    }

    /// Worker `w` reports its quiet status after global update `j`.
    pub fn report(&self, w: usize, j: u64, quiet: bool) {
        self.quiet[w].store(quiet, Ordering::Release);
        let c = self.cursor[w].fetch_add(1, Ordering::AcqRel) as usize;
        self.report_ring[w][c % REPORTS_IN_WINDOW].store(j, Ordering::Release);
        if !quiet {
            self.last_disturbance.fetch_max(j, Ordering::AcqRel);
        }
    }

    /// True when all workers are quiet, no disturbance has been reported
    /// within the last `margin` global updates before `current_j`, *and*
    /// every worker has contributed [`REPORTS_IN_WINDOW`] quiet reports
    /// inside that window.
    ///
    /// The last clause is the crux of sound detection under scheduling
    /// skew. A worker that went quiet and was then descheduled carries a
    /// stale flag — the others may meanwhile converge *against its stale
    /// block*, and stopping there is premature (its block is no longer in
    /// equilibrium with theirs). A *single* fresh report is still not
    /// enough (see [`REPORTS_IN_WINDOW`]); demanding several reports from
    /// everyone inside the window guarantees genuine interleaving: every
    /// worker recomputed its block repeatedly while every other worker's
    /// post-quiescence values were visible — the \[22\] principle that
    /// quiescence must survive a full exchange of post-quiescence
    /// information.
    pub fn detect(&self, current_j: u64, margin: u64) -> bool {
        if !self.quiet.iter().all(|q| q.load(Ordering::Acquire)) {
            return false;
        }
        let window_start = current_j.saturating_sub(margin);
        if self.last_disturbance.load(Ordering::Acquire) > window_start {
            return false;
        }
        if margin > 0 {
            for ring in &self.report_ring {
                // The oldest entry in the ring is the worker's
                // REPORTS_IN_WINDOW-th most recent report; all ring
                // entries must fall inside the window.
                let oldest = ring
                    .iter()
                    .map(|r| r.load(Ordering::Acquire))
                    .min()
                    .expect("ring nonempty");
                if oldest < window_start {
                    return false;
                }
            }
        }
        current_j.saturating_sub(self.last_disturbance.load(Ordering::Acquire)) >= margin
    }
}

/// Configuration of a run with distributed termination detection.
#[derive(Debug, Clone)]
pub struct TermConfig {
    /// Number of workers.
    pub workers: usize,
    /// Hard budget of global block updates (safety net).
    pub max_updates: u64,
    /// Quiescence threshold on per-update block change.
    pub eps: f64,
    /// Consecutive quiet updates a worker needs before declaring quiet.
    pub streak: u64,
    /// Post-quiescence flush window in global updates (`0` = the naive
    /// rule: stop at the first all-quiet instant).
    pub margin: u64,
}

/// Result of a terminated run.
#[derive(Debug)]
pub struct TermRunResult {
    /// Final iterate.
    pub final_x: Vec<f64>,
    /// Global updates performed until detection (or budget exhaustion).
    pub total_updates: u64,
    /// True when the detector fired (false = budget exhausted).
    pub detected: bool,
    /// Final fixed-point residual (oracle quality measure).
    pub final_residual: f64,
    /// Wall-clock duration.
    pub wall: Duration,
}

/// Runs the shared-memory asynchronous iteration with \[22\]-style
/// termination detection.
///
/// # Errors
/// Dimension/parameter validation failures.
pub fn run_with_termination(
    op: &dyn Operator,
    x0: &[f64],
    partition: &Partition,
    cfg: &TermConfig,
) -> crate::Result<TermRunResult> {
    let n = op.dim();
    if x0.len() != n || partition.n() != n {
        return Err(RuntimeError::DimensionMismatch {
            expected: n,
            actual: if x0.len() != n {
                x0.len()
            } else {
                partition.n()
            },
            context: "run_with_termination",
        });
    }
    if partition.num_machines() != cfg.workers || cfg.workers == 0 {
        return Err(RuntimeError::InvalidParameter {
            name: "workers",
            message: "partition machine count must equal cfg.workers > 0".into(),
        });
    }
    if cfg.max_updates == 0 || cfg.streak == 0 {
        return Err(RuntimeError::InvalidParameter {
            name: "max_updates/streak",
            message: "must be positive".into(),
        });
    }

    let shared = SharedVec::new(x0);
    let counter = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let detected = AtomicBool::new(false);
    let detector = QuiescenceDetector::new(cfg.workers);
    let blocks: Vec<Vec<usize>> = (0..cfg.workers)
        .map(|w| partition.components_of(w))
        .collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (w, block) in blocks.iter().enumerate() {
            let shared = &shared;
            let counter = &counter;
            let stop = &stop;
            let detected = &detected;
            let detector = &detector;
            scope.spawn(move || {
                let mut vals = vec![0.0; n];
                let mut new_vals = Vec::with_capacity(block.len());
                let mut tracker = QuiescenceTracker::new(cfg.eps, cfg.streak);
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    shared.snapshot(&mut vals);
                    new_vals.clear();
                    let mut change = 0.0_f64;
                    for &i in block {
                        let v = op.component(i, &vals);
                        change = change.max((v - vals[i]).abs());
                        new_vals.push(v);
                    }
                    let j = counter.fetch_add(1, Ordering::SeqCst) + 1;
                    if j > cfg.max_updates {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                    for (&i, &v) in block.iter().zip(&new_vals) {
                        shared.write(i, v, j);
                    }
                    let quiet = tracker.observe(change);
                    detector.report(w, j, quiet);
                    // Worker 0 doubles as the detection coordinator.
                    if w == 0 && detector.detect(j, cfg.margin) {
                        detected.store(true, Ordering::Relaxed);
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                    // A quiet worker is recomputing an unchanged block; it
                    // has nothing to add until a peer disturbs it. Yield
                    // the scheduling quantum so the detector's in-window
                    // report requirement (fine interleaving of *all*
                    // workers) is met promptly instead of after whole
                    // quanta of redundant spinning — on a single core this
                    // bounds detection latency by scheduler rotations, not
                    // by hundreds of thousands of no-op updates.
                    if quiet {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    let wall = start.elapsed();

    let mut final_x = vec![0.0; n];
    shared.snapshot(&mut final_x);
    Ok(TermRunResult {
        final_residual: op.residual_inf(&final_x),
        final_x,
        total_updates: counter.load(Ordering::Relaxed).min(cfg.max_updates),
        detected: detected.load(Ordering::Relaxed),
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn tracker_streak_logic() {
        let mut t = QuiescenceTracker::new(0.1, 3);
        assert!(!t.observe(0.05));
        assert!(!t.observe(0.05));
        assert!(t.observe(0.05));
        assert!(t.is_quiet());
        assert!(!t.observe(0.5)); // reset
        assert!(!t.is_quiet());
    }

    #[test]
    fn detector_requires_all_quiet_and_margin() {
        let d = QuiescenceDetector::new(2);
        d.report(0, 10, true);
        assert!(!d.detect(10, 0), "worker 1 never reported");
        d.report(1, 12, false);
        assert!(!d.detect(12, 0));
        d.report(1, 20, true);
        assert!(d.detect(20, 0), "naive rule fires at first all-quiet");
        assert!(
            !d.detect(20, 16),
            "margin 16 not yet elapsed (last disturbance 12)"
        );
        // A single quiet report per worker inside the window is NOT
        // enough; each must contribute REPORTS_IN_WINDOW of them.
        assert!(!d.detect(30, 16), "stale quiet flags must not count");
        for k in 0..REPORTS_IN_WINDOW as u64 {
            d.report(0, 40 + 2 * k, true);
            d.report(1, 41 + 2 * k, true);
        }
        // Window [40, 56+]: all 8 reports of each worker inside, last
        // disturbance at 12 far outside.
        assert!(d.detect(40 + 2 * REPORTS_IN_WINDOW as u64, 16));
        // A fresh disturbance blocks again.
        d.report(1, 60, false);
        assert!(!d.detect(61, 16));
    }

    #[test]
    fn terminated_run_is_actually_converged() {
        let op = jacobi(32);
        let p = Partition::blocks(32, 4).unwrap();
        // Budget far above any plausible detection point: on a loaded
        // single-core host, workers that hog the CPU can spend hundreds
        // of thousands of updates before the detector's margin elapses.
        let cfg = TermConfig {
            workers: 4,
            max_updates: 8_000_000,
            eps: 1e-12,
            streak: 4,
            margin: 64,
        };
        let res = run_with_termination(&op, &vec![0.0; 32], &p, &cfg).unwrap();
        assert!(res.detected, "detector never fired");
        assert!(
            res.final_residual < 1e-9,
            "premature stop: residual {}",
            res.final_residual
        );
        assert!(res.total_updates < 500_000);
    }

    #[test]
    fn budget_exhaustion_reports_not_detected() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 2).unwrap();
        let cfg = TermConfig {
            workers: 2,
            max_updates: 10,
            eps: 0.0, // unreachable quiescence
            streak: 5,
            margin: 100,
        };
        let res = run_with_termination(&op, &[0.0; 16], &p, &cfg).unwrap();
        assert!(!res.detected);
        assert!(res.total_updates <= 10);
    }

    #[test]
    fn validation_errors() {
        let op = jacobi(8);
        let p = Partition::blocks(8, 2).unwrap();
        let mut cfg = TermConfig {
            workers: 3,
            max_updates: 10,
            eps: 1e-6,
            streak: 1,
            margin: 0,
        };
        assert!(run_with_termination(&op, &[0.0; 8], &p, &cfg).is_err());
        cfg.workers = 2;
        cfg.streak = 0;
        assert!(run_with_termination(&op, &[0.0; 8], &p, &cfg).is_err());
    }
}
