//! The concurrent cluster engine: free-running worker threads owning
//! shards, exchanging labelled block messages through the
//! [`crate::transport`] seam.
//!
//! This is the real-hardware counterpart of the deterministic
//! [`crate::cluster`] event loop. Each worker owns one
//! [`Partition`] block and a
//! full local view of its best knowledge of everyone else; workers run
//! unsynchronised on OS threads, drain their transport mailbox, apply a
//! block update, and post their block to every peer — with hold / drop
//! / duplicate faults injected at the transport seam
//! ([`crate::transport::FaultEndpoint`]) and flexible partial exchange
//! at the sender. Thread interleaving (and therefore the executed
//! schedule) is genuinely nondeterministic.
//!
//! ## Why the recorded trace still replays bit for bit
//!
//! Correctness is anchored per run, not per configuration: every run
//! records the producing-step schedule it *actually executed*, and that
//! trace replays bit-identically through the Definition-1 `Replay`
//! engine. Two ingredients make this work on racy threads:
//!
//! 1. **A global atomic step counter linearises the trace.** A worker
//!    acquires its step number `j` with a `SeqCst` `fetch_add` *after*
//!    draining its mailbox. Every label in its view is either one of its
//!    own earlier steps (program order) or the producing step `k`
//!    carried by a received message — and the sender acquired `k`
//!    before sending, the channel delivery happens-before the receive,
//!    and the receive precedes this `fetch_add`. Hence every label is
//!    `< j`: condition (a) holds *by construction* (asserted, never
//!    clamped — clamping would silently break bit-identity).
//! 2. **The step halves are shared with the sequential engine.**
//!    Receiving is [`apply_message`] and producing is [`produce_block`]
//!    — byte-identical arithmetic to [`crate::cluster`], which is also
//!    why `ThreadedClusterEngine` with one worker reproduces the
//!    sequential `Cluster { workers: 1 }` run bit for bit.
//!
//! Termination is residual-targeted (worker 0 checks its local view
//! every [`ThreadedConfig::check_every`] of its own updates) and/or
//! quiescence-detected via the El Baz \[22\]-style
//! [`QuiescenceDetector`] from [`crate::termination`] — never a tuned
//! fixed budget, so runs stay green on an oversubscribed 1-core CI
//! host.

use crate::cluster::{apply_message, produce_block, ApplyPolicy, ClusterStats};
use crate::error::RuntimeError;
use crate::termination::{QuiescenceDetector, QuiescenceTracker};
use crate::transport::{
    BlockMessage, Endpoint, FaultEndpoint, FaultPlan, MpscTransport, SendStats, Transport,
};
use asynciter_models::partition::Partition;
use asynciter_models::trace::{LabelStore, Trace};
use asynciter_numerics::rng::rng;
use asynciter_opt::traits::Operator;
use rand::RngExt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Quiescence-based termination rule: a worker is *quiet* after
/// `streak` consecutive updates changing its block by at most `eps`,
/// and the run stops once every worker has stayed quiet over a
/// `margin`-step flush window (see [`crate::termination`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quiesce {
    /// Block-change threshold for a quiet update.
    pub eps: f64,
    /// Consecutive quiet updates before a worker declares itself quiet.
    pub streak: u64,
    /// Post-quiescence flush window in global steps.
    pub margin: u64,
}

/// Configuration of a threaded cluster run.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Global step budget (safety net — prefer a residual target or a
    /// quiescence rule; fixed budgets are scheduler-dependent).
    pub max_steps: u64,
    /// Post a block message every this many local updates.
    pub exchange_every: u64,
    /// Receiver policy.
    pub apply_policy: ApplyPolicy,
    /// Probability a send is held behind later traffic (out-of-order).
    pub hold_prob: f64,
    /// Maximum sends a held message waits behind.
    pub hold_extra: u64,
    /// Probability a send is dropped.
    pub drop_prob: f64,
    /// Probability a send is duplicated.
    pub dup_prob: f64,
    /// Probability a posted message is a partial (subset) exchange.
    pub partial_prob: f64,
    /// Base RNG seed; each worker derives independent fault and
    /// partial-exchange streams from it.
    pub seed: u64,
    /// Label retention of the recorded trace.
    pub record: LabelStore,
    /// Stop once worker 0's local-view residual falls to this value.
    pub target_residual: Option<f64>,
    /// Residual-target check period (worker-0 updates).
    pub check_every: u64,
    /// Optional quiescence-detection termination rule.
    pub quiesce: Option<Quiesce>,
}

impl ThreadedConfig {
    /// A benign default: exchange every update, no faults, trace label
    /// minima only.
    pub fn new(max_steps: u64) -> Self {
        Self {
            max_steps,
            exchange_every: 1,
            apply_policy: ApplyPolicy::AsReceived,
            hold_prob: 0.0,
            hold_extra: 8,
            drop_prob: 0.0,
            dup_prob: 0.0,
            partial_prob: 0.0,
            seed: 0,
            record: LabelStore::MinOnly,
            target_residual: None,
            check_every: 64,
            quiesce: None,
        }
    }

    /// Sets the channel fault probabilities.
    #[must_use]
    pub fn with_faults(mut self, hold: f64, drop: f64, dup: f64) -> Self {
        self.hold_prob = hold;
        self.drop_prob = drop;
        self.dup_prob = dup;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the label retention of the recorded trace.
    #[must_use]
    pub fn with_record(mut self, store: LabelStore) -> Self {
        self.record = store;
        self
    }

    /// Sets a residual stopping target.
    #[must_use]
    pub fn with_target_residual(mut self, eps: f64) -> Self {
        self.target_residual = Some(eps);
        self
    }
}

/// Result of a threaded cluster run.
#[derive(Debug, Clone)]
pub struct ThreadedRunResult {
    /// Consensus vector: each component taken from its owner's view.
    pub consensus: Vec<f64>,
    /// Fixed-point residual of the consensus vector.
    pub final_residual: f64,
    /// Merged channel statistics (sender- and receiver-side).
    pub stats: ClusterStats,
    /// The executed schedule: one step per block update, labels = the
    /// producing steps of the values read (replays bit-identically).
    pub trace: Trace,
    /// Global steps actually executed.
    pub steps_run: u64,
    /// Block updates per worker.
    pub per_worker_updates: Vec<u64>,
    /// True when a residual target or quiescence detection fired before
    /// the step budget.
    pub stopped_early: bool,
    /// Partial (subset) messages posted.
    pub partial_publishes: u64,
    /// Component values applied out of partial messages.
    pub partial_reads: u64,
    /// Freshness checks performed (`KeepFreshest`).
    pub constraint_checked: u64,
    /// Stale applications discarded (`KeepFreshest`).
    pub constraint_violations: u64,
    /// Wall-clock duration of the parallel section.
    pub wall: Duration,
}

struct Event {
    j: u64,
    worker: usize,
    min_label: u64,
    labels: Vec<u64>, // empty unless LabelStore::Full
}

struct WorkerLog {
    events: Vec<Event>,
    view: Vec<f64>,
    my_updates: u64,
    send_stats: SendStats,
    delivered: u64,
    partial_publishes: u64,
    partial_reads: u64,
    constraint_checked: u64,
    constraint_violations: u64,
}

/// Derives an independent per-worker RNG stream from the base seed.
fn substream(seed: u64, worker: u64, stream: u64) -> u64 {
    seed ^ worker
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// The concurrent cluster engine. See module docs.
#[derive(Debug, Default)]
pub struct ThreadedClusterEngine;

impl ThreadedClusterEngine {
    /// Runs the threaded cluster over the in-process
    /// [`MpscTransport`].
    ///
    /// # Errors
    /// Dimension/parameter validation failures, or a non-finite iterate
    /// (operator divergence).
    pub fn run(
        op: &dyn Operator,
        x0: &[f64],
        partition: &Partition,
        cfg: &ThreadedConfig,
    ) -> crate::Result<ThreadedRunResult> {
        Self::run_with(op, x0, partition, cfg, &mut MpscTransport)
    }

    /// Runs the threaded cluster over an arbitrary [`Transport`] —
    /// the socket-ready entry point.
    ///
    /// # Errors
    /// Dimension/parameter validation failures, or a non-finite iterate
    /// (operator divergence).
    pub fn run_with(
        op: &dyn Operator,
        x0: &[f64],
        partition: &Partition,
        cfg: &ThreadedConfig,
        transport: &mut dyn Transport,
    ) -> crate::Result<ThreadedRunResult> {
        validate(op, x0, partition, cfg)?;
        let n = op.dim();
        let workers = partition.num_machines();
        let blocks: Vec<Vec<usize>> = (0..workers).map(|w| partition.components_of(w)).collect();
        let plan = FaultPlan {
            hold_prob: cfg.hold_prob,
            hold_extra: cfg.hold_extra,
            drop_prob: cfg.drop_prob,
            dup_prob: cfg.dup_prob,
        };
        let endpoints: Vec<FaultEndpoint> = transport
            .connect(workers)
            .into_iter()
            .enumerate()
            .map(|(w, ep)| FaultEndpoint::new(ep, plan, substream(cfg.seed, w as u64, 1)))
            .collect();

        let counter = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let converged = AtomicBool::new(false);
        let detector = cfg.quiesce.map(|_| QuiescenceDetector::new(workers));
        let detector_ref = detector.as_ref();

        let start = Instant::now();
        let mut logs: Vec<crate::Result<WorkerLog>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (w, ep) in endpoints.into_iter().enumerate() {
                let block = &blocks[w];
                let counter = &counter;
                let stop = &stop;
                let converged = &converged;
                handles.push(scope.spawn(move || {
                    worker_loop(
                        op,
                        cfg,
                        workers,
                        w,
                        block,
                        x0,
                        ep,
                        counter,
                        stop,
                        converged,
                        detector_ref,
                    )
                }));
            }
            for h in handles {
                logs.push(h.join().expect("worker panicked"));
            }
        });
        let wall = start.elapsed();

        let mut worker_logs = Vec::with_capacity(workers);
        for log in logs {
            worker_logs.push(log?);
        }

        // Merge the per-worker event logs into the (dense, by the
        // counter contract) global trace.
        let mut events: Vec<Event> = worker_logs
            .iter_mut()
            .flat_map(|l| l.events.drain(..))
            .collect();
        events.sort_unstable_by_key(|e| e.j);
        let mut trace = Trace::new(n, cfg.record);
        let mut min_only_labels = vec![0u64; n];
        for (idx, e) in events.iter().enumerate() {
            debug_assert_eq!(e.j as usize, idx + 1, "non-dense step numbering");
            if cfg.record == LabelStore::Full {
                trace.push_step(&blocks[e.worker], &e.labels);
            } else {
                min_only_labels.fill(e.min_label);
                trace.push_step(&blocks[e.worker], &min_only_labels);
            }
        }
        let steps_run = events.len() as u64;

        let mut consensus = vec![0.0; n];
        for (w, block) in blocks.iter().enumerate() {
            for &i in block {
                consensus[i] = worker_logs[w].view[i];
            }
        }
        let final_residual = op.residual_inf(&consensus);

        let mut stats = ClusterStats::default();
        for l in &worker_logs {
            stats.sent += l.send_stats.sent;
            stats.dropped += l.send_stats.dropped;
            stats.duplicated += l.send_stats.duplicated;
            stats.held += l.send_stats.held;
            stats.delivered += l.delivered;
            stats.discarded_stale += l.constraint_violations;
        }

        Ok(ThreadedRunResult {
            consensus,
            final_residual,
            stats,
            trace,
            steps_run,
            per_worker_updates: worker_logs.iter().map(|l| l.my_updates).collect(),
            stopped_early: converged.load(Ordering::Relaxed),
            partial_publishes: worker_logs.iter().map(|l| l.partial_publishes).sum(),
            partial_reads: worker_logs.iter().map(|l| l.partial_reads).sum(),
            constraint_checked: worker_logs.iter().map(|l| l.constraint_checked).sum(),
            constraint_violations: worker_logs.iter().map(|l| l.constraint_violations).sum(),
            wall,
        })
    }
}

// Deliberately flat for the same reason as `produce_step`: each
// argument is a distinct piece of shared engine state.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    op: &dyn Operator,
    cfg: &ThreadedConfig,
    workers: usize,
    w: usize,
    block: &[usize],
    x0: &[f64],
    mut ep: FaultEndpoint,
    counter: &AtomicU64,
    stop: &AtomicBool,
    converged: &AtomicBool,
    detector: Option<&QuiescenceDetector>,
) -> crate::Result<WorkerLog> {
    let n = op.dim();
    // Per-worker buffers allocated once (view, labels, block output,
    // operator scratch, old-block cache): the step loop below is
    // heap-allocation-free apart from message payloads (owned by the
    // transport) and trace-event recording.
    let mut view = x0.to_vec();
    let mut labels = vec![0u64; n];
    let mut upd = vec![0.0; n];
    let mut scratch = vec![0.0; op.scratch_len()];
    let mut old_block = vec![0.0; block.len()];
    let mut events: Vec<Event> = Vec::new();
    let mut prng = rng(substream(cfg.seed, w as u64, 2));
    let mut tracker = cfg.quiesce.map(|q| QuiescenceTracker::new(q.eps, q.streak));
    let mut my_updates = 0u64;
    let mut delivered = 0u64;
    let mut partial_publishes = 0u64;
    let mut partial_reads = 0u64;
    let mut constraint_checked = 0u64;
    let mut constraint_violations = 0u64;

    loop {
        // Drain the mailbox before producing: every applied value's
        // label was produced before the step number acquired below.
        while let Some(msg) = ep.try_recv() {
            delivered += 1;
            let out = apply_message(&mut view, &mut labels, &msg.comps, cfg.apply_policy);
            constraint_checked += out.checked;
            constraint_violations += out.stale;
            if msg.partial {
                partial_reads += out.applied;
            }
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }

        // Acquire the global step number. Its SeqCst total order is the
        // trace linearisation: see module docs.
        let j = counter.fetch_add(1, Ordering::SeqCst) + 1;
        if j > cfg.max_steps {
            stop.store(true, Ordering::Relaxed);
            break;
        }
        debug_assert!(
            labels.iter().all(|&l| l < j),
            "condition (a) violated: a label reached step {j}"
        );
        match cfg.record {
            LabelStore::MinOnly => events.push(Event {
                j,
                worker: w,
                min_label: labels.iter().copied().min().unwrap_or(0),
                labels: Vec::new(),
            }),
            LabelStore::Full => events.push(Event {
                j,
                worker: w,
                min_label: 0,
                labels: labels.clone(),
            }),
        }
        for (k, &i) in block.iter().enumerate() {
            old_block[k] = view[i];
        }
        produce_block(op, &mut view, &mut labels, block, j, &mut upd, &mut scratch)?;
        my_updates += 1;

        // Exchange: post the block (or a partial subset) to every peer.
        if workers > 1 && my_updates.is_multiple_of(cfg.exchange_every) {
            let partial = cfg.partial_prob > 0.0 && prng.random_range(0.0..1.0) < cfg.partial_prob;
            let mut comps: Vec<(u32, f64, u64)> = block
                .iter()
                .map(|&i| (i as u32, view[i], labels[i]))
                .collect();
            if partial {
                partial_publishes += 1;
                comps.retain(|_| prng.random_range(0..2u32) == 1);
                if comps.is_empty() {
                    // A partial exchange carries at least one entry.
                    let i = block[prng.random_range(0..block.len())];
                    comps.push((i as u32, view[i], labels[i]));
                }
            }
            for dest in 0..workers {
                if dest == w {
                    continue;
                }
                ep.send(
                    dest,
                    BlockMessage {
                        from: w,
                        comps: comps.clone(),
                        partial,
                    },
                );
            }
        }

        // Termination: quiescence detection (worker 0 coordinates) ...
        if let (Some(q), Some(det), Some(tr)) = (cfg.quiesce, detector, tracker.as_mut()) {
            let change = block
                .iter()
                .enumerate()
                .map(|(k, &i)| (view[i] - old_block[k]).abs())
                .fold(0.0_f64, f64::max);
            let quiet = tr.observe(change);
            det.report(w, j, quiet);
            if w == 0 && det.detect(j, q.margin) {
                converged.store(true, Ordering::Relaxed);
                stop.store(true, Ordering::Relaxed);
                break;
            }
        }
        // ... and/or a residual target checked by worker 0 on its local
        // view (near convergence the view and the consensus agree to
        // far below any sensible target).
        if w == 0 {
            if let Some(eps) = cfg.target_residual {
                if my_updates.is_multiple_of(cfg.check_every.max(1))
                    && op.residual_inf_with(&view, &mut scratch) <= eps
                {
                    converged.store(true, Ordering::Relaxed);
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        // Hand the scheduling quantum over after each update: on an
        // oversubscribed (1-core CI) host this keeps peers draining
        // their mailboxes — bounding queue growth and information
        // staleness by scheduler rotations instead of whole quanta.
        std::thread::yield_now();
    }

    Ok(WorkerLog {
        events,
        view,
        my_updates,
        send_stats: ep.stats(),
        delivered,
        partial_publishes,
        partial_reads,
        constraint_checked,
        constraint_violations,
    })
}

fn validate(
    op: &dyn Operator,
    x0: &[f64],
    partition: &Partition,
    cfg: &ThreadedConfig,
) -> crate::Result<()> {
    let n = op.dim();
    if x0.len() != n {
        return Err(RuntimeError::DimensionMismatch {
            expected: n,
            actual: x0.len(),
            context: "ThreadedClusterEngine::run (x0)",
        });
    }
    if partition.n() != n {
        return Err(RuntimeError::DimensionMismatch {
            expected: n,
            actual: partition.n(),
            context: "ThreadedClusterEngine::run (partition)",
        });
    }
    if cfg.max_steps == 0 || cfg.exchange_every == 0 {
        return Err(RuntimeError::InvalidParameter {
            name: "max_steps/exchange_every",
            message: "must be positive".into(),
        });
    }
    for (name, p) in [
        ("hold_prob", cfg.hold_prob),
        ("drop_prob", cfg.drop_prob),
        ("dup_prob", cfg.dup_prob),
        ("partial_prob", cfg.partial_prob),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(RuntimeError::InvalidParameter {
                name,
                message: format!("{name} = {p} outside [0,1]"),
            });
        }
    }
    if let Some(q) = cfg.quiesce {
        if q.eps.is_nan() || q.eps < 0.0 || q.streak == 0 {
            return Err(RuntimeError::InvalidParameter {
                name: "quiesce",
                message: format!("requires eps >= 0 and streak > 0, got {q:?}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_models::conditions::check_condition_a;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn faulty_multiworker_run_converges_and_trace_is_admissible() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(24, 3).unwrap();
        let cfg = ThreadedConfig::new(4_000_000)
            .with_faults(0.3, 0.1, 0.05)
            .with_seed(13)
            .with_record(LabelStore::Full)
            .with_target_residual(1e-11);
        let res = ThreadedClusterEngine::run(&op, &[0.0; 24], &p, &cfg).unwrap();
        assert!(res.stopped_early, "residual target never fired");
        assert!(
            vecops::max_abs_diff(&res.consensus, &xstar) < 1e-8,
            "error {}",
            vecops::max_abs_diff(&res.consensus, &xstar)
        );
        assert_eq!(res.trace.len() as u64, res.steps_run);
        assert_eq!(res.per_worker_updates.iter().sum::<u64>(), res.steps_run);
        assert!(res.stats.sent > 0);
        check_condition_a(&res.trace).expect("condition (a) by construction");
    }

    #[test]
    fn quiescence_detection_terminates_converged() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 2).unwrap();
        let mut cfg = ThreadedConfig::new(4_000_000).with_seed(3);
        cfg.quiesce = Some(Quiesce {
            eps: 1e-12,
            streak: 4,
            margin: 64,
        });
        let res = ThreadedClusterEngine::run(&op, &[0.0; 16], &p, &cfg).unwrap();
        assert!(res.stopped_early, "detector never fired");
        assert!(
            res.final_residual < 1e-8,
            "premature stop: residual {}",
            res.final_residual
        );
    }

    #[test]
    fn budget_exhaustion_yields_dense_trace() {
        let op = jacobi(12);
        let p = Partition::blocks(12, 3).unwrap();
        let cfg = ThreadedConfig::new(500).with_record(LabelStore::Full);
        let res = ThreadedClusterEngine::run(&op, &[0.0; 12], &p, &cfg).unwrap();
        assert_eq!(res.steps_run, 500);
        assert_eq!(res.trace.len(), 500);
        assert!(!res.stopped_early);
        check_condition_a(&res.trace).unwrap();
    }

    #[test]
    fn validation_errors() {
        let op = jacobi(8);
        let p = Partition::blocks(8, 2).unwrap();
        let ok = ThreadedConfig::new(10);
        assert!(ThreadedClusterEngine::run(&op, &[0.0; 7], &p, &ok).is_err());
        assert!(ThreadedClusterEngine::run(&op, &[0.0; 8], &p, &ThreadedConfig::new(0)).is_err());
        let bad = ThreadedConfig::new(10).with_faults(1.5, 0.0, 0.0);
        assert!(ThreadedClusterEngine::run(&op, &[0.0; 8], &p, &bad).is_err());
        let mut bad = ThreadedConfig::new(10);
        bad.quiesce = Some(Quiesce {
            eps: 1e-9,
            streak: 0,
            margin: 8,
        });
        assert!(ThreadedClusterEngine::run(&op, &[0.0; 8], &p, &bad).is_err());
    }
}
