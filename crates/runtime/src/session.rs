//! Thread-runtime backends for the unified [`Session`] API.
//!
//! [`SharedMem`] runs the free-running shared-memory workers
//! ([`crate::async_engine::AsyncSharedRunner`]) and [`Barrier`] the
//! barrier-synchronous Jacobi baseline ([`crate::sync_engine::SyncRunner`])
//! behind `asynciter_core::session::Backend`, so async-vs-sync
//! comparisons are two sessions differing only in the `.backend(..)`
//! call.
//!
//! [`Session`]: asynciter_core::session::Session

use crate::async_engine::{
    AsyncConfig, AsyncRunResult, AsyncSharedRunner, SnapshotMode, TraceRecord,
};
use crate::sync_engine::{SyncConfig, SyncRunner};
use asynciter_core::session::{
    macro_count, unsupported, Backend, Problem, RecordMode, RunControl, RunReport,
};
use asynciter_core::stopping::StoppingRule;
use asynciter_core::CoreError;
use asynciter_models::partition::Partition;
use asynciter_models::trace::Trace;

fn to_core(backend: &'static str, e: crate::RuntimeError) -> CoreError {
    CoreError::Backend {
        backend,
        message: e.to_string(),
    }
}

fn resolve_partition(
    backend: &'static str,
    explicit: &Option<Partition>,
    n: usize,
    threads: usize,
) -> Result<Partition, CoreError> {
    match explicit {
        Some(p) => Ok(p.clone()),
        None => Partition::blocks(n, threads).map_err(|e| CoreError::Backend {
            backend,
            message: format!("cannot partition {n} components over {threads} threads: {e}"),
        }),
    }
}

/// Free-running asynchronous shared-memory backend: `threads` workers,
/// lock-free labelled iterate vector, optional flexible communication.
///
/// `RunControl::max_steps` is the global block-update budget; a
/// [`StoppingRule::Residual`] stopping rule maps onto the runner's
/// residual target. Constructible with functional-update syntax:
/// `SharedMem { threads: 4, ..SharedMem::default() }`.
#[derive(Debug, Clone)]
pub struct SharedMem {
    /// Number of worker threads.
    pub threads: usize,
    /// Component→worker map (default: contiguous equal blocks).
    pub partition: Option<Partition>,
    /// Inner iterations per block update (`m ≥ 1`).
    pub inner_steps: usize,
    /// Publish partials every this many inner steps (`≥ inner_steps`
    /// disables mid-phase publishing).
    pub publish_period: usize,
    /// Per-worker spin units per update (load imbalance); empty = none.
    pub spin: Vec<u64>,
    /// Snapshot consistency mode.
    pub snapshot: SnapshotMode,
}

impl Default for SharedMem {
    fn default() -> Self {
        Self {
            threads: 1,
            partition: None,
            inner_steps: 1,
            publish_period: 1,
            spin: Vec::new(),
            snapshot: SnapshotMode::Relaxed,
        }
    }
}

impl SharedMem {
    fn report(&self, res: AsyncRunResult, keep_trace: bool) -> RunReport {
        let trace: Option<Trace> = res.trace;
        let macro_iterations = macro_count(trace.as_ref());
        RunReport {
            backend: "shared-mem",
            final_x: res.final_x,
            steps: res.total_updates,
            macro_iterations,
            errors: Vec::new(),
            error_times: Vec::new(),
            residuals: Vec::new(),
            final_residual: res.final_residual,
            stopped_early: false,
            per_worker_updates: res.per_worker_updates,
            partial_publishes: res.partial_publishes,
            partial_reads: 0,
            constraint_checked: 0,
            constraint_violations: 0,
            trace: keep_trace.then_some(trace).flatten(),
            sim_time: None,
            wall: res.wall,
        }
    }
}

impl Backend for SharedMem {
    fn name(&self) -> &'static str {
        "shared-mem"
    }

    fn run(
        &mut self,
        problem: &Problem<'_>,
        ctl: &mut RunControl,
    ) -> asynciter_core::Result<RunReport> {
        if ctl.error_every > 0 {
            return Err(unsupported(self.name(), "error sampling"));
        }
        if ctl.residual_every > 0 {
            return Err(unsupported(self.name(), "residual sampling"));
        }
        if ctl.schedule.is_some() {
            return Err(unsupported(
                self.name(),
                "an explicit schedule (free-running workers generate their own)",
            ));
        }
        let n = problem.n();
        let partition = resolve_partition(self.name(), &self.partition, n, self.threads)?;
        let mut cfg = AsyncConfig::new(self.threads, ctl.max_steps)
            .with_flexible(self.inner_steps, self.publish_period)
            .with_spin(self.spin.clone())
            .with_snapshot(self.snapshot)
            .with_record(match ctl.record {
                RecordMode::Off => TraceRecord::Off,
                RecordMode::MinOnly => TraceRecord::MinOnly,
                RecordMode::Full => TraceRecord::Full,
            });
        let mut target = None;
        match &ctl.stopping {
            None => {}
            Some(StoppingRule::Residual { eps, check_every }) => {
                cfg = cfg.with_target_residual(*eps);
                cfg.check_every = (*check_every).max(1);
                target = Some(*eps);
            }
            Some(_) => {
                return Err(unsupported(
                    self.name(),
                    "a non-residual stopping rule (only StoppingRule::Residual maps onto the \
                     shared-memory runner)",
                ));
            }
        }
        let res = AsyncSharedRunner::run(problem.op, &problem.x0, &partition, &cfg)
            .map_err(|e| to_core(self.name(), e))?;
        let stopped_early = target
            .is_some_and(|eps| res.final_residual <= eps && res.total_updates < ctl.max_steps);
        let mut report = self.report(res, ctl.record.keeps_trace());
        report.stopped_early = stopped_early;
        Ok(report)
    }
}

/// Barrier-synchronous Jacobi backend: the same work model as
/// [`SharedMem`] but every sweep fenced by barriers — the synchronous
/// baseline of the async-vs-sync comparisons.
///
/// `RunControl::max_steps` is the sweep budget; a
/// [`StoppingRule::Residual`] rule maps onto the runner's sweep-change
/// target. With `RecordMode` on, the (deterministic) synchronous trace —
/// every component active each sweep, labels `j − 1` — is materialised
/// so macro-iteration accounting works like any other backend. Like any
/// recorded trace this costs `O(sweeps · n)` memory; leave recording off
/// for large sweep budgets (the macro-iteration count is reported either
/// way).
#[derive(Debug, Clone)]
pub struct Barrier {
    /// Number of worker threads.
    pub threads: usize,
    /// Component→worker map (default: contiguous equal blocks).
    pub partition: Option<Partition>,
    /// Per-worker spin units per sweep (load imbalance); empty = none.
    pub spin: Vec<u64>,
}

impl Default for Barrier {
    fn default() -> Self {
        Self {
            threads: 1,
            partition: None,
            spin: Vec::new(),
        }
    }
}

/// The synchronous-Jacobi trace: all components active, labels `j − 1`
/// (the canonical `SyncJacobi` schedule, materialised).
fn sync_trace(n: usize, sweeps: u64, record: RecordMode) -> Option<Trace> {
    record.keeps_trace().then(|| {
        asynciter_models::schedule::record(
            &mut asynciter_models::schedule::SyncJacobi::new(n),
            sweeps,
            record.label_store(),
        )
    })
}

impl Backend for Barrier {
    fn name(&self) -> &'static str {
        "barrier"
    }

    fn run(
        &mut self,
        problem: &Problem<'_>,
        ctl: &mut RunControl,
    ) -> asynciter_core::Result<RunReport> {
        if ctl.error_every > 0 {
            return Err(unsupported(self.name(), "error sampling"));
        }
        if ctl.residual_every > 0 {
            return Err(unsupported(self.name(), "residual sampling"));
        }
        if ctl.schedule.is_some() {
            return Err(unsupported(
                self.name(),
                "an explicit schedule (sweeps are synchronous by construction)",
            ));
        }
        let n = problem.n();
        let partition = resolve_partition(self.name(), &self.partition, n, self.threads)?;
        let mut cfg = SyncConfig::new(self.threads, ctl.max_steps).with_spin(self.spin.clone());
        match &ctl.stopping {
            None => {}
            Some(StoppingRule::Residual { eps, .. }) => {
                cfg = cfg.with_target_change(*eps);
            }
            Some(_) => {
                return Err(unsupported(
                    self.name(),
                    "a non-residual stopping rule (only StoppingRule::Residual maps onto the \
                     barrier runner's sweep-change target)",
                ));
            }
        }
        let res = SyncRunner::run(problem.op, &problem.x0, &partition, &cfg)
            .map_err(|e| to_core(self.name(), e))?;
        let trace = sync_trace(n, res.sweeps, ctl.record);
        let macro_iterations = if trace.is_some() {
            macro_count(trace.as_ref())
        } else {
            // The synchronous schedule completes one macro-iteration per
            // sweep by construction.
            res.sweeps
        };
        Ok(RunReport {
            backend: self.name(),
            final_x: res.final_x,
            steps: res.sweeps,
            macro_iterations,
            errors: Vec::new(),
            error_times: Vec::new(),
            residuals: Vec::new(),
            final_residual: res.final_residual,
            stopped_early: res.sweeps < ctl.max_steps,
            per_worker_updates: vec![res.sweeps; self.threads],
            partial_publishes: 0,
            partial_reads: 0,
            constraint_checked: 0,
            constraint_violations: 0,
            trace,
            sim_time: None,
            wall: res.wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_core::session::{RecordMode, Replay, Session};
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn shared_mem_backend_converges() {
        let op = jacobi(32);
        let xstar = op.solve_dense_spd().unwrap();
        let report = Session::new(&op)
            .steps(200_000)
            .stopping(StoppingRule::Residual {
                eps: 1e-12,
                check_every: 64,
            })
            .backend(SharedMem {
                threads: 2,
                ..SharedMem::default()
            })
            .run()
            .unwrap();
        assert_eq!(report.backend, "shared-mem");
        assert!(report.final_error(&xstar) < 1e-9);
        assert!(report.stopped_early);
        assert_eq!(report.per_worker_updates.len(), 2);
        assert!(report.wall > std::time::Duration::ZERO);
    }

    #[test]
    fn shared_mem_records_admissible_trace() {
        let op = jacobi(16);
        let report = Session::new(&op)
            .steps(1_000)
            .record(RecordMode::Full)
            .backend(SharedMem {
                threads: 2,
                ..SharedMem::default()
            })
            .run()
            .unwrap();
        let trace = report.trace.expect("trace recorded");
        assert_eq!(trace.len() as u64, report.steps);
        asynciter_models::conditions::check_condition_a(&trace).unwrap();
    }

    #[test]
    fn barrier_single_thread_matches_replay_bitwise() {
        // Serial schedule, zero delay: the barrier runner must reproduce
        // the replay engine's synchronous Jacobi bit for bit.
        let op = jacobi(16);
        let sync = Session::new(&op)
            .steps(30)
            .backend(Barrier {
                threads: 1,
                ..Barrier::default()
            })
            .run()
            .unwrap();
        let replay = Session::new(&op).steps(30).backend(Replay).run().unwrap();
        assert_eq!(sync.final_x, replay.final_x);
        assert_eq!(sync.steps, 30);
        assert_eq!(sync.macro_iterations, 30);
    }

    #[test]
    fn barrier_trace_is_synchronous() {
        let op = jacobi(8);
        let report = Session::new(&op)
            .steps(12)
            .record(RecordMode::Full)
            .backend(Barrier {
                threads: 2,
                ..Barrier::default()
            })
            .run()
            .unwrap();
        let trace = report.trace.expect("sync trace materialised");
        assert_eq!(trace.len(), 12);
        for (j, step) in trace.iter() {
            assert_eq!(step.active.len(), 8);
            assert_eq!(step.min_label, j - 1);
        }
        assert_eq!(report.macro_iterations, 12);
    }

    #[test]
    fn unsupported_controls_error_cleanly() {
        let op = jacobi(8);
        let err = Session::new(&op)
            .steps(10)
            .error_every(2)
            .xstar(vec![0.0; 8])
            .backend(SharedMem {
                threads: 2,
                ..SharedMem::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Backend { .. }), "{err}");
        let err = Session::new(&op)
            .steps(10)
            .stopping(StoppingRule::ErrorBelow {
                eps: 1e-6,
                check_every: 1,
            })
            .backend(Barrier {
                threads: 2,
                ..Barrier::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Backend { .. }), "{err}");
    }

    #[test]
    fn async_and_sync_agree_on_fixed_point() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        for report in [
            Session::new(&op)
                // Generous cap: with a residual target the run stops at
                // convergence; coarse interleaving on loaded single-core
                // hosts just consumes more of the budget first.
                .steps(2_000_000)
                .stopping(StoppingRule::Residual {
                    eps: 1e-12,
                    check_every: 32,
                })
                .backend(SharedMem {
                    threads: 3,
                    ..SharedMem::default()
                })
                .run()
                .unwrap(),
            Session::new(&op)
                .steps(10_000)
                .stopping(StoppingRule::Residual {
                    eps: 1e-13,
                    check_every: 1,
                })
                .backend(Barrier {
                    threads: 3,
                    ..Barrier::default()
                })
                .run()
                .unwrap(),
        ] {
            let err = vecops::max_abs_diff(&report.final_x, &xstar);
            assert!(err < 1e-8, "{}: error {err}", report.backend);
        }
    }
}
