//! Runtime backends for the unified [`Session`] API.
//!
//! [`SharedMem`] runs the free-running shared-memory workers
//! ([`crate::async_engine::AsyncSharedRunner`]), [`Barrier`] the
//! barrier-synchronous Jacobi baseline ([`crate::sync_engine::SyncRunner`]),
//! [`Cluster`] the deterministic sharded message-passing engine
//! ([`crate::cluster::ClusterEngine`]), and [`ThreadedCluster`] the
//! genuinely concurrent transport-based cluster
//! ([`crate::threaded::ThreadedClusterEngine`]) behind
//! `asynciter_core::session::Backend`, so shared-memory vs synchronous
//! vs message-passing comparisons are sessions differing only in the
//! `.backend(..)` call.
//!
//! [`Session`]: asynciter_core::session::Session

use crate::async_engine::{
    AsyncConfig, AsyncRunResult, AsyncSharedRunner, SnapshotMode, TraceRecord,
};
use crate::cluster::{ApplyPolicy, ClusterConfig, ClusterEngine, LinkModel};
use crate::sync_engine::{SyncConfig, SyncRunner};
use crate::threaded::{Quiesce, ThreadedClusterEngine, ThreadedConfig};
use asynciter_core::session::{
    macro_count, unsupported, Backend, Problem, RecordMode, RunControl, RunReport,
};
use asynciter_core::stopping::StoppingRule;
use asynciter_core::CoreError;
use asynciter_models::partition::Partition;
use asynciter_models::trace::Trace;

fn to_core(backend: &'static str, e: crate::RuntimeError) -> CoreError {
    CoreError::Backend {
        backend,
        message: e.to_string(),
    }
}

fn resolve_partition(
    backend: &'static str,
    explicit: &Option<Partition>,
    n: usize,
    threads: usize,
) -> Result<Partition, CoreError> {
    match explicit {
        Some(p) => Ok(p.clone()),
        None => Partition::blocks(n, threads).map_err(|e| CoreError::Backend {
            backend,
            message: format!("cannot partition {n} components over {threads} threads: {e}"),
        }),
    }
}

/// Free-running asynchronous shared-memory backend: `threads` workers,
/// lock-free labelled iterate vector, optional flexible communication.
///
/// `RunControl::max_steps` is the global block-update budget; a
/// [`StoppingRule::Residual`] stopping rule maps onto the runner's
/// residual target. Constructible with functional-update syntax:
/// `SharedMem { threads: 4, ..SharedMem::default() }`.
#[derive(Debug, Clone)]
pub struct SharedMem {
    /// Number of worker threads.
    pub threads: usize,
    /// Component→worker map (default: contiguous equal blocks).
    pub partition: Option<Partition>,
    /// Inner iterations per block update (`m ≥ 1`).
    pub inner_steps: usize,
    /// Publish partials every this many inner steps (`≥ inner_steps`
    /// disables mid-phase publishing).
    pub publish_period: usize,
    /// Per-worker spin units per update (load imbalance); empty = none.
    pub spin: Vec<u64>,
    /// Snapshot consistency mode.
    pub snapshot: SnapshotMode,
}

impl Default for SharedMem {
    fn default() -> Self {
        Self {
            threads: 1,
            partition: None,
            inner_steps: 1,
            publish_period: 1,
            spin: Vec::new(),
            snapshot: SnapshotMode::Relaxed,
        }
    }
}

impl SharedMem {
    fn report(&self, res: AsyncRunResult, keep_trace: bool) -> RunReport {
        let trace: Option<Trace> = res.trace;
        let macro_iterations = macro_count(trace.as_ref());
        RunReport {
            backend: "shared-mem",
            final_x: res.final_x,
            steps: res.total_updates,
            macro_iterations,
            errors: Vec::new(),
            error_times: Vec::new(),
            residuals: Vec::new(),
            final_residual: res.final_residual,
            stopped_early: false,
            per_worker_updates: res.per_worker_updates,
            partial_publishes: res.partial_publishes,
            partial_reads: 0,
            constraint_checked: 0,
            constraint_violations: 0,
            trace: keep_trace.then_some(trace).flatten(),
            sim_time: None,
            tenant: None,
            job: None,
            wall: res.wall,
        }
    }
}

impl Backend for SharedMem {
    fn name(&self) -> &'static str {
        "shared-mem"
    }

    fn run(
        &mut self,
        problem: &Problem<'_>,
        ctl: &mut RunControl<'_>,
    ) -> asynciter_core::Result<RunReport> {
        if ctl.error_every > 0 {
            return Err(unsupported(self.name(), "error sampling"));
        }
        if ctl.residual_every > 0 {
            return Err(unsupported(self.name(), "residual sampling"));
        }
        if ctl.schedule.is_some() {
            return Err(unsupported(
                self.name(),
                "an explicit schedule (free-running workers generate their own)",
            ));
        }
        let n = problem.n();
        let partition = resolve_partition(self.name(), &self.partition, n, self.threads)?;
        let mut cfg = AsyncConfig::new(self.threads, ctl.max_steps)
            .with_flexible(self.inner_steps, self.publish_period)
            .with_spin(self.spin.clone())
            .with_snapshot(self.snapshot)
            .with_record(match ctl.record {
                RecordMode::Off => TraceRecord::Off,
                RecordMode::MinOnly => TraceRecord::MinOnly,
                RecordMode::Full => TraceRecord::Full,
            });
        let mut target = None;
        match &ctl.stopping {
            None => {}
            Some(StoppingRule::Residual { eps, check_every }) => {
                cfg = cfg.with_target_residual(*eps);
                cfg.check_every = (*check_every).max(1);
                target = Some(*eps);
            }
            Some(_) => {
                return Err(unsupported(
                    self.name(),
                    "a non-residual stopping rule (only StoppingRule::Residual maps onto the \
                     shared-memory runner)",
                ));
            }
        }
        let res = AsyncSharedRunner::run(problem.op, &problem.x0, &partition, &cfg)
            .map_err(|e| to_core(self.name(), e))?;
        let stopped_early = target
            .is_some_and(|eps| res.final_residual <= eps && res.total_updates < ctl.max_steps);
        let mut report = self.report(res, ctl.record.keeps_trace());
        report.stopped_early = stopped_early;
        Ok(report)
    }
}

/// Barrier-synchronous Jacobi backend: the same work model as
/// [`SharedMem`] but every sweep fenced by barriers — the synchronous
/// baseline of the async-vs-sync comparisons.
///
/// `RunControl::max_steps` is the sweep budget; a
/// [`StoppingRule::Residual`] rule maps onto the runner's sweep-change
/// target. With `RecordMode` on, the (deterministic) synchronous trace —
/// every component active each sweep, labels `j − 1` — is materialised
/// so macro-iteration accounting works like any other backend. Like any
/// recorded trace this costs `O(sweeps · n)` memory; leave recording off
/// for large sweep budgets (the macro-iteration count is reported either
/// way).
#[derive(Debug, Clone)]
pub struct Barrier {
    /// Number of worker threads.
    pub threads: usize,
    /// Component→worker map (default: contiguous equal blocks).
    pub partition: Option<Partition>,
    /// Per-worker spin units per sweep (load imbalance); empty = none.
    pub spin: Vec<u64>,
}

impl Default for Barrier {
    fn default() -> Self {
        Self {
            threads: 1,
            partition: None,
            spin: Vec::new(),
        }
    }
}

/// The synchronous-Jacobi trace: all components active, labels `j − 1`
/// (the canonical `SyncJacobi` schedule, materialised).
fn sync_trace(n: usize, sweeps: u64, record: RecordMode) -> Option<Trace> {
    record.keeps_trace().then(|| {
        asynciter_models::schedule::record(
            &mut asynciter_models::schedule::SyncJacobi::new(n),
            sweeps,
            record.label_store(),
        )
    })
}

impl Backend for Barrier {
    fn name(&self) -> &'static str {
        "barrier"
    }

    fn run(
        &mut self,
        problem: &Problem<'_>,
        ctl: &mut RunControl<'_>,
    ) -> asynciter_core::Result<RunReport> {
        if ctl.error_every > 0 {
            return Err(unsupported(self.name(), "error sampling"));
        }
        if ctl.residual_every > 0 {
            return Err(unsupported(self.name(), "residual sampling"));
        }
        if ctl.schedule.is_some() {
            return Err(unsupported(
                self.name(),
                "an explicit schedule (sweeps are synchronous by construction)",
            ));
        }
        let n = problem.n();
        let partition = resolve_partition(self.name(), &self.partition, n, self.threads)?;
        let mut cfg = SyncConfig::new(self.threads, ctl.max_steps).with_spin(self.spin.clone());
        match &ctl.stopping {
            None => {}
            Some(StoppingRule::Residual { eps, .. }) => {
                cfg = cfg.with_target_change(*eps);
            }
            Some(_) => {
                return Err(unsupported(
                    self.name(),
                    "a non-residual stopping rule (only StoppingRule::Residual maps onto the \
                     barrier runner's sweep-change target)",
                ));
            }
        }
        let res = SyncRunner::run(problem.op, &problem.x0, &partition, &cfg)
            .map_err(|e| to_core(self.name(), e))?;
        let trace = sync_trace(n, res.sweeps, ctl.record);
        let macro_iterations = if trace.is_some() {
            macro_count(trace.as_ref())
        } else {
            // The synchronous schedule completes one macro-iteration per
            // sweep by construction.
            res.sweeps
        };
        Ok(RunReport {
            backend: self.name(),
            final_x: res.final_x,
            steps: res.sweeps,
            macro_iterations,
            errors: Vec::new(),
            error_times: Vec::new(),
            residuals: Vec::new(),
            final_residual: res.final_residual,
            stopped_early: res.sweeps < ctl.max_steps,
            per_worker_updates: vec![res.sweeps; self.threads],
            partial_publishes: 0,
            partial_reads: 0,
            constraint_checked: 0,
            constraint_violations: 0,
            trace,
            sim_time: None,
            tenant: None,
            job: None,
            wall: res.wall,
        })
    }
}

/// The sharded message-passing backend: a deterministic, seeded virtual
/// cluster ([`ClusterEngine`] behind the [`Backend`] interface).
///
/// `RunControl::max_steps` is the global block-update budget (step `j`
/// is one block update by worker `(j − 1) mod workers`); the seed set
/// via `Session::seed` drives the whole channel model; a
/// [`StoppingRule::Residual`] rule maps onto the engine's consensus
/// residual target. Error/residual sampling are supported (the event
/// loop is sequential, so consensus snapshots are cheap). With
/// recording on, the executed message-passing schedule is materialised
/// as a trace whose labels are *producing steps* — injecting it back
/// through `Session::replay_trace` reproduces the run bit for bit, the
/// differential oracle the conformance fuzzer drives.
///
/// [`RunReport`] mapping beyond the shared fields:
/// `partial_publishes`/`partial_reads` count flexible partial
/// exchanges posted/applied; under [`ApplyPolicy::KeepFreshest`] every
/// received component application is a freshness check
/// (`constraint_checked`) and every stale discard a prevented
/// violation (`constraint_violations`) — the message-passing analogue
/// of the flexible engine's constraint-(3) accounting.
///
/// Constructible with functional-update syntax:
/// `Cluster { workers: 4, drop_prob: 0.1, ..Cluster::default() }`.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Number of workers (= shards).
    pub workers: usize,
    /// Component→worker map (default: contiguous equal blocks).
    pub partition: Option<Partition>,
    /// Post a block message every this many local updates.
    pub exchange_every: u64,
    /// Receiver policy.
    pub apply_policy: ApplyPolicy,
    /// Link latency model.
    pub link: LinkModel,
    /// Probability a delivery is held back (out-of-order delivery).
    pub hold_prob: f64,
    /// Maximum extra latency for held deliveries.
    pub hold_extra: u64,
    /// Probability a delivery is dropped.
    pub drop_prob: f64,
    /// Probability a delivery is duplicated.
    pub dup_prob: f64,
    /// Probability a posted message is a partial (subset) exchange.
    pub partial_prob: f64,
}

impl Default for Cluster {
    fn default() -> Self {
        Self {
            workers: 1,
            partition: None,
            exchange_every: 1,
            apply_policy: ApplyPolicy::AsReceived,
            link: LinkModel::Fixed { ticks: 1 },
            hold_prob: 0.0,
            hold_extra: 8,
            drop_prob: 0.0,
            dup_prob: 0.0,
            partial_prob: 0.0,
        }
    }
}

impl Backend for Cluster {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn run(
        &mut self,
        problem: &Problem<'_>,
        ctl: &mut RunControl<'_>,
    ) -> asynciter_core::Result<RunReport> {
        if ctl.schedule.is_some() {
            return Err(unsupported(
                self.name(),
                "an explicit schedule (the cluster's schedule emerges from its channel \
                 model; record it and replay through `Replay` instead)",
            ));
        }
        let n = problem.n();
        let partition = resolve_partition(self.name(), &self.partition, n, self.workers)?;
        let mut cfg = ClusterConfig::new(ctl.max_steps)
            .with_exchange_every(self.exchange_every)
            .with_policy(self.apply_policy)
            .with_link(self.link)
            .with_faults(self.hold_prob, self.drop_prob, self.dup_prob)
            .with_seed(ctl.seed.unwrap_or(0))
            .with_record(ctl.record.label_store());
        cfg.hold_extra = self.hold_extra;
        cfg.partial_prob = self.partial_prob;
        cfg.error_every = ctl.error_every;
        cfg.residual_every = ctl.residual_every;
        match &ctl.stopping {
            None => {}
            Some(StoppingRule::Residual { eps, check_every }) => {
                cfg.target_residual = Some(*eps);
                cfg.check_every = (*check_every).max(1);
            }
            Some(_) => {
                return Err(unsupported(
                    self.name(),
                    "a non-residual stopping rule (only StoppingRule::Residual maps onto \
                     the cluster's consensus residual target)",
                ));
            }
        }
        let res = ClusterEngine::run(
            problem.op,
            &problem.x0,
            &partition,
            &cfg,
            problem.xstar.as_deref(),
        )
        .map_err(|e| to_core(self.name(), e))?;
        let macro_iterations = macro_count(Some(&res.trace));
        Ok(RunReport {
            backend: self.name(),
            final_x: res.consensus,
            steps: res.steps_run,
            macro_iterations,
            errors: res.errors,
            error_times: Vec::new(),
            residuals: res.residuals,
            final_residual: res.final_residual,
            stopped_early: res.stopped_early,
            per_worker_updates: res.per_worker_updates,
            partial_publishes: res.partial_publishes,
            partial_reads: res.partial_reads,
            constraint_checked: res.constraint_checked,
            constraint_violations: res.constraint_violations,
            trace: ctl.record.keeps_trace().then_some(res.trace),
            sim_time: None,
            tenant: None,
            job: None,
            wall: res.wall,
        })
    }
}

/// The concurrent cluster backend: free-running worker threads
/// exchanging labelled block messages over the
/// [`crate::transport`] seam ([`ThreadedClusterEngine`] behind the
/// [`Backend`] interface) — the same sharded work model as [`Cluster`],
/// executed on real OS threads instead of a sequential event loop.
///
/// `RunControl::max_steps` is the global block-update budget, but
/// thread interleaving makes fixed budgets scheduler-dependent: prefer
/// a [`StoppingRule::Residual`] rule (mapped onto worker 0's local-view
/// residual target) and/or a [`Quiesce`] termination rule, with the
/// budget as a generous safety net. The seed set via `Session::seed`
/// drives per-worker fault and partial-exchange RNG streams; runs are
/// **not** reproducible from the seed — correctness is anchored per
/// run: with recording on, the executed schedule is materialised as a
/// producing-step trace that replays bit-identically through
/// `Session::replay_trace`, faults, races and all (the conformance
/// oracle). Error/residual sampling are unsupported (no thread may
/// observe a consistent consensus mid-run).
///
/// Degenerately, `ThreadedCluster { workers: 1, .. }` executes the same
/// step sequence as `Cluster { workers: 1 }` bit for bit
/// (`tests/backend_equivalence.rs`).
///
/// Constructible with functional-update syntax:
/// `ThreadedCluster { workers: 4, drop_prob: 0.1, ..ThreadedCluster::default() }`.
#[derive(Debug, Clone)]
pub struct ThreadedCluster {
    /// Number of worker threads (= shards).
    pub workers: usize,
    /// Component→worker map (default: contiguous equal blocks).
    pub partition: Option<Partition>,
    /// Post a block message every this many local updates.
    pub exchange_every: u64,
    /// Receiver policy.
    pub apply_policy: ApplyPolicy,
    /// Probability a send is held behind later traffic (out-of-order
    /// delivery).
    pub hold_prob: f64,
    /// Maximum sends a held message waits behind.
    pub hold_extra: u64,
    /// Probability a send is dropped.
    pub drop_prob: f64,
    /// Probability a send is duplicated.
    pub dup_prob: f64,
    /// Probability a posted message is a partial (subset) exchange.
    pub partial_prob: f64,
    /// Optional quiescence-detection termination rule.
    pub quiesce: Option<Quiesce>,
}

impl Default for ThreadedCluster {
    fn default() -> Self {
        Self {
            workers: 1,
            partition: None,
            exchange_every: 1,
            apply_policy: ApplyPolicy::AsReceived,
            hold_prob: 0.0,
            hold_extra: 8,
            drop_prob: 0.0,
            dup_prob: 0.0,
            partial_prob: 0.0,
            quiesce: None,
        }
    }
}

impl Backend for ThreadedCluster {
    fn name(&self) -> &'static str {
        "threaded-cluster"
    }

    fn run(
        &mut self,
        problem: &Problem<'_>,
        ctl: &mut RunControl<'_>,
    ) -> asynciter_core::Result<RunReport> {
        if ctl.schedule.is_some() {
            return Err(unsupported(
                self.name(),
                "an explicit schedule (the threaded cluster's schedule emerges from real \
                 thread interleaving; record it and replay through `Replay` instead)",
            ));
        }
        if ctl.error_every > 0 {
            return Err(unsupported(self.name(), "error sampling"));
        }
        if ctl.residual_every > 0 {
            return Err(unsupported(self.name(), "residual sampling"));
        }
        let n = problem.n();
        let partition = resolve_partition(self.name(), &self.partition, n, self.workers)?;
        let mut cfg = ThreadedConfig::new(ctl.max_steps)
            .with_faults(self.hold_prob, self.drop_prob, self.dup_prob)
            .with_seed(ctl.seed.unwrap_or(0))
            .with_record(ctl.record.label_store());
        cfg.exchange_every = self.exchange_every;
        cfg.apply_policy = self.apply_policy;
        cfg.hold_extra = self.hold_extra;
        cfg.partial_prob = self.partial_prob;
        cfg.quiesce = self.quiesce;
        match &ctl.stopping {
            None => {}
            Some(StoppingRule::Residual { eps, check_every }) => {
                cfg.target_residual = Some(*eps);
                cfg.check_every = (*check_every).max(1);
            }
            Some(_) => {
                return Err(unsupported(
                    self.name(),
                    "a non-residual stopping rule (only StoppingRule::Residual maps onto \
                     the threaded cluster's residual target)",
                ));
            }
        }
        let res = ThreadedClusterEngine::run(problem.op, &problem.x0, &partition, &cfg)
            .map_err(|e| to_core(self.name(), e))?;
        let macro_iterations = macro_count(Some(&res.trace));
        Ok(RunReport {
            backend: self.name(),
            final_x: res.consensus,
            steps: res.steps_run,
            macro_iterations,
            errors: Vec::new(),
            error_times: Vec::new(),
            residuals: Vec::new(),
            final_residual: res.final_residual,
            stopped_early: res.stopped_early,
            per_worker_updates: res.per_worker_updates,
            partial_publishes: res.partial_publishes,
            partial_reads: res.partial_reads,
            constraint_checked: res.constraint_checked,
            constraint_violations: res.constraint_violations,
            trace: ctl.record.keeps_trace().then_some(res.trace),
            sim_time: None,
            tenant: None,
            job: None,
            wall: res.wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_core::session::{RecordMode, Replay, Session};
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn shared_mem_backend_converges() {
        let op = jacobi(32);
        let xstar = op.solve_dense_spd().unwrap();
        let report = Session::new(&op)
            // Residual-target stopping with a huge budget: free-running
            // workers on a loaded single-core host can interleave so
            // coarsely that any "reasonable" fixed budget is burned
            // before the last worker gets scheduled.
            .steps(5_000_000)
            .stopping(StoppingRule::Residual {
                eps: 1e-12,
                check_every: 64,
            })
            .backend(SharedMem {
                threads: 2,
                ..SharedMem::default()
            })
            .run()
            .unwrap();
        assert_eq!(report.backend, "shared-mem");
        assert!(report.final_error(&xstar) < 1e-9);
        assert!(report.stopped_early);
        assert_eq!(report.per_worker_updates.len(), 2);
        assert!(report.wall > std::time::Duration::ZERO);
    }

    #[test]
    fn shared_mem_records_admissible_trace() {
        let op = jacobi(16);
        let report = Session::new(&op)
            .steps(1_000)
            .record(RecordMode::Full)
            .backend(SharedMem {
                threads: 2,
                ..SharedMem::default()
            })
            .run()
            .unwrap();
        let trace = report.trace.expect("trace recorded");
        assert_eq!(trace.len() as u64, report.steps);
        asynciter_models::conditions::check_condition_a(&trace).unwrap();
    }

    #[test]
    fn barrier_single_thread_matches_replay_bitwise() {
        // Serial schedule, zero delay: the barrier runner must reproduce
        // the replay engine's synchronous Jacobi bit for bit.
        let op = jacobi(16);
        let sync = Session::new(&op)
            .steps(30)
            .backend(Barrier {
                threads: 1,
                ..Barrier::default()
            })
            .run()
            .unwrap();
        let replay = Session::new(&op).steps(30).backend(Replay).run().unwrap();
        assert_eq!(sync.final_x, replay.final_x);
        assert_eq!(sync.steps, 30);
        assert_eq!(sync.macro_iterations, 30);
    }

    #[test]
    fn barrier_trace_is_synchronous() {
        let op = jacobi(8);
        let report = Session::new(&op)
            .steps(12)
            .record(RecordMode::Full)
            .backend(Barrier {
                threads: 2,
                ..Barrier::default()
            })
            .run()
            .unwrap();
        let trace = report.trace.expect("sync trace materialised");
        assert_eq!(trace.len(), 12);
        for (j, step) in trace.iter() {
            assert_eq!(step.active.len(), 8);
            assert_eq!(step.min_label, j - 1);
        }
        assert_eq!(report.macro_iterations, 12);
    }

    #[test]
    fn unsupported_controls_error_cleanly() {
        let op = jacobi(8);
        let err = Session::new(&op)
            .steps(10)
            .error_every(2)
            .xstar(vec![0.0; 8])
            .backend(SharedMem {
                threads: 2,
                ..SharedMem::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Backend { .. }), "{err}");
        let err = Session::new(&op)
            .steps(10)
            .stopping(StoppingRule::ErrorBelow {
                eps: 1e-6,
                check_every: 1,
            })
            .backend(Barrier {
                threads: 2,
                ..Barrier::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Backend { .. }), "{err}");
    }

    #[test]
    fn cluster_backend_converges_and_reports() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let report = Session::new(&op)
            .steps(4_000)
            .seed(5)
            .xstar(xstar.clone())
            .error_every(200)
            .residual_every(200)
            .record(RecordMode::Full)
            .backend(Cluster {
                workers: 3,
                hold_prob: 0.2,
                drop_prob: 0.1,
                dup_prob: 0.05,
                ..Cluster::default()
            })
            .run()
            .unwrap();
        assert_eq!(report.backend, "cluster");
        assert!(report.final_error(&xstar) < 1e-6);
        assert!(!report.errors.is_empty());
        assert!(!report.residuals.is_empty());
        assert_eq!(report.per_worker_updates.iter().sum::<u64>(), report.steps);
        assert!(report.macro_iterations > 0);
        let trace = report.trace.expect("trace recorded");
        assert_eq!(trace.len() as u64, report.steps);
        asynciter_models::conditions::check_condition_a(&trace).unwrap();
    }

    #[test]
    fn cluster_trace_replays_bitwise_through_replay() {
        let op = jacobi(16);
        let cluster = Session::new(&op)
            .steps(900)
            .seed(11)
            .record(RecordMode::Full)
            .backend(Cluster {
                workers: 4,
                hold_prob: 0.3,
                drop_prob: 0.15,
                dup_prob: 0.1,
                link: LinkModel::Jitter { lo: 1, hi: 6 },
                ..Cluster::default()
            })
            .run()
            .unwrap();
        let replayed = Session::new(&op)
            .replay_trace(cluster.trace.clone().unwrap())
            .unwrap()
            .backend(Replay)
            .run()
            .unwrap();
        for i in 0..16 {
            assert_eq!(
                cluster.final_x[i].to_bits(),
                replayed.final_x[i].to_bits(),
                "component {i}"
            );
        }
    }

    #[test]
    fn cluster_residual_stopping_and_unsupported_controls() {
        let op = jacobi(16);
        let report = Session::new(&op)
            .steps(1_000_000)
            .stopping(StoppingRule::Residual {
                eps: 1e-10,
                check_every: 16,
            })
            .backend(Cluster {
                workers: 2,
                ..Cluster::default()
            })
            .run()
            .unwrap();
        assert!(report.stopped_early);
        assert!(report.final_residual <= 1e-10);
        let err = Session::new(&op)
            .steps(10)
            .schedule(asynciter_models::schedule::SyncJacobi::new(16))
            .backend(Cluster::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Backend { .. }), "{err}");
    }

    #[test]
    fn threaded_cluster_backend_converges_and_reports() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let report = Session::new(&op)
            .steps(4_000_000)
            .seed(5)
            .stopping(StoppingRule::Residual {
                eps: 1e-11,
                check_every: 16,
            })
            .record(RecordMode::Full)
            .backend(ThreadedCluster {
                workers: 3,
                hold_prob: 0.2,
                drop_prob: 0.1,
                dup_prob: 0.05,
                ..ThreadedCluster::default()
            })
            .run()
            .unwrap();
        assert_eq!(report.backend, "threaded-cluster");
        assert!(report.stopped_early);
        assert!(report.final_error(&xstar) < 1e-8);
        assert_eq!(report.per_worker_updates.iter().sum::<u64>(), report.steps);
        assert!(report.macro_iterations > 0);
        let trace = report.trace.expect("trace recorded");
        assert_eq!(trace.len() as u64, report.steps);
        asynciter_models::conditions::check_condition_a(&trace).unwrap();
    }

    #[test]
    fn threaded_cluster_trace_replays_bitwise_through_replay() {
        let op = jacobi(16);
        let threaded = Session::new(&op)
            .steps(2_000_000)
            .seed(11)
            .stopping(StoppingRule::Residual {
                eps: 1e-9,
                check_every: 16,
            })
            .record(RecordMode::Full)
            .backend(ThreadedCluster {
                workers: 4,
                hold_prob: 0.3,
                drop_prob: 0.15,
                dup_prob: 0.1,
                ..ThreadedCluster::default()
            })
            .run()
            .unwrap();
        let replayed = Session::new(&op)
            .replay_trace(threaded.trace.clone().unwrap())
            .unwrap()
            .backend(Replay)
            .run()
            .unwrap();
        for i in 0..16 {
            assert_eq!(
                threaded.final_x[i].to_bits(),
                replayed.final_x[i].to_bits(),
                "component {i}"
            );
        }
    }

    #[test]
    fn threaded_cluster_rejects_unsupported_controls() {
        let op = jacobi(8);
        let err = Session::new(&op)
            .steps(10)
            .schedule(asynciter_models::schedule::SyncJacobi::new(8))
            .backend(ThreadedCluster::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Backend { .. }), "{err}");
        let err = Session::new(&op)
            .steps(10)
            .error_every(2)
            .xstar(vec![0.0; 8])
            .backend(ThreadedCluster::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Backend { .. }), "{err}");
    }

    #[test]
    fn async_and_sync_agree_on_fixed_point() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        for report in [
            Session::new(&op)
                // Generous cap: with a residual target the run stops at
                // convergence; coarse interleaving on loaded single-core
                // hosts just consumes more of the budget first.
                .steps(2_000_000)
                .stopping(StoppingRule::Residual {
                    eps: 1e-12,
                    check_every: 32,
                })
                .backend(SharedMem {
                    threads: 3,
                    ..SharedMem::default()
                })
                .run()
                .unwrap(),
            Session::new(&op)
                // Small sweep cap: barrier sweeps serialise into OS
                // scheduling quanta on one core, and the sweep-change
                // target fires after a few dozen sweeps anyway.
                .steps(500)
                .stopping(StoppingRule::Residual {
                    eps: 1e-13,
                    check_every: 1,
                })
                .backend(Barrier {
                    threads: 3,
                    ..Barrier::default()
                })
                .run()
                .unwrap(),
        ] {
            let err = vecops::max_abs_diff(&report.final_x, &xstar);
            assert!(err < 1e-8, "{}: error {err}", report.backend);
        }
    }
}
