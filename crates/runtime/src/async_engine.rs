//! Free-running multi-threaded asynchronous iterations over shared
//! memory.
//!
//! Workers own disjoint component blocks (single-writer discipline) and
//! loop without any synchronisation: snapshot the shared vector
//! (component-wise atomic, globally inconsistent — Definition 1's read
//! model), apply the operator to their block (optionally `m` inner
//! iterations with mid-phase partial publishing — flexible
//! communication), and publish. A global atomic counter assigns each
//! block update its iteration number `j`; because every value a worker
//! reads was published before it acquired `j`, all recorded labels are
//! `≤ j − 1` and the emitted trace satisfies condition (a) by
//! construction.

use crate::error::RuntimeError;
use crate::imbalance::spin;
use crate::shared::SharedVec;
use asynciter_models::partition::Partition;
use asynciter_models::trace::{LabelStore, Trace};
use asynciter_opt::traits::Operator;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How much trace information the run records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRecord {
    /// No trace (fastest; benchmark mode).
    Off,
    /// Active sets and min labels only.
    MinOnly,
    /// Full label vectors per step (memory `O(updates · n)`).
    Full,
}

/// Snapshot consistency ablation (DESIGN.md §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Per-component relaxed-atomic reads: inconsistent snapshots, zero
    /// coordination — the true asynchronous model.
    Relaxed,
    /// Globally consistent snapshots through a readers–writer lock:
    /// writers take the write lock for publishing, readers the read lock
    /// for the whole snapshot. What synchronous consistency costs.
    Locked,
}

/// Configuration of an asynchronous shared-memory run.
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Number of worker threads (= machines); must divide the component
    /// space per the supplied partition.
    pub workers: usize,
    /// Global budget of block updates.
    pub max_updates: u64,
    /// Stop early when the fixed-point residual (checked by worker 0
    /// every `check_every` of its own updates) falls below this.
    pub target_residual: Option<f64>,
    /// Residual check period (worker-0 updates).
    pub check_every: u64,
    /// Per-worker spin units per update (load imbalance); empty = none.
    pub spin_per_update: Vec<u64>,
    /// Inner iterations per block update (`m ≥ 1`).
    pub inner_steps: usize,
    /// Publish partial block values every this many inner steps
    /// (`≥ inner_steps` disables mid-phase publishing).
    pub publish_period: usize,
    /// Trace recording mode.
    pub record: TraceRecord,
    /// Snapshot consistency mode.
    pub snapshot: SnapshotMode,
}

impl AsyncConfig {
    /// Baseline configuration: plain async updates, no imbalance, no
    /// trace.
    pub fn new(workers: usize, max_updates: u64) -> Self {
        Self {
            workers,
            max_updates,
            target_residual: None,
            check_every: 64,
            spin_per_update: Vec::new(),
            inner_steps: 1,
            publish_period: 1,
            record: TraceRecord::Off,
            snapshot: SnapshotMode::Relaxed,
        }
    }

    /// Sets a residual stopping target.
    pub fn with_target_residual(mut self, eps: f64) -> Self {
        self.target_residual = Some(eps);
        self
    }

    /// Sets per-worker spin work.
    pub fn with_spin(mut self, spin: Vec<u64>) -> Self {
        self.spin_per_update = spin;
        self
    }

    /// Sets inner iterations and publish period (flexible communication).
    pub fn with_flexible(mut self, inner_steps: usize, publish_period: usize) -> Self {
        self.inner_steps = inner_steps;
        self.publish_period = publish_period;
        self
    }

    /// Sets the trace recording mode.
    pub fn with_record(mut self, record: TraceRecord) -> Self {
        self.record = record;
        self
    }

    /// Sets the snapshot mode.
    pub fn with_snapshot(mut self, mode: SnapshotMode) -> Self {
        self.snapshot = mode;
        self
    }
}

/// Result of an asynchronous shared-memory run.
#[derive(Debug)]
pub struct AsyncRunResult {
    /// Final shared vector.
    pub final_x: Vec<f64>,
    /// Total block updates performed.
    pub total_updates: u64,
    /// Wall-clock duration of the parallel section.
    pub wall: Duration,
    /// Updates per worker (load distribution diagnostic).
    pub per_worker_updates: Vec<u64>,
    /// Final fixed-point residual `‖x − F(x)‖_∞`.
    pub final_residual: f64,
    /// Recorded trace (when requested).
    pub trace: Option<Trace>,
    /// Mid-phase partial publishes performed.
    pub partial_publishes: u64,
}

struct Event {
    j: u64,
    worker: usize,
    min_label: u64,
    labels: Vec<u64>, // empty unless TraceRecord::Full
}

/// The asynchronous shared-memory runner. See module docs.
#[derive(Debug, Default)]
pub struct AsyncSharedRunner;

impl AsyncSharedRunner {
    /// Runs the asynchronous iteration with `cfg.workers` threads over
    /// the blocks of `partition`.
    ///
    /// # Errors
    /// Dimension/parameter validation failures.
    pub fn run(
        op: &dyn Operator,
        x0: &[f64],
        partition: &Partition,
        cfg: &AsyncConfig,
    ) -> crate::Result<AsyncRunResult> {
        let n = op.dim();
        if x0.len() != n {
            return Err(RuntimeError::DimensionMismatch {
                expected: n,
                actual: x0.len(),
                context: "AsyncSharedRunner::run (x0)",
            });
        }
        if partition.n() != n {
            return Err(RuntimeError::DimensionMismatch {
                expected: n,
                actual: partition.n(),
                context: "AsyncSharedRunner::run (partition)",
            });
        }
        if partition.num_machines() != cfg.workers {
            return Err(RuntimeError::InvalidParameter {
                name: "workers",
                message: format!(
                    "partition has {} machines but cfg.workers = {}",
                    partition.num_machines(),
                    cfg.workers
                ),
            });
        }
        if cfg.workers == 0 || cfg.max_updates == 0 || cfg.inner_steps == 0 {
            return Err(RuntimeError::InvalidParameter {
                name: "workers/max_updates/inner_steps",
                message: "must be positive".into(),
            });
        }
        if cfg.publish_period == 0 {
            return Err(RuntimeError::InvalidParameter {
                name: "publish_period",
                message: "must be positive".into(),
            });
        }
        if !cfg.spin_per_update.is_empty() && cfg.spin_per_update.len() != cfg.workers {
            return Err(RuntimeError::InvalidParameter {
                name: "spin_per_update",
                message: "must be empty or one entry per worker".into(),
            });
        }

        let shared = SharedVec::new(x0);
        let counter = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let partial_publishes = AtomicU64::new(0);
        let snapshot_lock = parking_lot::RwLock::new(());
        let blocks: Vec<Vec<usize>> = (0..cfg.workers)
            .map(|w| partition.components_of(w))
            .collect();

        let start = Instant::now();
        let mut worker_logs: Vec<(Vec<Event>, u64)> = Vec::with_capacity(cfg.workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(cfg.workers);
            for (w, block) in blocks.iter().enumerate() {
                let shared = &shared;
                let counter = &counter;
                let stop = &stop;
                let partial_publishes = &partial_publishes;
                let snapshot_lock = &snapshot_lock;
                let spin_units = cfg.spin_per_update.get(w).copied().unwrap_or(0);
                handles.push(scope.spawn(move || {
                    // Per-worker buffers allocated once (snapshot values
                    // and labels, block output, operator scratch): the
                    // update loop below is heap-allocation-free apart
                    // from trace-event recording.
                    let mut vals = vec![0.0; n];
                    let mut labels = vec![0u64; n];
                    let mut upd = vec![0.0; n];
                    let mut scratch = vec![0.0; op.scratch_len()];
                    let mut events: Vec<Event> = Vec::new();
                    let mut my_updates = 0u64;
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        // Snapshot (the asynchronous read).
                        match cfg.snapshot {
                            SnapshotMode::Relaxed => {
                                shared.snapshot_labelled(&mut vals, &mut labels);
                            }
                            SnapshotMode::Locked => {
                                let _g = snapshot_lock.read();
                                shared.snapshot_labelled(&mut vals, &mut labels);
                            }
                        }
                        // Simulated compute load (heterogeneity).
                        if spin_units > 0 {
                            spin(spin_units);
                        }
                        // m inner iterations on the block, off-block
                        // frozen at the snapshot.
                        for r in 1..=cfg.inner_steps {
                            op.update_active_with(&vals, block, &mut upd, &mut scratch);
                            for &i in block {
                                vals[i] = upd[i];
                            }
                            if r % cfg.publish_period == 0 && r < cfg.inner_steps {
                                // Mid-phase partial publish (flexible
                                // communication): label = current global
                                // count, i.e. "as of now".
                                let now = counter.load(Ordering::Relaxed);
                                let guard = (cfg.snapshot == SnapshotMode::Locked)
                                    .then(|| snapshot_lock.write());
                                for &i in block {
                                    shared.write(i, vals[i], now);
                                }
                                drop(guard);
                                partial_publishes.fetch_add(block.len() as u64, Ordering::Relaxed);
                            }
                        }
                        // Acquire the global iteration number and publish.
                        let j = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        if j > cfg.max_updates {
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                        {
                            let guard = (cfg.snapshot == SnapshotMode::Locked)
                                .then(|| snapshot_lock.write());
                            for &i in block {
                                shared.write(i, vals[i], j);
                            }
                            drop(guard);
                        }
                        my_updates += 1;
                        match cfg.record {
                            TraceRecord::Off => {}
                            TraceRecord::MinOnly => {
                                let min_label =
                                    labels.iter().copied().min().unwrap_or(0).min(j - 1);
                                events.push(Event {
                                    j,
                                    worker: w,
                                    min_label,
                                    labels: Vec::new(),
                                });
                            }
                            TraceRecord::Full => {
                                // Clamp to j−1: labels were read before j
                                // was acquired, so this only tightens.
                                let clamped: Vec<u64> =
                                    labels.iter().map(|&l| l.min(j - 1)).collect();
                                let min_label = clamped.iter().copied().min().unwrap_or(0);
                                events.push(Event {
                                    j,
                                    worker: w,
                                    min_label,
                                    labels: clamped,
                                });
                            }
                        }
                        // Residual-based stopping, checked by worker 0.
                        if w == 0 {
                            if let Some(eps) = cfg.target_residual {
                                if my_updates.is_multiple_of(cfg.check_every.max(1)) {
                                    shared.snapshot(&mut vals);
                                    if op.residual_inf_with(&vals, &mut scratch) <= eps {
                                        stop.store(true, Ordering::Relaxed);
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    (events, my_updates)
                }));
            }
            for h in handles {
                worker_logs.push(h.join().expect("worker panicked"));
            }
        });
        let wall = start.elapsed();

        let mut final_x = vec![0.0; n];
        shared.snapshot(&mut final_x);
        let final_residual = op.residual_inf(&final_x);
        let per_worker_updates: Vec<u64> = worker_logs.iter().map(|(_, u)| *u).collect();
        let total_updates = per_worker_updates.iter().sum();

        let trace = match cfg.record {
            TraceRecord::Off => None,
            _ => {
                let mut events: Vec<Event> = worker_logs.into_iter().flat_map(|(e, _)| e).collect();
                events.sort_unstable_by_key(|e| e.j);
                let store = if cfg.record == TraceRecord::Full {
                    LabelStore::Full
                } else {
                    LabelStore::MinOnly
                };
                let mut trace = Trace::new(n, store);
                let mut min_only_labels = vec![0u64; n];
                for (idx, e) in events.iter().enumerate() {
                    // j values are dense 1..=len by the counter contract.
                    debug_assert_eq!(e.j as usize, idx + 1, "non-dense step numbering");
                    let active = &blocks[e.worker];
                    if store == LabelStore::Full {
                        trace.push_step(active, &e.labels);
                    } else {
                        min_only_labels.fill(e.min_label);
                        trace.push_step(active, &min_only_labels);
                    }
                }
                Some(trace)
            }
        };

        Ok(AsyncRunResult {
            final_x,
            total_updates,
            wall,
            per_worker_updates,
            final_residual,
            trace,
            partial_publishes: partial_publishes.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_models::conditions::check_condition_a;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn converges_to_fixed_point() {
        let op = jacobi(64);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(64, 4).unwrap();
        // Residual target with a huge budget: on a loaded single-core
        // host one free-running worker can burn hundreds of thousands of
        // updates before its peers are scheduled, so the budget must be
        // far above any "expected" update count.
        let cfg = AsyncConfig::new(4, 8_000_000).with_target_residual(1e-12);
        let res = AsyncSharedRunner::run(&op, &vec![0.0; 64], &p, &cfg).unwrap();
        assert!(
            vecops::max_abs_diff(&res.final_x, &xstar) < 1e-9,
            "error {}",
            vecops::max_abs_diff(&res.final_x, &xstar)
        );
        assert!(res.total_updates > 0);
        assert_eq!(res.per_worker_updates.len(), 4);
    }

    #[test]
    fn trace_satisfies_condition_a_and_is_dense() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = AsyncConfig::new(4, 2000).with_record(TraceRecord::Full);
        let res = AsyncSharedRunner::run(&op, &[0.0; 16], &p, &cfg).unwrap();
        let trace = res.trace.expect("trace requested");
        assert_eq!(trace.len() as u64, res.total_updates);
        check_condition_a(&trace).expect("condition (a) must hold by construction");
    }

    #[test]
    fn single_worker_behaves_like_block_gauss_seidel() {
        let op = jacobi(8);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(8, 1).unwrap();
        let cfg = AsyncConfig::new(1, 500);
        let res = AsyncSharedRunner::run(&op, &[0.0; 8], &p, &cfg).unwrap();
        assert!(vecops::max_abs_diff(&res.final_x, &xstar) < 1e-9);
        assert_eq!(res.per_worker_updates, vec![500]);
    }

    #[test]
    fn flexible_publishing_counts_partials() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 2).unwrap();
        let cfg = AsyncConfig::new(2, 400).with_flexible(4, 1);
        let res = AsyncSharedRunner::run(&op, &[0.0; 16], &p, &cfg).unwrap();
        // 3 partial publishes of 8 components per update.
        assert!(res.partial_publishes > 0);
        assert!(res.final_residual < 1.0);
    }

    #[test]
    fn locked_snapshots_also_converge() {
        let op = jacobi(32);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(32, 4).unwrap();
        // Huge budget + residual target: see converges_to_fixed_point.
        let cfg = AsyncConfig::new(4, 8_000_000)
            .with_target_residual(1e-11)
            .with_snapshot(SnapshotMode::Locked);
        let res = AsyncSharedRunner::run(&op, &vec![0.0; 32], &p, &cfg).unwrap();
        assert!(vecops::max_abs_diff(&res.final_x, &xstar) < 1e-8);
    }

    #[test]
    fn imbalance_skews_update_counts() {
        let op = jacobi(32);
        let p = Partition::blocks(32, 4).unwrap();
        let cfg = AsyncConfig::new(4, 20_000)
            .with_spin(crate::imbalance::linear_imbalance(4, 2_000, 16.0));
        let res = AsyncSharedRunner::run(&op, &vec![0.0; 32], &p, &cfg).unwrap();
        // The fast worker (index 0) performs several times the updates of
        // the slow one (index 3) — asynchronous progress is unthrottled.
        let fast = res.per_worker_updates[0] as f64;
        let slow = res.per_worker_updates[3] as f64;
        assert!(
            fast > 2.0 * slow,
            "expected skew, got fast {fast} vs slow {slow}"
        );
    }

    #[test]
    fn validation_errors() {
        let op = jacobi(8);
        let p = Partition::blocks(8, 2).unwrap();
        // Wrong worker count vs partition.
        let cfg = AsyncConfig::new(3, 100);
        assert!(AsyncSharedRunner::run(&op, &[0.0; 8], &p, &cfg).is_err());
        // Wrong x0 length.
        let cfg = AsyncConfig::new(2, 100);
        assert!(AsyncSharedRunner::run(&op, &[0.0; 7], &p, &cfg).is_err());
        // Spin length mismatch.
        let cfg = AsyncConfig::new(2, 100).with_spin(vec![1, 2, 3]);
        assert!(AsyncSharedRunner::run(&op, &[0.0; 8], &p, &cfg).is_err());
        // Zero budget.
        let cfg = AsyncConfig::new(2, 0);
        assert!(AsyncSharedRunner::run(&op, &[0.0; 8], &p, &cfg).is_err());
    }

    #[test]
    fn macro_iterations_exist_on_recorded_trace() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        // Spin work keeps worker pacing comparable; with completely
        // free-running threads the OS can stagger thread start-up so much
        // that one worker performs thousands of updates before the last
        // one begins, making macro-iterations legitimately sparse. On a
        // single-core host a macro-iteration needs a full scheduling
        // rotation over all workers, so instead of a fixed budget (which
        // a hogging worker can exhaust inside one scheduling quantum) the
        // run stops on a residual target: reaching it on this coupled
        // tridiagonal problem forces information to cross every block
        // boundary several times, i.e. several complete rotations.
        let cfg = AsyncConfig::new(4, 8_000_000)
            .with_target_residual(1e-12)
            .with_record(TraceRecord::MinOnly)
            .with_spin(vec![2_000; 4]);
        let res = AsyncSharedRunner::run(&op, &[0.0; 16], &p, &cfg).unwrap();
        let trace = res.trace.unwrap();
        let m = asynciter_models::macroiter::macro_iterations(&trace);
        assert!(
            m.count() > 2,
            "expected macro-iterations to complete, got {}",
            m.count()
        );
        // Strict macro-iterations carry the freshness guarantee even on
        // real thread traces.
        let strict = asynciter_models::macroiter::macro_iterations_strict(&trace);
        assert_eq!(
            asynciter_models::macroiter::boundary_freshness_violations(&trace, &strict.boundaries),
            0
        );
    }
}
