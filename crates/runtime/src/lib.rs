//! # asynciter-runtime
//!
//! Real multi-threaded runtimes for asynchronous iterations — the
//! workspace's stand-in for the paper's Cray T3E / IBM SP4 / Grid5000
//! campaigns (see DESIGN.md §2 for the substitution argument):
//!
//! - [`shared`] — the lock-free shared iterate vector: one atomic
//!   value+label slot per component, single writer per component,
//!   wait-free relaxed readers (Hogwild-style inconsistent snapshots,
//!   exactly the regime Definition 1 models).
//! - [`async_engine`] — free-running workers updating their blocks
//!   without any synchronisation; optional inner iterations with partial
//!   publishing (flexible communication), injected load imbalance, and
//!   full event tracing back into [`asynciter_models::Trace`].
//! - [`sync_engine`] — the barrier-synchronous Jacobi baseline with the
//!   same work model, for the async-vs-sync comparisons (experiment E3).
//! - [`cluster`] — the deterministic sharded message-passing engine: a
//!   seeded virtual cluster with per-worker mailboxes, latency models,
//!   hold/drop/duplicate faults and flexible partial exchange, whose
//!   recorded traces replay bit-identically (experiments E5/E6).
//! - [`transport`] — the socket-ready [`transport::Transport`] /
//!   [`transport::Endpoint`] seam: labelled block messages over
//!   swappable channels, with an in-process mpsc mesh and a
//!   fault-injecting decorator.
//! - [`threaded`] — the genuinely concurrent cluster: free-running
//!   worker threads owning shards, exchanging block messages through
//!   the transport seam; every run records a producing-step trace that
//!   replays bit-identically through `Replay`.
//! - [`scratch`] — the recycling [`ScratchPool`] the multi-tenant
//!   service leases per-job workspaces from: clean leases are bitwise
//!   fresh (so pooling is invisible to the bit-identity oracles) and
//!   lease/return cycles are allocation-free after warm-up.
//! - [`network`] — the legacy message-passing API, now a thin
//!   compatibility wrapper over [`cluster`].
//! - [`termination`] — distributed termination detection in the spirit
//!   of El Baz \[22\]: local quiescence flags plus in-flight message
//!   accounting (experiment E10).
//! - [`imbalance`] — calibrated spin-work injection used to model
//!   heterogeneous processors.
//! - [`session`] — [`SharedMem`], [`Barrier`], [`Cluster`] and
//!   [`ThreadedCluster`] backends plugging the runtimes into the
//!   unified `asynciter_core::session::Session` API.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod async_engine;
pub mod cluster;
pub mod error;
pub mod imbalance;
pub mod network;
pub mod scratch;
pub mod session;
pub mod shared;
pub mod sync_engine;
pub mod termination;
pub mod threaded;
pub mod transport;

pub use async_engine::{AsyncConfig, AsyncRunResult, AsyncSharedRunner, SnapshotMode, TraceRecord};
pub use cluster::{
    apply_message, produce_block, produce_step, ApplyPolicy, ClusterConfig, ClusterCursor,
    ClusterEngine, ClusterRunResult, ClusterSnapshot, ClusterStats, LinkModel, MessageApply,
    StepStatus,
};
pub use error::RuntimeError;
pub use scratch::{PoolStats, ScratchLease, ScratchPool};
pub use session::{Barrier, Cluster, SharedMem, ThreadedCluster};
pub use shared::SharedVec;
pub use sync_engine::{SpinBarrier, SyncConfig, SyncRunResult, SyncRunner};
pub use threaded::{Quiesce, ThreadedClusterEngine, ThreadedConfig, ThreadedRunResult};
pub use transport::{
    BlockMessage, Endpoint, FaultEndpoint, FaultPlan, MpscTransport, SendFate, Transport,
};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, RuntimeError>;
