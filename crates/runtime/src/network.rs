//! Legacy message-passing API — now a thin compatibility wrapper over
//! the deterministic [`crate::cluster`] engine.
//!
//! Historically this module ran workers and an adversarial router on
//! real threads, which made every run irreproducible and flaky on
//! loaded single-core hosts. The engine it described — per-worker local
//! views, labelled block messages, hold/drop/duplicate channel faults,
//! [`ApplyPolicy`] receivers — now lives in [`crate::cluster`] as a
//! seeded sequential event loop with bit-reproducible runs, a recorded
//! replayable [`Trace`](asynciter_models::Trace), and a `Session`
//! backend ([`crate::session::Cluster`]). Genuinely concurrent
//! execution did not retire with the router: [`crate::threaded`] runs
//! the same message-passing regime on free-running worker threads over
//! the [`crate::transport`] seam, recording traces that replay
//! bit-identically ([`crate::session::ThreadedCluster`]).
//!
//! New code should use `Session::backend(Cluster { .. })` (or
//! `ThreadedCluster { .. }` for real concurrency); this wrapper
//! keeps the old [`NetworkRunner::run`] signature and result types
//! working, mapped 1:1 onto the cluster engine:
//!
//! - `updates_per_worker` becomes a global step budget of
//!   `workers × updates_per_worker` round-robin block updates;
//! - the channel fates (`hold_prob`/`drop_prob`/`dup_prob`) and
//!   [`ApplyPolicy`] carry over unchanged;
//! - `post_drain_sweeps` local sweeps are applied to every final local
//!   view, as before.

use crate::cluster::{ClusterConfig, ClusterEngine, ClusterStats};
use crate::error::RuntimeError;
use asynciter_models::partition::Partition;
use asynciter_opt::traits::Operator;
use std::time::Duration;

pub use crate::cluster::ApplyPolicy;

/// Configuration of a message-passing run (legacy shape).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of workers (= machines).
    pub workers: usize,
    /// Local block updates each worker performs.
    pub updates_per_worker: u64,
    /// Send own block values every this many local updates.
    pub exchange_every: u64,
    /// Receiver policy.
    pub apply_policy: ApplyPolicy,
    /// Channel hold probability (reordering).
    pub hold_prob: f64,
    /// Channel drop probability (loss).
    pub drop_prob: f64,
    /// Channel duplication probability.
    pub dup_prob: f64,
    /// RNG seed for the channel model.
    pub seed: u64,
    /// Local recompute sweeps each worker runs after its final update —
    /// lets late-arriving information settle into owned components.
    pub post_drain_sweeps: u64,
}

impl NetConfig {
    /// A benign default: exchange every update, no faults.
    pub fn new(workers: usize, updates_per_worker: u64) -> Self {
        Self {
            workers,
            updates_per_worker,
            exchange_every: 1,
            apply_policy: ApplyPolicy::AsReceived,
            hold_prob: 0.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            seed: 0,
            post_drain_sweeps: 2,
        }
    }

    /// Sets the channel fault model.
    pub fn with_faults(mut self, hold: f64, drop: f64, dup: f64) -> Self {
        self.hold_prob = hold;
        self.drop_prob = drop;
        self.dup_prob = dup;
        self
    }

    /// Sets the exchange period.
    pub fn with_exchange_every(mut self, every: u64) -> Self {
        self.exchange_every = every;
        self
    }

    /// Sets the receiver policy.
    pub fn with_policy(mut self, policy: ApplyPolicy) -> Self {
        self.apply_policy = policy;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Channel-model statistics of a run (alias of [`ClusterStats`], kept
/// under the legacy name).
pub type NetStats = ClusterStats;

/// Result of a message-passing run.
#[derive(Debug)]
pub struct NetRunResult {
    /// Final local view of each worker.
    pub local_views: Vec<Vec<f64>>,
    /// Consensus vector: each component taken from its owner's view.
    pub consensus: Vec<f64>,
    /// Fixed-point residual of the consensus vector.
    pub final_residual: f64,
    /// Channel statistics.
    pub stats: NetStats,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

/// The legacy message-passing runner (see module docs for the
/// migration path).
#[derive(Debug, Default)]
pub struct NetworkRunner;

impl NetworkRunner {
    /// Runs the distributed asynchronous iteration.
    ///
    /// # Errors
    /// Dimension/parameter validation failures.
    pub fn run(
        op: &dyn Operator,
        x0: &[f64],
        partition: &Partition,
        cfg: &NetConfig,
    ) -> crate::Result<NetRunResult> {
        if partition.num_machines() != cfg.workers {
            return Err(RuntimeError::InvalidParameter {
                name: "workers",
                message: "partition machine count must equal cfg.workers".into(),
            });
        }
        if cfg.workers == 0 || cfg.updates_per_worker == 0 {
            return Err(RuntimeError::InvalidParameter {
                name: "workers/updates_per_worker",
                message: "must be positive".into(),
            });
        }
        let ccfg = ClusterConfig::new(cfg.workers as u64 * cfg.updates_per_worker)
            .with_exchange_every(cfg.exchange_every)
            .with_policy(cfg.apply_policy)
            .with_faults(cfg.hold_prob, cfg.drop_prob, cfg.dup_prob)
            .with_seed(cfg.seed);
        let res = ClusterEngine::run(op, x0, partition, &ccfg, None)?;
        let mut local_views = res.local_views;
        // Post-drain: let each worker's view settle over its own block.
        for (w, view) in local_views.iter_mut().enumerate() {
            let block = partition.components_of(w);
            for _ in 0..cfg.post_drain_sweeps {
                for &i in &block {
                    view[i] = op.component(i, view);
                }
            }
        }
        let mut consensus = vec![0.0; op.dim()];
        for (i, c) in consensus.iter_mut().enumerate() {
            *c = local_views[partition.machine_of(i)][i];
        }
        let final_residual = op.residual_inf(&consensus);
        Ok(NetRunResult {
            local_views,
            consensus,
            final_residual,
            stats: res.stats,
            wall: res.wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::bellman_ford::{BellmanFordOperator, Graph};
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn fault_free_run_converges() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(24, 3).unwrap();
        let cfg = NetConfig::new(3, 300);
        let res = NetworkRunner::run(&op, &[0.0; 24], &p, &cfg).unwrap();
        assert!(
            vecops::max_abs_diff(&res.consensus, &xstar) < 1e-8,
            "error {}",
            vecops::max_abs_diff(&res.consensus, &xstar)
        );
        assert!(res.stats.sent > 0);
        assert_eq!(res.stats.dropped, 0);
    }

    #[test]
    fn survives_reordering_loss_and_duplication() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(24, 4).unwrap();
        for policy in [ApplyPolicy::AsReceived, ApplyPolicy::KeepFreshest] {
            let cfg = NetConfig::new(4, 800)
                .with_faults(0.3, 0.15, 0.1)
                .with_policy(policy)
                .with_seed(5);
            let res = NetworkRunner::run(&op, &[0.0; 24], &p, &cfg).unwrap();
            assert!(
                vecops::max_abs_diff(&res.consensus, &xstar) < 1e-6,
                "{policy:?}: error {}",
                vecops::max_abs_diff(&res.consensus, &xstar)
            );
            assert!(res.stats.dropped > 0, "{policy:?}: faults not exercised");
            assert!(res.stats.held > 0);
        }
    }

    #[test]
    fn keep_freshest_discards_stale() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = NetConfig::new(4, 500)
            .with_faults(0.5, 0.0, 0.2)
            .with_policy(ApplyPolicy::KeepFreshest)
            .with_seed(11);
        let res = NetworkRunner::run(&op, &[0.0; 16], &p, &cfg).unwrap();
        assert!(
            res.stats.discarded_stale > 0,
            "reordering should produce stale discards"
        );
    }

    #[test]
    fn bellman_ford_routing_with_faults_matches_dijkstra() {
        let g = Graph::arpanet();
        let n = g.num_nodes();
        let op = BellmanFordOperator::new(g, 0).unwrap();
        let exact = op.exact();
        let x0 = op.initial_estimate();
        let p = Partition::blocks(n, 6).unwrap();
        let cfg = NetConfig::new(6, 400)
            .with_faults(0.25, 0.1, 0.05)
            .with_seed(3);
        let res = NetworkRunner::run(&op, &x0, &p, &cfg).unwrap();
        for (i, (got, want)) in res.consensus.iter().zip(&exact).enumerate() {
            assert!(
                (got - want).abs() < 1e-9,
                "node {i}: {} vs {}",
                got,
                exact[i]
            );
        }
    }

    #[test]
    fn sparse_exchange_still_converges() {
        let op = jacobi(16);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(16, 2).unwrap();
        let cfg = NetConfig::new(2, 2000).with_exchange_every(25);
        let res = NetworkRunner::run(&op, &[0.0; 16], &p, &cfg).unwrap();
        assert!(vecops::max_abs_diff(&res.consensus, &xstar) < 1e-7);
        // Far fewer messages than exchanges-every-update.
        assert!(res.stats.sent <= 2 * 2000 / 25 + 2);
    }

    #[test]
    fn runs_are_reproducible() {
        // The legacy API inherits the cluster engine's determinism: two
        // identical configs produce identical consensus vectors and
        // channel statistics (impossible under the old thread router).
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = NetConfig::new(4, 400)
            .with_faults(0.3, 0.1, 0.1)
            .with_seed(21);
        let a = NetworkRunner::run(&op, &[0.0; 16], &p, &cfg).unwrap();
        let b = NetworkRunner::run(&op, &[0.0; 16], &p, &cfg).unwrap();
        assert_eq!(a.consensus, b.consensus);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn validation_errors() {
        let op = jacobi(8);
        let p = Partition::blocks(8, 2).unwrap();
        assert!(NetworkRunner::run(&op, &[0.0; 8], &p, &NetConfig::new(3, 10)).is_err());
        assert!(NetworkRunner::run(&op, &[0.0; 7], &p, &NetConfig::new(2, 10)).is_err());
        assert!(NetworkRunner::run(&op, &[0.0; 8], &p, &NetConfig::new(2, 0)).is_err());
        let bad = NetConfig::new(2, 10).with_faults(1.5, 0.0, 0.0);
        assert!(NetworkRunner::run(&op, &[0.0; 8], &p, &bad).is_err());
    }
}
