//! Virtual message-passing runtime: distributed asynchronous iterations
//! with delayed, reordered, dropped and duplicated messages.
//!
//! Each worker owns a component block and keeps a full *local copy* of
//! the iterate (its best knowledge of everyone else). Workers never share
//! memory: after every `exchange_every` local updates they post their
//! block values — tagged with per-sender monotone labels — to a router
//! thread, which delivers them to the other workers subject to an
//! adversarial channel model:
//!
//! - **hold** (probability `hold_prob`): the message is parked and
//!   released later, after newer messages — genuine out-of-order
//!   delivery;
//! - **drop** (probability `drop_prob`): the message is lost (transient
//!   fault; the paper notes asynchronous iterations absorb these because
//!   newer messages supersede lost ones);
//! - **duplicate** (probability `dup_prob`): delivered twice.
//!
//! Receivers apply messages under one of two policies:
//! [`ApplyPolicy::AsReceived`] overwrites unconditionally (a stale
//! message can *regress* a component — the hardest regime), while
//! [`ApplyPolicy::KeepFreshest`] discards messages older than what is
//! already known (label filtering). Both converge for totally
//! asynchronous operators; experiment E6 measures the difference.

use crate::error::RuntimeError;
use asynciter_models::partition::Partition;
use asynciter_opt::traits::Operator;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::RngExt;
use std::time::{Duration, Instant};

/// Message application policy at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyPolicy {
    /// Apply in arrival order, even if older than current knowledge.
    AsReceived,
    /// Apply only messages fresher (by sender label) than current
    /// knowledge.
    KeepFreshest,
}

/// Configuration of a message-passing run.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of workers (= machines).
    pub workers: usize,
    /// Local block updates each worker performs.
    pub updates_per_worker: u64,
    /// Send own block values every this many local updates.
    pub exchange_every: u64,
    /// Receiver policy.
    pub apply_policy: ApplyPolicy,
    /// Router hold probability (reordering).
    pub hold_prob: f64,
    /// Router drop probability (loss).
    pub drop_prob: f64,
    /// Router duplication probability.
    pub dup_prob: f64,
    /// RNG seed for the channel model.
    pub seed: u64,
    /// Local recompute sweeps each worker runs after the final message
    /// flush (no further exchanges) — lets late-arriving information
    /// settle into owned components.
    pub post_drain_sweeps: u64,
}

impl NetConfig {
    /// A benign default: exchange every update, no faults.
    pub fn new(workers: usize, updates_per_worker: u64) -> Self {
        Self {
            workers,
            updates_per_worker,
            exchange_every: 1,
            apply_policy: ApplyPolicy::AsReceived,
            hold_prob: 0.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            seed: 0,
            post_drain_sweeps: 2,
        }
    }

    /// Sets the channel fault model.
    pub fn with_faults(mut self, hold: f64, drop: f64, dup: f64) -> Self {
        self.hold_prob = hold;
        self.drop_prob = drop;
        self.dup_prob = dup;
        self
    }

    /// Sets the exchange period.
    pub fn with_exchange_every(mut self, every: u64) -> Self {
        self.exchange_every = every;
        self
    }

    /// Sets the receiver policy.
    pub fn with_policy(mut self, policy: ApplyPolicy) -> Self {
        self.apply_policy = policy;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Channel-model statistics of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages posted by workers.
    pub sent: u64,
    /// Messages delivered (including duplicates).
    pub delivered: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Messages held (delivered out of order).
    pub held: u64,
    /// Messages a receiver discarded as stale (KeepFreshest only).
    pub discarded_stale: u64,
}

/// Result of a message-passing run.
#[derive(Debug)]
pub struct NetRunResult {
    /// Final local view of each worker.
    pub local_views: Vec<Vec<f64>>,
    /// Consensus vector: each component taken from its owner's view.
    pub consensus: Vec<f64>,
    /// Fixed-point residual of the consensus vector.
    pub final_residual: f64,
    /// Channel statistics.
    pub stats: NetStats,
    /// Wall-clock duration of the parallel section.
    pub wall: Duration,
}

/// One block announcement: sender id, per-sender label, block values.
struct BlockMsg {
    label: u64,
    comps: Vec<(u32, f64)>,
}

enum RouterIn {
    Post { from: usize, msg: BlockMsg },
    Finished,
}

/// The message-passing runner. See module docs.
#[derive(Debug, Default)]
pub struct NetworkRunner;

impl NetworkRunner {
    /// Runs the distributed asynchronous iteration.
    ///
    /// # Errors
    /// Dimension/parameter validation failures.
    pub fn run(
        op: &dyn Operator,
        x0: &[f64],
        partition: &Partition,
        cfg: &NetConfig,
    ) -> crate::Result<NetRunResult> {
        let n = op.dim();
        if x0.len() != n {
            return Err(RuntimeError::DimensionMismatch {
                expected: n,
                actual: x0.len(),
                context: "NetworkRunner::run (x0)",
            });
        }
        if partition.n() != n {
            return Err(RuntimeError::DimensionMismatch {
                expected: n,
                actual: partition.n(),
                context: "NetworkRunner::run (partition)",
            });
        }
        if partition.num_machines() != cfg.workers {
            return Err(RuntimeError::InvalidParameter {
                name: "workers",
                message: "partition machine count must equal cfg.workers".into(),
            });
        }
        if cfg.workers == 0 || cfg.updates_per_worker == 0 || cfg.exchange_every == 0 {
            return Err(RuntimeError::InvalidParameter {
                name: "workers/updates_per_worker/exchange_every",
                message: "must be positive".into(),
            });
        }
        for (name, p) in [
            ("hold_prob", cfg.hold_prob),
            ("drop_prob", cfg.drop_prob),
            ("dup_prob", cfg.dup_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(RuntimeError::InvalidParameter {
                    name,
                    message: format!("{name} = {p} outside [0,1]"),
                });
            }
        }

        let blocks: Vec<Vec<usize>> = (0..cfg.workers)
            .map(|w| partition.components_of(w))
            .collect();

        // Worker inboxes and the router ingress.
        let (router_tx, router_rx) = unbounded::<RouterIn>();
        let mut inbox_txs: Vec<Sender<BlockMsg>> = Vec::with_capacity(cfg.workers);
        let mut inbox_rxs: Vec<Option<Receiver<BlockMsg>>> = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let (tx, rx) = unbounded::<BlockMsg>();
            inbox_txs.push(tx);
            inbox_rxs.push(Some(rx));
        }

        let start = Instant::now();
        let mut stats = NetStats::default();
        let mut local_views: Vec<Vec<f64>> = vec![Vec::new(); cfg.workers];
        let mut stale_discards: Vec<u64> = vec![0; cfg.workers];

        std::thread::scope(|scope| {
            // Router thread: applies the channel model.
            let router = scope.spawn({
                let inbox_txs = inbox_txs.clone();
                let workers = cfg.workers;
                let (hold_p, drop_p, dup_p) = (cfg.hold_prob, cfg.drop_prob, cfg.dup_prob);
                let seed = cfg.seed;
                move || {
                    let mut rng = asynciter_numerics::rng::rng(seed);
                    let mut pending: Vec<(usize, BlockMsg)> = Vec::new();
                    let mut st = NetStats::default();
                    let mut finished = 0usize;
                    let deliver = |dest: usize, msg: BlockMsg, st: &mut NetStats| {
                        st.delivered += 1;
                        // Send failure only if the receiver is gone,
                        // which cannot happen before Finished.
                        let _ = inbox_txs[dest].send(msg);
                    };
                    while finished < workers {
                        match router_rx.recv() {
                            Ok(RouterIn::Finished) => finished += 1,
                            Ok(RouterIn::Post { from, msg }) => {
                                // Fan out to every other worker with an
                                // independent channel fate per link.
                                for dest in 0..workers {
                                    if dest == from {
                                        continue;
                                    }
                                    st.sent += 1;
                                    if rng.random_range(0.0..1.0) < drop_p {
                                        st.dropped += 1;
                                        continue;
                                    }
                                    let copy = BlockMsg {
                                        label: msg.label,
                                        comps: msg.comps.clone(),
                                    };
                                    if rng.random_range(0.0..1.0) < dup_p {
                                        st.duplicated += 1;
                                        deliver(
                                            dest,
                                            BlockMsg {
                                                label: msg.label,
                                                comps: msg.comps.clone(),
                                            },
                                            &mut st,
                                        );
                                    }
                                    if rng.random_range(0.0..1.0) < hold_p {
                                        st.held += 1;
                                        pending.push((dest, copy));
                                        // Occasionally release an old
                                        // held message after this newer
                                        // one — out-of-order delivery.
                                        if pending.len() > 4 {
                                            let k = rng.random_range(0..pending.len());
                                            let (d, m) = pending.swap_remove(k);
                                            deliver(d, m, &mut st);
                                        }
                                    } else {
                                        deliver(dest, copy, &mut st);
                                    }
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    // Flush held messages in random order.
                    while !pending.is_empty() {
                        let k = rng.random_range(0..pending.len());
                        let (d, m) = pending.swap_remove(k);
                        deliver(d, m, &mut st);
                    }
                    drop(inbox_txs); // disconnect inboxes → workers drain out
                    st
                }
            });

            // Workers.
            let mut handles = Vec::with_capacity(cfg.workers);
            for w in 0..cfg.workers {
                let block = &blocks[w];
                let rx = inbox_rxs[w].take().expect("inbox taken once");
                let tx = router_tx.clone();
                let policy = cfg.apply_policy;
                let x0 = &x0;
                handles.push(scope.spawn(move || {
                    let mut x = x0.to_vec();
                    // Best-known sender label per component.
                    let mut known = vec![0u64; n];
                    let mut label = 0u64;
                    let mut discarded = 0u64;
                    let apply = |x: &mut Vec<f64>,
                                 known: &mut Vec<u64>,
                                 m: BlockMsg,
                                 discarded: &mut u64| {
                        for &(c, v) in &m.comps {
                            let c = c as usize;
                            match policy {
                                ApplyPolicy::AsReceived => {
                                    x[c] = v;
                                    known[c] = known[c].max(m.label);
                                }
                                ApplyPolicy::KeepFreshest => {
                                    if m.label >= known[c] {
                                        x[c] = v;
                                        known[c] = m.label;
                                    } else {
                                        *discarded += 1;
                                    }
                                }
                            }
                        }
                    };
                    for u in 1..=cfg.updates_per_worker {
                        let mut got_any = false;
                        while let Ok(m) = rx.try_recv() {
                            apply(&mut x, &mut known, m, &mut discarded);
                            got_any = true;
                        }
                        // Pacing: a worker that races far ahead of the
                        // network would compute its whole budget on the
                        // initial data. Real machines overlap computation
                        // with communication at comparable timescales;
                        // model that by briefly blocking for input when a
                        // drain comes up empty (the iteration remains
                        // asynchronous — nobody waits for a *specific*
                        // peer or update).
                        if !got_any && cfg.workers > 1 {
                            if let Ok(m) = rx.recv_timeout(std::time::Duration::from_micros(500)) {
                                apply(&mut x, &mut known, m, &mut discarded);
                            }
                        }
                        for &i in block {
                            x[i] = op.component(i, &x);
                        }
                        if u % cfg.exchange_every == 0 {
                            label += 1;
                            let msg = BlockMsg {
                                label,
                                comps: block.iter().map(|&i| (i as u32, x[i])).collect(),
                            };
                            let _ = tx.send(RouterIn::Post { from: w, msg });
                        }
                    }
                    let _ = tx.send(RouterIn::Finished);
                    drop(tx);
                    // Drain until the router disconnects the inbox.
                    while let Ok(m) = rx.recv() {
                        apply(&mut x, &mut known, m, &mut discarded);
                    }
                    // Let late information settle into owned components.
                    for _ in 0..cfg.post_drain_sweeps {
                        for &i in block {
                            x[i] = op.component(i, &x);
                        }
                    }
                    (x, discarded)
                }));
            }
            drop(router_tx);
            // The router owns the only remaining inbox senders; dropping
            // the originals here lets worker drain loops observe
            // disconnection once the router flushes and exits.
            drop(inbox_txs);
            for (w, h) in handles.into_iter().enumerate() {
                let (x, discarded) = h.join().expect("worker panicked");
                local_views[w] = x;
                stale_discards[w] = discarded;
            }
            stats = router.join().expect("router panicked");
        });
        let wall = start.elapsed();
        stats.discarded_stale = stale_discards.iter().sum();

        let mut consensus = vec![0.0; n];
        for (w, block) in blocks.iter().enumerate() {
            for &i in block {
                consensus[i] = local_views[w][i];
            }
        }
        let final_residual = op.residual_inf(&consensus);

        Ok(NetRunResult {
            local_views,
            consensus,
            final_residual,
            stats,
            wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::bellman_ford::{BellmanFordOperator, Graph};
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn fault_free_run_converges() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(24, 3).unwrap();
        let cfg = NetConfig::new(3, 300);
        let res = NetworkRunner::run(&op, &[0.0; 24], &p, &cfg).unwrap();
        assert!(
            vecops::max_abs_diff(&res.consensus, &xstar) < 1e-8,
            "error {}",
            vecops::max_abs_diff(&res.consensus, &xstar)
        );
        assert!(res.stats.sent > 0);
        assert_eq!(res.stats.dropped, 0);
    }

    #[test]
    fn survives_reordering_loss_and_duplication() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(24, 4).unwrap();
        for policy in [ApplyPolicy::AsReceived, ApplyPolicy::KeepFreshest] {
            let cfg = NetConfig::new(4, 800)
                .with_faults(0.3, 0.15, 0.1)
                .with_policy(policy)
                .with_seed(5);
            let res = NetworkRunner::run(&op, &[0.0; 24], &p, &cfg).unwrap();
            assert!(
                vecops::max_abs_diff(&res.consensus, &xstar) < 1e-6,
                "{policy:?}: error {}",
                vecops::max_abs_diff(&res.consensus, &xstar)
            );
            assert!(res.stats.dropped > 0, "{policy:?}: faults not exercised");
            assert!(res.stats.held > 0);
        }
    }

    #[test]
    fn keep_freshest_discards_stale() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = NetConfig::new(4, 500)
            .with_faults(0.5, 0.0, 0.2)
            .with_policy(ApplyPolicy::KeepFreshest)
            .with_seed(11);
        let res = NetworkRunner::run(&op, &[0.0; 16], &p, &cfg).unwrap();
        assert!(
            res.stats.discarded_stale > 0,
            "reordering should produce stale discards"
        );
    }

    #[test]
    fn bellman_ford_routing_with_faults_matches_dijkstra() {
        let g = Graph::arpanet();
        let n = g.num_nodes();
        let op = BellmanFordOperator::new(g, 0).unwrap();
        let exact = op.exact();
        let x0 = op.initial_estimate();
        let p = Partition::blocks(n, 6).unwrap();
        let cfg = NetConfig::new(6, 400)
            .with_faults(0.25, 0.1, 0.05)
            .with_seed(3);
        let res = NetworkRunner::run(&op, &x0, &p, &cfg).unwrap();
        for (i, (got, want)) in res.consensus.iter().zip(&exact).enumerate() {
            assert!(
                (got - want).abs() < 1e-9,
                "node {i}: {} vs {}",
                got,
                exact[i]
            );
        }
    }

    #[test]
    fn sparse_exchange_still_converges() {
        let op = jacobi(16);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(16, 2).unwrap();
        let cfg = NetConfig::new(2, 2000).with_exchange_every(25);
        let res = NetworkRunner::run(&op, &[0.0; 16], &p, &cfg).unwrap();
        assert!(vecops::max_abs_diff(&res.consensus, &xstar) < 1e-7);
        // Far fewer messages than exchanges-every-update.
        assert!(res.stats.sent <= 2 * 2000 / 25 + 2);
    }

    #[test]
    fn validation_errors() {
        let op = jacobi(8);
        let p = Partition::blocks(8, 2).unwrap();
        assert!(NetworkRunner::run(&op, &[0.0; 8], &p, &NetConfig::new(3, 10)).is_err());
        assert!(NetworkRunner::run(&op, &[0.0; 7], &p, &NetConfig::new(2, 10)).is_err());
        assert!(NetworkRunner::run(&op, &[0.0; 8], &p, &NetConfig::new(2, 0)).is_err());
        let bad = NetConfig::new(2, 10).with_faults(1.5, 0.0, 0.0);
        assert!(NetworkRunner::run(&op, &[0.0; 8], &p, &bad).is_err());
    }
}
