//! Calibrated artificial load: spin-work injection.
//!
//! The paper's efficiency claims rest on *load imbalance*: on real
//! machines some processors are slower (heterogeneous nodes, competing
//! jobs), and barrier-synchronous methods run at the pace of the slowest
//! while asynchronous methods do not. To reproduce that effect on a
//! single host we inject deterministic spin-work per update, scaled by a
//! per-worker imbalance factor.

use std::hint::black_box;

/// Spins for roughly `units` arbitrary work quanta (each quantum is a
/// handful of dependent integer operations the optimiser cannot remove).
#[inline]
pub fn spin(units: u64) {
    let mut acc = 0x9E37_79B9u64;
    for i in 0..units {
        // Dependent chain; black_box defeats vectorisation/removal.
        acc = black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i));
    }
    black_box(acc);
}

/// Builds a per-worker spin schedule from an imbalance `factor ≥ 1`: the
/// slowest worker performs `factor ×` the base work, with the remaining
/// workers interpolated linearly. `factor = 1` yields uniform load.
///
/// # Panics
/// Panics when `workers == 0`, `base == 0` or `factor < 1`.
pub fn linear_imbalance(workers: usize, base: u64, factor: f64) -> Vec<u64> {
    assert!(workers > 0, "linear_imbalance: workers");
    assert!(base > 0, "linear_imbalance: base");
    assert!(factor >= 1.0, "linear_imbalance: factor >= 1");
    (0..workers)
        .map(|w| {
            let t = if workers == 1 {
                0.0
            } else {
                w as f64 / (workers - 1) as f64
            };
            (base as f64 * (1.0 + t * (factor - 1.0))).round() as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_scales_roughly_linearly() {
        // Warm up.
        spin(10_000);
        // A single sample can be inflated arbitrarily by preemption when
        // the suite runs in parallel on a loaded host; the minimum over
        // repetitions is robust (a preempted sample is only ever slower).
        let time = |units: u64| {
            (0..5)
                .map(|_| {
                    let t = std::time::Instant::now();
                    spin(units);
                    t.elapsed()
                })
                .min()
                .expect("nonempty")
        };
        let d1 = time(2_000_000);
        let d2 = time(8_000_000);
        // Wide bounds: we only need "more work takes noticeably longer,
        // roughly proportionally".
        let ratio = d2.as_secs_f64() / d1.as_secs_f64().max(1e-9);
        assert!(
            (1.5..40.0).contains(&ratio),
            "4x work gave time ratio {ratio}"
        );
    }

    #[test]
    fn linear_imbalance_endpoints() {
        let s = linear_imbalance(4, 100, 4.0);
        assert_eq!(s[0], 100);
        assert_eq!(s[3], 400);
        assert_eq!(s.len(), 4);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn uniform_when_factor_one() {
        assert_eq!(linear_imbalance(3, 50, 1.0), vec![50, 50, 50]);
        assert_eq!(linear_imbalance(1, 50, 8.0), vec![50]);
    }

    #[test]
    #[should_panic(expected = "factor >= 1")]
    fn rejects_sub_unit_factor() {
        linear_imbalance(2, 10, 0.5);
    }
}
