//! The transport seam of the concurrent cluster: labelled block
//! messages over swappable, socket-ready channels.
//!
//! The threaded cluster's free-running workers ([`crate::threaded`])
//! never share memory; they exchange [`BlockMessage`]s through
//! per-worker [`Endpoint`]s handed out by a [`Transport`]. The trait
//! boundary is deliberately narrow — fire-and-forget `send`,
//! non-blocking `try_recv`, loss allowed — exactly the contract a
//! datagram socket or a framed TCP stream can satisfy, so promoting the
//! in-process cluster to a real distributed deployment means
//! implementing `Transport` over sockets, not touching the engine.
//!
//! Two implementations ship today:
//!
//! - [`MpscTransport`] — `std::sync::mpsc` channels, one receiver per
//!   worker, any-to-any senders: the in-process concurrent transport;
//! - [`FaultEndpoint`] — a decorator injecting seeded hold / drop /
//!   duplicate faults *at the seam*, so the channel chaos the paper
//!   tolerates is exercised on real threads without the engine knowing.
//!
//! ## Why labels travel with the payload
//!
//! Every component value in a message carries the global producing step
//! of that value. The receiver folds them into its local label book
//! ([`crate::cluster::apply_message`]), and each block update logs the
//! labels it read — which is what makes a *racy, nondeterministic*
//! threaded run replayable: the recorded trace pins down exactly which
//! producing step each read observed, and the Definition-1 replay
//! engine re-executes that schedule bit for bit.

use asynciter_numerics::rng::rng;
use rand::rngs::StdRng;
use rand::RngExt;
use std::sync::mpsc::{channel, Receiver, Sender};

/// One labelled block exchange: a sender's freshest values for (a
/// subset of) its own block, each entry carrying the global producing
/// step of the value.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMessage {
    /// Sending worker.
    pub from: usize,
    /// `(component, value, producing step)` triples.
    pub comps: Vec<(u32, f64, u64)>,
    /// True when the message carries a partial (subset) exchange —
    /// Definition-3 flexible communication at the message level.
    pub partial: bool,
}

/// A worker's handle on the transport mesh.
///
/// `send` is fire-and-forget (a message may be lost; asynchronous
/// iterations absorb transient losses because newer messages supersede
/// older ones) and `try_recv` never blocks — workers drain their
/// mailbox opportunistically between block updates and keep computing
/// when it is empty.
pub trait Endpoint: Send {
    /// Posts `msg` towards worker `dest`. Delivery is asynchronous and
    /// may silently fail (peer gone, message dropped in flight).
    fn send(&mut self, dest: usize, msg: BlockMessage);

    /// Takes the next pending message, if any. Never blocks.
    fn try_recv(&mut self) -> Option<BlockMessage>;
}

/// A factory wiring `workers` [`Endpoint`]s into a connected
/// any-to-any mesh (endpoint `w` belongs to worker `w`).
///
/// ```
/// use asynciter_runtime::transport::{BlockMessage, MpscTransport, Transport};
///
/// let mut ends = MpscTransport.connect(2);
/// let mut w1 = ends.pop().unwrap();
/// let mut w0 = ends.pop().unwrap();
/// w0.send(
///     1,
///     BlockMessage { from: 0, comps: vec![(0, 1.5, 7)], partial: false },
/// );
/// let got = w1.try_recv().expect("message delivered");
/// assert_eq!(got.comps, vec![(0, 1.5, 7)]);
/// assert!(w1.try_recv().is_none(), "try_recv never blocks");
/// ```
pub trait Transport {
    /// Builds one connected endpoint per worker.
    fn connect(&mut self, workers: usize) -> Vec<Box<dyn Endpoint>>;
}

/// The in-process transport: one `std::sync::mpsc` channel per worker,
/// every peer holding a cloned sender — any-to-any, FIFO per
/// sender/receiver pair, lossless (faults are layered on top by
/// [`FaultEndpoint`]).
#[derive(Debug, Default)]
pub struct MpscTransport;

struct ChannelEndpoint {
    peers: Vec<Sender<BlockMessage>>,
    rx: Receiver<BlockMessage>,
}

impl Endpoint for ChannelEndpoint {
    fn send(&mut self, dest: usize, msg: BlockMessage) {
        // A peer that already finished dropped its receiver; a send to
        // it is indistinguishable from a message lost in flight.
        let _ = self.peers[dest].send(msg);
    }

    fn try_recv(&mut self) -> Option<BlockMessage> {
        self.rx.try_recv().ok()
    }
}

impl Transport for MpscTransport {
    fn connect(&mut self, workers: usize) -> Vec<Box<dyn Endpoint>> {
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..workers).map(|_| channel()).unzip();
        receivers
            .into_iter()
            .map(|rx| {
                Box::new(ChannelEndpoint {
                    peers: senders.clone(),
                    rx,
                }) as Box<dyn Endpoint>
            })
            .collect()
    }
}

/// Seeded fault model applied by [`FaultEndpoint`] at send time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a send is parked behind later traffic — genuine
    /// out-of-order delivery once released.
    pub hold_prob: f64,
    /// Maximum number of subsequent sends a held message waits behind
    /// (uniform in `1..=hold_extra`).
    pub hold_extra: u64,
    /// Probability a send is dropped.
    pub drop_prob: f64,
    /// Probability a send is duplicated (the copy delivered promptly,
    /// independent of whether the original is held).
    pub dup_prob: f64,
}

impl FaultPlan {
    /// A faultless plan (every send delivered exactly once, in order).
    pub fn none() -> Self {
        Self {
            hold_prob: 0.0,
            hold_extra: 8,
            drop_prob: 0.0,
            dup_prob: 0.0,
        }
    }
}

/// What the fault layer does with one send — the decision the seeded
/// RNG draws in production ([`Endpoint::send`] on [`FaultEndpoint`]),
/// and the branch point the model checker enumerates exhaustively
/// (`asynciter-mc`'s transport-seam scopes walk every fate the plan
/// could draw).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// The send is lost.
    Drop,
    /// The send is delivered: a prompt duplicate first when `dup`, and
    /// the original parked behind `hold` subsequent sends (`0` = posted
    /// promptly, in order).
    Deliver {
        /// Post an extra prompt copy before deciding the original.
        dup: bool,
        /// Number of later sends the original waits behind.
        hold: u64,
    },
}

/// Sender-side channel statistics of one [`FaultEndpoint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendStats {
    /// Sends attempted (one per message per destination).
    pub sent: u64,
    /// Sends dropped.
    pub dropped: u64,
    /// Sends duplicated.
    pub duplicated: u64,
    /// Sends held back behind later traffic (out-of-order delivery).
    pub held: u64,
}

/// A fault-injecting decorator around any [`Endpoint`]: drops,
/// duplicates and holds messages at the transport seam, driven by a
/// seeded per-worker RNG. Held messages are re-posted only after enough
/// *newer* traffic has passed them, which is what realises out-of-order
/// arrival over an otherwise FIFO channel.
pub struct FaultEndpoint {
    inner: Box<dyn Endpoint>,
    plan: FaultPlan,
    rng: StdRng,
    /// Parked messages: `(release after this many total sends, dest,
    /// message)`.
    held: Vec<(u64, usize, BlockMessage)>,
    sends: u64,
    stats: SendStats,
}

impl std::fmt::Debug for FaultEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultEndpoint")
            .field("plan", &self.plan)
            .field("held", &self.held.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl FaultEndpoint {
    /// Wraps `inner` with the fault `plan`, drawing every fault decision
    /// from a fresh RNG stream seeded by `seed`.
    pub fn new(inner: Box<dyn Endpoint>, plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner,
            plan,
            rng: rng(seed),
            held: Vec::new(),
            sends: 0,
            stats: SendStats::default(),
        }
    }

    /// Sender-side statistics accumulated so far.
    pub fn stats(&self) -> SendStats {
        self.stats
    }

    /// Draws one [`SendFate`] from the seeded stream, with the same
    /// draw order the original inline implementation used (drop, then
    /// dup, then hold, then the hold distance) — seeded runs are
    /// bit-stable across the refactor.
    fn draw_fate(&mut self) -> SendFate {
        if self.plan.drop_prob > 0.0 && self.rng.random_range(0.0..1.0) < self.plan.drop_prob {
            return SendFate::Drop;
        }
        let dup = self.plan.dup_prob > 0.0 && self.rng.random_range(0.0..1.0) < self.plan.dup_prob;
        let hold =
            if self.plan.hold_prob > 0.0 && self.rng.random_range(0.0..1.0) < self.plan.hold_prob {
                self.rng.random_range(1..=self.plan.hold_extra.max(1))
            } else {
                0
            };
        SendFate::Deliver { dup, hold }
    }

    /// Applies one send under an explicit `fate` — the deterministic
    /// core of [`Endpoint::send`], public so the model checker can step
    /// a real `FaultEndpoint` through an *enumerated* fate sequence and
    /// compare against its own seam model.
    pub fn send_with_fate(&mut self, dest: usize, msg: BlockMessage, fate: SendFate) {
        self.stats.sent += 1;
        self.sends += 1;
        match fate {
            SendFate::Drop => self.stats.dropped += 1,
            SendFate::Deliver { dup, hold } => {
                if dup {
                    self.stats.duplicated += 1;
                    self.inner.send(dest, msg.clone());
                }
                if hold > 0 {
                    self.stats.held += 1;
                    self.held.push((self.sends + hold, dest, msg));
                } else {
                    self.inner.send(dest, msg);
                }
            }
        }
        // Re-post parked messages that have now waited behind enough
        // newer traffic — this is where out-of-order arrival happens.
        self.release_due();
    }

    fn release_due(&mut self) {
        if self.held.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= self.sends {
                let (_, dest, msg) = self.held.swap_remove(i);
                self.inner.send(dest, msg);
            } else {
                i += 1;
            }
        }
    }
}

impl Endpoint for FaultEndpoint {
    fn send(&mut self, dest: usize, msg: BlockMessage) {
        let fate = self.draw_fate();
        self.send_with_fate(dest, msg, fate);
    }

    fn try_recv(&mut self) -> Option<BlockMessage> {
        self.inner.try_recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: usize, c: u32, v: f64, l: u64) -> BlockMessage {
        BlockMessage {
            from,
            comps: vec![(c, v, l)],
            partial: false,
        }
    }

    #[test]
    fn mpsc_mesh_delivers_any_to_any_in_fifo_order() {
        let mut ends = MpscTransport.connect(3);
        let mut e2 = ends.pop().unwrap();
        let mut e1 = ends.pop().unwrap();
        let mut e0 = ends.pop().unwrap();
        e0.send(2, msg(0, 1, 1.0, 1));
        e1.send(2, msg(1, 2, 2.0, 2));
        e0.send(2, msg(0, 3, 3.0, 3));
        // FIFO per sender pair; e0's two messages keep their order.
        let got: Vec<BlockMessage> = std::iter::from_fn(|| e2.try_recv()).collect();
        assert_eq!(got.len(), 3);
        let from0: Vec<u64> = got
            .iter()
            .filter(|m| m.from == 0)
            .map(|m| m.comps[0].2)
            .collect();
        assert_eq!(from0, vec![1, 3]);
        assert!(e0.try_recv().is_none());
        assert!(e1.try_recv().is_none());
    }

    #[test]
    fn send_to_finished_peer_is_a_silent_loss() {
        let mut ends = MpscTransport.connect(2);
        drop(ends.pop().unwrap()); // worker 1 is gone
        ends[0].send(1, msg(0, 0, 1.0, 1));
    }

    #[test]
    fn drop_all_plan_loses_everything() {
        let mut ends = MpscTransport.connect(2);
        let e1 = ends.pop().unwrap();
        let mut f0 = FaultEndpoint::new(
            ends.pop().unwrap(),
            FaultPlan {
                drop_prob: 1.0,
                ..FaultPlan::none()
            },
            7,
        );
        let mut e1 = e1;
        for k in 0..10 {
            f0.send(1, msg(0, 0, k as f64, k));
        }
        assert!(e1.try_recv().is_none());
        assert_eq!(f0.stats().dropped, 10);
        assert_eq!(f0.stats().sent, 10);
    }

    #[test]
    fn held_messages_arrive_out_of_order() {
        let mut ends = MpscTransport.connect(2);
        let mut e1 = ends.pop().unwrap();
        let mut f0 = FaultEndpoint::new(
            ends.pop().unwrap(),
            FaultPlan {
                hold_prob: 0.5,
                hold_extra: 4,
                ..FaultPlan::none()
            },
            11,
        );
        for k in 0..200u64 {
            f0.send(1, msg(0, 0, k as f64, k + 1));
        }
        assert!(f0.stats().held > 0, "holds not exercised");
        let labels: Vec<u64> = std::iter::from_fn(|| e1.try_recv())
            .map(|m| m.comps[0].2)
            .collect();
        assert!(
            labels.windows(2).any(|w| w[0] > w[1]),
            "expected at least one out-of-order arrival"
        );
    }

    #[test]
    fn explicit_fates_reproduce_hold_release_and_dup_semantics() {
        let mut ends = MpscTransport.connect(2);
        let mut e1 = ends.pop().unwrap();
        let mut f0 = FaultEndpoint::new(ends.pop().unwrap(), FaultPlan::none(), 0);
        // Hold message 1 behind one later send; send message 2 promptly;
        // the hold releases as part of send 2's bookkeeping.
        f0.send_with_fate(
            1,
            msg(0, 0, 1.0, 1),
            SendFate::Deliver {
                dup: false,
                hold: 1,
            },
        );
        assert!(e1.try_recv().is_none(), "held message must not arrive yet");
        f0.send_with_fate(
            1,
            msg(0, 0, 2.0, 2),
            SendFate::Deliver { dup: true, hold: 0 },
        );
        let labels: Vec<u64> = std::iter::from_fn(|| e1.try_recv())
            .map(|m| m.comps[0].2)
            .collect();
        // Prompt dup copy + prompt original of message 2, then the
        // released message 1: genuine out-of-order arrival.
        assert_eq!(labels, vec![2, 2, 1]);
        assert_eq!(f0.stats().held, 1);
        assert_eq!(f0.stats().duplicated, 1);
        f0.send_with_fate(1, msg(0, 0, 3.0, 3), SendFate::Drop);
        assert!(e1.try_recv().is_none());
        assert_eq!(f0.stats().dropped, 1);
    }

    #[test]
    fn duplicates_are_counted_and_delivered_twice() {
        let mut ends = MpscTransport.connect(2);
        let mut e1 = ends.pop().unwrap();
        let mut f0 = FaultEndpoint::new(
            ends.pop().unwrap(),
            FaultPlan {
                dup_prob: 1.0,
                ..FaultPlan::none()
            },
            3,
        );
        f0.send(1, msg(0, 0, 1.0, 1));
        assert_eq!(f0.stats().duplicated, 1);
        assert!(e1.try_recv().is_some());
        assert!(e1.try_recv().is_some());
        assert!(e1.try_recv().is_none());
    }
}
