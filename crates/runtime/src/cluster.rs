//! The `Cluster` engine: a deterministic, seeded, sharded
//! message-passing runtime.
//!
//! This is the paper's headline regime — distributed asynchronous
//! iterations with unbounded delays, out-of-order / duplicated / lost
//! messages and flexible (partial) communication — executed on a *virtual
//! cluster*: every worker owns one shard of the iterate
//! ([`Partition`] block) and a full local copy of its best knowledge of
//! everyone else. Workers never share memory; they exchange labelled
//! block messages through per-worker mailboxes whose delivery is driven
//! by a seeded channel model mirroring the delay zoo:
//!
//! - a [`LinkModel`] latency distribution — `Fixed` (in-order bounded),
//!   `Jitter` (bounded random) or `HeavyTail` (Pareto: unbounded delays);
//! - **hold** (`hold_prob`): extra random latency parks a message behind
//!   newer ones — genuine out-of-order delivery;
//! - **drop** (`drop_prob`): the message is lost (asynchronous iterations
//!   absorb transient losses because newer messages supersede them);
//! - **duplicate** (`dup_prob`): delivered twice, independently routed;
//! - **partial exchange** (`partial_prob`): a message carries only a
//!   random subset of the block — Definition-3 flexible communication at
//!   the message level. Receivers fold partials in under an
//!   [`ApplyPolicy`].
//!
//! Unlike the retired thread-based router (see [`crate::network`], now a
//! thin compatibility wrapper over this engine), the cluster is a
//! *sequential discrete event loop*: global step `j` is one block update
//! by worker `(j − 1) mod p`, mail is delivered when the destination
//! worker next acts, and every random choice comes from one seeded
//! stream. Runs are therefore exactly reproducible from `(config, seed)`
//! — on a laptop, in CI, on one core.
//!
//! ## Replay equivalence
//!
//! The engine records a [`Trace`] in which the label of component `c` at
//! step `j` is the **producing step** of the value the acting worker
//! currently holds for `c` (its own last write, or the label carried by
//! the applied message; 0 for the initial value). Values in any local
//! view are always values some global step produced, so injecting the
//! recorded trace into the Definition-1 replay engine reproduces the
//! cluster's iterates **bit for bit** — message faults and all. This is
//! the differential oracle the conformance fuzzer drives
//! (`Cluster → Trace → Replay`), and the degenerate case
//! `Cluster { workers: 1, no faults }` *is* the synchronous Jacobi
//! schedule, bit-identical to `Replay` on the default schedule.
//!
//! [`Partition`]: asynciter_models::partition::Partition

use crate::error::RuntimeError;
use asynciter_models::partition::Partition;
use asynciter_models::trace::{LabelStore, Trace};
use asynciter_numerics::rng::{pareto, rng};
use asynciter_opt::traits::Operator;
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Message application policy at the receiver (shared with the legacy
/// [`crate::network`] wrapper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyPolicy {
    /// Apply in arrival order, even if older than current knowledge — a
    /// stale message can *regress* a component (the hardest regime).
    AsReceived,
    /// Apply only messages at least as fresh (by producing label) as
    /// current knowledge; older ones are discarded as stale.
    KeepFreshest,
}

/// Per-link latency distribution, mirroring the delay zoo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkModel {
    /// Constant latency: in-order, bounded staleness (condition (d)).
    Fixed {
        /// Latency in steps.
        ticks: u64,
    },
    /// Uniform latency in `[lo, hi]`: bounded, mildly reordering.
    Jitter {
        /// Minimum latency.
        lo: u64,
        /// Maximum latency.
        hi: u64,
    },
    /// Pareto-tailed latency: unbounded delays, occasionally enormous.
    HeavyTail {
        /// Scale (minimum latency).
        scale: u64,
        /// Pareto shape (smaller = heavier tail); must be positive.
        alpha: f64,
    },
}

impl LinkModel {
    fn sample(&self, r: &mut StdRng) -> u64 {
        match *self {
            LinkModel::Fixed { ticks } => ticks,
            LinkModel::Jitter { lo, hi } => r.random_range(lo..=hi),
            LinkModel::HeavyTail { scale, alpha } => {
                pareto(r, scale.max(1) as f64, alpha).round() as u64
            }
        }
    }

    fn validate(&self) -> Result<(), RuntimeError> {
        match *self {
            LinkModel::Fixed { .. } => Ok(()),
            LinkModel::Jitter { lo, hi } if lo <= hi => Ok(()),
            LinkModel::Jitter { lo, hi } => Err(RuntimeError::InvalidParameter {
                name: "link",
                message: format!("Jitter requires lo <= hi, got [{lo}, {hi}]"),
            }),
            LinkModel::HeavyTail { alpha, .. } if alpha > 0.0 => Ok(()),
            LinkModel::HeavyTail { alpha, .. } => Err(RuntimeError::InvalidParameter {
                name: "link",
                message: format!("HeavyTail requires alpha > 0, got {alpha}"),
            }),
        }
    }
}

/// Configuration of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Global step budget; step `j` is one block update by worker
    /// `(j − 1) mod workers`.
    pub steps: u64,
    /// Post a block message every this many local updates.
    pub exchange_every: u64,
    /// Receiver policy.
    pub apply_policy: ApplyPolicy,
    /// Link latency model.
    pub link: LinkModel,
    /// Probability a link delivery is held back by extra latency
    /// (out-of-order delivery).
    pub hold_prob: f64,
    /// Maximum extra latency (uniform in `1..=hold_extra`) for held
    /// messages.
    pub hold_extra: u64,
    /// Probability a link delivery is dropped.
    pub drop_prob: f64,
    /// Probability a link delivery is duplicated (second copy routed
    /// independently).
    pub dup_prob: f64,
    /// Probability a posted message is a *partial* exchange carrying a
    /// random nonempty subset of the block (flexible communication).
    pub partial_prob: f64,
    /// RNG seed for the channel model.
    pub seed: u64,
    /// Label retention of the recorded trace.
    pub record: LabelStore,
    /// Stop once the consensus residual falls to this value (checked
    /// every [`ClusterConfig::check_every`] steps).
    pub target_residual: Option<f64>,
    /// Residual-target check period.
    pub check_every: u64,
    /// Sample `‖consensus − x*‖_∞` every this many steps (0 = never;
    /// requires `xstar`).
    pub error_every: u64,
    /// Sample the consensus residual every this many steps (0 = never).
    pub residual_every: u64,
    /// Fault injection: silently remove this component from every posted
    /// message (a severed link for one shard entry — used by the
    /// conformance negative controls, never in production runs).
    pub sever_component: Option<usize>,
}

impl ClusterConfig {
    /// A benign default: exchange every update, unit latency, no faults.
    pub fn new(steps: u64) -> Self {
        Self {
            steps,
            exchange_every: 1,
            apply_policy: ApplyPolicy::AsReceived,
            link: LinkModel::Fixed { ticks: 1 },
            hold_prob: 0.0,
            hold_extra: 8,
            drop_prob: 0.0,
            dup_prob: 0.0,
            partial_prob: 0.0,
            seed: 0,
            record: LabelStore::MinOnly,
            target_residual: None,
            check_every: 64,
            error_every: 0,
            residual_every: 0,
            sever_component: None,
        }
    }

    /// Sets the channel fault probabilities.
    #[must_use]
    pub fn with_faults(mut self, hold: f64, drop: f64, dup: f64) -> Self {
        self.hold_prob = hold;
        self.drop_prob = drop;
        self.dup_prob = dup;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the receiver policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ApplyPolicy) -> Self {
        self.apply_policy = policy;
        self
    }

    /// Sets the link latency model.
    #[must_use]
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Sets the exchange period.
    #[must_use]
    pub fn with_exchange_every(mut self, every: u64) -> Self {
        self.exchange_every = every;
        self
    }

    /// Sets the label retention of the recorded trace.
    #[must_use]
    pub fn with_record(mut self, store: LabelStore) -> Self {
        self.record = store;
        self
    }
}

/// Channel statistics of a cluster run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Link deliveries attempted (one per message per destination).
    pub sent: u64,
    /// Deliveries that reached a mailbox (including duplicates).
    pub delivered: u64,
    /// Deliveries dropped.
    pub dropped: u64,
    /// Deliveries duplicated.
    pub duplicated: u64,
    /// Deliveries held back with extra latency (out-of-order).
    pub held: u64,
    /// Component applications a receiver discarded as stale
    /// (`KeepFreshest` only).
    pub discarded_stale: u64,
}

/// Result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// Final local view of each worker.
    pub local_views: Vec<Vec<f64>>,
    /// Consensus vector: each component taken from its owner's view.
    pub consensus: Vec<f64>,
    /// Fixed-point residual of the consensus vector.
    pub final_residual: f64,
    /// Channel statistics.
    pub stats: ClusterStats,
    /// The executed schedule: one step per block update, labels = the
    /// producing steps of the values read (replays bit-identically).
    pub trace: Trace,
    /// Global steps actually executed.
    pub steps_run: u64,
    /// Block updates per worker.
    pub per_worker_updates: Vec<u64>,
    /// `(j, ‖consensus(j) − x*‖_∞)` samples (empty unless requested).
    pub errors: Vec<(u64, f64)>,
    /// `(j, residual(consensus(j)))` samples (empty unless requested).
    pub residuals: Vec<(u64, f64)>,
    /// True when the residual target fired before the step budget.
    pub stopped_early: bool,
    /// Partial (subset) messages posted.
    pub partial_publishes: u64,
    /// Component values applied out of partial messages.
    pub partial_reads: u64,
    /// Freshness checks performed (`KeepFreshest`: one per received
    /// component application attempt).
    pub constraint_checked: u64,
    /// Freshness violations prevented (stale applications discarded).
    pub constraint_violations: u64,
    /// Wall-clock duration of the event loop.
    pub wall: Duration,
}

/// One mailbox entry: delivery time, tie-break sequence number, and the
/// carried `(component, value, producing step)` triples.
#[derive(Debug, Clone)]
struct Envelope {
    deliver_at: u64,
    seq: u64,
    comps: Vec<(u32, f64, u64)>,
    partial: bool,
}

// Mailboxes are min-heaps on (deliver_at, seq); payload is ignored by
// the ordering.
impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for Envelope {}
impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// The sharded message-passing engine. See module docs.
#[derive(Debug, Default)]
pub struct ClusterEngine;

impl ClusterEngine {
    /// Runs the distributed asynchronous iteration.
    ///
    /// `xstar` is the known fixed point for error sampling (experiments
    /// only — the algorithm never reads it).
    ///
    /// # Errors
    /// Dimension/parameter validation failures, or a non-finite iterate
    /// (operator divergence).
    pub fn run(
        op: &dyn Operator,
        x0: &[f64],
        partition: &Partition,
        cfg: &ClusterConfig,
        xstar: Option<&[f64]>,
    ) -> crate::Result<ClusterRunResult> {
        let n = op.dim();
        let workers = partition.num_machines();
        validate(op, x0, partition, cfg, xstar)?;

        let blocks: Vec<Vec<usize>> = (0..workers).map(|w| partition.components_of(w)).collect();
        let mut r = rng(cfg.seed);
        let start = Instant::now();

        // Per-worker local views and the producing-step label of every
        // held value (0 = the initial iterate).
        let mut views: Vec<Vec<f64>> = vec![x0.to_vec(); workers];
        let mut view_labels: Vec<Vec<u64>> = vec![vec![0u64; n]; workers];
        let mut mailboxes: Vec<BinaryHeap<Envelope>> =
            (0..workers).map(|_| BinaryHeap::new()).collect();

        let mut trace = Trace::new(n, cfg.record);
        let mut stats = ClusterStats::default();
        let mut per_worker_updates = vec![0u64; workers];
        let mut errors = Vec::new();
        let mut residuals = Vec::new();
        let (mut partial_publishes, mut partial_reads) = (0u64, 0u64);
        let (mut constraint_checked, mut constraint_violations) = (0u64, 0u64);
        let mut stopped_early = false;
        let mut steps_run = 0u64;
        let mut seq = 0u64;
        // Step-loop buffers allocated once: block output, operator
        // scratch, consensus assembly. Only message payloads (owned by
        // their envelopes) allocate per exchange.
        let mut upd = vec![0.0; n];
        let mut scratch = vec![0.0; op.scratch_len()];
        let mut consensus = vec![0.0; n];

        let assemble_consensus = |views: &[Vec<f64>], out: &mut [f64]| {
            for (w, block) in blocks.iter().enumerate() {
                for &i in block {
                    out[i] = views[w][i];
                }
            }
        };

        for j in 1..=cfg.steps {
            let w = ((j - 1) % workers as u64) as usize;

            // Deliver all mail due by now, earliest (deliver_at, seq)
            // first — holds put older messages behind newer ones.
            while mailboxes[w].peek().is_some_and(|env| env.deliver_at <= j) {
                let env = mailboxes[w].pop().expect("peeked");
                stats.delivered += 1;
                for &(c, v, l) in &env.comps {
                    let c = c as usize;
                    let apply = match cfg.apply_policy {
                        ApplyPolicy::AsReceived => true,
                        ApplyPolicy::KeepFreshest => {
                            constraint_checked += 1;
                            if l >= view_labels[w][c] {
                                true
                            } else {
                                constraint_violations += 1;
                                stats.discarded_stale += 1;
                                false
                            }
                        }
                    };
                    if apply {
                        views[w][c] = v;
                        view_labels[w][c] = l;
                        if env.partial {
                            partial_reads += 1;
                        }
                    }
                }
            }

            // Record the step *before* writing: active set = the owned
            // block, labels = the producing steps of the view being read.
            trace.push_step(&blocks[w], &view_labels[w]);

            // Jacobi within the block: all components read the same view.
            op.update_active_with(&views[w], &blocks[w], &mut upd, &mut scratch);
            for &i in &blocks[w] {
                let v = upd[i];
                if !v.is_finite() {
                    return Err(RuntimeError::NonFiniteIterate {
                        at_step: j,
                        component: i,
                    });
                }
                views[w][i] = v;
                view_labels[w][i] = j;
            }
            per_worker_updates[w] += 1;
            steps_run = j;

            // Exchange: post the block (or a partial subset) to peers.
            if workers > 1 && per_worker_updates[w].is_multiple_of(cfg.exchange_every) {
                let partial = cfg.partial_prob > 0.0 && r.random_range(0.0..1.0) < cfg.partial_prob;
                let mut comps: Vec<(u32, f64, u64)> = blocks[w]
                    .iter()
                    .map(|&i| (i as u32, views[w][i], view_labels[w][i]))
                    .collect();
                if partial {
                    partial_publishes += 1;
                    comps.retain(|_| r.random_range(0..2u32) == 1);
                    if comps.is_empty() {
                        // A partial exchange carries at least one entry.
                        let i = blocks[w][r.random_range(0..blocks[w].len())];
                        comps.push((i as u32, views[w][i], view_labels[w][i]));
                    }
                }
                if let Some(sc) = cfg.sever_component {
                    comps.retain(|&(c, _, _)| c as usize != sc);
                }
                if !comps.is_empty() {
                    for dest in 0..workers {
                        if dest == w {
                            continue;
                        }
                        stats.sent += 1;
                        if r.random_range(0.0..1.0) < cfg.drop_prob {
                            stats.dropped += 1;
                            continue;
                        }
                        let post =
                            |r: &mut StdRng,
                             seq: &mut u64,
                             stats: &mut ClusterStats,
                             boxes: &mut Vec<BinaryHeap<Envelope>>| {
                                let mut latency = cfg.link.sample(r);
                                if r.random_range(0.0..1.0) < cfg.hold_prob {
                                    stats.held += 1;
                                    latency += r.random_range(1..=cfg.hold_extra.max(1));
                                }
                                *seq += 1;
                                boxes[dest].push(Envelope {
                                    deliver_at: j.saturating_add(latency),
                                    seq: *seq,
                                    comps: comps.clone(),
                                    partial,
                                });
                            };
                        if r.random_range(0.0..1.0) < cfg.dup_prob {
                            stats.duplicated += 1;
                            post(&mut r, &mut seq, &mut stats, &mut mailboxes);
                        }
                        post(&mut r, &mut seq, &mut stats, &mut mailboxes);
                    }
                }
            }

            // Observability and stopping on the consensus vector.
            let want_error = cfg.error_every > 0 && j % cfg.error_every == 0;
            let want_residual = cfg.residual_every > 0 && j % cfg.residual_every == 0;
            let want_stop = cfg.target_residual.is_some() && j % cfg.check_every.max(1) == 0;
            if want_error || want_residual || want_stop {
                assemble_consensus(&views, &mut consensus);
                if want_error {
                    let xs = xstar.expect("validated: error_every requires xstar");
                    errors.push((j, asynciter_numerics::vecops::max_abs_diff(&consensus, xs)));
                }
                if want_residual || want_stop {
                    let residual = op.residual_inf_with(&consensus, &mut scratch);
                    if want_residual {
                        residuals.push((j, residual));
                    }
                    if want_stop && cfg.target_residual.is_some_and(|eps| residual <= eps) {
                        stopped_early = true;
                        break;
                    }
                }
            }
        }

        assemble_consensus(&views, &mut consensus);
        let final_residual = op.residual_inf(&consensus);
        Ok(ClusterRunResult {
            local_views: views,
            consensus,
            final_residual,
            stats,
            trace,
            steps_run,
            per_worker_updates,
            errors,
            residuals,
            stopped_early,
            partial_publishes,
            partial_reads,
            constraint_checked,
            constraint_violations,
            wall: start.elapsed(),
        })
    }
}

fn validate(
    op: &dyn Operator,
    x0: &[f64],
    partition: &Partition,
    cfg: &ClusterConfig,
    xstar: Option<&[f64]>,
) -> crate::Result<()> {
    let n = op.dim();
    if x0.len() != n {
        return Err(RuntimeError::DimensionMismatch {
            expected: n,
            actual: x0.len(),
            context: "ClusterEngine::run (x0)",
        });
    }
    if partition.n() != n {
        return Err(RuntimeError::DimensionMismatch {
            expected: n,
            actual: partition.n(),
            context: "ClusterEngine::run (partition)",
        });
    }
    if cfg.steps == 0 || cfg.exchange_every == 0 {
        return Err(RuntimeError::InvalidParameter {
            name: "steps/exchange_every",
            message: "must be positive".into(),
        });
    }
    if cfg.error_every > 0 {
        match xstar {
            None => {
                return Err(RuntimeError::InvalidParameter {
                    name: "error_every",
                    message: "error sampling requires a known fixed point".into(),
                });
            }
            Some(xs) if xs.len() != n => {
                return Err(RuntimeError::DimensionMismatch {
                    expected: n,
                    actual: xs.len(),
                    context: "ClusterEngine::run (xstar)",
                });
            }
            Some(_) => {}
        }
    }
    cfg.link.validate()?;
    for (name, p) in [
        ("hold_prob", cfg.hold_prob),
        ("drop_prob", cfg.drop_prob),
        ("dup_prob", cfg.dup_prob),
        ("partial_prob", cfg.partial_prob),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(RuntimeError::InvalidParameter {
                name,
                message: format!("{name} = {p} outside [0,1]"),
            });
        }
    }
    if let Some(sc) = cfg.sever_component {
        if sc >= n {
            return Err(RuntimeError::InvalidParameter {
                name: "sever_component",
                message: format!("component {sc} out of range for dim {n}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn fault_free_run_converges() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(24, 3).unwrap();
        let cfg = ClusterConfig::new(900);
        let res = ClusterEngine::run(&op, &[0.0; 24], &p, &cfg, None).unwrap();
        assert!(
            vecops::max_abs_diff(&res.consensus, &xstar) < 1e-8,
            "error {}",
            vecops::max_abs_diff(&res.consensus, &xstar)
        );
        assert!(res.stats.sent > 0);
        assert_eq!(res.stats.dropped, 0);
        assert_eq!(res.per_worker_updates, vec![300; 3]);
    }

    #[test]
    fn runs_are_deterministic() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = ClusterConfig::new(600)
            .with_faults(0.3, 0.15, 0.1)
            .with_link(LinkModel::Jitter { lo: 1, hi: 5 })
            .with_seed(9)
            .with_record(LabelStore::Full);
        let a = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        let b = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        assert_eq!(a.consensus, b.consensus);
        assert_eq!(a.stats, b.stats);
        for j in 1..=a.trace.len() as u64 {
            assert_eq!(a.trace.step(j).active, b.trace.step(j).active);
            assert_eq!(a.trace.labels(j).unwrap(), b.trace.labels(j).unwrap());
        }
    }

    #[test]
    fn survives_reordering_loss_and_duplication() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(24, 4).unwrap();
        for policy in [ApplyPolicy::AsReceived, ApplyPolicy::KeepFreshest] {
            let cfg = ClusterConfig::new(3200)
                .with_faults(0.3, 0.15, 0.1)
                .with_policy(policy)
                .with_seed(5);
            let res = ClusterEngine::run(&op, &[0.0; 24], &p, &cfg, None).unwrap();
            assert!(
                vecops::max_abs_diff(&res.consensus, &xstar) < 1e-6,
                "{policy:?}: error {}",
                vecops::max_abs_diff(&res.consensus, &xstar)
            );
            assert!(res.stats.dropped > 0, "{policy:?}: faults not exercised");
            assert!(res.stats.held > 0);
        }
    }

    #[test]
    fn keep_freshest_discards_stale_and_reports_constraint_stats() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = ClusterConfig::new(2000)
            .with_faults(0.5, 0.0, 0.2)
            .with_policy(ApplyPolicy::KeepFreshest)
            .with_seed(11);
        let res = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        assert!(
            res.stats.discarded_stale > 0,
            "reordering should produce stale discards"
        );
        assert_eq!(res.constraint_violations, res.stats.discarded_stale);
        assert!(res.constraint_checked > res.constraint_violations);
    }

    #[test]
    fn partial_exchanges_are_counted_and_converge() {
        let op = jacobi(16);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(16, 2).unwrap();
        let mut cfg = ClusterConfig::new(1200).with_seed(3);
        cfg.partial_prob = 0.6;
        let res = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        assert!(res.partial_publishes > 0);
        assert!(res.partial_reads > 0);
        assert!(vecops::max_abs_diff(&res.consensus, &xstar) < 1e-7);
    }

    #[test]
    fn residual_target_stops_early() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 2).unwrap();
        let mut cfg = ClusterConfig::new(100_000);
        cfg.target_residual = Some(1e-10);
        cfg.check_every = 8;
        let res = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        assert!(res.stopped_early);
        assert!(res.steps_run < 100_000);
        assert!(res.final_residual <= 1e-10);
    }

    #[test]
    fn severed_component_freezes_remote_labels() {
        let op = jacobi(12);
        let p = Partition::blocks(12, 3).unwrap();
        let mut cfg = ClusterConfig::new(600).with_record(LabelStore::Full);
        // Component 3 sits on the block boundary: worker 1's component 4
        // reads it, so losing its messages is an *essential* fault (an
        // interior component like 0 is only read by its own shard and
        // its loss would be absorbed).
        cfg.sever_component = Some(3);
        let res = ClusterEngine::run(&op, &[0.0; 12], &p, &cfg, None).unwrap();
        // Workers 1 and 2 never hear about component 3: their recorded
        // reads keep label 0 forever.
        for j in 1..=res.trace.len() as u64 {
            let w = ((j - 1) % 3) as usize;
            if w != 0 {
                assert_eq!(res.trace.labels(j).unwrap()[3], 0, "step {j}");
            }
        }
        // And the consensus cannot converge to the true fixed point.
        let xstar = op.solve_dense_spd().unwrap();
        assert!(vecops::max_abs_diff(&res.consensus, &xstar) > 1e-6);
    }

    #[test]
    fn heavy_tail_links_reorder_unboundedly_yet_converge() {
        let op = jacobi(16);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = ClusterConfig::new(4000)
            .with_link(LinkModel::HeavyTail {
                scale: 1,
                alpha: 1.3,
            })
            .with_seed(7);
        let res = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        assert!(vecops::max_abs_diff(&res.consensus, &xstar) < 1e-6);
    }

    #[test]
    fn validation_errors() {
        let op = jacobi(8);
        let p = Partition::blocks(8, 2).unwrap();
        assert!(ClusterEngine::run(&op, &[0.0; 7], &p, &ClusterConfig::new(10), None).is_err());
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &ClusterConfig::new(0), None).is_err());
        // Error sampling without a known fixed point.
        let mut bad = ClusterConfig::new(10);
        bad.error_every = 2;
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &bad, None).is_err());
        let bad = ClusterConfig::new(10).with_faults(1.5, 0.0, 0.0);
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &bad, None).is_err());
        let bad = ClusterConfig::new(10).with_link(LinkModel::Jitter { lo: 5, hi: 2 });
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &bad, None).is_err());
        let bad = ClusterConfig::new(10).with_link(LinkModel::HeavyTail {
            scale: 1,
            alpha: 0.0,
        });
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &bad, None).is_err());
        let mut bad = ClusterConfig::new(10);
        bad.sever_component = Some(8);
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &bad, None).is_err());
    }
}
