//! The `Cluster` engine: a deterministic, seeded, sharded
//! message-passing runtime.
//!
//! This is the paper's headline regime — distributed asynchronous
//! iterations with unbounded delays, out-of-order / duplicated / lost
//! messages and flexible (partial) communication — executed on a *virtual
//! cluster*: every worker owns one shard of the iterate
//! ([`Partition`] block) and a full local copy of its best knowledge of
//! everyone else. Workers never share memory; they exchange labelled
//! block messages through per-worker mailboxes whose delivery is driven
//! by a seeded channel model mirroring the delay zoo:
//!
//! - a [`LinkModel`] latency distribution — `Fixed` (in-order bounded),
//!   `Jitter` (bounded random) or `HeavyTail` (Pareto: unbounded delays);
//! - **hold** (`hold_prob`): extra random latency parks a message behind
//!   newer ones — genuine out-of-order delivery;
//! - **drop** (`drop_prob`): the message is lost (asynchronous iterations
//!   absorb transient losses because newer messages supersede them);
//! - **duplicate** (`dup_prob`): delivered twice, independently routed;
//! - **partial exchange** (`partial_prob`): a message carries only a
//!   random subset of the block — Definition-3 flexible communication at
//!   the message level. Receivers fold partials in under an
//!   [`ApplyPolicy`].
//!
//! This engine is a *sequential discrete event loop*: global step `j` is
//! one block update by worker `(j − 1) mod p`, mail is delivered when
//! the destination worker next acts, and every random choice comes from
//! one seeded stream. Runs are therefore exactly reproducible from
//! `(config, seed)` — on a laptop, in CI, on one core. Its genuinely
//! concurrent counterpart is [`crate::threaded`], which runs the same
//! step halves ([`apply_message`] / [`produce_block`]) on free-running
//! threads over the [`crate::transport`] seam; the legacy thread-based
//! router was retired and [`crate::network`] is now a thin compatibility
//! wrapper over this engine.
//!
//! ## Replay equivalence
//!
//! The engine records a [`Trace`] in which the label of component `c` at
//! step `j` is the **producing step** of the value the acting worker
//! currently holds for `c` (its own last write, or the label carried by
//! the applied message; 0 for the initial value). Values in any local
//! view are always values some global step produced, so injecting the
//! recorded trace into the Definition-1 replay engine reproduces the
//! cluster's iterates **bit for bit** — message faults and all. This is
//! the differential oracle the conformance fuzzer drives
//! (`Cluster → Trace → Replay`), and the degenerate case
//! `Cluster { workers: 1, no faults }` *is* the synchronous Jacobi
//! schedule, bit-identical to `Replay` on the default schedule.
//!
//! [`Partition`]: asynciter_models::partition::Partition

use crate::error::RuntimeError;
use asynciter_models::partition::Partition;
use asynciter_models::trace::{LabelStore, Trace};
use asynciter_numerics::rng::{pareto, rng};
use asynciter_opt::traits::Operator;
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Message application policy at the receiver (shared with the legacy
/// [`crate::network`] wrapper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyPolicy {
    /// Apply in arrival order, even if older than current knowledge — a
    /// stale message can *regress* a component (the hardest regime).
    AsReceived,
    /// Apply only messages at least as fresh (by producing label) as
    /// current knowledge; older ones are discarded as stale.
    KeepFreshest,
}

/// Per-link latency distribution, mirroring the delay zoo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkModel {
    /// Constant latency: in-order, bounded staleness (condition (d)).
    Fixed {
        /// Latency in steps.
        ticks: u64,
    },
    /// Uniform latency in `[lo, hi]`: bounded, mildly reordering.
    Jitter {
        /// Minimum latency.
        lo: u64,
        /// Maximum latency.
        hi: u64,
    },
    /// Pareto-tailed latency: unbounded delays, occasionally enormous.
    HeavyTail {
        /// Scale (minimum latency).
        scale: u64,
        /// Pareto shape (smaller = heavier tail); must be positive.
        alpha: f64,
    },
}

impl LinkModel {
    fn sample(&self, r: &mut StdRng) -> u64 {
        match *self {
            LinkModel::Fixed { ticks } => ticks,
            LinkModel::Jitter { lo, hi } => r.random_range(lo..=hi),
            LinkModel::HeavyTail { scale, alpha } => {
                pareto(r, scale.max(1) as f64, alpha).round() as u64
            }
        }
    }

    fn validate(&self) -> Result<(), RuntimeError> {
        match *self {
            LinkModel::Fixed { .. } => Ok(()),
            LinkModel::Jitter { lo, hi } if lo <= hi => Ok(()),
            LinkModel::Jitter { lo, hi } => Err(RuntimeError::InvalidParameter {
                name: "link",
                message: format!("Jitter requires lo <= hi, got [{lo}, {hi}]"),
            }),
            LinkModel::HeavyTail { alpha, .. } if alpha > 0.0 => Ok(()),
            LinkModel::HeavyTail { alpha, .. } => Err(RuntimeError::InvalidParameter {
                name: "link",
                message: format!("HeavyTail requires alpha > 0, got {alpha}"),
            }),
        }
    }
}

/// Configuration of a cluster run.
///
/// Build one with [`ClusterConfig::new`] and the `with_*` setters:
///
/// ```
/// use asynciter_numerics::sparse::tridiagonal;
/// use asynciter_opt::linear::JacobiOperator;
/// use asynciter_models::partition::Partition;
/// use asynciter_runtime::cluster::{ClusterConfig, ClusterEngine, LinkModel};
///
/// let op = JacobiOperator::new(tridiagonal(16, 4.0, -1.0), vec![1.0; 16]).unwrap();
/// let partition = Partition::blocks(16, 4).unwrap();
/// let cfg = ClusterConfig::new(1200)
///     .with_faults(0.2, 0.1, 0.05) // hold / drop / duplicate
///     .with_link(LinkModel::Jitter { lo: 1, hi: 5 })
///     .with_seed(42);
/// let res = ClusterEngine::run(&op, &[0.0; 16], &partition, &cfg, None).unwrap();
/// assert_eq!(res.steps_run, 1200);
/// assert!(res.final_residual < 1e-6, "faults absorbed, still converges");
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Global step budget; step `j` is one block update by worker
    /// `(j − 1) mod workers`.
    pub steps: u64,
    /// Post a block message every this many local updates.
    pub exchange_every: u64,
    /// Receiver policy.
    pub apply_policy: ApplyPolicy,
    /// Link latency model.
    pub link: LinkModel,
    /// Probability a link delivery is held back by extra latency
    /// (out-of-order delivery).
    pub hold_prob: f64,
    /// Maximum extra latency (uniform in `1..=hold_extra`) for held
    /// messages.
    pub hold_extra: u64,
    /// Probability a link delivery is dropped.
    pub drop_prob: f64,
    /// Probability a link delivery is duplicated (second copy routed
    /// independently).
    pub dup_prob: f64,
    /// Probability a posted message is a *partial* exchange carrying a
    /// random nonempty subset of the block (flexible communication).
    pub partial_prob: f64,
    /// RNG seed for the channel model.
    pub seed: u64,
    /// Label retention of the recorded trace.
    pub record: LabelStore,
    /// Stop once the consensus residual falls to this value (checked
    /// every [`ClusterConfig::check_every`] steps).
    pub target_residual: Option<f64>,
    /// Residual-target check period.
    pub check_every: u64,
    /// Sample `‖consensus − x*‖_∞` every this many steps (0 = never;
    /// requires `xstar`).
    pub error_every: u64,
    /// Sample the consensus residual every this many steps (0 = never).
    pub residual_every: u64,
    /// Fault injection: silently remove this component from every posted
    /// message (a severed link for one shard entry — used by the
    /// conformance negative controls, never in production runs).
    pub sever_component: Option<usize>,
}

impl ClusterConfig {
    /// A benign default: exchange every update, unit latency, no faults.
    pub fn new(steps: u64) -> Self {
        Self {
            steps,
            exchange_every: 1,
            apply_policy: ApplyPolicy::AsReceived,
            link: LinkModel::Fixed { ticks: 1 },
            hold_prob: 0.0,
            hold_extra: 8,
            drop_prob: 0.0,
            dup_prob: 0.0,
            partial_prob: 0.0,
            seed: 0,
            record: LabelStore::MinOnly,
            target_residual: None,
            check_every: 64,
            error_every: 0,
            residual_every: 0,
            sever_component: None,
        }
    }

    /// Sets the channel fault probabilities.
    #[must_use]
    pub fn with_faults(mut self, hold: f64, drop: f64, dup: f64) -> Self {
        self.hold_prob = hold;
        self.drop_prob = drop;
        self.dup_prob = dup;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the receiver policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ApplyPolicy) -> Self {
        self.apply_policy = policy;
        self
    }

    /// Sets the link latency model.
    #[must_use]
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Sets the exchange period.
    #[must_use]
    pub fn with_exchange_every(mut self, every: u64) -> Self {
        self.exchange_every = every;
        self
    }

    /// Sets the label retention of the recorded trace.
    #[must_use]
    pub fn with_record(mut self, store: LabelStore) -> Self {
        self.record = store;
        self
    }
}

/// Channel statistics of a cluster run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Link deliveries attempted (one per message per destination).
    pub sent: u64,
    /// Deliveries that reached a mailbox (including duplicates).
    pub delivered: u64,
    /// Deliveries dropped.
    pub dropped: u64,
    /// Deliveries duplicated.
    pub duplicated: u64,
    /// Deliveries held back with extra latency (out-of-order).
    pub held: u64,
    /// Component applications a receiver discarded as stale
    /// (`KeepFreshest` only).
    pub discarded_stale: u64,
}

/// Result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// Final local view of each worker.
    pub local_views: Vec<Vec<f64>>,
    /// Consensus vector: each component taken from its owner's view.
    pub consensus: Vec<f64>,
    /// Fixed-point residual of the consensus vector.
    pub final_residual: f64,
    /// Channel statistics.
    pub stats: ClusterStats,
    /// The executed schedule: one step per block update, labels = the
    /// producing steps of the values read (replays bit-identically).
    pub trace: Trace,
    /// Global steps actually executed.
    pub steps_run: u64,
    /// Block updates per worker.
    pub per_worker_updates: Vec<u64>,
    /// `(j, ‖consensus(j) − x*‖_∞)` samples (empty unless requested).
    pub errors: Vec<(u64, f64)>,
    /// `(j, residual(consensus(j)))` samples (empty unless requested).
    pub residuals: Vec<(u64, f64)>,
    /// True when the residual target fired before the step budget.
    pub stopped_early: bool,
    /// Partial (subset) messages posted.
    pub partial_publishes: u64,
    /// Component values applied out of partial messages.
    pub partial_reads: u64,
    /// Freshness checks performed (`KeepFreshest`: one per received
    /// component application attempt).
    pub constraint_checked: u64,
    /// Freshness violations prevented (stale applications discarded).
    pub constraint_violations: u64,
    /// Wall-clock duration of the event loop.
    pub wall: Duration,
}

/// One mailbox entry: delivery time, tie-break sequence number, and the
/// carried `(component, value, producing step)` triples.
#[derive(Debug, Clone)]
struct Envelope {
    deliver_at: u64,
    seq: u64,
    comps: Vec<(u32, f64, u64)>,
    partial: bool,
}

/// Outcome of applying one message payload to a worker view — the
/// bookkeeping callers need to maintain [`ClusterStats`] and the
/// flexible/constraint counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageApply {
    /// Component entries actually written into the view.
    pub applied: u64,
    /// Freshness checks performed (`KeepFreshest`: one per entry).
    pub checked: u64,
    /// Entries discarded as stale (`KeepFreshest` only).
    pub stale: u64,
}

/// Applies one message's `(component, value, producing step)` triples to
/// a worker's local view under `policy`, updating the per-component
/// producing-step labels alongside the values.
///
/// This is the receiver half of the cluster's step-granular transition
/// function, shared between the event-loop engine and the bounded
/// exhaustive model checker so both execute byte-identical semantics.
///
/// # Panics
/// Panics (debug) when a component index is out of range.
pub fn apply_message(
    view: &mut [f64],
    labels: &mut [u64],
    comps: &[(u32, f64, u64)],
    policy: ApplyPolicy,
) -> MessageApply {
    let mut out = MessageApply::default();
    for &(c, v, l) in comps {
        let c = c as usize;
        let apply = match policy {
            ApplyPolicy::AsReceived => true,
            ApplyPolicy::KeepFreshest => {
                out.checked += 1;
                if l >= labels[c] {
                    true
                } else {
                    out.stale += 1;
                    false
                }
            }
        };
        if apply {
            view[c] = v;
            labels[c] = l;
            out.applied += 1;
        }
    }
    out
}

/// One producing block update by the owner of `block` at global step `j`:
/// records the step (active set = the owned block, labels = the
/// producing steps of the view being read), evaluates the operator
/// Jacobi-style on the current view, and stamps the freshly produced
/// components with label `j`.
///
/// This is the producer half of the cluster's step-granular transition
/// function (see [`apply_message`]).
///
/// # Errors
/// [`RuntimeError::NonFiniteIterate`] when the operator diverges.
///
/// # Panics
/// Panics on dimension mismatches (`upd`/`scratch` sized for `op`).
// Deliberately flat: every argument is a distinct piece of engine state
// the two callers (engine loop, model checker) own differently, so a
// bundling struct would just move the argument list to its constructor.
#[allow(clippy::too_many_arguments)]
pub fn produce_step(
    op: &dyn Operator,
    view: &mut [f64],
    labels: &mut [u64],
    block: &[usize],
    j: u64,
    trace: &mut Trace,
    upd: &mut [f64],
    scratch: &mut [f64],
) -> Result<(), RuntimeError> {
    trace.push_step(block, labels);
    produce_block(op, view, labels, block, j, upd, scratch)
}

/// The produce half of [`produce_step`] without the trace push: one
/// Jacobi-style block evaluation on the current view, finiteness check,
/// and label stamping with the producing step `j`.
///
/// The threaded engine ([`crate::threaded`]) calls this directly — its
/// workers log trace events locally and merge them after the join — so
/// sequential and concurrent cluster updates execute byte-identical
/// arithmetic by construction.
///
/// # Errors
/// [`RuntimeError::NonFiniteIterate`] when the operator diverges.
///
/// # Panics
/// Panics on dimension mismatches (`upd`/`scratch` sized for `op`).
pub fn produce_block(
    op: &dyn Operator,
    view: &mut [f64],
    labels: &mut [u64],
    block: &[usize],
    j: u64,
    upd: &mut [f64],
    scratch: &mut [f64],
) -> Result<(), RuntimeError> {
    op.update_active_with(view, block, upd, scratch);
    for &i in block {
        let v = upd[i];
        if !v.is_finite() {
            return Err(RuntimeError::NonFiniteIterate {
                at_step: j,
                component: i,
            });
        }
        view[i] = v;
        labels[i] = j;
    }
    Ok(())
}

// Mailboxes are min-heaps on (deliver_at, seq); payload is ignored by
// the ordering.
impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for Envelope {}
impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// A restorable checkpoint of a [`ClusterCursor`]: every piece of
/// dynamic run state (views, labels, mailboxes, RNG, counters, the
/// recorded trace so far). Cloning is deep, so a snapshot taken before a
/// step and restored afterwards replays the step bit-identically —
/// the state-space explorer in `asynciter-mc` leans on this.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    views: Vec<Vec<f64>>,
    view_labels: Vec<Vec<u64>>,
    mailboxes: Vec<BinaryHeap<Envelope>>,
    rng: StdRng,
    seq: u64,
    trace: Trace,
    stats: ClusterStats,
    per_worker_updates: Vec<u64>,
    errors: Vec<(u64, f64)>,
    residuals: Vec<(u64, f64)>,
    partial_publishes: u64,
    partial_reads: u64,
    constraint_checked: u64,
    constraint_violations: u64,
    stopped_early: bool,
    steps_run: u64,
    next_j: u64,
}

/// Status of one [`ClusterCursor::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// A global step executed; more remain.
    Running,
    /// The run is over (budget exhausted or residual target hit); no
    /// step was (or will be) executed.
    Done,
}

/// A step-granular handle on a cluster run: the same event loop as
/// [`ClusterEngine::run`], exposed one global step at a time with
/// [snapshot](ClusterCursor::snapshot)/[restore](ClusterCursor::restore).
/// `ClusterEngine::run` is a thin loop over this cursor, so stepping and
/// running to completion are bit-identical by construction.
pub struct ClusterCursor<'a> {
    op: &'a dyn Operator,
    cfg: ClusterConfig,
    xstar: Option<Vec<f64>>,
    blocks: Vec<Vec<usize>>,
    workers: usize,
    start: Instant,
    // Dynamic state (everything a snapshot captures).
    views: Vec<Vec<f64>>,
    view_labels: Vec<Vec<u64>>,
    mailboxes: Vec<BinaryHeap<Envelope>>,
    rng: StdRng,
    seq: u64,
    trace: Trace,
    stats: ClusterStats,
    per_worker_updates: Vec<u64>,
    errors: Vec<(u64, f64)>,
    residuals: Vec<(u64, f64)>,
    partial_publishes: u64,
    partial_reads: u64,
    constraint_checked: u64,
    constraint_violations: u64,
    stopped_early: bool,
    steps_run: u64,
    next_j: u64,
    // Step-loop buffers allocated once: block output, operator scratch,
    // consensus assembly. Only message payloads (owned by their
    // envelopes) allocate per exchange.
    upd: Vec<f64>,
    scratch: Vec<f64>,
    consensus: Vec<f64>,
}

impl std::fmt::Debug for ClusterCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterCursor")
            .field("workers", &self.workers)
            .field("next_j", &self.next_j)
            .field("steps_run", &self.steps_run)
            .field("stopped_early", &self.stopped_early)
            .finish_non_exhaustive()
    }
}

impl<'a> ClusterCursor<'a> {
    /// Validates the run parameters and positions the cursor before
    /// global step 1.
    ///
    /// # Errors
    /// Dimension/parameter validation failures (same checks as
    /// [`ClusterEngine::run`]).
    pub fn new(
        op: &'a dyn Operator,
        x0: &[f64],
        partition: &Partition,
        cfg: &ClusterConfig,
        xstar: Option<&[f64]>,
    ) -> crate::Result<Self> {
        let n = op.dim();
        let workers = partition.num_machines();
        validate(op, x0, partition, cfg, xstar)?;
        let blocks: Vec<Vec<usize>> = (0..workers).map(|w| partition.components_of(w)).collect();
        Ok(Self {
            op,
            cfg: cfg.clone(),
            xstar: xstar.map(<[f64]>::to_vec),
            blocks,
            workers,
            start: Instant::now(),
            views: vec![x0.to_vec(); workers],
            view_labels: vec![vec![0u64; n]; workers],
            mailboxes: (0..workers).map(|_| BinaryHeap::new()).collect(),
            rng: rng(cfg.seed),
            seq: 0,
            trace: Trace::new(n, cfg.record),
            stats: ClusterStats::default(),
            per_worker_updates: vec![0u64; workers],
            errors: Vec::new(),
            residuals: Vec::new(),
            partial_publishes: 0,
            partial_reads: 0,
            constraint_checked: 0,
            constraint_violations: 0,
            stopped_early: false,
            steps_run: 0,
            next_j: 1,
            upd: vec![0.0; n],
            scratch: vec![0.0; op.scratch_len()],
            consensus: vec![0.0; n],
        })
    }

    /// Global step the next [`ClusterCursor::step`] call would execute.
    pub fn next_step(&self) -> u64 {
        self.next_j
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Captures the full dynamic state for a later
    /// [`restore`](ClusterCursor::restore).
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            views: self.views.clone(),
            view_labels: self.view_labels.clone(),
            mailboxes: self.mailboxes.clone(),
            rng: self.rng.clone(),
            seq: self.seq,
            trace: self.trace.clone(),
            stats: self.stats.clone(),
            per_worker_updates: self.per_worker_updates.clone(),
            errors: self.errors.clone(),
            residuals: self.residuals.clone(),
            partial_publishes: self.partial_publishes,
            partial_reads: self.partial_reads,
            constraint_checked: self.constraint_checked,
            constraint_violations: self.constraint_violations,
            stopped_early: self.stopped_early,
            steps_run: self.steps_run,
            next_j: self.next_j,
        }
    }

    /// Rewinds (or fast-forwards) the cursor to a captured snapshot.
    /// Stepping from a restored state replays the original steps
    /// bit-identically — the RNG stream is part of the snapshot.
    pub fn restore(&mut self, snap: &ClusterSnapshot) {
        self.views.clone_from(&snap.views);
        self.view_labels.clone_from(&snap.view_labels);
        self.mailboxes.clone_from(&snap.mailboxes);
        self.rng = snap.rng.clone();
        self.seq = snap.seq;
        self.trace.clone_from(&snap.trace);
        self.stats.clone_from(&snap.stats);
        self.per_worker_updates.clone_from(&snap.per_worker_updates);
        self.errors.clone_from(&snap.errors);
        self.residuals.clone_from(&snap.residuals);
        self.partial_publishes = snap.partial_publishes;
        self.partial_reads = snap.partial_reads;
        self.constraint_checked = snap.constraint_checked;
        self.constraint_violations = snap.constraint_violations;
        self.stopped_early = snap.stopped_early;
        self.steps_run = snap.steps_run;
        self.next_j = snap.next_j;
    }

    fn assemble_consensus(&mut self) {
        for (w, block) in self.blocks.iter().enumerate() {
            for &i in block {
                self.consensus[i] = self.views[w][i];
            }
        }
    }

    /// Executes one global step (deliver due mail → record → block
    /// update → exchange → observe/stop).
    ///
    /// # Errors
    /// [`RuntimeError::NonFiniteIterate`] when the operator diverges.
    pub fn step(&mut self) -> crate::Result<StepStatus> {
        if self.stopped_early || self.next_j > self.cfg.steps {
            return Ok(StepStatus::Done);
        }
        let j = self.next_j;
        self.next_j += 1;
        let w = ((j - 1) % self.workers as u64) as usize;

        // Deliver all mail due by now, earliest (deliver_at, seq) first
        // — holds put older messages behind newer ones.
        while self.mailboxes[w]
            .peek()
            .is_some_and(|env| env.deliver_at <= j)
        {
            let env = self.mailboxes[w].pop().expect("peeked");
            self.stats.delivered += 1;
            let outcome = apply_message(
                &mut self.views[w],
                &mut self.view_labels[w],
                &env.comps,
                self.cfg.apply_policy,
            );
            self.constraint_checked += outcome.checked;
            self.constraint_violations += outcome.stale;
            self.stats.discarded_stale += outcome.stale;
            if env.partial {
                self.partial_reads += outcome.applied;
            }
        }

        // Record the step *before* writing (active set = the owned
        // block, labels = the producing steps of the view being read),
        // then Jacobi within the block: all components read the same
        // view.
        produce_step(
            self.op,
            &mut self.views[w],
            &mut self.view_labels[w],
            &self.blocks[w],
            j,
            &mut self.trace,
            &mut self.upd,
            &mut self.scratch,
        )?;
        self.per_worker_updates[w] += 1;
        self.steps_run = j;

        // Exchange: post the block (or a partial subset) to peers.
        if self.workers > 1 && self.per_worker_updates[w].is_multiple_of(self.cfg.exchange_every) {
            let partial = self.cfg.partial_prob > 0.0
                && self.rng.random_range(0.0..1.0) < self.cfg.partial_prob;
            let mut comps: Vec<(u32, f64, u64)> = self.blocks[w]
                .iter()
                .map(|&i| (i as u32, self.views[w][i], self.view_labels[w][i]))
                .collect();
            if partial {
                self.partial_publishes += 1;
                comps.retain(|_| self.rng.random_range(0..2u32) == 1);
                if comps.is_empty() {
                    // A partial exchange carries at least one entry.
                    let i = self.blocks[w][self.rng.random_range(0..self.blocks[w].len())];
                    comps.push((i as u32, self.views[w][i], self.view_labels[w][i]));
                }
            }
            if let Some(sc) = self.cfg.sever_component {
                comps.retain(|&(c, _, _)| c as usize != sc);
            }
            if !comps.is_empty() {
                for dest in 0..self.workers {
                    if dest == w {
                        continue;
                    }
                    self.stats.sent += 1;
                    if self.rng.random_range(0.0..1.0) < self.cfg.drop_prob {
                        self.stats.dropped += 1;
                        continue;
                    }
                    let post =
                        |rng: &mut StdRng,
                         seq: &mut u64,
                         stats: &mut ClusterStats,
                         boxes: &mut Vec<BinaryHeap<Envelope>>| {
                            let mut latency = cfg_link_sample(&self.cfg, rng);
                            if rng.random_range(0.0..1.0) < self.cfg.hold_prob {
                                stats.held += 1;
                                latency += rng.random_range(1..=self.cfg.hold_extra.max(1));
                            }
                            *seq += 1;
                            boxes[dest].push(Envelope {
                                deliver_at: j.saturating_add(latency),
                                seq: *seq,
                                comps: comps.clone(),
                                partial,
                            });
                        };
                    if self.rng.random_range(0.0..1.0) < self.cfg.dup_prob {
                        self.stats.duplicated += 1;
                        post(
                            &mut self.rng,
                            &mut self.seq,
                            &mut self.stats,
                            &mut self.mailboxes,
                        );
                    }
                    post(
                        &mut self.rng,
                        &mut self.seq,
                        &mut self.stats,
                        &mut self.mailboxes,
                    );
                }
            }
        }

        // Observability and stopping on the consensus vector.
        let want_error = self.cfg.error_every > 0 && j.is_multiple_of(self.cfg.error_every);
        let want_residual =
            self.cfg.residual_every > 0 && j.is_multiple_of(self.cfg.residual_every);
        let want_stop =
            self.cfg.target_residual.is_some() && j.is_multiple_of(self.cfg.check_every.max(1));
        if want_error || want_residual || want_stop {
            self.assemble_consensus();
            if want_error {
                let xs = self.xstar.as_deref().expect("validated: requires xstar");
                self.errors.push((
                    j,
                    asynciter_numerics::vecops::max_abs_diff(&self.consensus, xs),
                ));
            }
            if want_residual || want_stop {
                let residual = self
                    .op
                    .residual_inf_with(&self.consensus, &mut self.scratch);
                if want_residual {
                    self.residuals.push((j, residual));
                }
                if want_stop && self.cfg.target_residual.is_some_and(|eps| residual <= eps) {
                    self.stopped_early = true;
                    return Ok(StepStatus::Done);
                }
            }
        }
        Ok(StepStatus::Running)
    }

    /// Finalises the run: assembles the consensus vector and the result
    /// record. Can be called at any point of the run (the result covers
    /// the steps executed so far).
    pub fn into_result(mut self) -> ClusterRunResult {
        self.assemble_consensus();
        let final_residual = self.op.residual_inf(&self.consensus);
        ClusterRunResult {
            local_views: self.views,
            consensus: self.consensus,
            final_residual,
            stats: self.stats,
            trace: self.trace,
            steps_run: self.steps_run,
            per_worker_updates: self.per_worker_updates,
            errors: self.errors,
            residuals: self.residuals,
            stopped_early: self.stopped_early,
            partial_publishes: self.partial_publishes,
            partial_reads: self.partial_reads,
            constraint_checked: self.constraint_checked,
            constraint_violations: self.constraint_violations,
            wall: self.start.elapsed(),
        }
    }
}

/// Borrow-splitting helper: sampling a link latency needs `&cfg.link`
/// and `&mut rng` while the exchange closure also borrows `self`
/// fields.
fn cfg_link_sample(cfg: &ClusterConfig, r: &mut StdRng) -> u64 {
    cfg.link.sample(r)
}

/// The sharded message-passing engine. See module docs.
#[derive(Debug, Default)]
pub struct ClusterEngine;

impl ClusterEngine {
    /// Runs the distributed asynchronous iteration.
    ///
    /// `xstar` is the known fixed point for error sampling (experiments
    /// only — the algorithm never reads it).
    ///
    /// # Errors
    /// Dimension/parameter validation failures, or a non-finite iterate
    /// (operator divergence).
    pub fn run(
        op: &dyn Operator,
        x0: &[f64],
        partition: &Partition,
        cfg: &ClusterConfig,
        xstar: Option<&[f64]>,
    ) -> crate::Result<ClusterRunResult> {
        let mut cursor = ClusterCursor::new(op, x0, partition, cfg, xstar)?;
        while cursor.step()? == StepStatus::Running {}
        Ok(cursor.into_result())
    }
}

fn validate(
    op: &dyn Operator,
    x0: &[f64],
    partition: &Partition,
    cfg: &ClusterConfig,
    xstar: Option<&[f64]>,
) -> crate::Result<()> {
    let n = op.dim();
    if x0.len() != n {
        return Err(RuntimeError::DimensionMismatch {
            expected: n,
            actual: x0.len(),
            context: "ClusterEngine::run (x0)",
        });
    }
    if partition.n() != n {
        return Err(RuntimeError::DimensionMismatch {
            expected: n,
            actual: partition.n(),
            context: "ClusterEngine::run (partition)",
        });
    }
    if cfg.steps == 0 || cfg.exchange_every == 0 {
        return Err(RuntimeError::InvalidParameter {
            name: "steps/exchange_every",
            message: "must be positive".into(),
        });
    }
    if cfg.error_every > 0 {
        match xstar {
            None => {
                return Err(RuntimeError::InvalidParameter {
                    name: "error_every",
                    message: "error sampling requires a known fixed point".into(),
                });
            }
            Some(xs) if xs.len() != n => {
                return Err(RuntimeError::DimensionMismatch {
                    expected: n,
                    actual: xs.len(),
                    context: "ClusterEngine::run (xstar)",
                });
            }
            Some(_) => {}
        }
    }
    cfg.link.validate()?;
    for (name, p) in [
        ("hold_prob", cfg.hold_prob),
        ("drop_prob", cfg.drop_prob),
        ("dup_prob", cfg.dup_prob),
        ("partial_prob", cfg.partial_prob),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(RuntimeError::InvalidParameter {
                name,
                message: format!("{name} = {p} outside [0,1]"),
            });
        }
    }
    if let Some(sc) = cfg.sever_component {
        if sc >= n {
            return Err(RuntimeError::InvalidParameter {
                name: "sever_component",
                message: format!("component {sc} out of range for dim {n}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn fault_free_run_converges() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(24, 3).unwrap();
        let cfg = ClusterConfig::new(900);
        let res = ClusterEngine::run(&op, &[0.0; 24], &p, &cfg, None).unwrap();
        assert!(
            vecops::max_abs_diff(&res.consensus, &xstar) < 1e-8,
            "error {}",
            vecops::max_abs_diff(&res.consensus, &xstar)
        );
        assert!(res.stats.sent > 0);
        assert_eq!(res.stats.dropped, 0);
        assert_eq!(res.per_worker_updates, vec![300; 3]);
    }

    #[test]
    fn cursor_stepping_matches_run_to_completion_bitwise() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let mut cfg = ClusterConfig::new(400)
            .with_faults(0.3, 0.15, 0.1)
            .with_link(LinkModel::Jitter { lo: 1, hi: 5 })
            .with_seed(41)
            .with_record(LabelStore::Full);
        cfg.partial_prob = 0.25;
        let whole = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        let mut cursor = ClusterCursor::new(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        while cursor.step().unwrap() == StepStatus::Running {}
        let stepped = cursor.into_result();
        assert_eq!(whole.consensus, stepped.consensus);
        assert_eq!(whole.stats, stepped.stats);
        assert_eq!(whole.steps_run, stepped.steps_run);
        for j in 1..=whole.trace.len() as u64 {
            assert_eq!(
                whole.trace.labels(j).unwrap(),
                stepped.trace.labels(j).unwrap()
            );
        }
    }

    #[test]
    fn snapshot_restore_replays_bit_identically() {
        let op = jacobi(12);
        let p = Partition::blocks(12, 3).unwrap();
        let cfg = ClusterConfig::new(300)
            .with_faults(0.25, 0.2, 0.15)
            .with_link(LinkModel::HeavyTail {
                scale: 1,
                alpha: 1.3,
            })
            .with_seed(7)
            .with_record(LabelStore::Full);
        let mut cursor = ClusterCursor::new(&op, &[0.0; 12], &p, &cfg, None).unwrap();
        for _ in 0..100 {
            assert_eq!(cursor.step().unwrap(), StepStatus::Running);
        }
        let snap = cursor.snapshot();
        assert_eq!(cursor.next_step(), 101);
        // First continuation.
        while cursor.step().unwrap() == StepStatus::Running {}
        let a = cursor.snapshot();
        // Rewind and continue again: the RNG stream is part of the
        // snapshot, so both continuations must agree bitwise.
        cursor.restore(&snap);
        assert_eq!(cursor.next_step(), 101);
        while cursor.step().unwrap() == StepStatus::Running {}
        let b = cursor.snapshot();
        assert_eq!(a.views, b.views);
        assert_eq!(a.view_labels, b.view_labels);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.steps_run, b.steps_run);
        let res = cursor.into_result();
        assert_eq!(res.steps_run, 300);
    }

    #[test]
    fn apply_message_keep_freshest_counts_stale_entries() {
        let mut view = vec![0.0, 0.0];
        let mut labels = vec![5u64, 1];
        let out = apply_message(
            &mut view,
            &mut labels,
            &[(0, 9.0, 3), (1, 7.0, 4)],
            ApplyPolicy::KeepFreshest,
        );
        assert_eq!(
            out,
            MessageApply {
                applied: 1,
                checked: 2,
                stale: 1
            }
        );
        assert_eq!(view, vec![0.0, 7.0]);
        assert_eq!(labels, vec![5, 4]);
        let out = apply_message(
            &mut view,
            &mut labels,
            &[(0, 9.0, 3)],
            ApplyPolicy::AsReceived,
        );
        assert_eq!(out.applied, 1);
        assert_eq!(out.checked, 0);
        assert_eq!(labels, vec![3, 4]);
    }

    #[test]
    fn runs_are_deterministic() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = ClusterConfig::new(600)
            .with_faults(0.3, 0.15, 0.1)
            .with_link(LinkModel::Jitter { lo: 1, hi: 5 })
            .with_seed(9)
            .with_record(LabelStore::Full);
        let a = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        let b = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        assert_eq!(a.consensus, b.consensus);
        assert_eq!(a.stats, b.stats);
        for j in 1..=a.trace.len() as u64 {
            assert_eq!(a.trace.step(j).active, b.trace.step(j).active);
            assert_eq!(a.trace.labels(j).unwrap(), b.trace.labels(j).unwrap());
        }
    }

    #[test]
    fn survives_reordering_loss_and_duplication() {
        let op = jacobi(24);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(24, 4).unwrap();
        for policy in [ApplyPolicy::AsReceived, ApplyPolicy::KeepFreshest] {
            let cfg = ClusterConfig::new(3200)
                .with_faults(0.3, 0.15, 0.1)
                .with_policy(policy)
                .with_seed(5);
            let res = ClusterEngine::run(&op, &[0.0; 24], &p, &cfg, None).unwrap();
            assert!(
                vecops::max_abs_diff(&res.consensus, &xstar) < 1e-6,
                "{policy:?}: error {}",
                vecops::max_abs_diff(&res.consensus, &xstar)
            );
            assert!(res.stats.dropped > 0, "{policy:?}: faults not exercised");
            assert!(res.stats.held > 0);
        }
    }

    #[test]
    fn keep_freshest_discards_stale_and_reports_constraint_stats() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = ClusterConfig::new(2000)
            .with_faults(0.5, 0.0, 0.2)
            .with_policy(ApplyPolicy::KeepFreshest)
            .with_seed(11);
        let res = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        assert!(
            res.stats.discarded_stale > 0,
            "reordering should produce stale discards"
        );
        assert_eq!(res.constraint_violations, res.stats.discarded_stale);
        assert!(res.constraint_checked > res.constraint_violations);
    }

    #[test]
    fn partial_exchanges_are_counted_and_converge() {
        let op = jacobi(16);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(16, 2).unwrap();
        let mut cfg = ClusterConfig::new(1200).with_seed(3);
        cfg.partial_prob = 0.6;
        let res = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        assert!(res.partial_publishes > 0);
        assert!(res.partial_reads > 0);
        assert!(vecops::max_abs_diff(&res.consensus, &xstar) < 1e-7);
    }

    #[test]
    fn residual_target_stops_early() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 2).unwrap();
        let mut cfg = ClusterConfig::new(100_000);
        cfg.target_residual = Some(1e-10);
        cfg.check_every = 8;
        let res = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        assert!(res.stopped_early);
        assert!(res.steps_run < 100_000);
        assert!(res.final_residual <= 1e-10);
    }

    #[test]
    fn severed_component_freezes_remote_labels() {
        let op = jacobi(12);
        let p = Partition::blocks(12, 3).unwrap();
        let mut cfg = ClusterConfig::new(600).with_record(LabelStore::Full);
        // Component 3 sits on the block boundary: worker 1's component 4
        // reads it, so losing its messages is an *essential* fault (an
        // interior component like 0 is only read by its own shard and
        // its loss would be absorbed).
        cfg.sever_component = Some(3);
        let res = ClusterEngine::run(&op, &[0.0; 12], &p, &cfg, None).unwrap();
        // Workers 1 and 2 never hear about component 3: their recorded
        // reads keep label 0 forever.
        for j in 1..=res.trace.len() as u64 {
            let w = ((j - 1) % 3) as usize;
            if w != 0 {
                assert_eq!(res.trace.labels(j).unwrap()[3], 0, "step {j}");
            }
        }
        // And the consensus cannot converge to the true fixed point.
        let xstar = op.solve_dense_spd().unwrap();
        assert!(vecops::max_abs_diff(&res.consensus, &xstar) > 1e-6);
    }

    #[test]
    fn heavy_tail_links_reorder_unboundedly_yet_converge() {
        let op = jacobi(16);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = ClusterConfig::new(4000)
            .with_link(LinkModel::HeavyTail {
                scale: 1,
                alpha: 1.3,
            })
            .with_seed(7);
        let res = ClusterEngine::run(&op, &[0.0; 16], &p, &cfg, None).unwrap();
        assert!(vecops::max_abs_diff(&res.consensus, &xstar) < 1e-6);
    }

    #[test]
    fn validation_errors() {
        let op = jacobi(8);
        let p = Partition::blocks(8, 2).unwrap();
        assert!(ClusterEngine::run(&op, &[0.0; 7], &p, &ClusterConfig::new(10), None).is_err());
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &ClusterConfig::new(0), None).is_err());
        // Error sampling without a known fixed point.
        let mut bad = ClusterConfig::new(10);
        bad.error_every = 2;
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &bad, None).is_err());
        let bad = ClusterConfig::new(10).with_faults(1.5, 0.0, 0.0);
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &bad, None).is_err());
        let bad = ClusterConfig::new(10).with_link(LinkModel::Jitter { lo: 5, hi: 2 });
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &bad, None).is_err());
        let bad = ClusterConfig::new(10).with_link(LinkModel::HeavyTail {
            scale: 1,
            alpha: 0.0,
        });
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &bad, None).is_err());
        let mut bad = ClusterConfig::new(10);
        bad.sever_component = Some(8);
        assert!(ClusterEngine::run(&op, &[0.0; 8], &p, &bad, None).is_err());
    }
}
