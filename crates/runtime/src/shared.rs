//! The lock-free shared iterate vector.
//!
//! One slot per component, each holding the `f64` value (as atomic bits)
//! and the global iteration label of its last write. The ownership
//! discipline is *single writer per component* (the partition assigns
//! each component to exactly one worker), so writes never race with each
//! other; readers are wait-free and may observe any interleaving of
//! value/label pairs — which is precisely the "possibly inconsistent
//! snapshot" the asynchronous model (Definition 1) is built to tolerate.
//!
//! Memory ordering: values are written with `Release` and read with
//! `Acquire`, so a reader that sees a value also sees everything the
//! writer did before publishing it; labels are written *after* the value
//! (also `Release`). A reader that pairs a value with the label read
//! immediately before can therefore attribute the value to a label that
//! is at most *older* — never newer — than the truth, keeping recorded
//! delays conservative (condition (a) is preserved by construction; see
//! `async_engine`).

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// One component's slot: value bits + last-writer label.
#[derive(Debug)]
struct Slot {
    bits: AtomicU64,
    label: AtomicU64,
}

/// A shared vector of `f64` components with per-component write labels.
#[derive(Debug)]
pub struct SharedVec {
    slots: Vec<CachePadded<Slot>>,
}

impl SharedVec {
    /// Initialises from `x0` with all labels 0 (the initial iterate).
    pub fn new(x0: &[f64]) -> Self {
        Self {
            slots: x0
                .iter()
                .map(|&v| {
                    CachePadded::new(Slot {
                        bits: AtomicU64::new(v.to_bits()),
                        label: AtomicU64::new(0),
                    })
                })
                .collect(),
        }
    }

    /// Dimension `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the vector is empty (never for validated runs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reads component `i`'s value.
    #[inline]
    pub fn value(&self, i: usize) -> f64 {
        f64::from_bits(self.slots[i].bits.load(Ordering::Acquire))
    }

    /// Reads component `i`'s last-write label.
    #[inline]
    pub fn label(&self, i: usize) -> u64 {
        self.slots[i].label.load(Ordering::Acquire)
    }

    /// Reads `(label, value)` with the label loaded *first*: the value
    /// may then be newer than the label claims, so recorded staleness is
    /// an upper bound — conservative for condition checking.
    #[inline]
    pub fn read_labelled(&self, i: usize) -> (u64, f64) {
        let l = self.slots[i].label.load(Ordering::Acquire);
        let v = f64::from_bits(self.slots[i].bits.load(Ordering::Acquire));
        (l, v)
    }

    /// Publishes `value` for component `i` under global label `j`.
    /// Caller contract: single writer per component.
    #[inline]
    pub fn write(&self, i: usize, value: f64, j: u64) {
        self.slots[i].bits.store(value.to_bits(), Ordering::Release);
        self.slots[i].label.store(j, Ordering::Release);
    }

    /// Snapshot of all values into `out` (component-wise atomic; the
    /// vector as a whole may mix writes from different iterations — the
    /// asynchronous reading model).
    pub fn snapshot(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "SharedVec::snapshot: dimension");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.value(i);
        }
    }

    /// Snapshot of values and labels.
    pub fn snapshot_labelled(&self, values: &mut [f64], labels: &mut [u64]) {
        assert_eq!(values.len(), self.len(), "snapshot_labelled: values dim");
        assert_eq!(labels.len(), self.len(), "snapshot_labelled: labels dim");
        for i in 0..self.len() {
            let (l, v) = self.read_labelled(i);
            values[i] = v;
            labels[i] = l;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn roundtrip_value_and_label() {
        let v = SharedVec::new(&[1.5, -2.5]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.value(0), 1.5);
        assert_eq!(v.label(0), 0);
        v.write(0, 3.25, 7);
        assert_eq!(v.value(0), 3.25);
        assert_eq!(v.label(0), 7);
        assert_eq!(v.read_labelled(0), (7, 3.25));
        assert_eq!(v.value(1), -2.5);
    }

    #[test]
    fn snapshot_copies_everything() {
        let v = SharedVec::new(&[1.0, 2.0, 3.0]);
        v.write(1, 9.0, 4);
        let mut vals = vec![0.0; 3];
        let mut labels = vec![0u64; 3];
        v.snapshot_labelled(&mut vals, &mut labels);
        assert_eq!(vals, vec![1.0, 9.0, 3.0]);
        assert_eq!(labels, vec![0, 4, 0]);
        let mut vals2 = vec![0.0; 3];
        v.snapshot(&mut vals2);
        assert_eq!(vals2, vals);
    }

    #[test]
    fn special_values_survive_bit_roundtrip() {
        let v = SharedVec::new(&[0.0]);
        for x in [f64::INFINITY, f64::NEG_INFINITY, -0.0, 1e-308, f64::MAX] {
            v.write(0, x, 1);
            assert_eq!(v.value(0).to_bits(), x.to_bits());
        }
        v.write(0, f64::NAN, 2);
        assert!(v.value(0).is_nan());
    }

    #[test]
    fn concurrent_reads_never_tear() {
        // Writer alternates between two bit patterns; readers must only
        // ever observe one of them (atomicity of the 64-bit slot).
        let v = std::sync::Arc::new(SharedVec::new(&[f64::from_bits(0xAAAA_AAAA_AAAA_AAAA)]));
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let a = f64::from_bits(0xAAAA_AAAA_AAAA_AAAA);
        let b = f64::from_bits(0x5555_5555_5555_5555);
        std::thread::scope(|s| {
            {
                let v = v.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut j = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        v.write(0, if j.is_multiple_of(2) { a } else { b }, j);
                        j += 1;
                    }
                });
            }
            for _ in 0..4 {
                let v = v.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    for _ in 0..100_000 {
                        let bits = v.value(0).to_bits();
                        assert!(
                            bits == a.to_bits() || bits == b.to_bits(),
                            "torn read: {bits:#x}"
                        );
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });
    }

    #[test]
    fn labels_monotone_per_component_under_single_writer() {
        let v = std::sync::Arc::new(SharedVec::new(&[0.0]));
        std::thread::scope(|s| {
            {
                let v = v.clone();
                s.spawn(move || {
                    for j in 1..=50_000u64 {
                        v.write(0, j as f64, j);
                    }
                });
            }
            let v2 = v.clone();
            s.spawn(move || {
                let mut prev = 0u64;
                for _ in 0..50_000 {
                    let l = v2.label(0);
                    assert!(l >= prev, "label went backwards: {l} < {prev}");
                    prev = l;
                }
            });
        });
    }
}
