//! The barrier-synchronous Jacobi baseline.
//!
//! Identical work model to the asynchronous runner (same operator, same
//! blocks, same injected spin-load), but every sweep is fenced by
//! barriers: all workers read the same iterate, compute their blocks,
//! and wait for everyone before the next sweep. Under load imbalance the
//! sweep time is the *maximum* of the workers' compute times — the
//! throughput collapse that motivates asynchronous iterations (paper
//! §II: "to get rid of waiting time resulting from synchronization …
//! to cope naturally with load unbalancing").

use crate::error::RuntimeError;
use crate::imbalance::spin;
use crate::shared::SharedVec;
use asynciter_models::partition::Partition;
use asynciter_opt::traits::Operator;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A sense-reversing spin barrier.
///
/// `std::sync::Barrier` parks threads on a condvar; wake-ups cost tens of
/// microseconds, which dwarfs the per-sweep compute of fine-grained
/// iterative kernels and would make every synchronous measurement a
/// barrier benchmark. HPC codes synchronise compute phases with busy-wait
/// barriers instead; this is the textbook sense-reversing construction
/// (one atomic counter + a phase flag, `Acquire`/`Release` pairing on the
/// sense flip publishes all pre-barrier writes to all leavers).
#[derive(Debug)]
pub struct SpinBarrier {
    count: AtomicUsize,
    sense: AtomicBool,
    parties: usize,
}

impl SpinBarrier {
    /// Barrier for `parties` threads.
    ///
    /// # Panics
    /// Panics when `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "SpinBarrier: parties must be positive");
        Self {
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            parties,
        }
    }

    /// Blocks (spinning) until all parties arrive.
    pub fn wait(&self) {
        let sense = self.sense.load(Ordering::Relaxed);
        // AcqRel: the arriving thread's writes happen-before the sense
        // flip; leavers acquire the flip below.
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(!sense, Ordering::Release);
        } else {
            while self.sense.load(Ordering::Acquire) == sense {
                std::hint::spin_loop();
            }
        }
    }
}

/// Configuration of a synchronous run.
#[derive(Debug, Clone)]
pub struct SyncConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Maximum number of sweeps (full Jacobi iterations).
    pub max_sweeps: u64,
    /// Stop when the sweep change `‖x⁺ − x‖_∞` falls below this.
    pub target_change: Option<f64>,
    /// Per-worker spin units per sweep (load imbalance); empty = none.
    pub spin_per_update: Vec<u64>,
}

impl SyncConfig {
    /// Baseline configuration.
    pub fn new(workers: usize, max_sweeps: u64) -> Self {
        Self {
            workers,
            max_sweeps,
            target_change: None,
            spin_per_update: Vec::new(),
        }
    }

    /// Sets the change-based stopping target.
    pub fn with_target_change(mut self, eps: f64) -> Self {
        self.target_change = Some(eps);
        self
    }

    /// Sets per-worker spin work.
    pub fn with_spin(mut self, spin: Vec<u64>) -> Self {
        self.spin_per_update = spin;
        self
    }
}

/// Result of a synchronous run.
#[derive(Debug)]
pub struct SyncRunResult {
    /// Final iterate.
    pub final_x: Vec<f64>,
    /// Sweeps performed.
    pub sweeps: u64,
    /// Wall-clock duration of the parallel section.
    pub wall: Duration,
    /// Final fixed-point residual.
    pub final_residual: f64,
}

/// The synchronous Jacobi runner. See module docs.
#[derive(Debug, Default)]
pub struct SyncRunner;

impl SyncRunner {
    /// Runs barrier-synchronous Jacobi sweeps over the blocks of
    /// `partition`.
    ///
    /// # Errors
    /// Dimension/parameter validation failures.
    pub fn run(
        op: &dyn Operator,
        x0: &[f64],
        partition: &Partition,
        cfg: &SyncConfig,
    ) -> crate::Result<SyncRunResult> {
        let n = op.dim();
        if x0.len() != n {
            return Err(RuntimeError::DimensionMismatch {
                expected: n,
                actual: x0.len(),
                context: "SyncRunner::run (x0)",
            });
        }
        if partition.n() != n {
            return Err(RuntimeError::DimensionMismatch {
                expected: n,
                actual: partition.n(),
                context: "SyncRunner::run (partition)",
            });
        }
        if partition.num_machines() != cfg.workers {
            return Err(RuntimeError::InvalidParameter {
                name: "workers",
                message: format!(
                    "partition has {} machines but cfg.workers = {}",
                    partition.num_machines(),
                    cfg.workers
                ),
            });
        }
        if cfg.workers == 0 || cfg.max_sweeps == 0 {
            return Err(RuntimeError::InvalidParameter {
                name: "workers/max_sweeps",
                message: "must be positive".into(),
            });
        }
        if !cfg.spin_per_update.is_empty() && cfg.spin_per_update.len() != cfg.workers {
            return Err(RuntimeError::InvalidParameter {
                name: "spin_per_update",
                message: "must be empty or one entry per worker".into(),
            });
        }

        // Double buffering: `bufs[t % 2]` is read, `bufs[(t+1) % 2]`
        // written, with barriers fencing the role swap.
        let bufs = [SharedVec::new(x0), SharedVec::new(x0)];
        let barrier = SpinBarrier::new(cfg.workers);
        let stop = AtomicBool::new(false);
        let sweeps_done = std::sync::atomic::AtomicU64::new(0);
        let blocks: Vec<Vec<usize>> = (0..cfg.workers)
            .map(|w| partition.components_of(w))
            .collect();

        let start = Instant::now();
        std::thread::scope(|scope| {
            for (w, block) in blocks.iter().enumerate() {
                let bufs = &bufs;
                let barrier = &barrier;
                let stop = &stop;
                let sweeps_done = &sweeps_done;
                let spin_units = cfg.spin_per_update.get(w).copied().unwrap_or(0);
                scope.spawn(move || {
                    // Per-worker buffers allocated once: snapshot, block
                    // output, and the operator's caller-owned scratch —
                    // the sweep loop below performs no heap allocation.
                    let mut vals = vec![0.0; n];
                    let mut upd = vec![0.0; n];
                    let mut scratch = vec![0.0; op.scratch_len()];
                    for t in 0..cfg.max_sweeps {
                        let read = &bufs[(t % 2) as usize];
                        let write = &bufs[((t + 1) % 2) as usize];
                        read.snapshot(&mut vals);
                        if spin_units > 0 {
                            spin(spin_units);
                        }
                        op.update_active_with(&vals, block, &mut upd, &mut scratch);
                        for &i in block {
                            write.write(i, upd[i], t + 1);
                        }
                        // Sweep barrier: everyone finished writing.
                        barrier.wait();
                        if w == 0 {
                            sweeps_done.store(t + 1, Ordering::Relaxed);
                            if let Some(eps) = cfg.target_change {
                                let mut change = 0.0_f64;
                                for i in 0..n {
                                    change = change.max((write.value(i) - read.value(i)).abs());
                                }
                                if change <= eps {
                                    stop.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                        // Decision barrier: stop flag is now consistent.
                        barrier.wait();
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                });
            }
        });
        let wall = start.elapsed();

        let sweeps = sweeps_done.load(Ordering::Relaxed);
        let mut final_x = vec![0.0; n];
        bufs[(sweeps % 2) as usize].snapshot(&mut final_x);
        let final_residual = op.residual_inf(&final_x);
        Ok(SyncRunResult {
            final_x,
            sweeps,
            wall,
            final_residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn matches_sequential_jacobi_exactly() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let cfg = SyncConfig::new(4, 25);
        let res = SyncRunner::run(&op, &[0.0; 16], &p, &cfg).unwrap();

        let mut x = vec![0.0; 16];
        let mut next = vec![0.0; 16];
        for _ in 0..25 {
            op.apply(&x, &mut next);
            std::mem::swap(&mut x, &mut next);
        }
        assert!(vecops::max_abs_diff(&res.final_x, &x) < 1e-15);
        assert_eq!(res.sweeps, 25);
    }

    #[test]
    fn converges_with_target() {
        let op = jacobi(32);
        let xstar = op.solve_dense_spd().unwrap();
        let p = Partition::blocks(32, 2).unwrap();
        // Small sweep cap: each barrier sweep costs a full spin-barrier
        // crossing per worker (~an OS scheduling quantum each on one
        // core), and the change target fires after a few dozen sweeps.
        let cfg = SyncConfig::new(2, 500).with_target_change(1e-13);
        let res = SyncRunner::run(&op, &vec![0.0; 32], &p, &cfg).unwrap();
        assert!(res.sweeps < 500);
        assert!(vecops::max_abs_diff(&res.final_x, &xstar) < 1e-10);
    }

    #[test]
    fn imbalance_does_not_change_result_only_time() {
        let op = jacobi(16);
        let p = Partition::blocks(16, 4).unwrap();
        let plain = SyncRunner::run(&op, &[0.0; 16], &p, &SyncConfig::new(4, 30)).unwrap();
        let skewed = SyncRunner::run(
            &op,
            &[0.0; 16],
            &p,
            &SyncConfig::new(4, 30).with_spin(crate::imbalance::linear_imbalance(4, 1000, 8.0)),
        )
        .unwrap();
        assert!(vecops::max_abs_diff(&plain.final_x, &skewed.final_x) < 1e-15);
    }

    #[test]
    fn spin_barrier_synchronises_counters() {
        // Classic barrier test: every thread increments a per-phase
        // counter; after the barrier all must observe the full count.
        let parties = 4;
        let barrier = SpinBarrier::new(parties);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..parties {
                s.spawn(|| {
                    for phase in 1..=50 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        assert_eq!(counter.load(Ordering::Relaxed), phase * parties);
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "parties must be positive")]
    fn spin_barrier_rejects_zero() {
        SpinBarrier::new(0);
    }

    #[test]
    fn validation_errors() {
        let op = jacobi(8);
        let p = Partition::blocks(8, 2).unwrap();
        assert!(SyncRunner::run(&op, &[0.0; 8], &p, &SyncConfig::new(3, 10)).is_err());
        assert!(SyncRunner::run(&op, &[0.0; 7], &p, &SyncConfig::new(2, 10)).is_err());
        assert!(SyncRunner::run(&op, &[0.0; 8], &p, &SyncConfig::new(2, 0)).is_err());
        assert!(SyncRunner::run(
            &op,
            &[0.0; 8],
            &p,
            &SyncConfig::new(2, 10).with_spin(vec![1])
        )
        .is_err());
    }
}
