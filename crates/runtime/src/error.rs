//! Error type for the runtime crate.

use std::fmt;

/// Errors produced by the multi-threaded runtimes.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Configuration and problem dimensions disagree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
        /// Context string.
        context: &'static str,
    },
    /// A configuration parameter is invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        message: String,
    },
    /// A worker thread panicked.
    WorkerPanicked {
        /// Worker index.
        worker: usize,
    },
    /// An iterate became non-finite (operator divergence).
    NonFiniteIterate {
        /// Global step at which the divergence was observed.
        at_step: u64,
        /// Component that diverged.
        component: usize,
    },
    /// Propagated model error (trace assembly).
    Model(asynciter_models::ModelError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DimensionMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            RuntimeError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            RuntimeError::WorkerPanicked { worker } => {
                write!(f, "worker {worker} panicked")
            }
            RuntimeError::NonFiniteIterate { at_step, component } => {
                write!(
                    f,
                    "non-finite iterate at step {at_step}, component {component}"
                )
            }
            RuntimeError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<asynciter_models::ModelError> for RuntimeError {
    fn from(e: asynciter_models::ModelError) -> Self {
        RuntimeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = RuntimeError::WorkerPanicked { worker: 3 };
        assert!(e.to_string().contains("worker 3"));
    }
}
