//! End-to-end tests of the benchmark gate: matrix coverage, artefact
//! validity, baseline self-check, and the corrupted-baseline failure
//! path the CI job relies on.
//!
//! Comparator *thresholds* are unit-tested in `gate.rs` with injected
//! timings; these tests exercise the real matrix, so they assert only
//! host-independent facts (coverage, determinism-backed metrics, exit
//! codes) and never gate on live clocks.

use asynciter_bench::gate::{check_matrix, coverage, gate_main, CheckConfig, Verdict};
use asynciter_report::json::GateDoc;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("asynciter_gate_{}_{name}", std::process::id()))
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// One end-to-end journey (a single test so the ~quick-matrix cost is
/// paid a bounded number of times): a corrupted baseline fails the
/// check, a fresh artefact is valid and fully covered, and checking a
/// run against its own output passes.
#[test]
fn gate_quick_end_to_end() {
    let corrupt = tmp_path("corrupt.json");
    let out_a = tmp_path("a.json");
    let out_b = tmp_path("b.json");

    // --- A deliberately corrupted baseline must fail the check with a
    // non-zero exit code.
    std::fs::write(&corrupt, "{{{ this is not json").unwrap();
    let code = gate_main(&args(&[
        "--quick",
        "--out",
        out_a.to_str().unwrap(),
        "--check",
        corrupt.to_str().unwrap(),
    ]));
    assert_ne!(code, 0, "corrupted baseline must fail the gate");

    // A schema-version bump is rejected by the same parse the CLI uses.
    let text = std::fs::read_to_string(&out_a).unwrap();
    let stale = text.replacen("\"schema_version\": 1", "\"schema_version\": 999", 1);
    assert_ne!(stale, text, "replacement must hit the schema field");
    GateDoc::parse(&stale).expect_err("stale schema version must be rejected");

    // --- The artefact written alongside the failed check is a valid,
    // fully-covered matrix.
    let doc = GateDoc::parse(&text).expect("BENCH_gate.json parses");
    assert_eq!(doc.mode, "quick");
    assert_eq!(
        doc.records.len(),
        7 * 6 * 5,
        "full backend x problem x delay matrix"
    );
    assert!(
        doc.records.iter().all(|r| r.is_ok()),
        "every quick cell runs ok: {:?}",
        doc.records
            .iter()
            .filter(|r| !r.is_ok())
            .map(|r| (r.key(), r.note.clone()))
            .collect::<Vec<_>>()
    );
    let cov = coverage(&doc);
    assert_eq!(cov.backends.len(), 7, "all 7 backends covered");
    assert!(cov.backends.contains("cluster"), "cluster backend present");
    assert!(
        cov.backends.contains("threaded-cluster"),
        "threaded backend present"
    );
    assert_eq!(cov.problems.len(), 6, "all 6 problems covered");
    assert!(
        cov.problems.contains("logistic") && cov.problems.contains("network-flow"),
        "promoted problems present: {:?}",
        cov.problems
    );
    assert!(cov.delays.len() >= 4, "at least 4 delay models covered");
    // Per backend: every problem and at least 4 delay models.
    for backend in &cov.backends {
        let mut problems = BTreeSet::new();
        let mut delays = BTreeSet::new();
        for r in doc
            .records
            .iter()
            .filter(|r| r.is_ok() && &r.backend == backend)
        {
            problems.insert(r.problem.clone());
            delays.insert(r.delay.clone());
        }
        assert!(problems.len() >= 6, "{backend}: {problems:?}");
        assert!(delays.len() >= 4, "{backend}: {delays:?}");
    }
    // Deterministic backends must have converged outright in quick mode;
    // simulator cells must carry simulated time.
    for r in &doc.records {
        if r.backend == "sim" {
            assert!(r.sim_time.is_some(), "{}", r.key());
        }
        assert!(
            r.final_residual.is_finite() && r.final_residual <= 1e-3,
            "{}: residual {}",
            r.key(),
            r.final_residual
        );
    }

    // --- Checking the second run against the first run's artefact
    // passes on deterministic metrics. Wall gating is disabled for this
    // invocation: both runs use live clocks here, and the suite's other
    // test binaries run concurrently, so an 8x wall blowup between the
    // two runs is possible on a loaded host.
    std::fs::write(&corrupt, &text).unwrap();
    let code = gate_main(&args(&[
        "--quick",
        "--out",
        out_b.to_str().unwrap(),
        "--check",
        corrupt.to_str().unwrap(),
        "--min-wall-secs",
        "1e18",
    ]));
    assert_eq!(code, 0, "self-check must pass");

    for p in [&corrupt, &out_a, &out_b] {
        std::fs::remove_file(p).ok();
    }
}

/// A semantic regression (not a parse failure) also fails: verified at
/// the comparator layer with a doctored baseline so no second matrix
/// run is needed.
#[test]
fn doctored_baseline_detects_regressions() {
    // A tiny hand-built "run": one deterministic cell.
    let mk = |resid: f64, sim: Option<u64>| {
        let mut doc = GateDoc::new("quick", vec![]);
        doc.records.push(asynciter_report::json::GateRecord {
            problem: "jacobi".into(),
            backend: "replay".into(),
            delay: "bounded".into(),
            fidelity: "exact".into(),
            status: "ok".into(),
            note: String::new(),
            seed: 2022,
            steps: 2500,
            wall_secs: 0.001,
            sim_time: sim,
            final_residual: resid,
            macro_iterations: 100,
            per_worker_updates: vec![],
        });
        doc
    };
    // Baseline claims a residual far below what the "current" run
    // produced, with the floor disabled: the comparator must flag it.
    let baseline = mk(1e-12, None);
    let current = mk(1e-2, None);
    let cfg = CheckConfig {
        residual_floor: 0.0,
        ..CheckConfig::default()
    };
    let report = check_matrix(&baseline, &current, &cfg);
    assert!(!report.passed());
    assert_eq!(report.cells[0].verdict, Verdict::ResidualRegression);

    // Simulated-time inflation is caught without any live clock.
    let baseline = mk(1e-12, Some(1_000));
    let current = mk(1e-12, Some(5_000));
    let report = check_matrix(&baseline, &current, &CheckConfig::default());
    assert!(!report.passed());
    assert_eq!(report.cells[0].verdict, Verdict::SimTimeRegression);
}
