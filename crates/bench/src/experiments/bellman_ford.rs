//! **E6** — asynchronous Bellman–Ford routing (Arpanet, refs \[11\]/\[17\]).
//!
//! Paper context (§II): "the first routing algorithm to be implemented
//! on the Arpanet in 1969 was a distributed asynchronous Bellman–Ford
//! algorithm" — the historical proof that totally asynchronous
//! iterations run real infrastructure. The operator is monotone but not
//! a contraction, so this also exercises the non-contracting side of the
//! theory.
//!
//! The experiment routes on a synthetic 1971-era Arpanet topology and on
//! random geometric graphs, under increasingly hostile channels
//! (reordering + loss + duplication), and verifies that the distributed
//! estimates reach the exact Dijkstra distances; a replay-engine run
//! under out-of-order labels cross-checks the deterministic path.

use crate::ExpContext;
use asynciter_core::session::{Replay, Session};
use asynciter_models::partition::Partition;
use asynciter_models::schedule::ChaoticBounded;
use asynciter_opt::bellman_ford::{BellmanFordOperator, Graph};
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;
use asynciter_runtime::network::{ApplyPolicy, NetConfig, NetworkRunner};

/// Runs E6.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("E6", seed);

    let mut table = TextTable::new(&[
        "graph",
        "channel (hold/drop/dup)",
        "policy",
        "max error",
        "dropped",
        "held",
    ]);
    let mut csv = CsvWriter::new(&["graph", "hold", "drop", "dup", "policy", "max_error"]);

    let graphs: Vec<(String, Graph, usize)> = {
        let mut g = vec![("arpanet-1971".to_string(), Graph::arpanet(), 6)];
        let n = if quick { 24 } else { 60 };
        g.push((
            format!("geometric-{n}"),
            Graph::random_geometric(n, 0.25, seed).expect("graph"),
            6,
        ));
        g
    };

    for (name, graph, workers) in &graphs {
        let n = graph.num_nodes();
        let op = BellmanFordOperator::new(graph.clone(), 0).expect("operator");
        let exact = op.exact();
        let x0 = op.initial_estimate();
        let partition = Partition::blocks(n, *workers).expect("partition");
        let budget = if quick { 300 } else { 800 };
        for &(hold, drop, dup) in &[(0.0, 0.0, 0.0), (0.3, 0.1, 0.05), (0.5, 0.25, 0.1)] {
            for policy in [ApplyPolicy::AsReceived, ApplyPolicy::KeepFreshest] {
                let cfg = NetConfig::new(*workers, budget)
                    .with_faults(hold, drop, dup)
                    .with_policy(policy)
                    .with_seed(seed);
                let res = NetworkRunner::run(&op, &x0, &partition, &cfg).expect("run");
                let err = res
                    .consensus
                    .iter()
                    .zip(&exact)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0_f64, f64::max);
                table.row(&[
                    name.clone(),
                    format!("{hold}/{drop}/{dup}"),
                    format!("{policy:?}"),
                    format!("{err:.2e}"),
                    res.stats.dropped.to_string(),
                    res.stats.held.to_string(),
                ]);
                csv.row_strings(&[
                    name.clone(),
                    hold.to_string(),
                    drop.to_string(),
                    dup.to_string(),
                    format!("{policy:?}"),
                    format!("{err:.6e}"),
                ]);
                assert!(
                    err < 1e-9,
                    "{name} {policy:?} hold={hold} drop={drop}: routing error {err}"
                );
            }
        }
    }
    ctx.log(table.render());
    ctx.log(
        "all channel regimes and both application policies reach exact Dijkstra distances — \
         unbounded delays, reordering, loss and duplication are absorbed",
    );

    // Deterministic cross-check: replay engine with out-of-order labels.
    let graph = Graph::arpanet();
    let n = graph.num_nodes();
    let op = BellmanFordOperator::new(graph, 3).expect("operator");
    let exact = op.exact();
    let res = Session::new(&op)
        .steps(if quick { 3_000 } else { 10_000 })
        .schedule(ChaoticBounded::new(n, 2, 6, 30, false, seed + 7))
        .x0(op.initial_estimate())
        .backend(Replay)
        .run()
        .expect("replay");
    let err = res
        .final_x
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    ctx.log(format!(
        "replay engine (out-of-order labels, b=30, dest=UTAH): max error {err:.2e}"
    ));
    assert!(err < 1e-9, "replay routing failed: {err}");
    csv.save(&ctx.dir().join("bellman_ford.csv"))
        .expect("save csv");
    ctx.finish();
}
