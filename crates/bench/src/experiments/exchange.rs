//! **E5** — data-exchange frequency (ref \[26\], IBM SP4 campaign).
//!
//! Paper context: the obstacle-problem study on the IBM SP4 examined
//! "several data exchange frequencies" — how often a worker sends its
//! block to its peers trades message volume against staleness.
//!
//! Reproduced on the virtual message-passing runtime: workers solve the
//! obstacle problem, exchanging every `q` local updates. Expected shape:
//! convergence (residual after a fixed update budget) degrades
//! gracefully as `q` grows while message volume drops like `1/q` — a
//! sweet spot exists where most of the accuracy is kept at a fraction of
//! the traffic.

use crate::ExpContext;
use asynciter_models::partition::Partition;
use asynciter_opt::obstacle::{ObstacleProblem, ProjectedJacobi};
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;
use asynciter_runtime::network::{NetConfig, NetworkRunner};

/// Runs E5.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("E5", seed);
    let grid = if quick { 16 } else { 32 };
    let problem = ObstacleProblem::bump(grid, grid, 0.6).expect("problem");
    let n = problem.dim();
    let reference = problem
        .reference_solution(1e-12, 200_000)
        .expect("reference");
    let op = ProjectedJacobi::new(problem);
    let workers = 4;
    let partition = Partition::blocks(n, workers).expect("partition");
    let budget = if quick { 600 } else { 2_000 };
    let x0 = op.upper_start();

    ctx.log(format!(
        "obstacle problem {grid}×{grid} (n={n}), {workers} workers, {budget} updates/worker, \
         exchange period sweep"
    ));
    let mut table = TextTable::new(&[
        "exchange every",
        "messages",
        "final residual",
        "error to u*",
    ]);
    let mut csv = CsvWriter::new(&["exchange_every", "messages", "residual", "error"]);

    let mut rows: Vec<(u64, u64, f64, f64)> = Vec::new();
    for q in [1u64, 2, 4, 8, 16, 32, 64] {
        let cfg = NetConfig::new(workers, budget)
            .with_exchange_every(q)
            .with_seed(seed);
        let res = NetworkRunner::run(&op, &x0, &partition, &cfg).expect("network run");
        let err = asynciter_numerics::vecops::max_abs_diff(&res.consensus, &reference);
        rows.push((q, res.stats.sent, res.final_residual, err));
        table.row(&[
            q.to_string(),
            res.stats.sent.to_string(),
            format!("{:.3e}", res.final_residual),
            format!("{:.3e}", err),
        ]);
        csv.row_strings(&[
            q.to_string(),
            res.stats.sent.to_string(),
            format!("{:.6e}", res.final_residual),
            format!("{:.6e}", err),
        ]);
    }
    ctx.log(table.render());

    // Shape checks: message volume scales ~1/q; accuracy at q=1 is the
    // best; moderate periods stay within a couple orders of magnitude.
    let msgs_1 = rows[0].1 as f64;
    let msgs_64 = rows.last().expect("rows").1 as f64;
    assert!(
        msgs_1 / msgs_64 > 30.0,
        "message volume should drop ~linearly with the period"
    );
    let best_err = rows.iter().map(|r| r.3).fold(f64::INFINITY, f64::min);
    assert!(
        (rows[0].3 - best_err).abs() <= best_err.max(1e-14) * 10.0,
        "most frequent exchange should be (near-)best"
    );
    ctx.log(format!(
        "messages drop {:.0}x from q=1 to q=64 while the error grows {:.1e} → {:.1e} — \
         the [26] frequency trade-off",
        msgs_1 / msgs_64,
        rows[0].3,
        rows.last().expect("rows").3
    ));
    csv.save(&ctx.dir().join("exchange.csv")).expect("save csv");
    ctx.finish();
}
