//! **T1** — Theorem 1: the `(1 − ρ)^k` macro-iteration envelope.
//!
//! Paper claim (Eq. (5)): for the Definition-4 operator with
//! `γ ∈ (0, 2/(μ+L)]`, every asynchronous iteration with flexible
//! communication satisfies, for all `j ≥ j_k`,
//!
//! ```text
//! ‖x(j) − x*‖² ≤ (1 − γμ)^k · max_i ‖x_i(0) − x_i*‖² .
//! ```
//!
//! The experiment measures error curves of the *same* operator under
//! every delay regime the paper discusses — synchronous, chaotic bounded
//! (FIFO and out-of-order), unbounded `√j`, heavy-tailed, and flexible
//! communication with partial updates — computes the strict
//! macro-iteration sequence of each recorded trace, and reports the
//! worst observed ratio `measured² / bound` (must be ≤ 1 everywhere).
//! Both the paper's exact setting (separable `f`) and the coupled
//! diagonally-dominant lasso case are exercised.

use crate::ExpContext;
use asynciter_core::flexible::{FlexibleConfig, FlexibleEngine};
use asynciter_core::session::{RecordMode, Replay, Session};
use asynciter_core::theory;
use asynciter_models::macroiter::macro_iterations_strict;
use asynciter_models::partition::Partition;
use asynciter_models::schedule::{
    BlockRoundRobin, ChaoticBounded, ScheduleGen, SyncJacobi, UnboundedSqrtDelay,
};
use asynciter_numerics::norm::WeightedMaxNorm;
use asynciter_opt::lasso::LassoProblem;
use asynciter_opt::prox::L1;
use asynciter_opt::proxgrad::{gamma_max, SeparableProxGrad, SparseProxGrad};
use asynciter_opt::quadratic::SeparableQuadratic;
use asynciter_opt::traits::{Operator, SmoothObjective};
use asynciter_report::ascii::{log_line_chart, ChartSeries};
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;

struct Case {
    name: String,
    errors: Vec<(u64, f64)>,
    macros: usize,
    worst_ratio: f64,
}

fn run_case(
    name: &str,
    op: &dyn Operator,
    gen: &mut dyn ScheduleGen,
    steps: u64,
    rho: f64,
    xstar: &[f64],
    x0: &[f64],
) -> Case {
    let res = Session::new(op)
        .steps(steps)
        .schedule(&mut *gen)
        .x0(x0.to_vec())
        .xstar(xstar.to_vec())
        .error_every((steps / 200).max(1))
        .record(RecordMode::Full)
        .backend(Replay)
        .run()
        .expect("replay");
    let macros = macro_iterations_strict(res.trace.as_ref().expect("trace"));
    let r0_sq = theory::initial_error_sq(x0, xstar);
    // Skip samples at the f64 saturation floor (see thm1_worst_ratio docs).
    let floor = 1e-12 * r0_sq.sqrt().max(1.0);
    let worst = theory::thm1_worst_ratio(&res.errors, &macros, rho, r0_sq, floor);
    Case {
        name: name.to_string(),
        errors: res
            .errors
            .iter()
            .map(|&(j, e)| (macros.index_of(j) as u64, e))
            .collect(),
        macros: macros.count(),
        worst_ratio: worst,
    }
}

/// Runs T1.
#[allow(clippy::vec_init_then_push)]
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("T1", seed);
    let n = if quick { 32 } else { 128 };
    let steps: u64 = if quick { 4_000 } else { 40_000 };

    // ---- Part A: the paper's exact setting (separable f, L1 g). ----
    let (mu, l) = (1.0, 8.0);
    let f = SeparableQuadratic::random(n, mu, l, seed).expect("instance");
    let gamma = gamma_max(mu, l);
    let op = SeparableProxGrad::new(f, L1::new(0.15), gamma).expect("operator");
    let rho = op.rho();
    let (xstar, _) = op.solve_exact().expect("fixed point");
    let x0 = vec![0.0; n];
    ctx.log(format!(
        "Part A: separable f (n={n}, mu={mu}, L={l}), gamma={gamma:.4}, rho=gamma*mu={rho:.4}, \
         contraction factor alpha={:.4}",
        op.contraction_factor()
    ));

    let mut cases: Vec<Case> = Vec::new();
    cases.push(run_case(
        "sync",
        &op,
        &mut SyncJacobi::new(n),
        steps / 10,
        rho,
        &xstar,
        &x0,
    ));
    cases.push(run_case(
        "chaotic-fifo(b=16)",
        &op,
        &mut ChaoticBounded::new(n, n / 4, n / 2, 16, true, seed),
        steps,
        rho,
        &xstar,
        &x0,
    ));
    cases.push(run_case(
        "chaotic-ooo(b=16)",
        &op,
        &mut ChaoticBounded::new(n, n / 4, n / 2, 16, false, seed + 1),
        steps,
        rho,
        &xstar,
        &x0,
    ));
    cases.push(run_case(
        "unbounded-sqrt",
        &op,
        &mut UnboundedSqrtDelay::new(n, n / 4, n / 2, 1.0, seed + 2),
        steps,
        rho,
        &xstar,
        &x0,
    ));

    // Flexible communication (Definition 3) with constraint enforcement.
    {
        let mut gen = BlockRoundRobin::new(Partition::blocks(n, 8).expect("partition"), 4);
        let fcfg = FlexibleConfig::new(steps / 4, 3)
            .with_publish_period(1)
            .with_error_every((steps / 800).max(1))
            .with_seed(seed + 3)
            .with_enforcement();
        let norm = WeightedMaxNorm::uniform(n);
        let res = FlexibleEngine::run(&op, &x0, &mut gen, &fcfg, &norm, Some(&xstar))
            .expect("flexible run");
        let macros = macro_iterations_strict(&res.trace);
        let r0_sq = theory::initial_error_sq(&x0, &xstar);
        let floor = 1e-12 * r0_sq.sqrt().max(1.0);
        let worst = theory::thm1_worst_ratio(&res.errors, &macros, rho, r0_sq, floor);
        ctx.log(format!(
            "flexible run: {} partial reads, {} publishes, {}/{} constraint-(3) violations \
             (before enforcement)",
            res.partial_reads, res.publishes, res.constraint_violations, res.constraint_checked
        ));
        cases.push(Case {
            name: "flexible(m=3,p=1)".to_string(),
            errors: res
                .errors
                .iter()
                .map(|&(j, e)| (macros.index_of(j) as u64, e))
                .collect(),
            macros: macros.count(),
            worst_ratio: worst,
        });
    }

    let mut table = TextTable::new(&[
        "schedule",
        "macro-iters k",
        "worst err²/bound",
        "bound holds",
    ]);
    let mut csv = CsvWriter::new(&["part", "schedule", "macros", "worst_ratio", "holds"]);
    for c in &cases {
        table.row(&[
            c.name.clone(),
            c.macros.to_string(),
            format!("{:.3e}", c.worst_ratio),
            (c.worst_ratio <= 1.0).to_string(),
        ]);
        csv.row_strings(&[
            "A-separable".into(),
            c.name.clone(),
            c.macros.to_string(),
            format!("{:.6e}", c.worst_ratio),
            (c.worst_ratio <= 1.0).to_string(),
        ]);
        assert!(
            c.worst_ratio <= 1.0,
            "Theorem 1 bound violated by {}: ratio {}",
            c.name,
            c.worst_ratio
        );
    }
    ctx.log(table.render());

    // Chart: measured ‖x−x*‖² against the envelope, per macro index.
    let envelope: Vec<(f64, f64)> = (0..cases[1].macros.min(60))
        .map(|k| {
            (
                k as f64,
                theory::thm1_envelope(theory::initial_error_sq(&x0, &xstar), rho, k),
            )
        })
        .collect();
    let mut series = vec![ChartSeries::new("(1-rho)^k bound", envelope)];
    for c in cases.iter().skip(1) {
        series.push(ChartSeries::new(
            c.name.clone(),
            c.errors
                .iter()
                .map(|&(k, e)| (k as f64, e * e))
                .filter(|&(k, _)| k < 60.0)
                .collect(),
        ));
    }
    let chart = log_line_chart(
        &series,
        90,
        24,
        "T1 — ‖x(j) − x*‖² vs macro index k (log scale): all curves under the bound",
    );
    ctx.log(&chart);
    ctx.save("thm1_separable.txt", &chart);

    // ---- Part B: coupled lasso (diag-dominant Gram matrix). ----
    let bn = if quick { 24 } else { 64 };
    let lasso = LassoProblem::random(bn, 6 * bn, bn / 6, 0.05, 0.01, seed).expect("lasso");
    let q = lasso.quadratic.clone();
    let gammab = gamma_max(q.strong_convexity(), q.lipschitz());
    let rho_b = gammab * q.strong_convexity();
    let opb = SparseProxGrad::new(q, L1::new(lasso.lambda), gammab).expect("operator");
    let (xstar_b, pstar_b) = opb.solve_exact().expect("fixed point");
    let cd = lasso
        .reference_solution(1e-14, 200_000)
        .expect("CD reference");
    let agree = asynciter_numerics::vecops::max_abs_diff(&cd, &pstar_b);
    ctx.log(format!(
        "Part B: lasso n={bn} (ridge boost {:.3e}); prox-grad solution agrees with coordinate \
         descent to {agree:.2e}; rho={rho_b:.4}",
        lasso.ridge_boost
    ));
    assert!(agree < 1e-6, "reference solvers disagree: {agree}");

    let x0b = vec![0.0; bn];
    for (name, gen) in [
        (
            "chaotic-ooo(b=24)",
            Box::new(ChaoticBounded::new(bn, bn / 4, bn / 2, 24, false, seed + 9))
                as Box<dyn ScheduleGen>,
        ),
        (
            "unbounded-sqrt",
            Box::new(UnboundedSqrtDelay::new(bn, bn / 4, bn / 2, 1.0, seed + 10)),
        ),
    ] {
        let mut gen = gen;
        let c = run_case(name, &opb, gen.as_mut(), steps, rho_b, &xstar_b, &x0b);
        ctx.log(format!(
            "  lasso/{:<18} macros {:>5}   worst ratio {:.3e}   holds {}",
            c.name,
            c.macros,
            c.worst_ratio,
            c.worst_ratio <= 1.0
        ));
        csv.row_strings(&[
            "B-lasso".into(),
            c.name.clone(),
            c.macros.to_string(),
            format!("{:.6e}", c.worst_ratio),
            (c.worst_ratio <= 1.0).to_string(),
        ]);
        assert!(c.worst_ratio <= 1.0, "lasso bound violated by {name}");
    }

    csv.save(&ctx.dir().join("thm1.csv")).expect("save csv");
    ctx.log("Theorem 1 bound holds for every schedule in both settings.");
    ctx.finish();
}
