//! **X1** (extension) — what the max-norm contraction condition is *for*:
//! step-size/delay interplay and the Chazan–Miranker necessity example.
//!
//! Two findings that frame the paper's assumptions:
//!
//! **Part A — random delays are not the worst case.** On a densely
//! coupled (non-diagonally-dominant) quadratic, synchronous gradient
//! descent diverges for every `γ > 2/L`, as theory says. Random
//! out-of-order staleness, however, acts as *damping*: reads drawn from
//! a window of past iterates average out the oscillating divergent mode,
//! so moderate delay bounds *extend* the convergent step range beyond
//! `2/L` — while extreme staleness degrades small-step convergence to a
//! stall. Average-case asynchrony can help; the theory's pessimism is
//! about the worst case.
//!
//! **Part B — and the worst case is real (Chazan–Miranker 1969).** For
//! the linear iteration `x ← Mx` with an antisymmetric circulant `M`
//! satisfying `ρ(M) < 1 < ρ(|M|)`, synchronous Jacobi converges while a
//! *greedy adversarial* — yet fully admissible (conditions (a)–(c),
//! bounded delays) — label choice blows the iterate up by nine orders of
//! magnitude in a few hundred updates. `ρ(|M|) < 1` — the max-norm
//! contraction the paper's Theorem 1 inherits via separability — is not
//! an artifact of proof technique; it is *necessary* for convergence
//! under every admissible schedule.

use crate::ExpContext;
use asynciter_core::session::{Replay, Session};
use asynciter_models::schedule::ChaoticBounded;
use asynciter_opt::proxgrad::GradientOperator;
use asynciter_opt::quadratic::DenseQuadratic;
use asynciter_opt::traits::{Operator, SmoothObjective};
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outcome {
    Converged,
    Stalled,
    Diverged,
}

impl Outcome {
    fn cell(self) -> &'static str {
        match self {
            Outcome::Converged => "C",
            Outcome::Stalled => "·",
            Outcome::Diverged => "D",
        }
    }
}

fn classify(
    f: &DenseQuadratic,
    gamma: f64,
    delay_b: u64,
    sweeps: u64,
    seed: u64,
    xstar: &[f64],
) -> Outcome {
    let n = f.dim();
    let op = GradientOperator::new(f.clone(), gamma).expect("operator");
    let x0 = vec![0.0; n];
    // Full-vector updates at every step (S_j = {1..n}) so the only thing
    // varying across rows is the *staleness* of the reads: with b = 1
    // this is exactly synchronous gradient descent. (Subset updates
    // would confound the comparison — they act like coordinate descent,
    // which is stable at larger steps.)
    let run = Session::new(&op)
        .steps(sweeps)
        .schedule(ChaoticBounded::new(n, n, n, delay_b, false, seed))
        .x0(x0)
        .backend(Replay)
        .run();
    match run {
        Err(_) => Outcome::Diverged, // non-finite iterate
        Ok(res) => {
            let err = asynciter_numerics::vecops::max_abs_diff(&res.final_x, xstar);
            let start = asynciter_numerics::vecops::norm_inf(xstar);
            if err < 1e-6 * start.max(1.0) {
                Outcome::Converged
            } else if err > 10.0 * start.max(1.0) {
                Outcome::Diverged
            } else {
                Outcome::Stalled
            }
        }
    }
}

/// The Chazan–Miranker-style linear iteration `F(x) = Mx` with the
/// antisymmetric circulant `M = c·[[0,1,−1],[−1,0,1],[1,−1,0]]`:
/// eigenvalues `{0, ±i√3·c}` so `ρ(M) = √3·c`, while `ρ(|M|) = 2c`.
/// With `c = 0.55`: `ρ(M) ≈ 0.953 < 1 < 1.1 = ρ(|M|)` — synchronous
/// Jacobi converges, totally asynchronous convergence is impossible.
struct CirculantMap {
    c: f64,
}

impl Operator for CirculantMap {
    fn dim(&self) -> usize {
        3
    }
    #[inline]
    fn component(&self, i: usize, x: &[f64]) -> f64 {
        self.c * (x[(i + 1) % 3] - x[(i + 2) % 3])
    }
}

/// Runs X1.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("X1", seed);

    // ---- Part A: random-delay map on a dense low-rank quadratic. ----
    let n = if quick { 16 } else { 32 };
    let sweeps: u64 = if quick { 20_000 } else { 40_000 };
    let f = DenseQuadratic::random_spd(n, 2, 0.5, 8.0, seed).expect("instance");
    let l = f.lipschitz();
    let xstar = f.minimizer().expect("minimizer");
    ctx.log(format!(
        "Part A: dense low-rank quadratic (n={n}, mu={:.3}, L={l:.3}), full-vector updates, \
         Euclidean stability edge 2/L = {:.4}",
        f.strong_convexity(),
        2.0 / l
    ));

    let fracs = [0.2, 0.5, 0.8, 1.1, 1.4, 1.7, 1.9];
    let delays = [1u64, 4, 16, 64, 256];
    let mut table = TextTable::new(&[
        "delay b \\ gamma·L/2",
        "0.2",
        "0.5",
        "0.8",
        "1.1",
        "1.4",
        "1.7",
        "1.9",
    ]);
    let mut csv = CsvWriter::new(&[
        "delay_b",
        "gamma_frac",
        "gamma",
        "outcome",
        "inf_norm_bound",
    ]);
    let mut grid: Vec<(u64, Vec<Outcome>)> = Vec::new();
    for &b in &delays {
        let mut row = vec![if b == 1 {
            "1 (sync)".to_string()
        } else {
            b.to_string()
        }];
        let mut outcomes = Vec::new();
        for &frac in &fracs {
            let gamma = frac * 2.0 / l;
            let outcome = classify(&f, gamma, b, sweeps, seed ^ b, &xstar);
            outcomes.push(outcome);
            row.push(outcome.cell().to_string());
            csv.row_strings(&[
                b.to_string(),
                format!("{frac}"),
                format!("{gamma:.5}"),
                outcome.cell().to_string(),
                format!("{:.3}", f.gradient_step_inf_norm(gamma)),
            ]);
        }
        grid.push((b, outcomes));
        table.row(&row);
    }
    ctx.log("convergence map (C converged, · stalled, D diverged):");
    ctx.log(table.render());

    // Shape assertions.
    let sync_row = &grid[0].1;
    // (i) Sync diverges beyond 2/L and converges inside it.
    assert_eq!(sync_row[1], Outcome::Converged, "sync at 0.5·2/L");
    assert!(
        sync_row[3..].iter().all(|&o| o == Outcome::Diverged),
        "sync must diverge beyond 2/L"
    );
    // (ii) Delay damping: some asynchronous row converges at a step where
    // sync diverges.
    let damping = grid
        .iter()
        .skip(1)
        .any(|(_, row)| row[3] == Outcome::Converged);
    assert!(damping, "random delays should stabilise γ just beyond 2/L");
    // (iii) Extreme staleness degrades: the b=256 row is strictly worse
    // (fewer converged cells) than the b=4 row.
    let conv = |row: &[Outcome]| row.iter().filter(|&&o| o == Outcome::Converged).count();
    assert!(
        conv(&grid.last().expect("rows").1) < conv(&grid[1].1),
        "extreme staleness should lose cells relative to moderate staleness"
    );
    ctx.log(
        "findings: (i) sync loses everything beyond 2/L; (ii) moderate random delays \
         *stabilise* steps beyond 2/L (staleness averages out the oscillating divergent \
         mode — asynchrony as damping); (iii) extreme staleness degrades everything. \
         Random delays are not the worst case the contraction theory guards against…",
    );

    // ---- Part B: …the worst case is adversarial (Chazan–Miranker). ----
    let c = 0.55;
    let op = CirculantMap { c };
    ctx.log(format!(
        "Part B: x ← Mx with the antisymmetric circulant M (c = {c}): ρ(M) = {:.3} < 1, \
         ρ(|M|) = {:.2} > 1",
        3f64.sqrt() * c,
        2.0 * c
    ));
    // Synchronous run converges (rate ρ(M) ≈ 0.953).
    {
        let res = Session::new(&op)
            .steps(600)
            // Off-kernel start: (1,1,1) spans M's nullspace and would
            // collapse in one sweep. No schedule: the replay backend
            // defaults to the synchronous Jacobi steering.
            .x0(vec![1.0, -0.5, 0.25])
            .backend(Replay)
            .run()
            .expect("sync run");
        let final_norm = asynciter_numerics::vecops::norm_inf(&res.final_x);
        ctx.log(format!(
            "  synchronous: ‖x(600 sweeps)‖_∞ = {final_norm:.3e} (converges at rate ρ(M))"
        ));
        assert!(final_norm < 1e-9, "sync must converge: {final_norm}");
    }
    // Greedy adversarial schedule: update components cyclically, but let
    // every read pick — within a delay window of b = 8 — the past value
    // that maximises the magnitude of the new update. All labels satisfy
    // conditions (a) (l ≤ j−1), (b) (l ≥ j−8 → ∞) and (c) (cyclic), so
    // the schedule is fully admissible for Definition 1.
    {
        let b = 8usize;
        let mut hist: Vec<Vec<f64>> = vec![vec![1.0], vec![1.0], vec![1.0]];
        let mut norm = 1.0_f64;
        let mut steps = 0u64;
        for j in 0..30_000u64 {
            let i = (j % 3) as usize;
            let pick = |h: &Vec<f64>| -> (f64, f64) {
                let w = &h[h.len().saturating_sub(b)..];
                let mx = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mn = w.iter().cloned().fold(f64::INFINITY, f64::min);
                (mx, mn)
            };
            // New value = c·(x_{i+1}(l₁) − x_{i+2}(l₂)); choose labels to
            // maximise |·|: either (max, min) or (min, max).
            let (mx1, mn1) = pick(&hist[(i + 1) % 3]);
            let (mx2, mn2) = pick(&hist[(i + 2) % 3]);
            let cand_pos = c * (mx1 - mn2);
            let cand_neg = c * (mn1 - mx2);
            let v = if cand_pos.abs() >= cand_neg.abs() {
                cand_pos
            } else {
                cand_neg
            };
            hist[i].push(v);
            norm = norm.max(v.abs());
            steps = j + 1;
            if norm > 1e9 {
                break;
            }
        }
        ctx.log(format!(
            "  adversarial (greedy labels, delay ≤ 8): ‖x‖_∞ reached {norm:.3e} after \
             {steps} updates — divergence under an admissible schedule"
        ));
        assert!(
            norm > 1e9,
            "greedy adversary failed to diverge (norm {norm:.3e})"
        );
    }
    ctx.log(
        "ρ(|M|) < 1 (the max-norm contraction Theorem 1 inherits from separability) is \
         NECESSARY for totally asynchronous convergence, not a proof convenience: the \
         same operator converges synchronously and diverges under an admissible \
         asynchronous schedule.",
    );
    csv.save(&ctx.dir().join("stepsize_delay.csv"))
        .expect("save csv");
    ctx.finish();
}
