//! **F1** — Fig. 1: the two-processor asynchronous iteration timeline.
//!
//! Paper exhibit: a Gantt diagram of two processors performing updating
//! phases at their own pace, each phase labelled by its iteration
//! number, with arrows for the end-of-phase value exchanges. This
//! experiment regenerates the figure from a real simulated run (the
//! processors perform genuine contraction arithmetic) and validates the
//! structural properties the figure illustrates: no idle time between
//! phases, per-processor pacing, condition (a) on the recorded labels.

use crate::ExpContext;
use asynciter_report::csv::CsvWriter;
use asynciter_report::gantt::{render_gantt, GComm, GPhase};
use asynciter_sim::runner::Simulator;
use asynciter_sim::scenario;
use asynciter_sim::timeline::CommKind;

/// Runs F1. `quick` trims the horizon (same shape, fewer phases).
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("F1", seed);
    let iterations = if quick { 10 } else { 16 };
    let op = scenario::two_component_operator();
    let cfg = scenario::fig1(iterations, seed);
    let res = Simulator::run(&op, &[0.0, 0.0], &cfg, None).expect("simulation");
    res.timeline.validate().expect("timeline invariants");
    asynciter_models::conditions::check_condition_a(&res.trace).expect("condition (a)");

    let phases: Vec<GPhase> = res
        .timeline
        .phases
        .iter()
        .map(|p| (p.proc, p.start, p.end, p.j))
        .collect();
    let comms: Vec<GComm> = res
        .timeline
        .comms
        .iter()
        .map(|c| {
            (
                c.from,
                c.to,
                c.send_t,
                c.recv_t,
                c.kind == CommKind::Partial,
            )
        })
        .collect();
    let chart = render_gantt(
        2,
        &phases,
        &comms,
        100,
        "Fig. 1 — asynchronous iteration: updating phases (boxes, labelled by iteration j) \
         and end-of-phase communications",
    );
    ctx.log(&chart);

    // Structural observations matching the figure's narrative.
    let p0 = res.timeline.phases_of(0);
    let p1 = res.timeline.phases_of(1);
    ctx.log(format!(
        "P1 completed {} phases, P2 completed {} phases (each at its own pace)",
        p0.len(),
        p1.len()
    ));
    let idle0: u64 = p0.windows(2).map(|w| w[1].start - w[0].end).sum();
    ctx.log(format!(
        "P1 idle time between phases: {idle0} ticks (asynchronous: computation covers communication)"
    ));
    assert_eq!(idle0, 0, "asynchronous processors never wait");
    ctx.log(format!(
        "first communication: P{} → P{} carrying x({})",
        comms[0].0, comms[0].1, res.timeline.comms[0].sender_phase
    ));

    let mut csv = CsvWriter::new(&["proc", "start", "end", "j"]);
    for p in &res.timeline.phases {
        csv.row_strings(&[
            p.proc.to_string(),
            p.start.to_string(),
            p.end.to_string(),
            p.j.to_string(),
        ]);
    }
    csv.save(&ctx.dir().join("phases.csv")).expect("save csv");
    let mut csv = CsvWriter::new(&["from", "to", "send_t", "recv_t", "kind"]);
    for c in &res.timeline.comms {
        csv.row_strings(&[
            c.from.to_string(),
            c.to.to_string(),
            c.send_t.to_string(),
            c.recv_t.to_string(),
            format!("{:?}", c.kind),
        ]);
    }
    csv.save(&ctx.dir().join("comms.csv")).expect("save csv");
    ctx.save("fig1.txt", &chart);
    ctx.finish();
}
