//! **E2** — macro-iterations (Definition 2) vs the epoch sequence of
//! Mishchenko–Iutzeler–Malick.
//!
//! Paper claim (§III–IV): "the concept of epoch … is less general than
//! the concept of macro-iteration sequence … In particular,
//! macro-iteration sequences account for possible out of order messages
//! while epochs do not."
//!
//! Made quantitative: on the *same* traces we compute both boundary
//! sequences and count *freshness violations* — steps beyond boundary
//! `k+1` that still read information older than boundary `k` (the
//! property each analysis needs from its boundaries). Under FIFO
//! delivery both behave; under out-of-order delivery epochs keep ticking
//! blindly (they only count updates) and accumulate violations, while
//! strict macro-iterations adapt and stay violation-free.

use crate::ExpContext;
use asynciter_models::conditions::labels_monotone;
use asynciter_models::epoch::epoch_sequence;
use asynciter_models::macroiter::{
    boundary_freshness_violations, macro_iterations, macro_iterations_strict,
};
use asynciter_models::partition::Partition;
use asynciter_models::schedule::{record, ChaoticBounded, ScheduleGen, UnboundedSqrtDelay};
use asynciter_models::trace::LabelStore;
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;

/// Runs E2.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("E2", seed);
    let n = if quick { 8 } else { 16 };
    let steps = if quick { 5_000 } else { 40_000 };
    let partition = Partition::identity(n);

    let mut table = TextTable::new(&[
        "trace",
        "monotone",
        "epochs",
        "epoch viol.",
        "macro (lit.)",
        "lit. viol.",
        "macro (strict)",
        "strict viol.",
    ]);
    let mut csv = CsvWriter::new(&[
        "trace",
        "monotone",
        "epochs",
        "epoch_violations",
        "macro_literal",
        "literal_violations",
        "macro_strict",
        "strict_violations",
    ]);

    let cases: Vec<(&str, Box<dyn ScheduleGen>)> = vec![
        (
            "fifo b=32",
            Box::new(ChaoticBounded::new(n, n, n, 32, true, seed)),
        ),
        (
            "out-of-order b=32",
            Box::new(ChaoticBounded::new(n, n, n, 32, false, seed + 1)),
        ),
        (
            "out-of-order b=128",
            Box::new(ChaoticBounded::new(n, n, n, 128, false, seed + 2)),
        ),
        (
            "unbounded sqrt",
            Box::new(UnboundedSqrtDelay::new(n, n, n, 1.0, seed + 3)),
        ),
    ];

    let mut epoch_viol_ooo = 0u64;
    for (name, mut gen) in cases {
        let trace = record(gen.as_mut(), steps, LabelStore::Full);
        let monotone = labels_monotone(&trace).expect("full labels");
        let epochs = epoch_sequence(&trace, &partition, 2);
        let lit = macro_iterations(&trace);
        let strict = macro_iterations_strict(&trace);
        let ev = boundary_freshness_violations(&trace, &epochs.boundaries);
        let lv = boundary_freshness_violations(&trace, &lit.boundaries);
        let sv = boundary_freshness_violations(&trace, &strict.boundaries);
        if name.starts_with("out-of-order") {
            epoch_viol_ooo += ev;
        }
        assert_eq!(sv, 0, "strict macro-iterations must be violation-free");
        table.row(&[
            name.to_string(),
            monotone.to_string(),
            epochs.count().to_string(),
            ev.to_string(),
            lit.count().to_string(),
            lv.to_string(),
            strict.count().to_string(),
            sv.to_string(),
        ]);
        csv.row_strings(&[
            name.into(),
            monotone.to_string(),
            epochs.count().to_string(),
            ev.to_string(),
            lit.count().to_string(),
            lv.to_string(),
            strict.count().to_string(),
            sv.to_string(),
        ]);
    }

    ctx.log(table.render());
    assert!(
        epoch_viol_ooo > 0,
        "out-of-order traces must produce epoch freshness violations"
    );
    ctx.log(format!(
        "out-of-order traces: epochs accumulate {epoch_viol_ooo} freshness violations while \
         strict macro-iterations have none — the paper's generality claim, quantified."
    ));
    csv.save(&ctx.dir().join("macro_vs_epoch.csv"))
        .expect("save csv");
    ctx.finish();
}
