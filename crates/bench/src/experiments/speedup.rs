//! **E3** — asynchronous vs synchronous efficiency under load imbalance.
//!
//! Paper claim (§II): the advantages of asynchronous iterations are "to
//! get rid of waiting time resulting from synchronization; to recover
//! communication by computation; to cope naturally with load
//! unbalancing", and (§IV) "efficiency and scalability of asynchronous
//! iterations was better than the one of their synchronous counterparts"
//! on the Cray T3E / IBM SP4 / Grid5000 campaigns.
//!
//! All runs go through the unified `Session` API — one problem, one
//! builder, backends swapped per measurement:
//!
//! 1. **Deterministic** (asserted): the `Sim` backend runs the
//!    asynchronous iteration with per-processor compute times scaled by
//!    the imbalance factor and reports the *simulated* time to reach `ε`;
//!    the synchronous comparator is the *idealised* barrier method
//!    (sweeps × slowest-worker time, barrier itself free — a bound no
//!    real implementation beats). The async/sync ratio must shrink as
//!    imbalance grows.
//! 2. **Threads** (reported, loosely asserted): the `SharedMem` backend
//!    vs the `Barrier` backend with injected spin-work. Wall-clock on a
//!    shared/virtualised host is noisy, so only the directional claim at
//!    max imbalance is asserted.

use crate::ExpContext;
use asynciter_core::session::{Replay, Session};
use asynciter_core::stopping::StoppingRule;
use asynciter_models::partition::Partition;
use asynciter_opt::linear::JacobiOperator;
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;
use asynciter_runtime::imbalance::linear_imbalance;
use asynciter_runtime::session::{Barrier, SharedMem};
use asynciter_sim::compute::{ComputeModel, LatencyModel};
use asynciter_sim::runner::SimConfig;
use asynciter_sim::session::Sim;

/// Sequential Jacobi sweeps to reach `eps`, measured through the replay
/// backend with its default synchronous schedule and the oracle rule.
fn sweeps_to_eps(op: &JacobiOperator, xstar: &[f64], eps: f64) -> u64 {
    let run = Session::new(op)
        .steps(1_000_000)
        .xstar(xstar.to_vec())
        .stopping(StoppingRule::ErrorBelow {
            eps,
            check_every: 1,
        })
        .backend(Replay)
        .run()
        .expect("sequential baseline");
    assert!(run.stopped_early, "sequential Jacobi did not reach eps");
    run.steps
}

/// Runs E3.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("E3", seed);
    let grid = if quick { 12 } else { 20 };
    let n = grid * grid;
    let a = asynciter_numerics::sparse::laplacian_2d(grid, grid, 1.0);
    let op = JacobiOperator::new(a, vec![1.0; n]).expect("operator");
    let xstar = op.solve_dense_spd().expect("exact solution");
    let eps = 1e-6;
    let workers = 4usize;
    let partition = Partition::blocks(n, workers).expect("partition");
    let base_ticks = 10u64;

    // ---- Part 1: deterministic (simulated time). ----
    let k_sync = sweeps_to_eps(&op, &xstar, eps);
    ctx.log(format!(
        "Part 1 (simulated): 2-D Laplacian {grid}×{grid} (n={n}), target ‖x−x*‖ ≤ {eps:.0e}; \
         sequential Jacobi needs {k_sync} sweeps"
    ));
    let mut table = TextTable::new(&["imbalance", "ideal sync ticks", "async ticks", "async/sync"]);
    let mut csv = CsvWriter::new(&["part", "imbalance", "sync", "async", "ratio"]);
    let mut sim_ratios = Vec::new();
    for factor in [1.0f64, 2.0, 4.0, 8.0] {
        let spins = linear_imbalance(workers, base_ticks, factor);
        // Idealised barrier-synchronous time: every sweep takes the
        // slowest worker's compute time (barrier free of charge).
        let sync_ticks = k_sync * spins.iter().max().copied().expect("workers");
        let cfg = SimConfig {
            partition: partition.clone(),
            compute: spins
                .iter()
                .map(|&t| ComputeModel::Fixed { ticks: t })
                .collect(),
            latency: LatencyModel::Fixed { ticks: 1 },
            inner_steps: 1,
            partial_sends: 0,
            max_iterations: 0, // set by the session's step budget
            seed,
            record_labels: asynciter_models::LabelStore::MinOnly,
            error_every: 0, // set by the session's error_every
        };
        let res = Session::new(&op)
            .steps(40 * k_sync * workers as u64)
            .xstar(xstar.clone())
            .error_every(workers as u64)
            .backend(Sim(cfg))
            .run()
            .expect("simulation");
        let async_ticks = res
            .sim_time_to_error(eps)
            .expect("async simulation reached eps");
        let ratio = async_ticks as f64 / sync_ticks as f64;
        sim_ratios.push((factor, ratio));
        table.row(&[
            format!("{factor:.0}x"),
            sync_ticks.to_string(),
            async_ticks.to_string(),
            format!("{ratio:.3}"),
        ]);
        csv.row_strings(&[
            "simulated".into(),
            format!("{factor}"),
            sync_ticks.to_string(),
            async_ticks.to_string(),
            format!("{ratio:.4}"),
        ]);
    }
    ctx.log(table.render());
    let first = sim_ratios.first().expect("rows").1;
    let last = sim_ratios.last().expect("rows").1;
    ctx.log(format!(
        "simulated async/ideal-sync ratio: {first:.3} at balance → {last:.3} at 8x imbalance"
    ));
    assert!(
        last < first,
        "async advantage must grow with imbalance in simulated time ({first:.3} → {last:.3})"
    );
    assert!(
        last < 1.0,
        "async must beat even idealised sync under 8x imbalance (ratio {last:.3})"
    );

    // ---- Part 2: threads (noisy wall clock; directional assertion). ----
    let base_spin = if quick { 4_000 } else { 20_000 };
    let target = 1e-8;
    ctx.log(format!(
        "Part 2 (threads): {workers} workers, base spin {base_spin} units/update, \
         target residual {target:.0e}"
    ));
    let sync_session = |spin: Vec<u64>, sweeps: u64, target: Option<f64>| {
        let mut s = Session::new(&op).steps(sweeps).backend(Barrier {
            threads: workers,
            partition: Some(partition.clone()),
            spin,
        });
        if let Some(eps) = target {
            s = s.stopping(StoppingRule::Residual {
                eps,
                check_every: 1,
            });
        }
        s.run().expect("sync run")
    };
    let async_session = |spin: Vec<u64>, updates: u64, target: Option<f64>| {
        let mut s = Session::new(&op).steps(updates).backend(SharedMem {
            threads: workers,
            partition: Some(partition.clone()),
            spin,
            ..SharedMem::default()
        });
        if let Some(eps) = target {
            s = s.stopping(StoppingRule::Residual {
                eps,
                check_every: 64,
            });
        }
        s.run().expect("async run")
    };
    // Warm-up (page-in, CPU frequency) before timing.
    {
        let spin = linear_imbalance(workers, base_spin, 1.0);
        let _ = sync_session(spin.clone(), 50, None);
        let _ = async_session(spin, 2_000, None);
    }
    let mut thread_table = TextTable::new(&[
        "imbalance",
        "sync ms",
        "async ms",
        "async/sync",
        "sync sweeps",
        "async updates",
        "update skew",
    ]);
    let mut last_thread_ratio = f64::NAN;
    for factor in [1.0, 8.0] {
        let spin = linear_imbalance(workers, base_spin, factor);
        // Median of 3 repetitions to tame scheduling noise.
        let mut sync_times = Vec::new();
        let mut async_times = Vec::new();
        let mut sync_sweeps = 0;
        let mut async_updates = 0;
        let mut skew = 0.0;
        for _ in 0..3 {
            let sync = sync_session(spin.clone(), 1_000_000, Some(target / 10.0));
            assert!(
                sync.final_residual <= target * 10.0,
                "sync did not converge"
            );
            sync_times.push(sync.wall.as_secs_f64() * 1e3);
            sync_sweeps = sync.steps;
            let asy = async_session(spin.clone(), 100_000_000, Some(target));
            assert!(
                asy.final_residual <= target * 10.0,
                "async did not converge"
            );
            async_times.push(asy.wall.as_secs_f64() * 1e3);
            async_updates = asy.steps;
            skew = asy.per_worker_updates.iter().max().copied().unwrap_or(1) as f64
                / asy
                    .per_worker_updates
                    .iter()
                    .min()
                    .copied()
                    .unwrap_or(1)
                    .max(1) as f64;
        }
        let sync_ms = asynciter_numerics::stats::median(&sync_times).expect("times");
        let async_ms = asynciter_numerics::stats::median(&async_times).expect("times");
        let ratio = async_ms / sync_ms;
        last_thread_ratio = ratio;
        thread_table.row(&[
            format!("{factor:.0}x"),
            format!("{sync_ms:.1}"),
            format!("{async_ms:.1}"),
            format!("{ratio:.2}"),
            sync_sweeps.to_string(),
            async_updates.to_string(),
            format!("{skew:.2}"),
        ]);
        csv.row_strings(&[
            "threads".into(),
            format!("{factor}"),
            format!("{sync_ms:.3}"),
            format!("{async_ms:.3}"),
            format!("{ratio:.4}"),
        ]);
    }
    ctx.log(thread_table.render());
    ctx.log(format!(
        "threads at 8x imbalance: async/sync wall ratio {last_thread_ratio:.2} \
         (directional check: async not slower than sync)"
    ));
    assert!(
        last_thread_ratio < 1.1,
        "async should not lose to barrier-sync under heavy imbalance (ratio {last_thread_ratio:.2})"
    );
    csv.save(&ctx.dir().join("speedup.csv")).expect("save csv");
    ctx.finish();
}
