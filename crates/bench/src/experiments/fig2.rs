//! **F2** — Fig. 2: asynchronous iteration *with flexible communication*.
//!
//! Paper exhibit: the Fig. 1 timeline augmented with hatched arrows —
//! partial updates leaving mid-phase (one-sided put()s of intermediate
//! inner-iteration results). Regenerated from a simulated run with
//! `inner_steps = 4` and two partial sends per phase; the experiment
//! additionally verifies that partials genuinely leave strictly inside
//! phases and that consuming them does not break convergence.

use crate::ExpContext;
use asynciter_report::csv::CsvWriter;
use asynciter_report::gantt::{render_gantt, GComm, GPhase};
use asynciter_sim::runner::Simulator;
use asynciter_sim::scenario;
use asynciter_sim::timeline::CommKind;

/// Runs F2.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("F2", seed);
    let iterations = if quick { 8 } else { 12 };
    let op = scenario::two_component_operator();
    let cfg = scenario::fig2(iterations, seed);
    let res = Simulator::run(&op, &[0.0, 0.0], &cfg, None).expect("simulation");
    res.timeline.validate().expect("timeline invariants");

    let phases: Vec<GPhase> = res
        .timeline
        .phases
        .iter()
        .map(|p| (p.proc, p.start, p.end, p.j))
        .collect();
    let comms: Vec<GComm> = res
        .timeline
        .comms
        .iter()
        .map(|c| {
            (
                c.from,
                c.to,
                c.send_t,
                c.recv_t,
                c.kind == CommKind::Partial,
            )
        })
        .collect();
    let chart = render_gantt(
        2,
        &phases,
        &comms,
        100,
        "Fig. 2 — flexible communication: partial updates (hatched ╌╌▶) leave mid-phase, \
         full updates (──▶) at phase end",
    );
    ctx.log(&chart);

    let partials = res.timeline.partial_count();
    let fulls = res.timeline.comms.len() - partials;
    ctx.log(format!(
        "{partials} partial communications, {fulls} full communications"
    ));
    assert!(partials > 0, "Fig. 2 requires partial updates");

    // Every partial leaves strictly inside a phase of its sender.
    for c in &res.timeline.comms {
        if c.kind == CommKind::Partial {
            let inside = res
                .timeline
                .phases
                .iter()
                .any(|p| p.proc == c.from && p.start < c.send_t && c.send_t < p.end);
            assert!(inside, "partial at t={} not mid-phase", c.send_t);
        }
    }
    ctx.log("verified: every partial update leaves strictly mid-phase");

    // Convergence still holds with partials consumed.
    let xstar = op.solve_dense_spd().expect("2x2 solve");
    let err = asynciter_numerics::vecops::max_abs_diff(&res.final_consensus, &xstar);
    ctx.log(format!(
        "consensus error after {iterations} iterations: {err:.3e} (converging)"
    ));

    let mut csv = CsvWriter::new(&["from", "to", "send_t", "recv_t", "kind"]);
    for c in &res.timeline.comms {
        csv.row_strings(&[
            c.from.to_string(),
            c.to.to_string(),
            c.send_t.to_string(),
            c.recv_t.to_string(),
            format!("{:?}", c.kind),
        ]);
    }
    csv.save(&ctx.dir().join("comms.csv")).expect("save csv");
    ctx.save("fig2.txt", &chart);
    ctx.finish();
}
