//! **E9** — modified-Newton vs gradient relaxation (\[25\]).
//!
//! Paper context: El Baz–Elkihel's parallel asynchronous *modified
//! Newton* methods precondition each coordinate by a frozen diagonal
//! Hessian estimate. On badly scaled problems this removes the
//! anisotropy that throttles the fixed-step gradient operator (whose
//! admissible step is limited by the largest curvature).
//!
//! Measured: asynchronous steps to `ε` for the gradient operator vs
//! diagonal Newton on quadratics of growing condition number, plus a
//! damping (`θ`) ablation under out-of-order delays.

use crate::ExpContext;
use asynciter_core::session::{Replay, Session};
use asynciter_core::stopping::StoppingRule;
use asynciter_models::schedule::ChaoticBounded;
use asynciter_opt::newton::DiagNewton;
use asynciter_opt::proxgrad::{gamma_max, GradientOperator};
use asynciter_opt::quadratic::SeparableQuadratic;
use asynciter_opt::traits::Operator;
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;

fn steps_to_eps(op: &dyn Operator, n: usize, xstar: &[f64], eps: f64, seed: u64) -> Option<u64> {
    let res = Session::new(op)
        .steps(3_000_000)
        .schedule(ChaoticBounded::new(n, n / 4, n / 2, 12, false, seed))
        .xstar(xstar.to_vec())
        .stopping(StoppingRule::ErrorBelow {
            eps,
            check_every: 8,
        })
        .backend(Replay)
        .run()
        .expect("run");
    res.stopped_early.then_some(res.steps)
}

/// Runs E9.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("E9", seed);
    let n = if quick { 24 } else { 64 };
    let eps = 1e-9;

    let mut table = TextTable::new(&[
        "condition number",
        "gradient steps",
        "newton steps",
        "speedup",
    ]);
    let mut csv = CsvWriter::new(&["kappa", "gradient", "newton", "speedup"]);
    let mut speedups = Vec::new();
    for kappa in [4.0, 16.0, 64.0, 256.0] {
        let f = SeparableQuadratic::random(n, 1.0, kappa, seed).expect("instance");
        let xstar = f.minimizer();
        let grad = GradientOperator::new(f.clone(), gamma_max(1.0, kappa)).expect("gradient");
        let newton = DiagNewton::at_reference(f, &vec![0.0; n], 0.9).expect("newton");
        let gs = steps_to_eps(&grad, n, &xstar, eps, seed + 1);
        let ns = steps_to_eps(&newton, n, &xstar, eps, seed + 1);
        let (gs, ns) = (
            gs.expect("gradient converged"),
            ns.expect("newton converged"),
        );
        let speedup = gs as f64 / ns as f64;
        speedups.push((kappa, speedup));
        table.row(&[
            format!("{kappa:.0}"),
            gs.to_string(),
            ns.to_string(),
            format!("{speedup:.1}x"),
        ]);
        csv.row_strings(&[
            format!("{kappa}"),
            gs.to_string(),
            ns.to_string(),
            format!("{speedup:.3}"),
        ]);
    }
    ctx.log(table.render());

    // Shape: Newton's advantage grows with the condition number.
    assert!(
        speedups.last().expect("rows").1 > speedups.first().expect("rows").1,
        "Newton advantage should grow with conditioning: {speedups:?}"
    );
    assert!(
        speedups.last().expect("rows").1 > 4.0,
        "Newton should be several times faster at kappa=256"
    );
    ctx.log(format!(
        "modified-Newton speedup grows from {:.1}x (κ=4) to {:.1}x (κ=256) under \
         out-of-order asynchronous execution",
        speedups.first().expect("rows").1,
        speedups.last().expect("rows").1
    ));

    // Damping ablation at fixed conditioning.
    let f = SeparableQuadratic::random(n, 1.0, 64.0, seed + 2).expect("instance");
    let xstar = f.minimizer();
    let mut damping_rows = Vec::new();
    for theta in [0.3, 0.6, 0.9, 1.0] {
        let newton = DiagNewton::at_reference(f.clone(), &vec![0.0; n], theta).expect("newton");
        let s = steps_to_eps(&newton, n, &xstar, eps, seed + 3).expect("converged");
        damping_rows.push((theta, s));
        csv.row_strings(&[
            format!("theta={theta}"),
            "-".into(),
            s.to_string(),
            "-".into(),
        ]);
    }
    ctx.log(format!(
        "damping ablation (κ=64): {}",
        damping_rows
            .iter()
            .map(|(t, s)| format!("θ={t}: {s} steps"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    // Less damping converges faster for separable quadratics.
    assert!(
        damping_rows.last().expect("rows").1 <= damping_rows.first().expect("rows").1,
        "full Newton steps should beat heavy damping on separable quadratics"
    );
    csv.save(&ctx.dir().join("newton.csv")).expect("save csv");
    ctx.finish();
}
