//! **E4** — flexible vs standard asynchronous communication.
//!
//! Paper claim (§IV, ref \[10\]): "Flexible communication permits one to
//! improve efficiency of asynchronous gradient algorithms" — partial
//! updates let peers consume fresher information before a long updating
//! phase completes.
//!
//! Two measurements:
//!
//! 1. *Deterministic engine*: outer iterations to reach `ε` as a
//!    function of the publish period `p` (1 = publish after every inner
//!    step … `m` = publish only at the end = standard async), for
//!    several inner-step counts `m`.
//! 2. *Threaded runtime*: wall-clock to target residual with and
//!    without mid-phase publishing.

use crate::ExpContext;
use asynciter_core::session::{Flexible, Session};
use asynciter_core::stopping::StoppingRule;
use asynciter_models::partition::Partition;
use asynciter_models::schedule::BlockRoundRobin;
use asynciter_opt::linear::JacobiOperator;
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;
use asynciter_runtime::session::SharedMem;

fn outer_steps_to_eps(
    op: &JacobiOperator,
    n: usize,
    m: usize,
    p: usize,
    eps: f64,
    max_outer: u64,
    seed: u64,
) -> Option<u64> {
    let xstar = op.solve_dense_spd().expect("reference");
    let res = Session::new(op)
        .steps(max_outer)
        .schedule(BlockRoundRobin::new(
            Partition::blocks(n, 8).expect("partition"),
            10,
        ))
        .xstar(xstar)
        .error_every(1)
        .seed(seed)
        .backend(Flexible {
            m,
            partial: true,
            publish_period: Some(p),
            ..Flexible::default()
        })
        .run()
        .expect("flexible run");
    res.steps_to_error(eps)
}

/// Runs E4.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("E4", seed);
    let n = if quick { 32 } else { 64 };
    let op = JacobiOperator::new(
        asynciter_numerics::sparse::tridiagonal(n, 4.0, -1.0),
        vec![1.0; n],
    )
    .expect("operator");
    let eps = 1e-10;
    let max_outer = 100_000;

    ctx.log(format!(
        "Part 1 (deterministic engine): tridiagonal Jacobi n={n}, 8 blocks, read lag 10, \
         outer steps to ‖x−x*‖ ≤ {eps:.0e}"
    ));
    let mut table = TextTable::new(&["inner m", "p=1", "p=m/2", "p=m (standard)"]);
    let mut csv = CsvWriter::new(&["m", "p", "outer_steps"]);
    let mut improvements = Vec::new();
    for m in [2usize, 4, 8, 16] {
        let mut row = vec![format!("{m}")];
        let mut per_p = Vec::new();
        for p in [1, (m / 2).max(1), m] {
            let steps = outer_steps_to_eps(&op, n, m, p, eps, max_outer, seed);
            csv.row_strings(&[
                m.to_string(),
                p.to_string(),
                steps.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            ]);
            per_p.push(steps);
            row.push(steps.map(|s| s.to_string()).unwrap_or_else(|| "-".into()));
        }
        if let (Some(flex), Some(std)) = (per_p[0], per_p[2]) {
            improvements.push((m, std as f64 / flex as f64));
        }
        table.row(&row);
    }
    ctx.log(table.render());
    for (m, imp) in &improvements {
        ctx.log(format!(
            "  m={m}: flexible (p=1) reaches ε in {imp:.2}x fewer outer steps than standard (p=m)"
        ));
    }
    assert!(
        improvements.iter().all(|&(_, imp)| imp >= 1.0),
        "flexible communication should never need more outer steps"
    );
    assert!(
        improvements.iter().any(|&(_, imp)| imp > 1.05),
        "flexible communication should help for some m: {improvements:?}"
    );

    // Part 2: threaded runtime with slow phases (spin) — publish partials
    // halfway vs only at the end.
    let workers = 4;
    let big_n = if quick { 64 } else { 256 };
    let opb = JacobiOperator::new(
        asynciter_numerics::sparse::tridiagonal(big_n, 4.0, -1.0),
        vec![1.0; big_n],
    )
    .expect("operator");
    let partition = Partition::blocks(big_n, workers).expect("partition");
    let target = 1e-9;
    let spin = vec![if quick { 20_000 } else { 60_000 }; workers];
    let m = 8usize;
    let mut wall = Vec::new();
    for (name, p) in [("flexible p=2", 2usize), ("standard p=m", m)] {
        let res = Session::new(&opb)
            .steps(10_000_000)
            .stopping(StoppingRule::Residual {
                eps: target,
                check_every: 64,
            })
            .backend(SharedMem {
                threads: workers,
                partition: Some(partition.clone()),
                inner_steps: m,
                publish_period: p,
                spin: spin.clone(),
                ..SharedMem::default()
            })
            .run()
            .expect("async run");
        assert!(
            res.final_residual <= target * 10.0,
            "{name} did not converge"
        );
        ctx.log(format!(
            "Part 2 (threads): {name:<14} wall {:>8.1} ms, {} outer updates, {} partial publishes",
            res.wall.as_secs_f64() * 1e3,
            res.steps,
            res.partial_publishes
        ));
        wall.push(res.wall.as_secs_f64());
        csv.row_strings(&[
            format!("threads-{name}"),
            p.to_string(),
            format!("{:.1}", res.wall.as_secs_f64() * 1e3),
        ]);
    }
    ctx.log(format!(
        "threaded flexible/standard wall ratio: {:.2}",
        wall[0] / wall[1]
    ));

    csv.save(&ctx.dir().join("flexible.csv")).expect("save csv");
    ctx.finish();
}
